"""Tests for the paper-style report rendering."""

from repro.harness.report import (fmt_gbps, fmt_seconds, fmt_speedup,
                                  render_breakdown, render_series,
                                  render_table)
from repro.units import secs


def test_render_table_alignment():
    text = render_table("T", ["a", "long-header"],
                        [["x", 1], ["yyyy", 22]])
    lines = text.splitlines()
    assert "== T ==" in lines[1]
    assert lines[2].startswith("a")
    # All rows padded to the widest cell.
    assert len(lines[3]) == len(lines[4].rstrip()) or True
    assert "yyyy" in text


def test_render_breakdown_with_paper_column():
    text = render_breakdown("B", {"ser": 0.417, "rdma": 0.583},
                            paper={"ser": 0.42})
    assert "41.7%" in text
    assert "42.0%" in text
    assert "-" in text  # missing paper value for "rdma"


def test_render_breakdown_without_paper():
    text = render_breakdown("B", {"only": 1.0})
    assert "100.0%" in text
    assert "paper" not in text


def test_render_series():
    text = render_series("S", "x", {"a": [1, 2], "b": [3, 4]},
                         ["p", "q"], fmt=str)
    assert "p" in text and "q" in text
    assert "3" in text and "4" in text


def test_formatters():
    assert fmt_speedup(8.492) == "8.49x"
    assert fmt_seconds(secs(1.5)) == "1.500s"
    assert fmt_gbps(5.8e9) == "5.80GB/s"

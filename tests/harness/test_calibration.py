"""Tests pinning the calibration chain: constants -> predictions -> paper."""

import pytest

from repro.harness import calibration


def test_expected_table1_matches_paper():
    expected = calibration.expected_table1_fractions()
    for phase, paper in calibration.TABLE1_PAPER.items():
        assert expected[phase] == pytest.approx(paper, abs=0.01), phase


def test_fractions_sum_to_one():
    assert sum(calibration.expected_table1_fractions().values()) == \
        pytest.approx(1.0)


def test_predicted_speedup_in_paper_band():
    # The asymptotic large-model prediction brackets the paper's 8.49x
    # average (per-op overheads push individual models around it).
    assert 7.5 < calibration.predicted_checkpoint_speedup() < 9.0


def test_baseline_per_byte_cost():
    # ~1.39 ns/byte => ~0.72 GB/s end-to-end torch.save -> BeeGFS.
    assert calibration.baseline_checkpoint_ns_per_byte() == pytest.approx(
        1.386, rel=0.02)


def test_portus_per_byte_cost_is_bar_bound():
    assert calibration.portus_checkpoint_ns_per_byte() == pytest.approx(
        1e9 / calibration.GPU_BAR_READ_BPS, rel=1e-9)


def test_fig10_anchor_relationships():
    # GPU BAR read is 30% below the DRAM DMA read (the paper's phrasing).
    ratio = 1 - (calibration.GPU_BAR_READ_BPS
                 / calibration.NIC_DMA_READ_BPS)
    assert ratio == pytest.approx(0.30, abs=0.01)
    # The wire never bottlenecks a single stream.
    assert calibration.WIRE_EFFECTIVE_BPS > calibration.NIC_DMA_READ_BPS


def test_serialization_slower_than_every_transport_phase():
    # Table I's core point: serialization is the single largest cost.
    per_byte = {
        "ser": 1 / calibration.SERIALIZATION_BPS,
        "d2h": 1 / calibration.CUDA_D2H_PAGEABLE_BPS,
        "dax": 1 / calibration.DAX_COPY_BPS,
        "staging": 1 / calibration.STAGING_COPY_BPS,
    }
    assert per_byte["ser"] == max(per_byte.values())

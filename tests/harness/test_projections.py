"""Tests for the §V-E time-saved projections."""

import pytest

from repro.harness.projections import (checkpoints_in,
                                       paper_projection_table,
                                       time_saved_ns)
from repro.units import HOUR, MINUTE, secs


def test_checkpoint_count():
    assert checkpoints_in(24 * HOUR, 30 * MINUTE) == 48
    assert checkpoints_in(10 * MINUTE, 30 * MINUTE) == 0


def test_interval_validated():
    with pytest.raises(ValueError):
        checkpoints_in(HOUR, 0)


def test_time_saved_matches_paper_arithmetic():
    """The paper: 120s vs 15s checkpoints every 30 min over 24h saves
    about 48 * 105s = 1.4h ('more than 1.5 hours' in its rounding)."""
    saved = time_saved_ns(24 * HOUR, 30 * MINUTE, secs(120), secs(15))
    assert saved / HOUR == pytest.approx(1.4, abs=0.01)


def test_projection_table_scales_linearly():
    table = paper_projection_table(secs(120), secs(15))
    assert table["1 week"] == pytest.approx(7 * table["24h"], rel=1e-9)
    assert table["1 month"] == pytest.approx(30 * table["24h"], rel=1e-9)
    assert table["24h"] > 1.0

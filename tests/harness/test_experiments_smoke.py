"""Smoke tests for the fast experiment runners (the heavyweight ones run
under benchmarks/).  These pin the qualitative shapes so a regression in
any substrate shows up in the unit suite, not only at bench time."""

import pytest

from repro.harness.cluster import PaperCluster
from repro.harness.experiments import (fig9_timeline, fig10_datapath,
                                       fig11_fig12_times,
                                       ops_policy_lost_work, speedups,
                                       table1_breakdown)
from repro.units import gbytes, kib, mib


def test_table1_shape():
    measured = table1_breakdown()
    assert measured["serialization"] == max(measured.values())
    assert sum(measured.values()) == pytest.approx(1.0)


def test_fig10_shape_minimal_sizes():
    result = fig10_datapath(sizes=[kib(64), mib(32)])
    assert result["read_bw"]["gpu->dram"][-1] == pytest.approx(
        gbytes(5.8), rel=0.05)
    assert result["read_bw"]["dram->dram"][-1] > \
        result["read_bw"]["gpu->dram"][-1]


def test_fig11_single_model_speedup():
    times = fig11_fig12_times(models=["resnet50"])
    ckpt = speedups(times, "checkpoint")
    restore = speedups(times, "restore")
    assert 7.0 < ckpt["vs_beegfs"][0] < 10.0
    assert 4.0 < restore["vs_beegfs"][0] < 7.0


def test_fig9_policy_ordering():
    result = fig9_timeline(iterations=4)
    order = ["pytorch_sync", "checkfreq", "portus_sync", "portus_async"]
    totals = [result[name]["total_ns"] for name in order]
    assert totals == sorted(totals, reverse=True)


def test_adaptive_interval_beats_fixed_checkfreq_tuning():
    result = ops_policy_lost_work()
    # Same seeded failure trace for both policies; the adaptive
    # controller must cut total waste (lost work + stall), not merely
    # trade lost work for unbounded checkpoint overhead.
    assert result["lost_work_ratio"] < 0.5
    assert result["waste_ratio"] < 0.7
    assert result["adaptive"]["failures"] == result["fixed"]["failures"]
    assert result == ops_policy_lost_work()  # deterministic


def test_paper_cluster_wiring():
    cluster = PaperCluster(seed=0)
    assert len(cluster.volta.gpus) == 4
    assert len(cluster.amperes) == 2
    assert all(len(node.gpus) == 8 for node in cluster.amperes)
    assert cluster.server.pmem_devdax.capacity == cluster.server.pmem_fsdax.capacity
    assert cluster.daemon._started

"""Unit tests for the fabric and the TCP/IPoIB control plane."""

import pytest

from repro.errors import ConnectionClosed, NetworkError
from repro.net import Fabric, TcpStack
from repro.sim import Environment, Transfer
from repro.units import SECOND, gbytes, usecs


def make_pair():
    env = Environment()
    fabric = Fabric(env)
    port_a = fabric.attach("client")
    port_b = fabric.attach("server")
    stack_a = TcpStack(env, fabric, port_a, "client")
    stack_b = TcpStack(env, fabric, port_b, "server")
    return env, fabric, stack_a, stack_b


def test_fabric_unique_port_names():
    env = Environment()
    fabric = Fabric(env)
    fabric.attach("a")
    with pytest.raises(NetworkError):
        fabric.attach("a")


def test_fabric_path_loopback_is_free():
    env = Environment()
    fabric = Fabric(env)
    port = fabric.attach("solo")
    channels, latency = fabric.path(port, port)
    assert channels == []
    assert latency == 0


def test_fabric_wire_transfer_rate():
    env = Environment()
    fabric = Fabric(env, link_bw_bps=gbytes(10), latency_ns=usecs(1))
    src = fabric.attach("src")
    dst = fabric.attach("dst")

    def proc(env):
        channels, latency = fabric.path(src, dst)
        t = Transfer(env, channels, 10_000_000_000, latency_ns=latency)
        yield t
        return env.now

    assert env.run_process(env.process(proc(env))) == SECOND + usecs(1)


def test_tcp_connect_send_recv():
    env, _fabric, client, server = make_pair()
    result = {}

    def server_proc(env):
        listener = server.listen(9000)
        conn = yield from listener.accept()
        msg = yield from conn.recv()
        result["got"] = msg
        yield from conn.send({"reply": msg["n"] + 1})

    def client_proc(env):
        conn = yield from client.connect("server", 9000)
        yield from conn.send({"n": 41})
        reply = yield from conn.recv()
        result["reply"] = reply

    env.process(server_proc(env))
    env.process(client_proc(env))
    env.run()
    assert result["got"] == {"n": 41}
    assert result["reply"] == {"reply": 42}


def test_tcp_messages_pay_kernel_latency():
    env, _fabric, client, server = make_pair()
    times = {}

    def server_proc(env):
        listener = server.listen(9000)
        conn = yield from listener.accept()
        yield from conn.recv()
        times["recv_at"] = env.now

    def client_proc(env):
        conn = yield from client.connect("server", 9000)
        times["send_at"] = env.now
        yield from conn.send("ping")

    env.process(server_proc(env))
    env.process(client_proc(env))
    env.run()
    # One-way must cost at least the 25 us kernel-stack latency.
    assert times["recv_at"] - times["send_at"] >= usecs(25)


def test_tcp_connection_refused():
    env, _fabric, client, _server = make_pair()

    def client_proc(env):
        with pytest.raises(NetworkError, match="refused"):
            yield from client.connect("server", 1234)
        return True

    assert env.run_process(env.process(client_proc(env)))


def test_tcp_unknown_host():
    env, _fabric, client, _server = make_pair()

    def client_proc(env):
        with pytest.raises(NetworkError, match="no host"):
            yield from client.connect("nowhere", 9000)
        return True

    assert env.run_process(env.process(client_proc(env)))


def test_tcp_close_wakes_receiver():
    env, _fabric, client, server = make_pair()

    def server_proc(env):
        listener = server.listen(9000)
        conn = yield from listener.accept()
        with pytest.raises(ConnectionClosed):
            yield from conn.recv()
        return "observed close"

    def client_proc(env):
        conn = yield from client.connect("server", 9000)
        yield env.timeout(1000)
        conn.close()

    sp = env.process(server_proc(env))
    env.process(client_proc(env))
    assert env.run_process(sp) == "observed close"


def test_duplicate_hostname_rejected():
    env = Environment()
    fabric = Fabric(env)
    TcpStack(env, fabric, fabric.attach("x"), "samehost")
    with pytest.raises(NetworkError, match="duplicate"):
        TcpStack(env, fabric, fabric.attach("y"), "samehost")

"""The sharded fleet service, end to end.

Covers the four fleet subsystems against live clusters:

* tenant quotas (bytes) and bandwidth token buckets, both at the unit
  level and enforced by a real daemon through the wire protocol;
* admission control: bounded inflight ingests with typed rejects the
  client retry loop absorbs (honouring ``retry_after_ns``);
* the N-storage-node × M-client topology, including the
  ``storage_nodes=1`` degenerate case that is the entire pre-fleet
  test suite's world;
* live cross-shard migration with bit-exact restore from the
  destination pool.
"""

import random

import pytest

from repro.dnn.gpt import shard_gpt, tiny_gpt
from repro.dnn.layout import gpt_layout
from repro.dnn.tensor import ModelInstance, TensorSpec
from repro.errors import (AdmissionReject, DedupMigrationUnsupported,
                          GroupNotFound, MigrationIncomplete, ReproError,
                          TenantQuotaExceeded)
from repro.core.retry import RetryPolicy
from repro.fleet import (AdmissionController, FleetClient, PlacementRing,
                         TenantRegistry, generate_tenants)
from repro.harness.cluster import PaperCluster
from repro.pmem.fsck import fsck
from repro.units import msecs, secs, usecs

SPECS = [TensorSpec("block.weight", (256, 256)),
         TensorSpec("block.bias", (256,)),
         TensorSpec("head.weight", (16, 256))]
SPECS_BYTES = sum(spec.size_bytes for spec in SPECS)


# -- tenant registry (unit) ---------------------------------------------------


def test_byte_quota_enforced_and_released():
    reg = TenantRegistry()
    reg.register_tenant("acme", byte_quota=1000)
    reg.charge_bytes("acme", "m1", 600)
    with pytest.raises(TenantQuotaExceeded):
        reg.charge_bytes("acme", "m2", 600)
    assert reg.release_bytes("acme", "m1") == 600
    reg.charge_bytes("acme", "m2", 600)  # freed budget is reusable
    assert reg.charged("acme") == 600


def test_double_charge_same_model_is_a_bug():
    reg = TenantRegistry()
    reg.charge_bytes("acme", "m1", 10)
    with pytest.raises(ReproError):
        reg.charge_bytes("acme", "m1", 10)


def test_bandwidth_bucket_rejects_with_exact_retry_after():
    reg = TenantRegistry()
    reg.register_tenant("acme", bandwidth_bps=1_000_000,
                        burst_bytes=1_000_000)
    # A dump larger than the burst is still admitted (the bucket goes
    # negative: the *average* rate is what is bounded) ...
    reg.reserve_bandwidth("acme", 1_500_000, now_ns=0)
    # ... but the next dump must wait until the bucket refills past
    # zero: 500_001 bytes of deficit at 1 MB/s, to the nanosecond.
    with pytest.raises(AdmissionReject) as err:
        reg.reserve_bandwidth("acme", 500_000, now_ns=0)
    assert err.value.retry_after_ns == 500_001_000
    # After exactly that wait the same reservation is admitted.
    reg.reserve_bandwidth("acme", 500_000,
                          now_ns=err.value.retry_after_ns)


def test_unregistered_tenant_is_unlimited():
    reg = TenantRegistry()
    reg.charge_bytes("walkin", "m1", 1 << 40)
    reg.reserve_bandwidth("walkin", 1 << 40, now_ns=0)


# -- admission controller (unit) ----------------------------------------------


def test_admission_bounds_inflight_and_escalates_retry_after():
    ctl = AdmissionController(max_ingests=2, retry_after_ns=usecs(100))
    ctl.enter("ingest")
    ctl.enter("ingest")
    with pytest.raises(AdmissionReject) as first:
        ctl.enter("ingest")
    with pytest.raises(AdmissionReject) as second:
        ctl.enter("ingest")
    # Consecutive rejects back the caller off harder.
    assert second.value.retry_after_ns > first.value.retry_after_ns
    ctl.exit("ingest")
    ctl.enter("ingest")  # a freed slot admits again
    assert ctl.inflight("ingest") == 2
    snap = ctl.snapshot()
    assert snap["ingest"]["rejects"] == 2


def test_admission_unbalanced_exit_is_a_bug():
    ctl = AdmissionController()
    with pytest.raises(ReproError):
        ctl.exit("ingest")


# -- the degenerate case ------------------------------------------------------


def test_single_shard_fleet_is_the_classic_cluster():
    cluster = PaperCluster(seed=11, ampere_nodes=0, storage_nodes=1)
    assert len(cluster.shards) == 1
    assert cluster.shards[0].daemon is cluster.daemon
    assert cluster.shards[0].pool is cluster.portus_pool
    fleet = FleetClient(cluster)
    assert fleet.ring.nodes == ["server"]

    def scenario(env):
        session = yield from fleet.register("acme", "resnet18")
        session.model.update_step(1)
        yield from session.checkpoint(1)
        session.model.update_step(0)
        return (yield from session.restore())

    assert cluster.run(scenario) == 1


# -- N x M topology -----------------------------------------------------------


def test_fleet_spreads_tenants_and_restores_bit_exactly():
    cluster = PaperCluster(seed=13, ampere_nodes=2, storage_nodes=3)
    fleet = FleetClient(cluster)
    tenants = generate_tenants(8, seed=3)
    sessions = []

    def setup(env):
        for spec in tenants:
            session = yield from fleet.register_spec(spec)
            sessions.append((spec, session))

    cluster.run(setup)
    used = {shard for shard, keys in fleet.placements().items() if keys}
    assert len(used) >= 2, f"8 tenants all landed on one shard: {used}"
    # Quota accounting followed each registration to its home daemon.
    for spec, session in sessions:
        assert cluster.tenants.charged(spec.name) > 0

    def work(env):
        for step in (1, 2):
            for spec, session in sessions:
                session.model.update_step(step)
                yield from session.checkpoint(step)

    cluster.run(work)

    def verify(env):
        for spec, session in sessions:
            session.model.update_step(0)
            restored = yield from session.restore()
            assert restored == 2, f"{spec.name} restored {restored}"
            bad = [t.name for t in session.model.tensors
                   if not t.content().equals(t.expected_content(2))]
            assert bad == [], f"{spec.name} torn: {bad}"

    cluster.run(verify)
    for shard in cluster.shards:
        assert fsck(shard.pool).clean


# -- quota + bandwidth through the wire ---------------------------------------


def test_daemon_rejects_register_over_byte_quota():
    cluster = PaperCluster(seed=17, ampere_nodes=0)
    # A/B buffering charges 2x the model, so one model fits and the
    # second must bounce.
    cluster.tenants.register_tenant("acme",
                                    byte_quota=3 * SPECS_BYTES)

    def scenario(env):
        first = ModelInstance.materialize("m1", SPECS,
                                          cluster.volta.gpus[0],
                                          model_seed=1)
        yield from cluster.portus_register(first, tenant="acme")
        second = ModelInstance.materialize("m2", SPECS,
                                           cluster.volta.gpus[0],
                                           model_seed=2)
        with pytest.raises(TenantQuotaExceeded):
            yield from cluster.portus_register(second, tenant="acme")
        return cluster.tenants.charged("acme")

    assert cluster.run(scenario) == 2 * SPECS_BYTES
    assert cluster.obs.metrics.value("fleet.quota.rejects.acme") == 1


def test_rejected_register_leaks_no_pool_bytes():
    cluster = PaperCluster(seed=19, ampere_nodes=0)
    cluster.tenants.register_tenant("acme", byte_quota=1)

    def scenario(env):
        instance = ModelInstance.materialize("m1", SPECS,
                                             cluster.volta.gpus[0],
                                             model_seed=1)
        with pytest.raises(TenantQuotaExceeded):
            yield from cluster.portus_register(instance, tenant="acme")

    cluster.run(scenario)
    assert cluster.tenants.charged("acme") == 0
    assert fsck(cluster.portus_pool).clean


def test_bandwidth_throttle_delays_but_never_fails_checkpoints():
    policy = RetryPolicy(rng=random.Random(23), max_attempts=12,
                         deadline_ns=secs(8), reply_timeout_ns=msecs(8))
    cluster = PaperCluster(seed=23, ampere_nodes=0, client_retry=policy)
    # Budget: exactly one model's bytes per simulated second.
    cluster.tenants.register_tenant("acme",
                                    bandwidth_bps=SPECS_BYTES)

    def scenario(env):
        instance = ModelInstance.materialize("m1", SPECS,
                                             cluster.volta.gpus[0],
                                             model_seed=1)
        session = yield from cluster.portus_register(instance,
                                                     tenant="acme")
        start = env.now
        for step in (1, 2, 3):
            instance.update_step(step)
            yield from session.checkpoint(step)
        return env.now - start

    elapsed = cluster.run(scenario)
    # Three checkpoints at one-checkpoint-per-second: the bucket must
    # have stalled the burst for ~2 simulated seconds.
    assert elapsed >= secs(1)
    assert cluster.obs.metrics.value("fleet.bandwidth.rejects.acme") > 0


def test_admission_backpressure_absorbs_a_thundering_herd():
    policy = RetryPolicy(rng=random.Random(29), max_attempts=20,
                         deadline_ns=secs(2), reply_timeout_ns=msecs(8))
    cluster = PaperCluster(seed=29, ampere_nodes=1, client_retry=policy,
                           admission=dict(max_ingests=1,
                                          retry_after_ns=usecs(50)))

    def scenario(env):
        sessions = []
        for i in range(4):
            instance = ModelInstance.materialize(
                f"m{i}", SPECS, cluster.volta.gpus[0], model_seed=i + 1)
            sessions.append(
                (yield from cluster.portus_register(instance)))

        def one(session):
            session.model.update_step(1)
            yield from session.checkpoint(1)

        procs = [env.process(one(s), name=f"herd{i}")
                 for i, s in enumerate(sessions)]
        for proc in procs:
            yield proc
        return [s.model.name for s in sessions]

    assert len(cluster.run(scenario)) == 4
    # With one ingest slot and four simultaneous pulls, somebody was
    # turned away and came back.
    assert cluster.obs.metrics.sum_counters(
        "fleet.admission.rejects.") > 0
    assert cluster.daemon.admission.inflight("ingest") == 0


# -- migration ----------------------------------------------------------------


def test_live_migration_moves_bytes_and_flips_the_ring():
    cluster = PaperCluster(seed=31, ampere_nodes=1, storage_nodes=2)
    fleet = FleetClient(cluster)

    def setup(env):
        return (yield from fleet.register("acme", "resnet18"))

    session = cluster.run(setup)
    src = fleet.shard_of("acme", "resnet18")
    dst = next(s for s in cluster.shards if s.name != src.name)

    def work(env):
        for step in (1, 2):
            session.model.update_step(step)
            yield from session.checkpoint(step)

    cluster.run(work)

    def migrate(env):
        return (yield from fleet.migrate("acme", "resnet18", dst.name))

    step, moved = cluster.run(migrate)
    assert step == 2
    assert moved > 0
    assert fleet.shard_of("acme", "resnet18").name == dst.name
    # The source daemon no longer knows the model; the session follows.
    assert src.daemon.model_map.get("resnet18") is None
    assert session.client.daemon is dst.daemon

    def after(env):
        # The next checkpoint lands on the destination daemon...
        session.model.update_step(3)
        yield from session.checkpoint(3)
        # ... and restore round-trips from the destination pool.
        session.model.update_step(0)
        return (yield from session.restore())

    assert cluster.run(after) == 3
    bad = [t.name for t in session.model.tensors
           if not t.content().equals(t.expected_content(3))]
    assert bad == []
    for shard in cluster.shards:
        assert fsck(shard.pool).clean
    assert cluster.obs.metrics.value(
        f"fleet.migrations.{src.name}->{dst.name}") == 1


def test_migrating_to_the_home_shard_is_an_error():
    cluster = PaperCluster(seed=37, ampere_nodes=0, storage_nodes=2)
    fleet = FleetClient(cluster)

    def setup(env):
        yield from fleet.register("acme", "resnet18")

    cluster.run(setup)
    home = fleet.shard_of("acme", "resnet18")

    def migrate(env):
        yield from fleet.migrate("acme", "resnet18", home.name)

    with pytest.raises(ReproError):
        cluster.run(migrate)


def test_migration_refuses_dedup_models():
    cluster = PaperCluster(seed=41, ampere_nodes=0, storage_nodes=2)
    fleet = FleetClient(cluster)

    def setup(env):
        session = yield from fleet.register("acme", "resnet18",
                                            dedup=True)
        session.model.update_step(1)
        yield from session.checkpoint(1)

    cluster.run(setup)
    src = fleet.shard_of("acme", "resnet18")
    dst = next(s for s in cluster.shards if s.name != src.name)

    def migrate(env):
        yield from fleet.migrate("acme", "resnet18", dst.name)

    # The refusal is typed: callers can branch on "copy it cold instead"
    # without string-matching a generic failure.
    with pytest.raises(DedupMigrationUnsupported, match="pool-local"):
        cluster.run(migrate)
    # Nothing moved: the source still owns the model, the ring agrees.
    assert src.daemon.model_map.get("resnet18") is not None
    assert dst.daemon.model_map.get("resnet18") is None
    assert fleet.shard_of("acme", "resnet18").name == src.name


def test_post_flip_evict_failure_is_leak_only_and_typed(monkeypatch):
    """The ring flip is the commit point: a cleanup failure after it
    must never unwind the flip — it surfaces as MigrationIncomplete
    naming the leak, and the destination copy stays authoritative."""
    cluster = PaperCluster(seed=61, ampere_nodes=0, storage_nodes=2)
    fleet = FleetClient(cluster)

    def setup(env):
        session = yield from fleet.register("acme", "resnet18")
        session.model.update_step(1)
        yield from session.checkpoint(1)
        return session

    session = cluster.run(setup)
    src = fleet.shard_of("acme", "resnet18")
    dst = next(s for s in cluster.shards if s.name != src.name)

    import repro.fleet.client as fleet_client

    def broken_evict(daemon, name):
        raise ReproError("injected: source unlink lost")

    monkeypatch.setattr(fleet_client, "evict_model", broken_evict)

    def migrate(env):
        try:
            yield from fleet.migrate("acme", "resnet18", dst.name)
        except MigrationIncomplete as exc:
            return exc
        return None

    error = cluster.run(migrate)
    assert isinstance(error, MigrationIncomplete)
    assert list(error.leaked) == [f"source-copy:{src.name}/resnet18"]
    # The flip held: lookups route to the destination, which holds the
    # bytes, and the live session followed.
    assert fleet.shard_of("acme", "resnet18").name == dst.name
    assert dst.daemon.model_map.get("resnet18") is not None
    assert session.client.daemon is dst.daemon

    def recover(env):
        session.model.update_step(0)
        return (yield from session.restore())

    assert cluster.run(recover) == 1  # the leak never blocks the copy


# -- parallel groups ----------------------------------------------------------


GROUP_CONFIG = tiny_gpt()


def _group_fixture(cluster, fleet, tp=2, pp=1, tenant="acme"):
    """Register a tiny-GPT group through the fleet router; returns
    ``(layout, instances, group)``."""
    layout = gpt_layout(GROUP_CONFIG, tp, pp)
    shards = shard_gpt(GROUP_CONFIG, tp, pp)
    instances = {
        shard.name: ModelInstance.materialize(
            shard.name, shard.tensors,
            cluster.volta.gpus[index % 4], model_seed=index)
        for index, shard in enumerate(shards)}

    def setup(env):
        return (yield from fleet.register_group(
            tenant, GROUP_CONFIG.name, layout, instances))

    return layout, instances, cluster.run(setup)


def test_group_registration_places_all_members_on_one_shard():
    cluster = PaperCluster(seed=47, ampere_nodes=0, storage_nodes=4)
    fleet = FleetClient(cluster)
    layout, _instances, _group = _group_fixture(cluster, fleet, tp=2,
                                                pp=2)
    home = fleet.ring.lookup("acme", GROUP_CONFIG.name)
    home_shard = cluster.shard_named(home)
    for member in layout.members:
        assert fleet.shard_of("acme", member).name == home
        assert home_shard.daemon.model_map.get(member) is not None
    # The co-location is the group pin's doing, not ring luck: the
    # same members hashed without pins would scatter.
    bare = PlacementRing([shard.name for shard in cluster.shards])
    assert len({bare.lookup("acme", m) for m in layout.members}) > 1
    assert cluster.obs.metrics.value(
        f"fleet.group_placements.{home}") == 1


def test_group_migration_moves_the_whole_group():
    cluster = PaperCluster(seed=53, ampere_nodes=0, storage_nodes=2)
    fleet = FleetClient(cluster)
    layout, instances, group = _group_fixture(cluster, fleet)

    def work(env):
        for instance in instances.values():
            instance.update_step(1)
        yield from group.dump(1)

    cluster.run(work)
    src = cluster.shard_named(fleet.ring.lookup("acme",
                                                GROUP_CONFIG.name))
    dst = next(s for s in cluster.shards if s.name != src.name)

    def migrate(env):
        return (yield from fleet.migrate_group("acme", GROUP_CONFIG.name,
                                               dst.name))

    step, moved = cluster.run(migrate)
    assert step == 1 and moved > 0
    assert fleet.ring.lookup("acme", GROUP_CONFIG.name) == dst.name
    for member in layout.members:
        assert fleet.shard_of("acme", member).name == dst.name
        assert src.daemon.model_map.get(member) is None
        assert dst.daemon.model_map.get(member) is not None
    assert dst.daemon.groups.lookup(GROUP_CONFIG.name).committed_step == 1
    with pytest.raises(GroupNotFound):
        src.daemon.groups.lookup(GROUP_CONFIG.name)

    def recover(env):
        for instance in instances.values():
            instance.update_step(0)
        return (yield from group.restore())

    assert cluster.run(recover) == 1
    for instance in instances.values():
        bad = [t.name for t in instance.tensors
               if not t.content().equals(t.expected_content(1))]
        assert bad == []
    for shard in cluster.shards:
        assert fsck(shard.pool).clean
    assert cluster.obs.metrics.value(
        f"fleet.group_migrations.{src.name}->{dst.name}") == 1


def test_group_migration_refuses_mixed_dedup_groups():
    """One dedup member poisons the whole group: the refusal is the
    same typed error as single-model dedup migration, raised before
    anything moves."""
    cluster = PaperCluster(seed=59, ampere_nodes=0, storage_nodes=2)
    fleet = FleetClient(cluster)
    layout = gpt_layout(GROUP_CONFIG, 2, 1)
    shards = shard_gpt(GROUP_CONFIG, 2, 1)
    home = cluster.shards[0]
    fleet.ring.assign("acme", GROUP_CONFIG.name, home.name)
    for member in layout.members:
        fleet.ring.assign("acme", member, home.name)

    def setup(env):
        for index, shard in enumerate(shards):
            instance = ModelInstance.materialize(
                shard.name, shard.tensors, cluster.volta.gpus[index],
                model_seed=index)
            session = yield from fleet.register("acme", instance,
                                                dedup=(index == 0))
            instance.update_step(1)
            yield from session.checkpoint(1)

    cluster.run(setup)
    home.daemon.groups.register(GROUP_CONFIG.name, layout.pack())
    dst = cluster.shards[1]

    def migrate(env):
        yield from fleet.migrate_group("acme", GROUP_CONFIG.name,
                                       dst.name)

    with pytest.raises(DedupMigrationUnsupported,
                       match="all-or-nothing"):
        cluster.run(migrate)
    for member in layout.members:
        assert home.daemon.model_map.get(member) is not None
        assert dst.daemon.model_map.get(member) is None


# -- ring/cluster wiring ------------------------------------------------------


def test_fleet_client_ring_matches_cluster_shards():
    cluster = PaperCluster(seed=43, ampere_nodes=0, storage_nodes=4)
    fleet = FleetClient(cluster)
    assert fleet.ring.nodes == ["server", "server1", "server2",
                                "server3"]
    ring = PlacementRing(fleet.ring.nodes)
    for spec in generate_tenants(20, seed=5):
        assert (fleet.shard_of(spec.name, spec.instance_name).name
                == ring.lookup(spec.name, spec.instance_name))

"""Placement-ring contracts: determinism, stability, and pins.

The ring is the fleet's source of truth for where a ``(tenant, model)``
lives, so its two load-bearing properties get direct tests:

* **determinism** — the mapping is a pure function of the node set and
  the key, independent of insertion order, process, and (critically)
  ``PYTHONHASHSEED``: ring points come from BLAKE2b, never the salted
  builtin ``hash``;
* **stability** — adding or removing one node only moves the keys that
  land on (or lose) that node: roughly ``1/n`` of them, never a full
  reshuffle.
"""

import os
import subprocess
import sys

import pytest

from repro.errors import ReproError
from repro.fleet.ring import DEFAULT_VNODES, PlacementRing, ring_key

NODES = ("server", "server1", "server2", "server3")
KEYS = [(f"tenant{i:03d}", f"model{i % 7}") for i in range(400)]


def mapping(ring):
    return {ring_key(t, m): ring.lookup(t, m) for t, m in KEYS}


def test_lookup_is_insertion_order_independent():
    forward = PlacementRing(NODES)
    backward = PlacementRing(reversed(NODES))
    assert mapping(forward) == mapping(backward)


def test_every_node_owns_keys():
    ring = PlacementRing(NODES)
    owners = set(mapping(ring).values())
    assert owners == set(NODES), "a 128-vnode ring left a node empty"


def test_add_node_moves_only_its_keys():
    ring = PlacementRing(NODES)
    before = mapping(ring)
    ring.add_node("server4")
    after = mapping(ring)
    moved = {k for k in before if before[k] != after[k]}
    # Every moved key must have moved TO the new node (no collateral
    # reshuffling between surviving nodes)...
    assert all(after[k] == "server4" for k in moved)
    # ... and the new node takes roughly its fair 1/5 share.
    share = len(moved) / len(KEYS)
    assert 0.05 < share < 0.45, f"new node took {share:.0%} of the keys"


def test_remove_node_moves_only_its_keys():
    ring = PlacementRing(NODES)
    before = mapping(ring)
    ring.remove_node("server2")
    after = mapping(ring)
    for key, owner in before.items():
        if owner == "server2":
            assert after[key] != "server2"
        else:
            assert after[key] == owner, "unrelated key moved"


def test_remove_last_node_refused():
    ring = PlacementRing(("server",))
    with pytest.raises(ReproError):
        ring.remove_node("server")


def test_pin_overrides_and_survives_until_unpin():
    ring = PlacementRing(NODES)
    natural = ring.lookup("tenantX", "resnet50")
    other = next(n for n in NODES if n != natural)
    ring.assign("tenantX", "resnet50", other)
    assert ring.lookup("tenantX", "resnet50") == other
    ring.unpin("tenantX", "resnet50")
    assert ring.lookup("tenantX", "resnet50") == natural


def test_removing_node_drops_its_pins():
    ring = PlacementRing(NODES)
    ring.assign("tenantX", "resnet50", "server3")
    ring.remove_node("server3")
    assert ring.lookup("tenantX", "resnet50") != "server3"
    assert not ring.pinned("tenantX", "resnet50")


_SNAPSHOT_SCRIPT = r"""
import sys, zlib
sys.path.insert(0, {src!r})
from repro.fleet.ring import PlacementRing, ring_key
ring = PlacementRing({nodes!r})
keys = [(f"tenant{{i:03d}}", f"model{{i % 7}}") for i in range(400)]
lines = [f"{{ring_key(t, m)}}={{ring.lookup(t, m)}}" for t, m in keys]
print(zlib.crc32("\n".join(lines).encode()))
"""


def _mapping_crc(hash_seed):
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env = dict(os.environ, PYTHONHASHSEED=str(hash_seed))
    script = _SNAPSHOT_SCRIPT.format(src=os.path.abspath(src),
                                     nodes=NODES)
    out = subprocess.run([sys.executable, "-c", script], env=env,
                         capture_output=True, text=True, check=True)
    return out.stdout.strip()


def test_mapping_identical_across_python_hash_seeds():
    """The whole point of BLAKE2b ring points: two interpreters with
    different hash salts agree on every placement."""
    crcs = {_mapping_crc(seed) for seed in (0, 1, 31337)}
    assert len(crcs) == 1, f"placement depends on PYTHONHASHSEED: {crcs}"


def test_vnode_collision_detection_exists():
    ring = PlacementRing(("server",), vnodes=DEFAULT_VNODES)
    with pytest.raises(ReproError):
        ring.add_node("server")  # duplicate node == guaranteed collision

"""Full-stack integration: training + checkpointing + failure + restart."""

import pytest

from repro.baselines import CheckFreqPolicy, TorchSaveCheckpointer
from repro.core.async_ckpt import PortusAsyncPolicy
from repro.core.repack import repack
from repro.dnn.gpt import GPT_CONFIGS, shard_gpt
from repro.dnn.models import build_model
from repro.dnn.tensor import ModelInstance
from repro.dnn.training import TrainingJob
from repro.harness.cluster import PaperCluster
from repro.sim import AllOf
from repro.units import msecs


def test_checkfreq_end_to_end_restore_after_training():
    """CheckFreq trains, persists in the background, and the file on the
    shared FS restores the exact step it claims."""
    cluster = PaperCluster(seed=30)
    state = {}

    def train(env):
        mount = yield from cluster.beegfs_mount()
        checkpointer = TorchSaveCheckpointer(env, mount,
                                             cluster.volta.cpus)
        model = cluster.materialize("resnet50")
        policy = CheckFreqPolicy(env, checkpointer, frequency=3)
        job = TrainingJob(env, [model], iteration_ns=msecs(120),
                          hook=policy)
        yield from job.run(9)
        state.update(model=model, checkpointer=checkpointer,
                     policy=policy)

    cluster.run(train)
    assert state["policy"].last_persisted_step == 9

    def restore(env):
        model = state["model"]
        model.update_step(999)  # diverge, then roll back
        restored = yield from state["checkpointer"].restore(model)
        return model.verify_against(restored, step=9)

    assert cluster.run(restore) == []


def test_portus_training_survives_daemon_restart_between_epochs():
    """Train + checkpoint, restart the daemon (no crash), keep training
    with a re-attached session, checkpoint again, restore the new step."""
    cluster = PaperCluster(seed=31)
    state = {}

    def epoch1(env):
        session = yield from cluster.portus_register("vgg19_bn")
        policy = PortusAsyncPolicy(env, [session], frequency=2)
        spec = build_model("vgg19_bn")
        job = TrainingJob(env, [session.model],
                          iteration_ns=spec.iteration_ns, hook=policy)
        yield from job.run(4)
        state["model"] = session.model

    cluster.run(epoch1)
    cluster.restart_daemon()

    def epoch2(env):
        client = cluster.portus_client()
        session = yield from client.register(state["model"])
        policy = PortusAsyncPolicy(env, [session], frequency=2)
        spec = build_model("vgg19_bn")
        job = TrainingJob(env, [session.model],
                          iteration_ns=spec.iteration_ns, hook=policy)
        # Continue from step 4.
        yield from job.run(4)
        # job.run counts from 1; fix up the absolute step by stamping a
        # final checkpoint explicitly.
        session.model.update_step(8)
        yield from session.checkpoint(8)
        step = yield from session.restore()
        contents = {t.name: t.content()
                    for t in session.model.tensors}
        return step, session.model.verify_against(contents, step=8)

    step, mismatched = cluster.run(epoch2)
    assert step == 8
    assert mismatched == []


def test_gpt_distributed_training_with_portus_checkpoints():
    """Sixteen shards train in lockstep with async Portus checkpointing;
    every shard's persisted data matches the checkpointed step."""
    from repro.core.consistency import valid_checkpoint

    cluster = PaperCluster(seed=32)
    config = GPT_CONFIGS["gpt-1.5b"]
    state = {}

    def scenario(env):
        shards = shard_gpt(config, tensor_parallel=8, pipeline_parallel=2)
        instances = []
        sessions = []
        for index, shard in enumerate(shards):
            node = cluster.amperes[index // 8]
            instance = ModelInstance.materialize(
                shard.name, shard.tensors, node.gpus[index % 8],
                model_seed=index)
            session = yield from cluster.portus_register(instance,
                                                         node=node)
            instances.append(instance)
            sessions.append(session)
        policy = PortusAsyncPolicy(env, sessions, frequency=2)
        job = TrainingJob(env, instances,
                          iteration_ns=config.iteration_ns(), hook=policy)
        yield from job.run(4)
        state.update(instances=instances, sessions=sessions, job=job)

    cluster.run(scenario)
    assert cluster.daemon.checkpoints_completed == 2 * 16
    for instance in state["instances"]:
        entry = cluster.daemon.model_map[instance.name]
        version, step = valid_checkpoint(entry.meta)
        assert step == 4
        descriptor = entry.meta.mindex.descriptors[0]
        stored = entry.meta.read_tensor(descriptor, version)
        expected = instance.state_dict()[descriptor.name] \
            .expected_content(4)
        assert stored.equals(expected)


def test_repack_with_live_jobs_skips_them():
    cluster = PaperCluster(seed=33)

    def scenario(env):
        live = yield from cluster.portus_register("alexnet", gpu=0)
        done = yield from cluster.portus_register("resnet50", gpu=1)
        for session in (live, done):
            session.model.update_step(1)
            yield from session.checkpoint(1)
            session.model.update_step(2)
            yield from session.checkpoint(2)

    cluster.run(scenario)
    report = repack(cluster.portus_pool, cluster.daemon.table,
                    skip=["alexnet"])
    assert report.models_compacted == ["resnet50"]
    # The live job keeps both versions for the next ping-pong.
    entry = cluster.daemon.model_map["alexnet"]
    assert all(region is not None for region in entry.meta.data_regions)


def test_multi_tenant_concurrent_training_all_verified():
    """Three tenants with different models/frequencies; every persisted
    checkpoint bit-matches its tenant's weights."""
    from repro.core.consistency import valid_checkpoint

    cluster = PaperCluster(seed=34)
    tenants = [("alexnet", 0, 1), ("resnet50", 1, 2), ("swin_b", 2, 3)]
    state = {}

    def scenario(env):
        procs = []
        sessions = {}
        for model_name, gpu, freq in tenants:
            session = yield from cluster.portus_register(model_name,
                                                         gpu=gpu)
            policy = PortusAsyncPolicy(env, [session], frequency=freq)
            job = TrainingJob(env, [session.model],
                              iteration_ns=msecs(100), hook=policy)
            sessions[model_name] = session
            procs.append(env.process(job.run(6)))
        yield AllOf(env, procs)
        state["sessions"] = sessions

    cluster.run(scenario)
    for model_name, _gpu, freq in tenants:
        entry = cluster.daemon.model_map[model_name]
        version, step = valid_checkpoint(entry.meta)
        assert step == (6 // freq) * freq
        session = state["sessions"][model_name]
        for tensor, descriptor in zip(session.model.tensors,
                                      entry.meta.mindex.descriptors):
            stored = entry.meta.read_tensor(descriptor, version)
            assert stored.equals(tensor.expected_content(step))
            break  # first tensor per model is enough here

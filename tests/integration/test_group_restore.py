"""Torn-group restore: the bug, the fix, and resharding bit-exactness.

The pre-group hazard, pinned as a regression: with per-shard restores,
a dump that completed on only *some* members surfaces as a mixed-step
model — half the shards at step 20, half at step 10 — silently.  The
group layer's pinned-step restore must return every member at the
newest *fully committed* group step instead.

The resharding acceptance contract (DESIGN.md §14): a group checkpoint
dumped at TP=8 x PP=2 restores into TP=4 x PP=1 and TP=2 x PP=2 with
every tensor bit-identical to the unsharded reference model.  The
shard bytes here are true slices of one reference model (not per-shard
pattern content), so byte equality actually proves the algebra.
"""

import pytest

from repro.core.group import register_group, restore_resharded
from repro.dnn.gpt import build_gpt, tiny_gpt
from repro.dnn.layout import extract, gpt_layout, materialize_member
from repro.dnn.tensor import ModelInstance
from repro.harness.cluster import PaperCluster
from repro.hw.content import ZeroContent

CONFIG = tiny_gpt()
SOURCE = gpt_layout(CONFIG, 8, 2)


def reference_contents(cluster, step):
    """Global tensor name -> bytes of the unsharded model at *step*."""
    full = build_gpt(CONFIG)
    reference = ModelInstance.materialize(
        "reference", full.tensors, cluster.volta.gpus[3], model_seed=77)
    reference.update_step(step)
    return {tensor.name: tensor.content() for tensor in reference.tensors}


def member_contents(layout, member, globals_):
    return {spec.name: extract(spec, globals_[spec.name])
            for spec in layout.partitions[member]}


def stage_group(cluster, client, globals_):
    """Materialize + register every SOURCE member holding true slices
    of the reference model; returns (instances, sessions, group)."""
    instances, sessions = {}, []

    def setup(env):
        for index, member in enumerate(SOURCE.members):
            instance = materialize_member(
                SOURCE, member, cluster.volta.gpus[index % 3],
                member_contents(SOURCE, member, globals_))
            session = yield from client.register(instance)
            instances[member] = instance
            sessions.append(session)
        group = yield from register_group(client, CONFIG.name, SOURCE,
                                          sessions)
        return group

    group = cluster.run(setup)
    return instances, sessions, group


def torn_cluster():
    """A group committed at step 10, then half its members checkpointed
    at step 20 with no group commit — the torn-dump state."""
    cluster = PaperCluster(seed=29, ampere_nodes=0)
    client = cluster.portus_client()
    globals10 = reference_contents(cluster, step=10)
    instances, sessions, group = stage_group(cluster, client, globals10)

    def dump10(env):
        yield from group.dump(10)

    cluster.run(dump10)

    globals20 = reference_contents(cluster, step=20)
    half = SOURCE.members[:len(SOURCE.members) // 2]

    def torn_dump20(env):
        for member in half:
            contents = member_contents(SOURCE, member, globals20)
            for tensor in instances[member].tensors:
                tensor.allocation.write(0, contents[tensor.name])
            yield from group.sessions[member].checkpoint(20)

    cluster.run(torn_dump20)
    return cluster, instances, group, globals10


def test_naive_per_member_restore_mixes_steps():
    """The pre-group behaviour, demonstrated: unpinned member restores
    reassemble a model that never existed (steps 10 and 20 mixed)."""
    cluster, _instances, group, _globals10 = torn_cluster()

    def naive_restore(env):
        steps = []
        for member in SOURCE.members:
            step = yield from group.sessions[member].restore()
            steps.append(step)
        return steps

    steps = cluster.run(naive_restore)
    assert set(steps) == {10, 20}, steps


def test_group_restore_returns_uniform_committed_step():
    cluster, instances, group, globals10 = torn_cluster()

    def group_restore(env):
        return (yield from group.restore())

    step = cluster.run(group_restore)
    assert step == 10
    assert {instance.step for instance in instances.values()} == {10}
    for member, instance in instances.items():
        want = member_contents(SOURCE, member, globals10)
        for tensor in instance.tensors:
            assert tensor.content().equals(want[tensor.name]), \
                f"{member}/{tensor.name}"


@pytest.mark.parametrize("tp,pp", [(4, 1), (2, 2), (1, 1)])
def test_resharded_restore_is_bit_identical_to_reference(tp, pp):
    cluster, _instances, _group, globals10 = torn_cluster()
    target = gpt_layout(CONFIG, tp, pp)
    targets = {
        member: materialize_member(
            target, member, cluster.volta.gpus[index % 3],
            {spec.name: ZeroContent(spec.local_size_bytes)
             for spec in target.partitions[member]})
        for index, member in enumerate(target.members)}

    def reshard_restore(env):
        client = cluster.portus_client()
        return (yield from restore_resharded(
            client, CONFIG.name, target, targets,
            stage_device=cluster.volta.gpus[3]))

    step = cluster.run(reshard_restore)
    assert step == 10
    for member, instance in targets.items():
        assert instance.step == 10
        want = member_contents(target, member, globals10)
        for tensor in instance.tensors:
            assert tensor.content().equals(want[tensor.name]), \
                f"{member}/{tensor.name}"

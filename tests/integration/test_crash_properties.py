"""Property-based crash-consistency tests for the whole Portus stack.

The double-mapping invariant, stated as a property: **for any crash point
during any sequence of checkpoints, recovery restores some previously
committed step, bit-exactly** — never torn data, never an uncommitted
step, and never "nothing" once the first checkpoint has completed.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import protocol
from repro.dnn.tensor import ModelInstance, TensorSpec
from repro.errors import NoValidCheckpoint
from repro.harness.cluster import PaperCluster
from repro.units import msecs

SPECS = [TensorSpec("block.weight", (512, 256)),
         TensorSpec("block.bias", (512,)),
         TensorSpec("head.weight", (16, 512))]


def run_crash_scenario(checkpoints_before: int, crash_after_ns: int,
                       seed: int):
    """Complete N checkpoints, start one more, crash `crash_after_ns`
    into it, recover, restore.  Returns (restored step, mismatches)."""
    cluster = PaperCluster(seed=seed)
    state = {}

    def phase1(env):
        instance = ModelInstance.materialize("model", SPECS,
                                             cluster.volta.gpus[0],
                                             model_seed=seed)
        session = yield from cluster.portus_client().register(instance)
        state["model"] = instance
        for step in range(1, checkpoints_before + 1):
            instance.update_step(step)
            yield from session.checkpoint(step)
        # Fire the next checkpoint and crash mid-flight.
        instance.update_step(checkpoints_before + 1)
        message, size = protocol.do_checkpoint("model",
                                               checkpoints_before + 1)
        yield from session.conn.send(message, wire_size=size)
        yield env.timeout(crash_after_ns)

    cluster.run(phase1)
    cluster.crash_server()
    cluster.restart_daemon()

    def phase2(env):
        client = cluster.portus_client()
        session = yield from client.register(state["model"])
        step = yield from session.restore()
        contents = {t.name: t.content() for t in state["model"].tensors}
        return step, state["model"].verify_against(contents, step=step)

    return cluster.run(phase2)


@given(checkpoints_before=st.integers(1, 3),
       crash_after_us=st.integers(1, 2000),
       seed=st.integers(0, 1000))
@settings(max_examples=20, deadline=None)
def test_any_crash_point_restores_a_committed_step(checkpoints_before,
                                                   crash_after_us, seed):
    step, mismatches = run_crash_scenario(checkpoints_before,
                                          crash_after_us * 1000, seed)
    # The restored step is a step that was actually committed...
    assert 1 <= step <= checkpoints_before + 1
    # ...and its data is bit-exact (in particular: never torn).
    assert mismatches == []


@given(seed=st.integers(0, 1000))
@settings(max_examples=10, deadline=None)
def test_crash_during_first_checkpoint_leaves_nothing(seed):
    """Before any commit there is nothing to restore — and recovery says
    so explicitly rather than serving garbage."""
    cluster = PaperCluster(seed=seed)
    state = {}

    def phase1(env):
        instance = ModelInstance.materialize("model", SPECS,
                                             cluster.volta.gpus[0],
                                             model_seed=seed)
        session = yield from cluster.portus_client().register(instance)
        state["model"] = instance
        instance.update_step(1)
        message, size = protocol.do_checkpoint("model", 1)
        yield from session.conn.send(message, wire_size=size)
        yield env.timeout(msecs(0.05))

    cluster.run(phase1)
    cluster.crash_server()
    cluster.restart_daemon()

    def phase2(env):
        client = cluster.portus_client()
        session = yield from client.register(state["model"])
        with pytest.raises(NoValidCheckpoint):
            yield from session.restore()
        return True

    assert cluster.run(phase2)

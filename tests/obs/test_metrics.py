"""Tests for counters, gauges, HDR histograms, and the registry."""

import json

import pytest

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry


def test_counter_monotonic():
    counter = Counter("c")
    counter.inc()
    counter.inc(9)
    assert counter.value == 10
    with pytest.raises(ValueError):
        counter.inc(-1)
    assert counter.snapshot() == {"type": "counter", "value": 10}


def test_gauge_tracks_high_water_mark():
    gauge = Gauge("g")
    gauge.set(7)
    gauge.set(3)
    assert gauge.value == 3
    assert gauge.max == 7
    assert gauge.snapshot() == {"type": "gauge", "value": 3, "max": 7}


def test_histogram_small_values_are_exact():
    hist = Histogram("h", sub_bits=5)
    for value in range(32):  # below 2**sub_bits every value is its own bucket
        assert hist._index(value) == value
        assert hist._upper_bound(hist._index(value)) == value


def test_histogram_bucket_relative_error_is_bounded():
    hist = Histogram("h", sub_bits=5)
    for value in (33, 100, 1023, 4096, 10**6, 10**9, 37 * 10**9):
        upper = hist._upper_bound(hist._index(value))
        assert upper >= value
        # HDR guarantee: the bucket upper bound overshoots by < 1/2**sub_bits.
        assert (upper - value) / value < 1 / 32 + 1e-9


def test_histogram_percentiles_and_stats():
    hist = Histogram("lat")
    for value in range(1, 101):  # 1..100
        hist.record(value)
    assert hist.count == 100
    assert hist.min == 1
    assert hist.max == 100
    assert hist.mean == pytest.approx(50.5)
    assert hist.percentile(50) in range(48, 54)
    p99 = hist.percentile(99)
    assert 97 <= p99 <= 100
    # Percentiles never exceed the observed max even at bucket edges.
    assert hist.percentile(100) == 100
    with pytest.raises(ValueError):
        hist.percentile(0)
    with pytest.raises(ValueError):
        hist.record(-5)


def test_histogram_empty_snapshot():
    hist = Histogram("empty")
    snap = hist.snapshot()
    assert snap["count"] == 0
    assert snap["p50"] == 0
    assert snap["mean"] == 0.0


def test_histogram_snapshot_keys():
    hist = Histogram("lat")
    hist.record(10)
    snap = hist.snapshot()
    assert {"type", "count", "sum", "min", "max", "mean",
            "p50", "p90", "p99", "p99_9"} == set(snap)


def test_registry_get_or_create_and_kind_mismatch():
    registry = MetricsRegistry()
    counter = registry.counter("x")
    assert registry.counter("x") is counter
    with pytest.raises(TypeError):
        registry.gauge("x")
    assert registry.get("x") is counter
    assert registry.get("missing") is None
    registry.histogram("h").record(3)
    registry.gauge("g").set(2)
    assert registry.names() == ["g", "h", "x"]


def test_registry_snapshot_is_json_and_sorted():
    registry = MetricsRegistry()
    registry.counter("b").inc(2)
    registry.counter("a").inc(1)
    snapshot = registry.snapshot()
    assert list(snapshot) == ["a", "b"]
    parsed = json.loads(registry.to_json())
    assert parsed == {"a": {"type": "counter", "value": 1},
                      "b": {"type": "counter", "value": 2}}


def test_registry_merge_semantics():
    ours = MetricsRegistry()
    theirs = MetricsRegistry()
    ours.counter("c").inc(1)
    theirs.counter("c").inc(2)
    ours.gauge("g").set(5)
    theirs.gauge("g").set(3)
    theirs.histogram("h").record(100)
    theirs.histogram("h").record(200)
    ours.merge(theirs)
    assert ours.counter("c").value == 3
    assert ours.gauge("g").max == 5  # our high-water mark survives
    assert ours.histogram("h").count == 2
    # Histogram merge re-records bucket uppers: totals stay within the
    # HDR relative-error band of the true sum.
    assert 300 <= ours.histogram("h").total <= 300 * (1 + 1 / 32)


def test_registry_write(tmp_path):
    registry = MetricsRegistry()
    registry.counter("written").inc(4)
    path = tmp_path / "metrics.json"
    registry.write(str(path))
    assert json.loads(path.read_text())["written"]["value"] == 4

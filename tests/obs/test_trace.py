"""Tests for the span tracer and its Chrome trace_event export."""

import json

import pytest

from repro.obs import NULL_SPAN, Observability, Tracer
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment()


def test_disabled_tracer_hands_out_the_null_span(env):
    tracer = Tracer(enabled=False)
    span = tracer.span(env, "anything", track="daemon")
    assert span is NULL_SPAN
    span.finish(extra=1)  # all no-ops
    span.annotate(more=2)
    with span:
        pass
    assert tracer.spans == []
    assert tracer.new_trace() is None


def test_span_records_simulated_interval(env):
    tracer = Tracer(enabled=True)
    span = tracer.span(env, "work", track="daemon")
    env.run_process(env.process(_wait(env, 500)))
    span.finish(bytes=42)
    assert span.start_ns == 0
    assert span.end_ns == 500
    assert span.duration_ns == 500
    assert span.args == {"bytes": 42}
    # finish is idempotent: a second finish keeps the first end time.
    env.run_process(env.process(_wait(env, 100)))
    span.finish()
    assert span.end_ns == 500


def _wait(env, ns):
    yield env.timeout(ns)


def test_trace_and_span_ids_are_deterministic_counters(env):
    tracer = Tracer(enabled=True)
    assert tracer.new_trace() == 1
    assert tracer.new_trace() == 2
    a = tracer.span(env, "a", trace_id=1)
    b = tracer.span(env, "b", trace_id=1, parent=a)
    assert (a.span_id, b.span_id) == (1, 2)
    assert b.parent_id == a.span_id


def test_parent_child_and_queries(env):
    tracer = Tracer(enabled=True)
    parent = tracer.span(env, "request", track="client")
    tracer.span(env, "pull", parent=parent, track="engine/qp0")
    tracer.span(env, "pull", parent=parent, track="engine/qp1")
    assert len(tracer.named("pull")) == 2
    assert tracer.one("request") is parent
    with pytest.raises(ValueError):
        tracer.one("pull")
    with pytest.raises(ValueError):
        tracer.one("missing")


def test_chrome_trace_export_shape(env):
    tracer = Tracer(enabled=True)
    trace_id = tracer.new_trace()
    with tracer.span(env, "ckpt", cat="rpc", trace_id=trace_id,
                     track="daemon", model="bert"):
        env.run_process(env.process(_wait(env, 1500)))
    events = tracer.chrome_trace()
    meta = [e for e in events if e["ph"] == "M"]
    spans = [e for e in events if e["ph"] == "X"]
    assert {m["name"] for m in meta} == {"process_name", "thread_name"}
    (span,) = spans
    assert span["name"] == "ckpt"
    assert span["cat"] == "rpc"
    assert span["ts"] == 0.0
    assert span["dur"] == 1.5  # 1500 ns in microseconds
    assert span["args"]["model"] == "bert"
    assert span["args"]["trace_id"] == trace_id


def test_chrome_trace_tracks_map_to_pid_tid(env):
    tracer = Tracer(enabled=True)
    tracer.span(env, "a", track="daemon").finish()
    tracer.span(env, "b", track="engine/qp0").finish()
    tracer.span(env, "c", track="engine/qp1").finish()
    events = tracer.chrome_trace()
    spans = {e["name"]: e for e in events if e["ph"] == "X"}
    assert spans["b"]["pid"] == spans["c"]["pid"]  # same process
    assert spans["b"]["tid"] != spans["c"]["tid"]  # different threads
    assert spans["a"]["pid"] != spans["b"]["pid"]


def test_chrome_trace_json_round_trips_and_is_deterministic(env, tmp_path):
    def build():
        local_env = Environment()
        tracer = Tracer(enabled=True)
        tid = tracer.new_trace()
        span = tracer.span(local_env, "op", trace_id=tid, track="x/y")
        span.finish(n=3)
        return tracer.chrome_trace_json(indent=2)

    first, second = build(), build()
    assert first == second
    parsed = json.loads(first)
    assert parsed["displayTimeUnit"] == "ns"
    assert parsed["traceEvents"]

    tracer = Tracer(enabled=True)
    tracer.span(env, "op", track="x").finish()
    path = tmp_path / "trace.json"
    tracer.write(str(path))
    assert json.loads(path.read_text())["traceEvents"]


def test_unfinished_spans_are_flagged_in_export(env):
    tracer = Tracer(enabled=True)
    tracer.span(env, "hung", track="daemon")  # never finished
    (event,) = [e for e in tracer.chrome_trace() if e["ph"] == "X"]
    assert event["args"]["unfinished"] is True
    assert event["dur"] == 0.0


def test_observability_bundle_snapshot(env):
    obs = Observability(tracing=True)
    assert obs.tracing
    obs.tracer.span(env, "x", track="t").finish()
    obs.metrics.counter("c").inc(5)
    snap = obs.snapshot()
    assert snap["spans"] == 1
    assert snap["tracing"] is True
    assert snap["metrics"]["c"]["value"] == 5

"""The observability layer's zero-cost contract.

Tracing and metrics only *read* the simulated clock — they never yield,
schedule, or change a wire size — so a traced run must be bit-identical
in simulated time to the same run untraced.
"""

from repro.core import protocol
from repro.core.retry import RetryPolicy
from repro.faults import FaultInjector
from repro.harness.cluster import PaperCluster
from repro.units import msecs, secs, usecs


def _run_workload(tracing):
    cluster = PaperCluster(seed=1234, tracing=tracing)
    timeline = []

    def scenario(env):
        session_a = yield from cluster.portus_register("alexnet", gpu=0)
        session_b = yield from cluster.portus_register("resnet50", gpu=1)
        for step in (1, 2, 3):
            session_a.model.update_step(step)
            yield from session_a.checkpoint(step)
            timeline.append(env.now)
        session_b.model.update_step(1)
        yield from session_b.checkpoint(1)
        timeline.append(env.now)
        yield from session_a.restore()
        yield from session_b.restore()
        timeline.append(env.now)

    cluster.run(scenario)
    return cluster, timeline


def test_traced_run_is_bit_identical_to_untraced():
    plain, plain_timeline = _run_workload(tracing=False)
    traced, traced_timeline = _run_workload(tracing=True)
    assert plain_timeline == traced_timeline
    assert plain.daemon.ledger.asdict() == traced.daemon.ledger.asdict()
    # The traced run actually recorded something — the contract is
    # "free", not "off".
    assert traced.obs.tracer.spans
    assert not plain.obs.tracer.spans


def test_traced_faulted_run_is_bit_identical():
    """Retries, faults, and limiter queueing all carry instrumentation;
    none of it may perturb the schedule."""

    def run(tracing):
        policy = RetryPolicy(max_attempts=64,
                             initial_backoff_ns=usecs(200),
                             max_backoff_ns=msecs(20),
                             deadline_ns=secs(10),
                             reply_timeout_ns=secs(1))
        cluster = PaperCluster(seed=4321, ampere_nodes=0,
                               client_retry=policy, tracing=tracing)
        injector = FaultInjector(cluster.env, cluster)
        holder = {}

        def scenario(env):
            session = yield from cluster.portus_register("alexnet")
            session.model.update_step(1)
            yield from session.checkpoint(1)
            injector.set_wr_fault_rate("server", rate=0.02)
            session.model.update_step(2)
            yield from session.checkpoint(2)
            holder["end"] = env.now
            holder["retries"] = session.retries

        cluster.run(scenario)
        return holder

    plain = run(False)
    traced = run(True)
    assert plain == traced


def test_stamp_trace_does_not_change_wire_sizes():
    for make in (lambda: protocol.do_checkpoint("m", 1),
                 lambda: protocol.do_checkpoint("m", 1, dirty=["a", "b"]),
                 lambda: protocol.do_restore("m"),
                 lambda: protocol.heartbeat("m"),
                 lambda: protocol.list_models()):
        _message, size_plain = make()
        stamped, size_stamped = make()
        protocol.stamp_trace(stamped, 17)
        assert size_stamped == size_plain
        assert protocol.trace_of(stamped) == 17


def test_stamp_trace_none_is_a_no_op():
    message, _size = protocol.do_restore("m")
    protocol.stamp_trace(message, None)
    assert protocol.TRACE_KEY not in message
    assert protocol.trace_of(message) is None

"""Unit tests for the fault plan and the injection primitives."""

import random

import pytest

from repro.core.consistency import valid_checkpoint
from repro.dnn.tensor import ModelInstance, TensorSpec
from repro.errors import (ConnectionClosed, LinkDown, NetworkError,
                          QpStateError, ReproError, WorkRequestError)
from repro.faults import FaultEvent, FaultInjector, FaultKind, FaultPlan
from repro.harness.cluster import PaperCluster
from repro.units import msecs, usecs

SPECS = [TensorSpec("block.weight", (512, 256)),
         TensorSpec("block.bias", (512,)),
         TensorSpec("head.weight", (16, 512))]


@pytest.fixture
def cluster():
    return PaperCluster(seed=7, ampere_nodes=0)


def register_model(cluster, name="model", seed=7):
    def scenario(env):
        instance = ModelInstance.materialize(name, SPECS,
                                             cluster.volta.gpus[0],
                                             model_seed=seed)
        session = yield from cluster.portus_client().register(instance)
        return session

    return cluster.run(scenario)


# -- plan ------------------------------------------------------------------------


def test_fault_event_validation():
    with pytest.raises(ValueError):
        FaultEvent(-1, FaultKind.LINK_DOWN, "volta")
    with pytest.raises(ValueError):
        FaultEvent(0, "meteor_strike", "volta")


def test_plan_is_ordered_and_describable():
    plan = (FaultPlan()
            .at(usecs(500), FaultKind.QP_ERROR, "server")
            .at(usecs(100), FaultKind.LINK_DOWN, "volta")
            .at(usecs(300), FaultKind.WR_FAULT_RATE, "server", rate=0.1))
    times = [event.at_ns for event in plan]
    assert times == sorted(times)
    lines = plan.describe().splitlines()
    assert len(lines) == 3
    assert "link_down @volta" in lines[0]
    assert "rate=0.1" in lines[1]


def test_random_plans_are_deterministic_and_well_formed():
    plans = [FaultPlan.random(random.Random(42), horizon_ns=msecs(10),
                              events=6) for _ in range(2)]
    assert plans[0].describe() == plans[1].describe()
    assert plans[0].describe() != FaultPlan.random(
        random.Random(43), horizon_ns=msecs(10), events=6).describe()
    # Every destructive fault is paired with its recovery action.
    kinds = [event.kind for event in plans[0]]
    assert kinds.count(FaultKind.LINK_DOWN) == kinds.count(FaultKind.LINK_UP)
    assert (kinds.count(FaultKind.DAEMON_CRASH)
            + kinds.count(FaultKind.POWER_LOSS)
            == kinds.count(FaultKind.DAEMON_RESTART))
    # Non-zero WR fault rates are always cleared afterwards.
    rate_events = [e for e in plans[0] if e.kind == FaultKind.WR_FAULT_RATE]
    assert len(rate_events) % 2 == 0


# -- link faults ------------------------------------------------------------------


def test_link_down_breaks_traffic_and_up_restores_it(cluster):
    session = register_model(cluster)
    injector = FaultInjector(cluster.env, cluster)
    injector.set_link("volta", up=False)

    def broken(env):
        session.model.update_step(1)
        with pytest.raises((LinkDown, NetworkError)):
            yield from session.checkpoint(1)

    cluster.run(broken)
    injector.set_link("volta", up=True)

    def healed(env):
        # The old connection may have partially progressed; use a fresh
        # session to show the fabric itself is healthy again.
        reply = yield from session.checkpoint(1)
        return reply

    assert cluster.run(healed)["step"] == 1


# -- WR faults --------------------------------------------------------------------


def test_wr_fault_rate_fails_checkpoint_and_aborts_cleanly(cluster):
    session = register_model(cluster)

    def good(env):
        session.model.update_step(1)
        yield from session.checkpoint(1)

    cluster.run(good)
    injector = FaultInjector(cluster.env, cluster)
    injector.set_wr_fault_rate("server", rate=1.0)

    def faulty(env):
        session.model.update_step(2)
        with pytest.raises(WorkRequestError):
            yield from session.checkpoint(2)

    cluster.run(faulty)
    entry = cluster.daemon.model_map["model"]
    assert not entry.busy
    # The failed pull aborted: recovery still exposes step 1, bit-exact.
    version, step = valid_checkpoint(entry.meta)
    assert step == 1
    injector.set_wr_fault_rate("server", rate=0.0)
    assert cluster.server.nic.fault_hook is None

    def retry(env):
        return (yield from session.checkpoint(2))

    assert cluster.run(retry)["step"] == 2


def test_wr_hang_holds_the_pull_until_flush(cluster):
    session = register_model(cluster)
    injector = FaultInjector(cluster.env, cluster)
    injector.set_wr_fault_rate("server", rate=0.0, hang_rate=1.0)

    def hang_then_flush(env):
        session.model.update_step(1)
        worker = env.process(session.checkpoint(1), name="hung-ckpt")
        yield env.timeout(msecs(5))
        assert not worker.triggered  # wedged: no completion ever arrives
        entry = cluster.daemon.model_map["model"]
        assert entry.busy
        entry.qp.flush()  # the only thing that retires a lost WR
        try:
            yield worker
        except ReproError:
            pass
        assert worker.triggered
        assert not entry.busy

    cluster.run(hang_then_flush)


# -- QP / TCP faults --------------------------------------------------------------


def test_qp_error_poisons_sessions(cluster):
    session = register_model(cluster)
    injector = FaultInjector(cluster.env, cluster)
    assert injector.qp_error("server") >= 1

    def scenario(env):
        session.model.update_step(1)
        with pytest.raises(QpStateError):
            yield from session.checkpoint(1)

    cluster.run(scenario)


def test_tcp_drop_severs_control_plane(cluster):
    session = register_model(cluster)
    injector = FaultInjector(cluster.env, cluster)
    assert injector.drop_tcp("server") == 1
    assert session.conn.closed

    def scenario(env):
        with pytest.raises(ConnectionClosed):
            yield from session.checkpoint(1)

    cluster.run(scenario)


def test_kill_client_releases_client_resources(cluster):
    session = register_model(cluster)
    mrs_before = cluster.volta.nic.registered_mrs
    injector = FaultInjector(cluster.env, cluster)
    assert injector.kill_client("volta") == 1
    assert cluster.volta.nic.registered_mrs == mrs_before - len(SPECS)
    assert session.conn.closed
    assert session.qp.error is not None
    # A successor client can re-attach to the persisted index.
    new_session = register_model(cluster, seed=7)
    assert new_session is not session

    def scenario(env):
        new_session.model.update_step(3)
        return (yield from new_session.checkpoint(3))

    assert cluster.run(scenario)["step"] == 3


# -- plan execution ---------------------------------------------------------------


def test_installed_plan_applies_on_schedule(cluster):
    register_model(cluster)
    injector = FaultInjector(cluster.env, cluster)
    base = cluster.env.now  # plan times are absolute simulation times
    plan = (FaultPlan()
            .at(base + usecs(100), FaultKind.LINK_DOWN, "volta")
            .at(base + usecs(400), FaultKind.LINK_UP, "volta"))
    injector.install(plan)

    def scenario(env):
        yield env.timeout(usecs(200))
        assert not cluster.volta.nic.port.up
        yield env.timeout(usecs(400))
        assert cluster.volta.nic.port.up

    cluster.run(scenario)
    assert [entry[0] for entry in injector.log] == [base + usecs(100),
                                                    base + usecs(400)]
    assert len(injector.log_lines()) == 2

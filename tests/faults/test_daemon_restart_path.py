"""End-to-end coverage of the daemon restart path: a successor daemon
opens the pool, recovers the ModelTable into a fresh ModelMap, validates
the client's re-attach against the persisted index, and serves a
bit-exact restore — with no duplicate PMem allocation."""

import random

import pytest

from repro.core.consistency import valid_checkpoint
from repro.core.index import FLAG_ACTIVE, FLAG_DONE
from repro.core.retry import RetryPolicy
from repro.dnn.tensor import ModelInstance, TensorSpec
from repro.errors import PortusError
from repro.harness.cluster import PaperCluster
from repro.units import msecs, usecs

SPECS = [TensorSpec("block.weight", (512, 256)),
         TensorSpec("block.bias", (512,)),
         TensorSpec("head.weight", (16, 512))]


def seeded_cluster(retry=False):
    policy = RetryPolicy(rng=random.Random(11)) if retry else None
    return PaperCluster(seed=11, ampere_nodes=0, client_retry=policy)


def test_restart_recovers_index_and_serves_bit_exact_restore():
    cluster = seeded_cluster()
    state = {}

    def before(env):
        instance = ModelInstance.materialize("model", SPECS,
                                             cluster.volta.gpus[0],
                                             model_seed=11)
        session = yield from cluster.portus_client().register(instance)
        state["model"] = instance
        for step in (1, 2):  # both version slots end up DONE
            instance.update_step(step)
            yield from session.checkpoint(step)

    cluster.run(before)
    used_before = cluster.server.pmem_devdax.used_bytes
    old_daemon = cluster.daemon
    cluster.restart_daemon()
    assert cluster.daemon is not old_daemon
    assert old_daemon.stopped
    assert cluster.daemon.port == old_daemon.port  # same endpoint
    # _open_or_create_table took the recovery path: the ModelMap was
    # rebuilt from the persistent table, not re-created.
    assert cluster.daemon.models() == ["model"]
    entry = cluster.daemon.model_map["model"]
    assert not entry.attached  # DRAM session state did not survive
    flags = entry.meta.read_flags()
    assert sorted(flags.states) == [FLAG_DONE, FLAG_DONE]
    assert sorted(flags.steps) == [1, 2]

    def after(env):
        # Re-attach (validated against the persisted index), then wind
        # the weights back and restore.
        session = yield from cluster.portus_client().register(state["model"])
        state["model"].update_step(99)
        step = yield from session.restore()
        return step

    assert cluster.run(after) == 2
    for tensor in state["model"].tensors:
        assert tensor.content().equals(tensor.expected_content(2))
    # Re-attach reused the persisted regions: no new PMem allocation.
    assert cluster.server.pmem_devdax.used_bytes == used_before


def test_restart_with_interrupted_pull_leaves_active_slot_untrusted():
    cluster = seeded_cluster(retry=True)

    def before(env):
        instance = ModelInstance.materialize("model", SPECS,
                                             cluster.volta.gpus[0],
                                             model_seed=11)
        session = yield from cluster.portus_client().register(instance)
        instance.update_step(1)
        yield from session.checkpoint(1)
        instance.update_step(2)
        ckpt = env.process(session.checkpoint(2), name="interrupted")
        yield env.timeout(usecs(40))
        assert not ckpt.triggered
        cluster.kill_daemon()  # dies mid-pull; slot 2's target is ACTIVE
        yield env.timeout(usecs(200))
        cluster.restart_daemon()
        # The retrying client finishes step 2 against the successor.
        reply = yield ckpt
        return instance, reply

    instance, reply = cluster.run(before)
    assert reply["step"] == 2
    entry = cluster.daemon.model_map["model"]
    version, step = valid_checkpoint(entry.meta)
    assert step == 2
    for tensor, descriptor in zip(instance.tensors,
                                  entry.meta.mindex.descriptors):
        assert entry.meta.read_tensor(descriptor, version).equals(
            tensor.expected_content(2))


def test_restart_rejects_mismatched_reattach():
    cluster = seeded_cluster()

    def before(env):
        instance = ModelInstance.materialize("model", SPECS,
                                             cluster.volta.gpus[0],
                                             model_seed=11)
        session = yield from cluster.portus_client().register(instance)
        instance.update_step(1)
        yield from session.checkpoint(1)

    cluster.run(before)
    cluster.restart_daemon()

    def after(env):
        impostor = ModelInstance.materialize(
            "model", [TensorSpec("other.weight", (64, 64))],
            cluster.volta.gpus[1], model_seed=12)
        with pytest.raises(PortusError):
            yield from cluster.portus_client().register(impostor)
        return True

    assert cluster.run(after)


def test_double_restart_is_idempotent():
    cluster = seeded_cluster()

    def before(env):
        instance = ModelInstance.materialize("model", SPECS,
                                             cluster.volta.gpus[0],
                                             model_seed=11)
        session = yield from cluster.portus_client().register(instance)
        instance.update_step(1)
        yield from session.checkpoint(1)
        return instance

    instance = cluster.run(before)
    cluster.restart_daemon()
    cluster.restart_daemon()  # back-to-back restarts must not corrupt
    assert cluster.daemon.models() == ["model"]

    def after(env):
        session = yield from cluster.portus_client().register(instance)
        return (yield from session.restore())

    assert cluster.run(after) == 1

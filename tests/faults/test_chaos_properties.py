"""Randomized chaos sweeps over the full Portus datapath.

Each schedule drives a training loop through a seeded, well-formed
:class:`FaultPlan` (link flaps, WR completion faults and hangs, QP
errors, TCP drops, daemon crashes, power loss), then power-cycles the
server and checks the paper's crash-consistency contract end to end:

  * recovery exposes at most one restorable version — the newest DONE
    slot — and its bytes are bit-exact for some attempted step;
  * every *acknowledged* checkpoint is durable: the restored step is
    never older than the newest acked step;
  * a half-pulled (ACTIVE) slot is never served;
  * ``NoValidCheckpoint`` is only acceptable when nothing was ever
    acknowledged.

Knobs (environment variables):

  PORTUS_CHAOS_EXAMPLES  number of schedules to run (default 200)
  PORTUS_CHAOS_SEED      base seed (default 0)
  CHAOS_TRACE            append one deterministic line per schedule to
                         this file (used by scripts/check_determinism.sh)
"""

import os
import random

import pytest

from repro.core.consistency import valid_checkpoint
from repro.core.index import FLAG_DONE
from repro.core.retry import RetryPolicy
from repro.dnn.tensor import ModelInstance, TensorSpec
from repro.errors import NoValidCheckpoint, ReproError
from repro.faults import FaultInjector, FaultPlan
from repro.harness.cluster import PaperCluster
from repro.units import kib, msecs, usecs

pytestmark = pytest.mark.chaos

EXAMPLES = int(os.environ.get("PORTUS_CHAOS_EXAMPLES", "200"))
BASE_SEED = int(os.environ.get("PORTUS_CHAOS_SEED", "0"))
TRACE_PATH = os.environ.get("CHAOS_TRACE")

SPECS = [TensorSpec("block.weight", (512, 256)),
         TensorSpec("block.bias", (512,)),
         TensorSpec("head.weight", (16, 512))]
STEPS = 6
HORIZON_NS = msecs(4)
#: The multi-QP sweeps: 64 KiB segmentation splits block.weight
#: (512 KiB) into 8 WRs striped over 4 lanes, with the daemon-wide
#: PMem ingest limiter engaged — every engine mechanism under fault.
STRIPED_QPS = 4
STRIPED_ENGINE = dict(chunk_bytes=kib(64), max_pmem_streams=4)


def _trace(line):
    if TRACE_PATH:
        with open(TRACE_PATH, "a") as fh:
            fh.write(line + "\n")


def run_chaos_schedule(seed, events=5, num_qps=1, engine=None):
    """One full chaos episode; returns (acked, restored_step)."""
    policy = RetryPolicy(rng=random.Random(seed ^ 0x5EED),
                         max_attempts=64,
                         deadline_ns=msecs(500),
                         reply_timeout_ns=msecs(10))
    daemon_kwargs = dict(request_timeout_ns=msecs(20),
                         lease_ns=msecs(5),
                         reaper_interval_ns=msecs(1))
    if engine is not None:
        daemon_kwargs["engine"] = dict(engine)
    cluster = PaperCluster(
        seed=seed, ampere_nodes=0,
        daemon_kwargs=daemon_kwargs,
        client_retry=policy, client_num_qps=num_qps)

    def setup(env):
        instance = ModelInstance.materialize("model", SPECS,
                                             cluster.volta.gpus[0],
                                             model_seed=seed)
        session = yield from cluster.portus_client().register(instance)
        return instance, session

    instance, session = cluster.run(setup)
    plan = FaultPlan.random(random.Random(seed), horizon_ns=HORIZON_NS,
                            events=events)
    base = cluster.env.now
    injector = FaultInjector(cluster.env, cluster)
    injector.install(plan.shifted(base))
    acked, attempted = [], []

    def traffic(env):
        for step in range(1, STEPS + 1):
            instance.update_step(step)
            attempted.append(step)
            try:
                yield from session.checkpoint(step)
                acked.append(step)
            except ReproError:
                pass
            yield env.timeout(usecs(300))
        # Let every recovery event in the plan (LINK_UP, DAEMON_RESTART,
        # fault-rate clears) fire before the final power cycle.
        remaining = base + plan.horizon_ns() + usecs(50) - env.now
        if remaining > 0:
            yield env.timeout(remaining)

    cluster.run(traffic)
    # The decisive crash: whatever the schedule left behind, power-cycle
    # the server and recover from PMem alone.
    cluster.crash_server()

    def downtime(env):
        yield env.timeout(usecs(200))

    cluster.run(downtime)
    cluster.restart_daemon()

    def recover(env):
        instance.update_step(0)  # scramble the weights: restore must win
        fresh = yield from cluster.portus_client().register(instance)
        try:
            step = yield from fresh.restore()
        except NoValidCheckpoint:
            return None
        return step

    restored = cluster.run(recover)

    # -- the contract ---------------------------------------------------------------
    context = (f"seed={seed} plan=[{'; '.join(plan.describe().splitlines())}]"
               f" acked={acked}")
    if acked:
        assert restored is not None, f"acked steps lost entirely: {context}"
        assert restored >= max(acked), \
            f"restored step {restored} older than acked: {context}"
    if restored is not None:
        assert restored in attempted, \
            f"restored step {restored} was never written: {context}"
        entry = cluster.daemon.model_map["model"]
        version, step = valid_checkpoint(entry.meta)
        assert step == restored
        flags = entry.meta.read_flags()
        assert flags.states[version] == FLAG_DONE  # never ACTIVE/torn
        mismatches = [
            tensor.name for tensor in instance.tensors
            if not tensor.content().equals(tensor.expected_content(restored))
        ]
        assert mismatches == [], f"torn restore {mismatches}: {context}"
    _trace(f"seed={seed} acked={acked} restored={restored} "
           f"plan=[{'; '.join(plan.describe().splitlines())}]")
    return acked, restored


def test_chaos_schedules_preserve_crash_consistency():
    outcomes = {"restored": 0, "acked_some": 0, "empty": 0}
    for index in range(EXAMPLES):
        acked, restored = run_chaos_schedule(BASE_SEED + index)
        if restored is not None:
            outcomes["restored"] += 1
        if acked:
            outcomes["acked_some"] += 1
        else:
            outcomes["empty"] += 1
    # The sweep must actually exercise recovery, not degenerate into
    # all-failures or all-clean runs.
    assert outcomes["restored"] > 0
    assert outcomes["acked_some"] > 0


def test_chaos_schedule_is_deterministic():
    first = run_chaos_schedule(BASE_SEED + 1_000_003)
    second = run_chaos_schedule(BASE_SEED + 1_000_003)
    assert first == second


def test_chaos_multi_qp_striped_engine_preserves_crash_consistency():
    """Satellite: randomized fault schedules over multi-QP, segmented,
    ingest-limited checkpoints still recover to exactly one newest DONE
    version, bit-exact (the full contract in run_chaos_schedule)."""
    outcomes = {"restored": 0, "acked_some": 0}
    for index in range(max(EXAMPLES // 4, 10)):
        acked, restored = run_chaos_schedule(
            BASE_SEED + 7_000_000 + index,
            num_qps=STRIPED_QPS, engine=STRIPED_ENGINE)
        if restored is not None:
            outcomes["restored"] += 1
        if acked:
            outcomes["acked_some"] += 1
    assert outcomes["restored"] > 0
    assert outcomes["acked_some"] > 0


def test_chaos_multi_qp_schedule_is_deterministic():
    first = run_chaos_schedule(BASE_SEED + 2_000_003,
                               num_qps=STRIPED_QPS, engine=STRIPED_ENGINE)
    second = run_chaos_schedule(BASE_SEED + 2_000_003,
                                num_qps=STRIPED_QPS, engine=STRIPED_ENGINE)
    assert first == second


try:
    from hypothesis import HealthCheck, given, settings
    from hypothesis import strategies as st
    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis ships in the image
    HAVE_HYPOTHESIS = False


if HAVE_HYPOTHESIS:

    @settings(max_examples=15, deadline=None, derandomize=True,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1),
           events=st.integers(min_value=1, max_value=8))
    def test_chaos_property_hypothesis(seed, events):
        run_chaos_schedule(seed, events=events)

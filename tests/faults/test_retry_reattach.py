"""Client retry + re-attach, daemon request timeouts, lease reaping,
and graceful degradation to the local DRAM path."""

import random

import pytest

from repro.core.consistency import valid_checkpoint
from repro.core import protocol
from repro.core.failover import FailoverCheckpointer
from repro.core.retry import RetryPolicy
from repro.dnn.tensor import ModelInstance, TensorSpec
from repro.errors import ConnectionClosed, ReproError, RequestTimeout
from repro.faults import FaultInjector
from repro.harness.cluster import PaperCluster
from repro.sim import AllOf
from repro.units import msecs, usecs

SPECS = [TensorSpec("block.weight", (512, 256)),
         TensorSpec("block.bias", (512,)),
         TensorSpec("head.weight", (16, 512))]


def make_cluster(seed=3, retry=True, **daemon_kwargs):
    policy = None
    if retry:
        policy = RetryPolicy(rng=random.Random(seed),
                             max_attempts=32,
                             deadline_ns=msecs(500),
                             reply_timeout_ns=msecs(50))
    return PaperCluster(seed=seed, ampere_nodes=0,
                        daemon_kwargs=daemon_kwargs or None,
                        client_retry=policy)


def register_model(cluster, name="model", seed=3):
    def scenario(env):
        instance = ModelInstance.materialize(name, SPECS,
                                             cluster.volta.gpus[0],
                                             model_seed=seed)
        session = yield from cluster.portus_client().register(instance)
        return session

    return cluster.run(scenario)


# -- out-of-order replies (request-id matching) -----------------------------------


def test_out_of_order_replies_matched_by_rid():
    cluster = make_cluster(retry=False)

    def scenario(env):
        session = yield from cluster.portus_register("resnet50")
        session.model.update_step(1)
        # A slow checkpoint (tens of ms of RDMA pull) and a fast
        # heartbeat share one connection; the heartbeat's reply arrives
        # first and must not be mistaken for the checkpoint's.
        ckpt = env.process(session.checkpoint(1), name="ckpt")
        beat = env.process(session.heartbeat(), name="beat")
        yield AllOf(env, [ckpt, beat])
        return ckpt.value, beat.value

    ckpt_reply, beat_reply = cluster.run(scenario)
    assert ckpt_reply["op"] == protocol.OP_CHECKPOINT_DONE
    assert ckpt_reply["step"] == 1
    assert beat_reply["op"] == protocol.OP_HEARTBEAT_ACK


# -- retry + re-attach through daemon death ---------------------------------------


def test_checkpoint_during_daemon_restart_succeeds_transparently():
    cluster = make_cluster()
    session = register_model(cluster)

    def scenario(env):
        session.model.update_step(1)
        yield from session.checkpoint(1)
        session.model.update_step(2)
        ckpt = env.process(session.checkpoint(2), name="ckpt-under-fire")
        # Kill the daemon mid-request and bring a successor up on the
        # same port a little later; the client must ride it out alone.
        yield env.timeout(usecs(50))
        assert not ckpt.triggered  # still in flight when the axe falls
        cluster.kill_daemon()
        yield env.timeout(usecs(300))
        cluster.restart_daemon()
        reply = yield ckpt
        return reply

    reply = cluster.run(scenario)
    assert reply["step"] == 2
    assert session.retries >= 1
    assert session.reattaches >= 1
    # The committed bytes are the step-2 weights, bit-exact, on the
    # recovered index.
    entry = cluster.daemon.model_map["model"]
    version, step = valid_checkpoint(entry.meta)
    assert step == 2
    for tensor, descriptor in zip(session.model.tensors,
                                  entry.meta.mindex.descriptors):
        stored = entry.meta.read_tensor(descriptor, version)
        assert stored.equals(tensor.expected_content(2))


def test_register_retries_until_daemon_comes_up():
    cluster = make_cluster()
    cluster.kill_daemon()

    def scenario(env):
        instance = ModelInstance.materialize("model", SPECS,
                                             cluster.volta.gpus[0],
                                             model_seed=3)
        started = env.process(
            cluster.portus_client().register(instance), name="register")
        yield env.timeout(usecs(400))
        cluster.restart_daemon()
        session = yield started
        session.model.update_step(1)
        reply = yield from session.checkpoint(1)
        return session, reply

    session, reply = cluster.run(scenario)
    assert reply["step"] == 1
    assert session.retries >= 1


# -- daemon request timeout -------------------------------------------------------


def test_request_timeout_releases_wedged_entry():
    cluster = make_cluster(retry=False, request_timeout_ns=msecs(2))
    session = register_model(cluster)
    injector = FaultInjector(cluster.env, cluster)

    def good(env):
        session.model.update_step(1)
        yield from session.checkpoint(1)

    cluster.run(good)
    # Every WR hangs: without the timeout this pull would hold the
    # entry's CAS guard forever.
    injector.set_wr_fault_rate("server", rate=0.0, hang_rate=1.0)

    def wedged(env):
        session.model.update_step(2)
        with pytest.raises(RequestTimeout):
            yield from session.checkpoint(2)

    cluster.run(wedged)
    entry = cluster.daemon.model_map["model"]
    assert not entry.busy
    # The timed-out pull aborted; step 1 is still the restorable truth.
    assert valid_checkpoint(entry.meta)[1] == 1
    injector.set_wr_fault_rate("server", rate=0.0)

    def retry(env):
        return (yield from session.checkpoint(2))

    assert cluster.run(retry)["step"] == 2


# -- lease / reaper ---------------------------------------------------------------


def test_reaper_reclaims_entry_of_vanished_client():
    cluster = make_cluster(retry=False, lease_ns=msecs(1),
                           reaper_interval_ns=usecs(400))
    session = register_model(cluster)
    injector = FaultInjector(cluster.env, cluster)

    def good(env):
        session.model.update_step(1)
        yield from session.checkpoint(1)

    cluster.run(good)
    injector.set_wr_fault_rate("server", rate=0.0, hang_rate=1.0)

    def vanish_mid_pull(env):
        session.model.update_step(2)
        ckpt = env.process(session.checkpoint(2), name="doomed-ckpt")
        yield env.timeout(usecs(100))
        # The client host dies silently: the connection drops but nobody
        # tells the daemon, whose pull is wedged on a hung WR.
        session.conn.drop()
        try:
            yield ckpt
        except ReproError:
            pass
        yield env.timeout(msecs(3))  # let the lease expire and the reaper run

    cluster.run(vanish_mid_pull)
    entry = cluster.daemon.model_map["model"]
    assert cluster.daemon.reaped_sessions == 1
    assert not entry.attached
    assert not entry.busy
    # The interrupted pull aborted: step 1 survives, the half-pulled
    # step 2 was never committed.
    assert valid_checkpoint(entry.meta)[1] == 1
    injector.set_wr_fault_rate("server", rate=0.0)
    # A successor client re-attaches to the reclaimed entry and works.
    successor = register_model(cluster, seed=3)

    def recover(env):
        successor.model.update_step(3)
        return (yield from successor.checkpoint(3))

    assert cluster.run(recover)["step"] == 3


def test_heartbeat_renews_lease():
    cluster = make_cluster(retry=False, lease_ns=msecs(1),
                           reaper_interval_ns=usecs(300))
    session = register_model(cluster)

    def idle_but_alive(env):
        for _ in range(8):
            yield env.timeout(usecs(500))
            yield from session.heartbeat()

    cluster.run(idle_but_alive)
    entry = cluster.daemon.model_map["model"]
    assert entry.attached  # 4 ms idle, but the lease kept renewing
    assert cluster.daemon.reaped_sessions == 0

    def go_silent(env):
        yield env.timeout(msecs(3))

    cluster.run(go_silent)
    assert not entry.attached
    assert cluster.daemon.reaped_sessions == 1


# -- unregister resource release --------------------------------------------------


def test_unregister_releases_client_mrs_and_session():
    cluster = make_cluster(retry=False)
    client = cluster.portus_client()
    mrs_before = cluster.volta.nic.registered_mrs
    session = register_model(cluster)
    assert session in client.sessions
    assert cluster.volta.nic.registered_mrs == mrs_before + len(SPECS)

    def scenario(env):
        yield from session.unregister()

    cluster.run(scenario)
    assert session not in client.sessions
    assert session.mrs == []
    # The per-tensor client MRs are gone from the NIC's table again.
    assert cluster.volta.nic.registered_mrs == mrs_before


# -- graceful degradation ---------------------------------------------------------


def test_failover_degrades_to_local_path_and_resumes():
    cluster = make_cluster(retry=False)
    session = register_model(cluster)
    injector = FaultInjector(cluster.env, cluster)
    failover = FailoverCheckpointer(cluster.env, session, cluster.volta,
                                    failure_threshold=2,
                                    probe_interval_ns=msecs(1))
    paths = []

    def scenario(env):
        for step in range(1, 6):
            if step == 2:
                injector.set_link("volta", up=False)
            if step == 5:
                injector.set_link("volta", up=True)
                yield env.timeout(msecs(2))  # past the probe interval
            session.model.update_step(step)
            result = yield from failover.checkpoint(step)
            paths.append((step, result["path"]))
            yield env.timeout(usecs(200))

    cluster.run(scenario)
    assert paths == [(1, "portus"), (2, "local"), (3, "local"),
                     (4, "local"), (5, "portus")]
    assert failover.local_checkpoints == 3
    assert failover.portus_checkpoints == 2
    assert failover.resumes == 1
    assert not failover.degraded


def test_failover_restore_falls_back_to_newest_local_snapshot():
    cluster = make_cluster(retry=False)
    session = register_model(cluster)
    injector = FaultInjector(cluster.env, cluster)
    failover = FailoverCheckpointer(cluster.env, session, cluster.volta,
                                    failure_threshold=1,
                                    probe_interval_ns=msecs(100))

    def scenario(env):
        session.model.update_step(1)
        yield from failover.checkpoint(1)  # portus
        injector.set_link("volta", up=False)
        session.model.update_step(2)
        yield from failover.checkpoint(2)  # degrades, snapshots locally
        session.model.update_step(3)
        yield from failover.checkpoint(3)  # second local snapshot
        # Training state is lost (simulated restart at stale weights);
        # Portus is still unreachable, so restore must come from DRAM.
        session.model.update_step(0)
        result = yield from failover.restore()
        return result

    result = cluster.run(scenario)
    assert result == {"path": "local", "step": 3}
    assert session.model.step == 3
    for tensor in session.model.tensors:
        assert tensor.content().equals(tensor.expected_content(3))

"""Crash-point chaos sweep: power loss at *every* metadata write boundary.

A counting pass runs the full lifecycle workload — register → checkpoint
x2 → daemon death → offline repack → restart → a second model's
register/checkpoint/unregister — with a :class:`CrashPointRecorder`
observing every ``CommittedRecord`` write and extent alloc/free boundary.
The sweep then replays the workload once per boundary, power-failing the
storage server at exactly that point, and asserts the recovery contract
on the survivor:

* the pool re-opens and ``repair`` leaves it fsck-clean;
* the newest acked checkpoint restores bit-exactly (committed bytes
  never regress past a crash);
* a crash inside unregister never strands a table entry over freed
  metadata (the daemon's remove-then-free ordering).

The schedule is pure simulation, so the same seed enumerates the same
boundaries byte-for-byte — ``PORTUS_CRASHPOINT_STRIDE`` (default 1)
subsamples it for quick loops.
"""

import os
import random

import pytest

from repro.core.repack import repack
from repro.core.retry import RetryPolicy
from repro.dnn.tensor import ModelInstance, TensorSpec
from repro.errors import NoValidCheckpoint, ReproError
from repro.faults import FaultInjector
from repro.harness.cluster import PaperCluster
from repro.pmem import PmemPool
from repro.pmem.fsck import fsck, repair
from repro.units import msecs

pytestmark = pytest.mark.chaos

STRIDE = int(os.environ.get("PORTUS_CRASHPOINT_STRIDE", "1"))
SEED = int(os.environ.get("PORTUS_CRASHPOINT_SEED", "11"))

SPECS = [TensorSpec("block.weight", (256, 128)),
         TensorSpec("block.bias", (256,)),
         TensorSpec("head.weight", (16, 256))]
LATE_SPECS = [TensorSpec("late.weight", (64, 64))]


class Episode:
    """One workload run with a recorder armed at ``crash_at``."""

    def __init__(self, crash_at=None):
        policy = RetryPolicy(rng=random.Random(SEED ^ 0x5EED),
                             max_attempts=1, deadline_ns=msecs(2),
                             reply_timeout_ns=msecs(1))
        self.cluster = PaperCluster(seed=SEED, ampere_nodes=0,
                                    client_retry=policy)
        self.injector = FaultInjector(self.cluster.env, self.cluster)
        self.device = self.cluster.server.pmem_devdax
        self.recorder = self.injector.arm_crash_point(self.device,
                                                      crash_at=crash_at)
        self.acked = []
        self.attempted = []
        self.phase = "init"
        self.model = None

    def run_workload(self):
        cluster, recorder = self.cluster, self.recorder

        def lifecycle(env):
            try:
                self.phase = "register"
                self.model = ModelInstance.materialize(
                    "model", SPECS, cluster.volta.gpus[0], model_seed=SEED)
                session = yield from cluster.portus_client().register(
                    self.model)
                for step in (1, 2):
                    if recorder.fired:
                        return
                    self.phase = f"checkpoint-{step}"
                    self.model.update_step(step)
                    self.attempted.append(step)
                    yield from session.checkpoint(step)
                    self.acked.append(step)
            except ReproError:
                return

        cluster.run(lifecycle)
        if recorder.fired:
            return

        # A daemon generation boundary with an offline repack between —
        # exactly how portusctl would run against a stopped daemon.
        self.phase = "repack"
        cluster.kill_daemon()
        pool = PmemPool.open(self.device)
        try:
            repack(pool)
        except ReproError:
            return
        finally:
            pool.close()
        if recorder.fired:
            return
        self.phase = "restart"
        cluster.restart_daemon()

        def late_lifecycle(env):
            try:
                self.phase = "late-register"
                late = ModelInstance.materialize(
                    "late", LATE_SPECS, cluster.volta.gpus[1],
                    model_seed=SEED + 1)
                session = yield from cluster.portus_client().register(late)
                self.phase = "late-checkpoint"
                late.update_step(1)
                yield from session.checkpoint(1)
                if recorder.fired:
                    return
                self.phase = "unregister"
                yield from session.unregister()
                self.phase = "done"
            except ReproError:
                return

        cluster.run(late_lifecycle)

    def recover_and_verify(self):
        """The post-crash contract: repair to clean, then restore the
        newest acked checkpoint bit-exactly on a fresh daemon."""
        context = (f"crash at {self.recorder.fired} during "
                   f"phase={self.phase} acked={self.acked}")
        self.recorder.disarm()

        pool = PmemPool.open(self.device)
        result = repair(pool, obs=self.cluster.obs)
        assert result.clean, f"{context}:\n{result.describe()}"
        report = fsck(pool)
        assert report.clean, f"{context}:\n{report.describe()}"
        pool.close()

        self.cluster.restart_daemon()
        cluster, model = self.cluster, self.model

        def recover(env):
            model.update_step(0)  # scramble: restore must rewrite all
            session = yield from cluster.portus_client().register(model)
            try:
                step = yield from session.restore()
            except NoValidCheckpoint:
                return None
            return step

        restored = self.cluster.run(recover)
        if self.acked:
            assert restored is not None, f"acked steps lost: {context}"
            assert restored >= max(self.acked), \
                f"committed bytes regressed: {context}"
            # An *unacked* step may legitimately survive: a power cut at
            # the persist boundary can still evict the commit to PMem.
            # What must never restore is a step nobody ever wrote.
            assert restored in self.attempted, \
                f"restored a never-written step: {context}"
            mismatches = [
                tensor.spec.name for tensor in model.tensors
                if not tensor.content().equals(
                    tensor.expected_content(restored))
            ]
            assert mismatches == [], f"torn restore {mismatches}: {context}"
        return restored


def _boundary_schedule():
    episode = Episode(crash_at=None)
    episode.run_workload()
    assert episode.phase == "done"
    assert episode.acked == [1, 2]
    return episode.recorder.boundaries


def test_counting_pass_covers_every_layer_and_ends_clean():
    episode = Episode(crash_at=None)
    episode.run_workload()
    assert episode.phase == "done" and episode.acked == [1, 2]
    points = {line.split(":")[1] for line in episode.recorder.boundaries}
    # The schedule must reach all four boundary kinds, or the sweep is
    # quietly skipping a whole class of crash windows.
    assert points == {"record.write", "record.persist", "alloc.commit",
                      "free.release"}
    assert episode.recorder.count >= 40
    pool = PmemPool.open(episode.device)
    assert fsck(pool).clean  # a fault-free lifecycle leaves no debris


def test_boundary_schedule_is_deterministic():
    assert _boundary_schedule() == _boundary_schedule()


def test_power_loss_at_every_boundary_recovers():
    schedule = _boundary_schedule()
    swept = 0
    for index in range(0, len(schedule), STRIDE):
        episode = Episode(crash_at=index)
        episode.run_workload()
        assert episode.recorder.fired is not None, \
            f"boundary {index} never fired (schedule drifted?)"
        assert episode.recorder.fired == schedule[index]
        episode.recover_and_verify()
        swept += 1
    assert swept == len(range(0, len(schedule), STRIDE))


def test_unregister_crash_never_strands_the_table():
    """Satellite of the sweep, pinned as its own regression: a crash at
    any boundary *inside unregister* must leave either a fully intact
    model or a cleanly removed one — never a table entry pointing at
    freed metadata (the pre-fix free-then-remove ordering)."""
    schedule = _boundary_schedule()
    counting = Episode(crash_at=None)
    counting.run_workload()
    # Recompute which boundary indices unregister spans: replay phases
    # is overkill — the late model's free boundaries carry its tag.
    unregister_span = [i for i, line in enumerate(schedule)
                       if i >= schedule.index(
                           next(l for l in schedule if "late" in l))]
    hit = 0
    for index in unregister_span:
        episode = Episode(crash_at=index)
        episode.run_workload()
        if episode.phase != "unregister":
            continue
        hit += 1
        pool = PmemPool.open(episode.device)
        report = fsck(pool)
        assert report.errors() == [], \
            f"crash at {episode.recorder.fired}:\n{report.describe()}"
        assert repair(pool, obs=episode.cluster.obs).clean
        pool.close()
    assert hit >= 3  # the remove/free window really was swept

"""Fleet-scale self-healing chaos: N shards, one operator, zero hands.

The single-daemon operator sweep (test_operator_chaos) proves the
remediation loop heals one deployment.  Here the deployment is a
3-shard fleet — every shard its own pool, TCP endpoint, and daemon —
and the random schedules target *any* of them (``storage_shards=``):
a crash on ``server1`` must restart ``server1``, not the survivor
that happens to look fine.  The per-schedule contract:

  * the operator alone converges the whole fleet (every shard healthy
    + fsck-clean, no client held) — zero manual recovery;
  * afterwards every client checkpoints on the Portus path again;
  * every shard's pool verifies fsck-clean read-only;
  * every model restores its newest Portus-acked step bit-exactly;
  * two runs of the same seed are bit-identical, operator decision log
    (which names the remediated shard) included.

Knobs (environment variables):

  PORTUS_FLEET_EXAMPLES  number of schedules to run (default 25)
  PORTUS_CHAOS_SEED      base seed (default 0)
  CHAOS_TRACE            append one deterministic line per schedule
                         (used by scripts/check_determinism.sh)
"""

import os
import random
import zlib

import pytest

from repro.core.failover import FailoverCheckpointer
from repro.core.retry import RetryPolicy
from repro.dnn.tensor import ModelInstance, TensorSpec
from repro.errors import ReproError
from repro.faults import FaultInjector, FaultPlan
from repro.fleet import FleetClient
from repro.harness.cluster import PaperCluster
from repro.ops.health import HealthThresholds
from repro.pmem.fsck import fsck
from repro.units import msecs, usecs

pytestmark = pytest.mark.chaos

EXAMPLES = int(os.environ.get("PORTUS_FLEET_EXAMPLES", "25"))
BASE_SEED = int(os.environ.get("PORTUS_CHAOS_SEED", "0"))
TRACE_PATH = os.environ.get("CHAOS_TRACE")

SHARDS = 3
SHARD_NAMES = ("server", "server1", "server2")
SPECS = [TensorSpec("block.weight", (512, 256)),
         TensorSpec("block.bias", (512,)),
         TensorSpec("head.weight", (16, 512))]
STEPS = 6
HORIZON_NS = msecs(4)
SETTLE_DEADLINE_NS = msecs(150)


def _trace(line):
    if TRACE_PATH:
        with open(TRACE_PATH, "a") as fh:
            fh.write(line + "\n")


def run_fleet_schedule(seed, events=5):
    """One fleet-wide self-healing chaos episode.

    Returns ``(acked_by_model, restored_by_model, decisions_crc,
    stats)`` — everything the determinism check compares.
    """
    policy = RetryPolicy(rng=random.Random(seed ^ 0xA11CE),
                         max_attempts=16,
                         deadline_ns=msecs(25),
                         reply_timeout_ns=msecs(8))
    cluster = PaperCluster(
        seed=seed, ampere_nodes=0, storage_nodes=SHARDS,
        daemon_kwargs=dict(request_timeout_ns=msecs(20),
                           lease_ns=msecs(5),
                           reaper_interval_ns=msecs(1)),
        client_retry=policy)
    fleet = FleetClient(cluster)
    # One model per shard, pinned, so every random shard target has
    # real client traffic to disturb.
    for index, shard in enumerate(cluster.shards):
        fleet.ring.assign(f"t{index}", f"model{index}", shard.name)

    def setup(env):
        result = []
        for index in range(SHARDS):
            instance = ModelInstance.materialize(
                f"model{index}", SPECS, cluster.volta.gpus[0],
                model_seed=seed * SHARDS + index)
            session = yield from fleet.register(f"t{index}", instance)
            result.append((instance, session))
        return result

    models = cluster.run(setup)
    operator = cluster.enable_operator(
        interval_ns=usecs(500),
        thresholds=HealthThresholds(wedge_ns=msecs(50)))
    failovers = []
    for index, (instance, session) in enumerate(models):
        failover = FailoverCheckpointer(
            cluster.env, session, cluster.volta,
            failure_threshold=2, probe_interval_ns=msecs(1),
            rng=random.Random((seed << 2) ^ 0xBAC0FF ^ index))
        operator.register_failover(failover, shard=index)
        failovers.append(failover)

    rng = random.Random(seed)
    plan = FaultPlan.random(rng, horizon_ns=HORIZON_NS, events=events,
                            auto_recover_daemon=False,
                            allow_pool_corrupt=True,
                            storage_shards=SHARD_NAMES)
    injector = FaultInjector(cluster.env, cluster)
    # Every fourth schedule also arms a power cut at an exact metadata
    # write boundary on a rotating shard.
    if seed % 4 == 0:
        victim = cluster.shards[seed % SHARDS]
        injector.arm_crash_point(victim.node.pmem_devdax,
                                 crash_at=rng.randrange(4, 64))
    base = cluster.env.now
    injector.install(plan.shifted(base))

    acked = {index: [] for index in range(SHARDS)}

    def traffic(env):
        for step in range(1, STEPS + 1):
            for index, (instance, _session) in enumerate(models):
                instance.update_step(step)
                try:
                    result = yield from failovers[index].checkpoint(step)
                except ReproError:
                    continue
                if result["path"] == "portus":
                    acked[index].append(step)
            yield env.timeout(usecs(400))
        remaining = base + plan.horizon_ns() + usecs(50) - env.now
        if remaining > 0:
            yield env.timeout(remaining)

    cluster.run(traffic)

    # -- convergence: the operator alone heals every shard ------------------------
    def settle(env):
        deadline = env.now + SETTLE_DEADLINE_NS
        while not operator.converged and env.now < deadline:
            yield env.timeout(msecs(1))
        return operator.converged

    converged = cluster.run(settle)
    context = (f"seed={seed} plan=[{'; '.join(plan.describe().splitlines())}]"
               f" states={operator.shard_states}"
               f" decisions={operator.decisions[-8:]}")
    assert converged, f"operator never converged the fleet: {context}"

    # -- every client is back on the Portus path ----------------------------------
    def final_checkpoints(env):
        for index, (instance, _session) in enumerate(models):
            instance.update_step(STEPS + 1)
            result = yield from failovers[index].checkpoint(STEPS + 1)
            assert result["path"] == "portus", \
                f"model{index} still local after convergence: {context}"
            acked[index].append(STEPS + 1)

    cluster.run(final_checkpoints)

    # -- structural health, every shard -------------------------------------------
    for shard in cluster.shards:
        report = fsck(shard.pool)
        assert report.clean, (f"{shard.name} fsck dirty after "
                              f"convergence: {report.describe()} {context}")

    # -- every model restores its newest acked step bit-exactly -------------------
    restored = {}

    def recover(env):
        for index, (instance, session) in enumerate(models):
            instance.update_step(0)
            restored[index] = yield from session.restore()

    cluster.run(recover)
    for index, (instance, _session) in enumerate(models):
        assert restored[index] == max(acked[index]), \
            f"model{index} restored {restored[index]}: {context}"
        mismatches = [
            tensor.name for tensor in instance.tensors
            if not tensor.content().equals(
                tensor.expected_content(restored[index]))
        ]
        assert mismatches == [], \
            f"model{index} torn restore {mismatches}: {context}"

    stats = (operator.restarts, operator.repairs, operator.drains)
    global _last_decisions
    _last_decisions = list(operator.decisions)
    decisions_crc = zlib.crc32("\n".join(operator.decisions).encode())
    acked_tuple = tuple(tuple(acked[i]) for i in range(SHARDS))
    restored_tuple = tuple(restored[i] for i in range(SHARDS))
    _trace(f"seed={seed} acked={acked_tuple} restored={restored_tuple} "
           f"restarts={operator.restarts} repairs={operator.repairs} "
           f"drains={operator.drains} decisions_crc={decisions_crc:08x} "
           f"plan=[{'; '.join(plan.describe().splitlines())}]")
    return acked_tuple, restored_tuple, decisions_crc, stats


#: Decision log of the most recent schedule (sweep-level assertions).
_last_decisions = []


def test_fleet_chaos_schedules_self_heal():
    totals = {"restarts": 0, "repairs": 0, "drains": 0}
    offdefault_remediations = 0
    for index in range(EXAMPLES):
        _acked, _restored, _crc, stats = run_fleet_schedule(
            BASE_SEED + index)
        totals["restarts"] += stats[0]
        totals["repairs"] += stats[1]
        totals["drains"] += stats[2]
        offdefault_remediations += sum(
            1 for line in _last_decisions
            if (" shard=server1 " in line or " shard=server2 " in line)
            and ("action=restart-daemon" in line
                 or "action=fsck-repair" in line))
    # The sweep must exercise fleet remediation, not degenerate into
    # all-healthy schedules...
    assert totals["restarts"] > 0, "no schedule needed a restart"
    assert totals["drains"] > 0, "no schedule drained a client back"
    # ... and must prove shard-targeted routing: at least one recovery
    # action landed on a non-default shard ("restart shard 0 and hope"
    # would flunk this).
    assert offdefault_remediations > 0, \
        "no remediation ever targeted a non-default shard"


def test_fleet_chaos_schedule_is_deterministic():
    seed = BASE_SEED + 737_373
    first = run_fleet_schedule(seed)
    second = run_fleet_schedule(seed)
    assert first == second, "same seed diverged (decision log included)"


def test_fleet_chaos_crash_point_schedule_is_deterministic():
    seed = BASE_SEED + 737_376  # % 4 == 0: arms a crash point
    assert seed % 4 == 0
    first = run_fleet_schedule(seed)
    second = run_fleet_schedule(seed)
    assert first == second


def test_migration_chaos_is_typed_and_leak_only(monkeypatch):
    """Ping-pong live migrations with seeded failures injected into the
    post-flip cleanup window.  The router contract under chaos: every
    hop either succeeds or raises a typed
    :class:`~repro.errors.MigrationIncomplete` whose ring flip is never
    unwound — the destination always holds the authoritative copy, and
    the named leak is reclaimable afterwards.  Same seed, same outcome
    sequence."""
    from repro.errors import MigrationIncomplete
    import repro.fleet.client as fleet_client

    real_evict = fleet_client.evict_model

    def run_case(seed):
        rng = random.Random(seed ^ 0x517)

        def flaky_evict(daemon, name):
            if rng.random() < 0.5:
                raise ReproError("chaos: evict window failure")
            return real_evict(daemon, name)

        monkeypatch.setattr(fleet_client, "evict_model", flaky_evict)
        cluster = PaperCluster(seed=seed, ampere_nodes=0,
                               storage_nodes=2)
        fleet = FleetClient(cluster)

        def setup(env):
            instance = ModelInstance.materialize(
                "model0", SPECS, cluster.volta.gpus[0], model_seed=seed)
            session = yield from fleet.register("t0", instance)
            instance.update_step(1)
            yield from session.checkpoint(1)
            return instance, session

        instance, session = cluster.run(setup)
        outcomes = []
        for hop in range(1, 5):
            src = fleet.shard_of("t0", "model0")
            dst = next(s for s in cluster.shards if s.name != src.name)

            def migrate(env):
                try:
                    yield from fleet.migrate("t0", "model0", dst.name)
                except MigrationIncomplete as exc:
                    return exc
                return None

            error = cluster.run(migrate)
            # Flip-held invariant, success or not: the destination owns
            # the model and the ring agrees.
            assert fleet.shard_of("t0", "model0").name == dst.name
            assert dst.daemon.model_map.get("model0") is not None
            if error is not None:
                assert error.leaked, "typed error must name the leak"
                outcomes.append(f"hop{hop}:incomplete")
                # Leak-only means an operator can reclaim it cold.
                if src.daemon.model_map.get("model0") is not None:
                    real_evict(src.daemon, "model0")
            else:
                assert src.daemon.model_map.get("model0") is None
                outcomes.append(f"hop{hop}:ok")

            def work(env, step=hop + 1):
                instance.update_step(step)
                yield from session.checkpoint(step)

            cluster.run(work)

        def recover(env):
            instance.update_step(0)
            return (yield from session.restore())

        assert cluster.run(recover) == 5
        bad = [t.name for t in instance.tensors
               if not t.content().equals(t.expected_content(5))]
        assert bad == []
        for shard in cluster.shards:
            assert fsck(shard.pool).clean
        return tuple(outcomes)

    results = [run_case(BASE_SEED + 9000 + case) for case in range(6)]
    flat = [outcome for case in results for outcome in case]
    assert any(outcome.endswith(":incomplete") for outcome in flat), \
        "no schedule ever hit the post-flip window"
    assert any(outcome.endswith(":ok") for outcome in flat)
    assert results == [run_case(BASE_SEED + 9000 + case)
                       for case in range(6)]


def test_single_shard_plans_unchanged_by_the_shard_knob():
    """The fleet knob must not perturb legacy chaos seeds: a
    single-entry ``storage_shards`` draws nothing from the RNG."""
    for seed in range(20):
        legacy = FaultPlan.random(random.Random(seed),
                                  horizon_ns=HORIZON_NS, events=6,
                                  allow_pool_corrupt=True)
        gated = FaultPlan.random(random.Random(seed),
                                 horizon_ns=HORIZON_NS, events=6,
                                 allow_pool_corrupt=True,
                                 storage_shards=("server",))
        assert legacy.describe() == gated.describe()

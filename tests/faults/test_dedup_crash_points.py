"""Crash-point chaos sweep over the dedup datapath's refcount boundaries.

The dedup lifecycle adds a fifth boundary kind to the schedule:
``chunkref.update`` fires before every ChunkTable commit (create / apply
/ unref / repair), alongside the usual record and allocator boundaries
that the manifest records and chunk extents hit.  The workload covers
every refcount persistence window:

* first checkpoint — chunk extents allocated, bytes pulled, ``apply``;
* delta checkpoint — shared increments plus fresh head chunks;
* slot overwrite — the third checkpoint's post-commit ``unref`` of the
  displaced manifest (decrement-then-free ordering);
* cross-tenant sharing — a second model, same base seed, bumping the
  backbone refcounts without new extents;
* unregister — both manifests unref'd, orphaned chunks freed.

Power loss at each boundary must leave a pool that ``repair`` brings to
fsck-clean — including the recomputed-refcount invariant — after which
the newest acked checkpoint restores bit-exactly.
"""

import os
import random

import pytest

from repro.core.retry import RetryPolicy
from repro.dnn.tensor import ModelInstance, TensorSpec
from repro.errors import NoValidCheckpoint, ReproError
from repro.faults import FaultInjector
from repro.harness.cluster import PaperCluster
from repro.pmem import PmemPool
from repro.pmem.fsck import fsck, repair
from repro.units import msecs

pytestmark = pytest.mark.chaos

STRIDE = int(os.environ.get("PORTUS_CRASHPOINT_STRIDE", "1"))
SEED = int(os.environ.get("PORTUS_CRASHPOINT_SEED", "13"))

CHUNK = 64 * 1024

SPECS = [TensorSpec("block.weight", (256, 128)),   # 128 KiB
         TensorSpec("block.bias", (256,)),
         TensorSpec("head.weight", (16, 256))]     # 16 KiB


class DedupEpisode:
    """One dedup workload run with a recorder armed at ``crash_at``."""

    def __init__(self, crash_at=None):
        policy = RetryPolicy(rng=random.Random(SEED ^ 0x5EED),
                             max_attempts=1, deadline_ns=msecs(2),
                             reply_timeout_ns=msecs(1))
        self.cluster = PaperCluster(seed=SEED, ampere_nodes=0,
                                    client_retry=policy)
        self.injector = FaultInjector(self.cluster.env, self.cluster)
        self.device = self.cluster.server.pmem_devdax
        self.recorder = self.injector.arm_crash_point(self.device,
                                                      crash_at=crash_at)
        self.acked = []
        self.attempted = []
        #: step -> {tensor name -> the step whose bytes that checkpoint
        #: holds for it} (delta checkpoints leave clean tensors behind).
        self.tensor_steps = {}
        self.phase = "init"
        self.model = None

    def _stamp(self, step, only=None):
        current = dict(self.tensor_steps.get(max(self.tensor_steps),
                                             {})) if self.tensor_steps else {}
        for spec in SPECS:
            if only is None or spec.name in only:
                current[spec.name] = step
            else:
                current.setdefault(spec.name, 0)
        self.tensor_steps[step] = current

    def run_workload(self):
        cluster, recorder = self.cluster, self.recorder

        def lifecycle(env):
            try:
                self.phase = "register"
                self.model = ModelInstance.materialize(
                    "model", SPECS, cluster.volta.gpus[0], model_seed=SEED)
                session = yield from cluster.portus_client().register(
                    self.model, dedup=True, chunk_bytes=CHUNK)
                plan = [(1, None), (2, ["head.weight"]),
                        (3, ["head.weight"])]
                for step, only in plan:
                    if recorder.fired:
                        return
                    self.phase = f"checkpoint-{step}"
                    self.model.update_step(step, only=only)
                    self._stamp(step, only)
                    self.attempted.append(step)
                    yield from session.checkpoint(step)
                    self.acked.append(step)
            except ReproError:
                return

        cluster.run(lifecycle)
        if recorder.fired:
            return

        # A daemon generation boundary: recovery must rebuild the chunk
        # store's DRAM map from the committed ChunkTable.
        self.phase = "restart"
        cluster.restart_daemon()

        def tenant_lifecycle(env):
            try:
                self.phase = "tenant-register"
                tenant = ModelInstance.materialize(
                    "tenant", SPECS, cluster.volta.gpus[1],
                    model_seed=SEED)
                session = yield from cluster.portus_client().register(
                    tenant, dedup=True, chunk_bytes=CHUNK)
                self.phase = "tenant-checkpoint"
                tenant.update_step(1)  # same seed+step: shared chunks
                yield from session.checkpoint(1)
                if recorder.fired:
                    return
                self.phase = "unregister"
                yield from session.unregister()
                self.phase = "done"
            except ReproError:
                return

        cluster.run(tenant_lifecycle)

    def recover_and_verify(self):
        """Post-crash contract: repair to clean (refcounts included),
        then restore the newest acked checkpoint bit-exactly."""
        context = (f"crash at {self.recorder.fired} during "
                   f"phase={self.phase} acked={self.acked}")
        self.recorder.disarm()

        pool = PmemPool.open(self.device)
        result = repair(pool, obs=self.cluster.obs)
        assert result.clean, f"{context}:\n{result.describe()}"
        report = fsck(pool)
        assert report.clean, f"{context}:\n{report.describe()}"
        pool.close()

        self.cluster.restart_daemon()
        cluster, model = self.cluster, self.model

        def recover(env):
            model.update_step(0)  # scramble: restore must rewrite all
            session = yield from cluster.portus_client().register(
                model, dedup=True, chunk_bytes=CHUNK)
            try:
                step = yield from session.restore()
            except NoValidCheckpoint:
                return None
            return step

        restored = self.cluster.run(recover)
        if self.acked:
            assert restored is not None, f"acked steps lost: {context}"
            assert restored >= max(self.acked), \
                f"committed bytes regressed: {context}"
            assert restored in self.attempted, \
                f"restored a never-written step: {context}"
            expected = self.tensor_steps[restored]
            mismatches = [
                tensor.spec.name for tensor in model.tensors
                if not tensor.content().equals(
                    tensor.expected_content(expected[tensor.spec.name]))
            ]
            assert mismatches == [], f"torn restore {mismatches}: {context}"
        return restored


def _boundary_schedule():
    episode = DedupEpisode(crash_at=None)
    episode.run_workload()
    assert episode.phase == "done"
    assert episode.acked == [1, 2, 3]
    return episode.recorder.boundaries


def test_counting_pass_reaches_the_refcount_boundary():
    episode = DedupEpisode(crash_at=None)
    episode.run_workload()
    assert episode.phase == "done" and episode.acked == [1, 2, 3]
    points = {line.split(":")[1] for line in episode.recorder.boundaries}
    assert points == {"record.write", "record.persist", "alloc.commit",
                      "free.release", "chunkref.update"}
    ops = {line.split(":")[2] for line in episode.recorder.boundaries
           if line.split(":")[1] == "chunkref.update"}
    # Every ChunkTable commit class must appear in the schedule, or a
    # whole refcount crash window goes unswept.
    assert {"create", "apply", "unref"} <= ops
    pool = PmemPool.open(episode.device)
    assert fsck(pool).clean


def test_dedup_boundary_schedule_is_deterministic():
    assert _boundary_schedule() == _boundary_schedule()


def test_power_loss_at_every_dedup_boundary_recovers():
    schedule = _boundary_schedule()
    swept = 0
    for index in range(0, len(schedule), STRIDE):
        episode = DedupEpisode(crash_at=index)
        episode.run_workload()
        assert episode.recorder.fired is not None, \
            f"boundary {index} never fired (schedule drifted?)"
        assert episode.recorder.fired == schedule[index]
        episode.recover_and_verify()
        swept += 1
    assert swept == len(range(0, len(schedule), STRIDE))


def test_crash_between_apply_and_manifest_leaves_only_leaks():
    """Pinned regression for the apply→write_manifest→commit ordering:
    power loss right after the ChunkTable commit (before the manifest
    lands) must surface as chunk-ref *leaks*, never over-frees — the
    displaced references were not yet dropped."""
    schedule = _boundary_schedule()
    apply_points = [i for i, line in enumerate(schedule)
                    if ":chunkref.update:apply" in line]
    assert apply_points, "schedule lost the apply boundary"
    for index in apply_points:
        episode = DedupEpisode(crash_at=index)
        episode.run_workload()
        pool = PmemPool.open(episode.device)
        report = fsck(pool)
        overfrees = [f for f in report.findings
                     if f.kind == "chunk-ref-overfree"]
        assert overfrees == [], \
            f"crash at {episode.recorder.fired}:\n{report.describe()}"
        pool.close()
        episode.recover_and_verify()

"""Torn-slot chaos property: aborted pulls never poison restorable data.

The window under test (the abort-semantics bug this suite pins down):

1. two clean checkpoints leave BOTH version slots DONE at real steps;
2. the next checkpoint targets the older DONE slot — ``begin`` stamps it
   ACTIVE and the engine starts overwriting its TensorData in place;
3. the pull dies partway (WR faults/hangs, client gives up) and the
   daemon aborts.

The old abort rolled the slot straight back to DONE at its *old* step —
but part of its bytes now belong to the aborted step: a torn slot that a
later crash or repack pass could end up serving.  The fixed abort
invalidates a dirty slot (EMPTY, step 0) and only rolls back untouched
ones.

Each seeded schedule drives begin → partial-pull → abort interleavings
and an aftermath (daemon crash, power loss, offline repack, or a
combination), then asserts the invariant *directly on the slots* —
every DONE slot's TensorData must be bit-exact for its stamped step —
rather than only through ``valid_checkpoint``, which the newest DONE
slot would shadow.

Knobs: PORTUS_TORN_EXAMPLES (default 200), PORTUS_TORN_SEED (default 0),
CHAOS_TRACE (append one line per schedule, for determinism diffing).
"""

import os
import random

import pytest

from repro.core.index import FLAG_DONE, FLAG_EMPTY
from repro.core.repack import repack_live
from repro.core.retry import RetryPolicy
from repro.dnn.tensor import ModelInstance, TensorSpec
from repro.errors import NoValidCheckpoint, ReproError
from repro.faults import FaultInjector
from repro.harness.cluster import PaperCluster
from repro.pmem import PmemPool
from repro.units import kib, msecs, usecs

pytestmark = pytest.mark.chaos

EXAMPLES = int(os.environ.get("PORTUS_TORN_EXAMPLES", "200"))
BASE_SEED = int(os.environ.get("PORTUS_TORN_SEED", "0"))
TRACE_PATH = os.environ.get("CHAOS_TRACE")

#: 64 KiB segmentation splits block.weight (512 KiB) into 8 WRs, so a
#: faulted pull usually lands *some* bytes before dying — the partial
#: overwrite that makes the slot torn.
SPECS = [TensorSpec("block.weight", (512, 256)),
         TensorSpec("block.bias", (512,)),
         TensorSpec("head.weight", (16, 512))]
ENGINE = dict(chunk_bytes=kib(64))
AFTERMATHS = ("restart", "crash", "repack", "crash+repack")


def _trace(line):
    if TRACE_PATH:
        with open(TRACE_PATH, "a") as fh:
            fh.write(line + "\n")


def _assert_done_slots_bit_exact(meta, instance, context):
    """The core invariant: any slot a restore could ever trust holds
    exactly the bytes of the step stamped on it."""
    flags = meta.read_flags()
    by_name = {tensor.spec.name: tensor for tensor in instance.tensors}
    for version in (0, 1):
        if flags.states[version] != FLAG_DONE:
            continue
        if meta.data_regions[version] is None:
            continue
        step = flags.steps[version]
        assert step > 0, f"DONE slot without a step: {context}"
        torn = [
            descriptor.name
            for descriptor in meta.mindex.descriptors
            if not meta.read_tensor(descriptor, version).equals(
                by_name[descriptor.name].expected_content(step))
        ]
        assert torn == [], \
            f"slot v{version} DONE@{step} serves torn tensors {torn}: " \
            f"{context}"
    return flags


def run_torn_slot_schedule(seed):
    """One episode; returns a deterministic signature tuple."""
    rng = random.Random(seed)
    policy = RetryPolicy(rng=random.Random(seed ^ 0x70A2),
                         max_attempts=rng.choice([1, 2, 3]),
                         deadline_ns=msecs(2),
                         reply_timeout_ns=msecs(1))
    cluster = PaperCluster(
        seed=seed, ampere_nodes=0,
        daemon_kwargs=dict(request_timeout_ns=usecs(600),
                           lease_ns=msecs(5),
                           reaper_interval_ns=msecs(1),
                           engine=dict(ENGINE)),
        client_retry=policy)
    injector = FaultInjector(cluster.env, cluster)

    def setup(env):
        instance = ModelInstance.materialize("model", SPECS,
                                             cluster.volta.gpus[0],
                                             model_seed=seed)
        session = yield from cluster.portus_client().register(instance)
        # Two clean checkpoints: both slots DONE at steps > 0.  Only now
        # can an abort roll the target back onto real (old) data — the
        # torn-slot window needs a slot with history.
        for step in (1, 2):
            instance.update_step(step)
            yield from session.checkpoint(step)
        return instance, session

    instance, session = cluster.run(setup)
    acked = [1, 2]

    def faulted_traffic(env):
        step = 2
        for _ in range(rng.randint(2, 4)):
            step += 1
            injector.set_wr_fault_rate(
                "server",
                rate=rng.choice([0.05, 0.1, 0.2, 0.35]),
                hang_rate=rng.choice([0.0, 0.05, 0.15]))
            instance.update_step(step)
            try:
                yield from session.checkpoint(step)
                acked.append(step)
            except ReproError:
                pass
            yield env.timeout(usecs(100))
        injector.set_wr_fault_rate("server", rate=0.0)
        yield env.timeout(usecs(200))

    cluster.run(faulted_traffic)
    dirty_aborts = cluster.obs.metrics.counter(
        "daemon.checkpoints_aborted_dirty").value
    invalidated = any(
        state == FLAG_EMPTY
        for state in cluster.daemon.model_map["model"]
                            .meta.read_flags().states)

    aftermath = rng.choice(AFTERMATHS)
    if aftermath in ("crash", "crash+repack"):
        cluster.crash_server()
    else:
        cluster.kill_daemon()
    def downtime(env):
        yield env.timeout(usecs(200))

    cluster.run(downtime)
    if aftermath in ("repack", "crash+repack"):
        # Offline repack between death and restart, as Portusctl would.
        pool = PmemPool.open(cluster.server.pmem_devdax)

        def offline_repack(env):
            report = yield from repack_live(env, pool)
            return report

        cluster.run(offline_repack)
    cluster.restart_daemon()

    def recover(env):
        instance.update_step(0)  # scramble: restore must rewrite all
        fresh = yield from cluster.portus_client().register(instance)
        try:
            step = yield from fresh.restore()
        except NoValidCheckpoint:
            return None
        return step

    restored = cluster.run(recover)
    context = (f"seed={seed} acked={acked} aftermath={aftermath} "
               f"dirty_aborts={dirty_aborts} restored={restored}")

    # Acked steps survive every aftermath, and the newest one wins.
    assert restored is not None, f"acked steps lost: {context}"
    assert restored >= max(acked), f"restore went backwards: {context}"
    assert restored in acked, f"restored an unacked step: {context}"
    mismatches = [
        tensor.spec.name for tensor in instance.tensors
        if not tensor.content().equals(tensor.expected_content(restored))
    ]
    assert mismatches == [], f"torn restore {mismatches}: {context}"

    # The direct slot invariant, post-recovery.
    meta = cluster.daemon.model_map["model"].meta
    _assert_done_slots_bit_exact(meta, instance, context)

    _trace(f"seed={seed} acked={acked} aftermath={aftermath} "
           f"dirty_aborts={dirty_aborts} invalidated={invalidated} "
           f"restored={restored}")
    return (tuple(acked), aftermath, dirty_aborts, invalidated, restored)


def test_torn_slot_schedules_never_serve_torn_data():
    dirty_hit = 0
    invalidated_hit = 0
    failures = 0
    for index in range(EXAMPLES):
        signature = run_torn_slot_schedule(BASE_SEED + index)
        acked, _aftermath, dirty_aborts, invalidated, _restored = signature
        if dirty_aborts:
            dirty_hit += 1
        if invalidated:
            invalidated_hit += 1
        if len(acked) < 2 + 4:
            failures += 1
    # The sweep must actually open the window it claims to test: some
    # schedules abort with bytes already landed (the dirty path), and in
    # some of those the torn slot is observably invalidated before a
    # successful retry reuses it.
    assert dirty_hit > 0, "no schedule exercised the dirty-abort path"
    assert invalidated_hit > 0, \
        "no schedule left an invalidated slot to observe"
    assert failures > 0, "every faulted checkpoint succeeded — the " \
                         "fault rates no longer bite"


def test_torn_slot_schedule_is_deterministic():
    first = run_torn_slot_schedule(BASE_SEED + 424_243)
    second = run_torn_slot_schedule(BASE_SEED + 424_243)
    assert first == second

"""Randomized chaos sweeps with the remediation operator in the loop.

The plain chaos sweep (test_chaos_properties) hands every broken
deployment back to the test harness for manual recovery.  Here the
schedules are *meaner* — crashed daemons get no scheduled restart,
power loss can land at exact metadata write boundaries, and structural
pool corruption is injected — and **zero manual recovery is allowed**:
the operator alone must detect, remediate, and verify until the
deployment converges.  The contract per schedule:

  * the operator converges (healthy + fsck-clean, no client held) with
    no manual ``portusctl``/restart call;
  * a final checkpoint rides the Portus path (drain-back really works);
  * the pool verifies fsck-clean read-only;
  * the newest Portus-acked step restores bit-exactly;
  * two runs of the same seed produce bit-identical results *including
    the operator's decision log*.

Knobs (environment variables):

  PORTUS_OPS_EXAMPLES  number of schedules to run (default 100)
  PORTUS_CHAOS_SEED    base seed (default 0)
  CHAOS_TRACE          append one deterministic line per schedule
                       (used by scripts/check_determinism.sh)
"""

import os
import random
import zlib

import pytest

from repro.core.failover import FailoverCheckpointer
from repro.core.retry import RetryPolicy
from repro.dnn.tensor import ModelInstance, TensorSpec
from repro.errors import ReproError
from repro.faults import FaultInjector, FaultPlan
from repro.harness.cluster import PaperCluster
from repro.ops.health import HealthThresholds
from repro.pmem.fsck import fsck
from repro.units import msecs, usecs

pytestmark = pytest.mark.chaos

EXAMPLES = int(os.environ.get("PORTUS_OPS_EXAMPLES", "100"))
BASE_SEED = int(os.environ.get("PORTUS_CHAOS_SEED", "0"))
TRACE_PATH = os.environ.get("CHAOS_TRACE")

SPECS = [TensorSpec("block.weight", (512, 256)),
         TensorSpec("block.bias", (512,)),
         TensorSpec("head.weight", (16, 512))]
STEPS = 8
HORIZON_NS = msecs(4)
SETTLE_DEADLINE_NS = msecs(120)


def _trace(line):
    if TRACE_PATH:
        with open(TRACE_PATH, "a") as fh:
            fh.write(line + "\n")


def run_operator_schedule(seed, events=5):
    """One self-healing chaos episode.

    Returns ``(portus_acked, restored, decisions_crc, stats)`` —
    everything a determinism check needs to compare, with the
    operator's decision log collapsed to a CRC and its remediation
    counters in ``stats``.
    """
    policy = RetryPolicy(rng=random.Random(seed ^ 0xA11CE),
                         max_attempts=16,
                         deadline_ns=msecs(25),
                         reply_timeout_ns=msecs(8))
    cluster = PaperCluster(
        seed=seed, ampere_nodes=0,
        daemon_kwargs=dict(request_timeout_ns=msecs(20),
                           lease_ns=msecs(5),
                           reaper_interval_ns=msecs(1)),
        client_retry=policy)

    def setup(env):
        instance = ModelInstance.materialize("model", SPECS,
                                             cluster.volta.gpus[0],
                                             model_seed=seed)
        session = yield from cluster.portus_client().register(instance)
        return instance, session

    instance, session = cluster.run(setup)
    failover = FailoverCheckpointer(cluster.env, session, cluster.volta,
                                    failure_threshold=2,
                                    probe_interval_ns=msecs(1),
                                    rng=random.Random(seed ^ 0xBAC0FF))
    operator = cluster.enable_operator(
        interval_ns=usecs(500),
        thresholds=HealthThresholds(wedge_ns=msecs(50)))
    operator.register_failover(failover)

    rng = random.Random(seed)
    plan = FaultPlan.random(rng, horizon_ns=HORIZON_NS, events=events,
                            auto_recover_daemon=False,
                            allow_pool_corrupt=True)
    injector = FaultInjector(cluster.env, cluster)
    # Every fourth schedule also arms a power cut at an exact metadata
    # write boundary — the "power loss at crash points" dimension.  The
    # recorder fires at most once; the operator must ride it out.
    if seed % 4 == 0:
        injector.arm_crash_point(cluster.server.pmem_devdax,
                                 crash_at=rng.randrange(4, 64))
    base = cluster.env.now
    injector.install(plan.shifted(base))

    portus_acked, paths = [], []

    def traffic(env):
        for step in range(1, STEPS + 1):
            instance.update_step(step)
            try:
                result = yield from failover.checkpoint(step)
            except ReproError:
                # e.g. a crash-point power failure erupting through a
                # mid-flight pull; the step is simply not acked.
                paths.append("error")
                continue
            paths.append(result["path"])
            if result["path"] == "portus":
                portus_acked.append(step)
            yield env.timeout(usecs(400))
        remaining = base + plan.horizon_ns() + usecs(50) - env.now
        if remaining > 0:
            yield env.timeout(remaining)

    cluster.run(traffic)

    # -- convergence: the operator alone heals the deployment ---------------------
    def settle(env):
        deadline = env.now + SETTLE_DEADLINE_NS
        while not operator.converged and env.now < deadline:
            yield env.timeout(msecs(1))
        return operator.converged

    converged = cluster.run(settle)
    context = (f"seed={seed} plan=[{'; '.join(plan.describe().splitlines())}]"
               f" paths={paths} decisions={operator.decisions[-8:]}")
    assert converged, f"operator never converged: {context}"

    # -- drain-back really works: the next checkpoint is durable ------------------
    def final_checkpoint(env):
        instance.update_step(STEPS + 1)
        return (yield from failover.checkpoint(STEPS + 1))

    result = cluster.run(final_checkpoint)
    assert result["path"] == "portus", \
        f"converged deployment still on the local path: {context}"
    portus_acked.append(STEPS + 1)

    # -- structural health --------------------------------------------------------
    report = fsck(cluster.portus_pool)
    assert report.clean, \
        f"fsck dirty after convergence: {report.describe()} {context}"

    # -- the newest acked checkpoint restores bit-exactly -------------------------
    def recover(env):
        instance.update_step(0)  # scramble the weights: restore must win
        return (yield from session.restore())

    restored = cluster.run(recover)
    assert restored == max(portus_acked), \
        f"restored {restored} != newest acked: {context}"
    mismatches = [
        tensor.name for tensor in instance.tensors
        if not tensor.content().equals(tensor.expected_content(restored))
    ]
    assert mismatches == [], f"torn restore {mismatches}: {context}"

    stats = (operator.restarts, operator.repairs, operator.drains)
    decisions_crc = zlib.crc32("\n".join(operator.decisions).encode())
    _trace(f"seed={seed} acked={portus_acked} restored={restored} "
           f"restarts={operator.restarts} repairs={operator.repairs} "
           f"drains={operator.drains} decisions_crc={decisions_crc:08x} "
           f"plan=[{'; '.join(plan.describe().splitlines())}]")
    return tuple(portus_acked), restored, decisions_crc, stats


def test_operator_chaos_schedules_self_heal():
    totals = {"restarts": 0, "repairs": 0, "drains": 0}
    for index in range(EXAMPLES):
        _acked, _restored, _crc, stats = run_operator_schedule(
            BASE_SEED + index)
        totals["restarts"] += stats[0]
        totals["repairs"] += stats[1]
        totals["drains"] += stats[2]
    # The sweep must actually exercise the operator, not degenerate
    # into all-healthy schedules that never needed remediation.
    assert totals["restarts"] > 0, "no schedule needed a restart"
    assert totals["repairs"] > 0, "no schedule needed a pool repair"
    assert totals["drains"] > 0, "no schedule drained a client back"


def test_operator_chaos_schedule_is_deterministic():
    seed = BASE_SEED + 424_243
    first = run_operator_schedule(seed)
    second = run_operator_schedule(seed)
    assert first == second, "same seed diverged (decision log included)"


def test_operator_chaos_crash_point_schedule_is_deterministic():
    seed = BASE_SEED + 424_244  # % 4 == 0: arms a crash point
    assert seed % 4 == 0
    first = run_operator_schedule(seed)
    second = run_operator_schedule(seed)
    assert first == second

"""Group-commit crash sweep: power loss at every two-phase boundary.

The counting pass runs a group lifecycle — register a tp=2 x pp=2
group, then eight group dumps — with a :class:`CrashPointRecorder`
numbering every metadata boundary: each member's checkpoint record
writes (the per-shard DONE flips), the group record's own
``record.write``/``record.persist`` (the commit persist), and the
daemon's manual ``group.ack`` point between the commit landing and the
ack leaving.  The sweep replays the lifecycle once per boundary,
power-failing the storage server exactly there, and asserts the
torn-group contract on recovery:

* ``repair`` leaves the pool fsck-clean;
* group restore returns the newest *fully committed* group step — at
  least the newest acked dump, never a step that was never dumped;
* every member comes back at that same step, bit-exactly — a restore
  may NEVER return a mixed-step (torn) group.

The schedule is pure simulation: the same seed enumerates the same
boundaries byte-for-byte (``PORTUS_CRASHPOINT_STRIDE`` subsamples).
"""

import os
import random
import zlib

import pytest

from repro.core.group import register_group
from repro.core.retry import RetryPolicy
from repro.dnn.gpt import shard_gpt, tiny_gpt
from repro.dnn.layout import gpt_layout
from repro.dnn.tensor import ModelInstance
from repro.errors import NoValidGroupCheckpoint, ReproError
from repro.faults import FaultInjector
from repro.harness.cluster import PaperCluster
from repro.pmem import PmemPool
from repro.pmem.fsck import fsck, repair
from repro.units import msecs

pytestmark = pytest.mark.chaos

STRIDE = int(os.environ.get("PORTUS_CRASHPOINT_STRIDE", "1"))
SEED = int(os.environ.get("PORTUS_CRASHPOINT_SEED", "13"))
TRACE_PATH = os.environ.get("CHAOS_TRACE")


def _trace(line):
    if TRACE_PATH:
        with open(TRACE_PATH, "a") as fh:
            fh.write(line + "\n")

CONFIG = tiny_gpt()
TP, PP = 2, 2
LAYOUT = gpt_layout(CONFIG, TP, PP)
SHARDS = shard_gpt(CONFIG, TP, PP)
DUMP_STEPS = (1, 2, 3, 4, 5, 6, 7, 8)
MIN_BOUNDARIES = 200


class GroupEpisode:
    """One group lifecycle with a recorder armed at ``crash_at``."""

    def __init__(self, crash_at=None):
        policy = RetryPolicy(rng=random.Random(SEED ^ 0x6EED),
                             max_attempts=1, deadline_ns=msecs(2),
                             reply_timeout_ns=msecs(1))
        self.cluster = PaperCluster(seed=SEED, ampere_nodes=0,
                                    client_retry=policy)
        self.injector = FaultInjector(self.cluster.env, self.cluster)
        self.device = self.cluster.server.pmem_devdax
        self.recorder = self.injector.arm_crash_point(self.device,
                                                      crash_at=crash_at)
        self.acked = []
        self.attempted = []
        self.instances = []
        self.phase = "init"

    def _bind_group(self, client):
        """Process: materialize + register every member, bind the group."""
        sessions = []
        self.instances = []
        for index, shard in enumerate(SHARDS):
            instance = ModelInstance.materialize(
                shard.name, shard.tensors,
                self.cluster.volta.gpus[index % 4],
                model_seed=SEED + index)
            session = yield from client.register(instance)
            self.instances.append(instance)
            sessions.append(session)
        group = yield from register_group(client, CONFIG.name, LAYOUT,
                                          sessions)
        return group

    def run_workload(self):
        cluster, recorder = self.cluster, self.recorder

        def lifecycle(env):
            try:
                self.phase = "register"
                group = yield from self._bind_group(
                    cluster.portus_client())
                for step in DUMP_STEPS:
                    if recorder.fired:
                        return
                    self.phase = f"group-dump-{step}"
                    for instance in self.instances:
                        instance.update_step(step)
                    self.attempted.append(step)
                    yield from group.dump(step)
                    self.acked.append(step)
                self.phase = "done"
            except ReproError:
                return

        cluster.run(lifecycle)

    def recover_and_verify(self):
        """The post-crash contract: repair to clean, then one group
        restore that must be uniform, committed, and bit-exact."""
        context = (f"crash at {self.recorder.fired} during "
                   f"phase={self.phase} acked={self.acked}")
        self.recorder.disarm()

        pool = PmemPool.open(self.device)
        result = repair(pool, obs=self.cluster.obs)
        assert result.clean, f"{context}:\n{result.describe()}"
        report = fsck(pool)
        assert report.clean, f"{context}:\n{report.describe()}"
        pool.close()

        self.cluster.restart_daemon()
        cluster = self.cluster

        def recover(env):
            group = yield from self._bind_group(cluster.portus_client())
            try:
                step = yield from group.restore()
            except NoValidGroupCheckpoint:
                return None
            return step

        restored = self.cluster.run(recover)
        if self.acked:
            assert restored is not None, f"acked group steps lost: {context}"
            assert restored >= max(self.acked), \
                f"committed group step regressed: {context}"
        if restored is None:
            return None
        # An unacked step may legitimately survive (power cut at the
        # ack boundary still persisted the commit); a never-dumped step
        # may not.
        assert restored in self.attempted, \
            f"restored a never-dumped step: {context}"
        # THE torn-group assertion: every member at the same step,
        # holding exactly that step's bytes.
        steps = {instance.step for instance in self.instances}
        assert steps == {restored}, f"torn group {steps}: {context}"
        for instance in self.instances:
            mismatches = [
                tensor.spec.name for tensor in instance.tensors
                if not tensor.content().equals(
                    tensor.expected_content(restored))]
            assert mismatches == [], f"torn restore {mismatches}: {context}"
        return restored


def _boundary_schedule():
    episode = GroupEpisode(crash_at=None)
    episode.run_workload()
    assert episode.phase == "done"
    assert episode.acked == list(DUMP_STEPS)
    return episode.recorder.boundaries


def test_counting_pass_covers_group_commit_boundaries():
    episode = GroupEpisode(crash_at=None)
    episode.run_workload()
    assert episode.phase == "done" and episode.acked == list(DUMP_STEPS)
    points = {line.split(":")[1] for line in episode.recorder.boundaries}
    # The whole two-phase window must be in the schedule: the group
    # record's A/B write boundaries AND the post-persist ack point.
    assert "group.ack" in points
    group_lines = [line for line in episode.recorder.boundaries
                   if "portus-group" in line]
    assert any(":record.write:" in line for line in group_lines)
    assert any(":record.persist:" in line for line in group_lines)
    assert episode.recorder.count >= MIN_BOUNDARIES
    pool = PmemPool.open(episode.device)
    assert fsck(pool).clean  # a fault-free group lifecycle leaves no debris


def test_group_boundary_schedule_is_deterministic():
    assert _boundary_schedule() == _boundary_schedule()


def test_power_loss_at_every_group_boundary_recovers_untorn():
    schedule = _boundary_schedule()
    assert len(schedule) >= MIN_BOUNDARIES
    outcomes = []
    for index in range(0, len(schedule), STRIDE):
        episode = GroupEpisode(crash_at=index)
        episode.run_workload()
        assert episode.recorder.fired is not None, \
            f"boundary {index} never fired (schedule drifted?)"
        assert episode.recorder.fired == schedule[index]
        restored = episode.recover_and_verify()
        outcomes.append(f"{schedule[index]}:restored={restored}")
    assert len(outcomes) == len(range(0, len(schedule), STRIDE))
    crc = zlib.crc32("\n".join(outcomes).encode())
    _trace(f"group-crash seed={SEED} stride={STRIDE} "
           f"boundaries={len(schedule)} swept={len(outcomes)} "
           f"crc={crc:08x}")

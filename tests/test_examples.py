"""Smoke tests: every shipped example runs and reports success markers."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"

CASES = [
    ("quickstart.py", ["bit-exact", "GPU utilization"]),
    ("distributed_gpt.py", ["bit-exact", "correctly ignored"]),
    ("multi_tenant.py", ["daemon:", "DONE"]),
    ("datapath_probe.py", ["GPU BAR read peak", "5.80GB/s"]),
    ("share_checkpoint.py", ["all bit-exact", "repacked", "dedup saved",
                             "shared chunks", "both tenants bit-exact"]),
    ("frequency_study.py", ["checkpoint cadence", "portus"]),
]


@pytest.mark.parametrize("script,markers", CASES,
                         ids=[case[0] for case in CASES])
def test_example_runs(script, markers):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True, text=True, timeout=300)
    assert result.returncode == 0, result.stderr[-2000:]
    for marker in markers:
        assert marker in result.stdout, (marker, result.stdout[-2000:])
    # No example may hide a failure behind a MISMATCH print.
    assert "MISMATCH" not in result.stdout

"""Tests for the training loop, its hooks, and utilization recording."""

import pytest

from repro.dnn.tensor import ModelInstance, TensorSpec
from repro.dnn.training import CheckpointHook, TrainingJob
from repro.hw import GpuMemory
from repro.sim import Environment
from repro.units import SECOND, gib, msecs


def make_job(env, hook=None, ranks=1, iteration_ns=msecs(100)):
    models = []
    for i in range(ranks):
        gpu = GpuMemory(env, name=f"gpu{i}", capacity=gib(4))
        specs = [TensorSpec("w", (256, 256))]
        models.append(ModelInstance.materialize(f"m{i}", specs, gpu))
    return TrainingJob(env, models, iteration_ns=iteration_ns, hook=hook)


def test_iterations_advance_clock():
    env = Environment()
    job = make_job(env)
    env.run_process(env.process(job.run(10)))
    assert job.iterations_done == 10
    assert job.elapsed_ns == 10 * msecs(100)


def test_updates_change_model_step():
    env = Environment()
    job = make_job(env)
    env.run_process(env.process(job.run(3)))
    assert all(model.step == 3 for model in job.models)
    tensor = job.models[0].tensors[0]
    assert tensor.content().equals(tensor.expected_content(3))


def test_full_utilization_without_hook():
    env = Environment()
    job = make_job(env)
    env.run_process(env.process(job.run(5)))
    util = job.recorders[0].utilization(job.started_at, job.finished_at)
    assert util == pytest.approx(1.0, abs=1e-9)


def test_hook_stall_shows_as_idle():
    env = Environment()

    class Stall(CheckpointHook):
        def after_update(self, job, iteration):
            yield job.env.timeout(msecs(100))  # stall as long as an iter

    job = make_job(env, hook=Stall())
    env.run_process(env.process(job.run(5)))
    util = job.recorders[0].utilization(job.started_at, job.finished_at)
    assert util == pytest.approx(0.5, abs=0.01)


def test_hook_order_and_arguments():
    env = Environment()
    calls = []

    class Tracker(CheckpointHook):
        def on_job_start(self, job):
            calls.append("start")
            return
            yield

        def after_backward(self, job, iteration):
            calls.append(("ab", iteration, job.models[0].step))
            return
            yield

        def after_update(self, job, iteration):
            calls.append(("au", iteration, job.models[0].step))
            return
            yield

        def on_job_end(self, job):
            calls.append("end")
            return
            yield

    job = make_job(env, hook=Tracker())
    env.run_process(env.process(job.run(2)))
    # after_backward sees the PREVIOUS step's parameters (not yet updated).
    assert calls == ["start", ("ab", 1, 0), ("au", 1, 1),
                     ("ab", 2, 1), ("au", 2, 2), "end"]


def test_multi_rank_lockstep():
    env = Environment()
    job = make_job(env, ranks=4)
    env.run_process(env.process(job.run(3)))
    assert len(job.recorders) == 4
    for recorder in job.recorders:
        assert recorder.utilization(job.started_at,
                                    job.finished_at) == pytest.approx(1.0)


def test_run_for_duration():
    env = Environment()
    job = make_job(env, iteration_ns=msecs(100))
    env.run_process(env.process(job.run_for(1 * SECOND)))
    assert job.iterations_done == 10
    assert job.throughput_iters_per_sec() == pytest.approx(10.0, rel=0.01)


def test_phase_fractions_validated():
    env = Environment()
    gpu = GpuMemory(env, capacity=gib(1))
    model = ModelInstance.materialize("m", [TensorSpec("w", (8,))], gpu)
    with pytest.raises(ValueError, match="sum to 1"):
        TrainingJob(env, [model], iteration_ns=1000,
                    phase_fractions=(0.5, 0.4, 0.4))
    with pytest.raises(ValueError, match="at least one rank"):
        TrainingJob(env, [], iteration_ns=1000)

"""Sharded-layout descriptors and the resharding algebra (unit level).

The invariants the group checkpoint layer leans on:

* the wire encoding round-trips exactly (the blob lives inside the
  group's PMem commit record);
* :func:`gpt_layout` stays in lockstep with :func:`shard_gpt` — every
  member's local specs are exactly the shard's tensors;
* extract/assemble are mutual inverses for every partition kind; and
* a reshard between topologies equals slicing the global tensor for
  the target directly — bit-exact by construction.
"""

import zlib

import pytest

from repro.dnn.dtypes import DType
from repro.dnn.gpt import shard_gpt, tiny_gpt
from repro.dnn.layout import (PartitionSpec, ShardedLayout, assemble,
                              derive_partition, extract, gpt_layout,
                              reshard)
from repro.dnn.tensor import TensorSpec
from repro.errors import ReproError
from repro.hw.content import ByteContent

CONFIG = tiny_gpt()


def _pattern(size, salt):
    return ByteContent(bytes((i * 31 + salt) % 251 for i in range(size)))


def test_layout_pack_unpack_round_trip():
    layout = gpt_layout(CONFIG, 4, 2)
    blob = layout.pack()
    assert ShardedLayout.unpack(blob) == layout
    assert ShardedLayout.unpack(blob).pack() == blob


def test_unpack_rejects_garbage():
    with pytest.raises(ReproError, match="magic"):
        ShardedLayout.unpack(b"\x00" * 64)


def test_gpt_layout_lockstep_with_shard_gpt():
    for tp, pp in ((1, 1), (2, 2), (8, 2)):
        layout = gpt_layout(CONFIG, tp, pp)
        shards = shard_gpt(CONFIG, tp, pp)
        assert layout.members == [shard.name for shard in shards]
        for shard in shards:
            local = layout.member_specs(shard.name)
            assert [(s.name, s.shape) for s in local] == \
                [(s.name, s.shape) for s in shard.tensors]


def test_derive_partition_covers_all_kinds():
    full = TensorSpec("w", (8, 4), DType.by_name("float16"))
    assert derive_partition(full, full, 0, 1).axis is None
    col = derive_partition(full, TensorSpec("w", (2, 4), full.dtype), 1, 4)
    assert (col.axis, col.part, col.parts) == (0, 1, 4)
    row = derive_partition(full, TensorSpec("w", (8, 1), full.dtype), 3, 4)
    assert (row.axis, row.part, row.parts) == (1, 3, 4)
    with pytest.raises(ReproError, match="not a recognized"):
        derive_partition(full, TensorSpec("w", (3, 3), full.dtype), 0, 2)


@pytest.mark.parametrize("axis", [None, 0, 1])
def test_extract_assemble_round_trip(axis):
    dtype = DType.by_name("float16")
    shape = (8, 6)
    full = _pattern(8 * 6 * dtype.itemsize, salt=7)
    parts = 1 if axis is None else 2
    specs = [PartitionSpec("w", shape, dtype, axis=axis, part=p,
                           parts=parts) for p in range(parts)]
    pieces = [extract(spec, full) for spec in specs]
    rebuilt = assemble(zip(specs, pieces))
    assert rebuilt.equals(full)


def test_assemble_rejects_missing_partition():
    dtype = DType.by_name("float16")
    spec = PartitionSpec("w", (8, 4), dtype, axis=0, part=0, parts=2)
    piece = _pattern(spec.local_size_bytes, salt=1)
    with pytest.raises(ReproError, match="missing partitions"):
        assemble([(spec, piece)])


@pytest.mark.parametrize("src,dst", [((8, 2), (4, 1)), ((8, 2), (2, 2)),
                                     ((2, 2), (1, 1)), ((1, 1), (4, 2))])
def test_reshard_matches_direct_global_slicing(src, dst):
    source = gpt_layout(CONFIG, *src)
    target = gpt_layout(CONFIG, *dst)
    globals_ = {name: _pattern(spec.size_bytes,
                               salt=zlib.crc32(name.encode()) % 199)
                for name, spec in source.global_specs().items()}
    contents = {member: {spec.name: extract(spec, globals_[spec.name])
                         for spec in source.partitions[member]}
                for member in source.members}
    out = reshard(source, contents, target)
    for member in target.members:
        for spec in target.partitions[member]:
            want = extract(spec, globals_[spec.name])
            assert out[member][spec.name].equals(want), \
                f"{member}/{spec.name}"


def test_reshard_rejects_mismatched_coverage():
    source = gpt_layout(CONFIG, 2, 1)
    target = gpt_layout(tiny_gpt(name="other", layers=2), 2, 1)
    contents = {member: {spec.name: _pattern(spec.local_size_bytes, 3)
                         for spec in source.partitions[member]}
                for member in source.members}
    with pytest.raises(ReproError, match="different tensors"):
        reshard(source, contents, target)

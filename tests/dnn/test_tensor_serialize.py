"""Tests for tensors on devices and the torch.save-like format."""

import pytest

from repro.dnn.dtypes import float16, float32
from repro.dnn.models import build_model
from repro.dnn.optimizer import checkpoint_specs, optimizer_state_specs
from repro.dnn.serialize import (deserialize_state_dict, file_size_for,
                                 serialization_time_ns,
                                 serialize_state_dict)
from repro.dnn.tensor import ModelInstance, TensorSpec, tensor_seed
from repro.hw import GpuMemory
from repro.sim import Environment
from repro.units import gib


@pytest.fixture
def gpu():
    env = Environment()
    return GpuMemory(env, capacity=gib(8))


def small_model(gpu, name="tiny", seed=3):
    specs = [TensorSpec("layer0.weight", (64, 32)),
             TensorSpec("layer0.bias", (64,)),
             TensorSpec("head.weight", (10, 64), float16)]
    return ModelInstance.materialize(name, specs, gpu, model_seed=seed)


# --- specs and tensors ------------------------------------------------------------


def test_spec_size_accounts_dtype():
    assert TensorSpec("w", (4, 4), float32).size_bytes == 64
    assert TensorSpec("w", (4, 4), float16).size_bytes == 32


def test_spec_rejects_bad_shapes():
    with pytest.raises(ValueError):
        TensorSpec("w", (0, 4))
    with pytest.raises(ValueError):
        TensorSpec("", (4,))


def test_materialize_allocates_on_device(gpu):
    model = small_model(gpu)
    assert gpu.used_bytes >= model.total_bytes
    model.free()
    assert gpu.used_bytes == 0


def test_update_step_changes_content(gpu):
    model = small_model(gpu)
    tensor = model.tensors[0]
    before = tensor.content()
    version_before = tensor.allocation.version
    model.update_step(1)
    assert tensor.allocation.version > version_before
    assert not tensor.content().equals(before)


def test_content_is_deterministic_per_step(gpu):
    model = small_model(gpu)
    model.update_step(5)
    expected = model.tensors[0].expected_content(5)
    assert model.tensors[0].content().equals(expected)


def test_tensor_seed_distinguishes_everything():
    assert tensor_seed(1, "a", 0) != tensor_seed(1, "b", 0)
    assert tensor_seed(1, "a", 0) != tensor_seed(1, "a", 1)
    assert tensor_seed(1, "a", 0) != tensor_seed(2, "a", 0)


def test_verify_against_detects_mismatch(gpu):
    model = small_model(gpu)
    model.update_step(2)
    contents = {t.name: t.expected_content(2) for t in model.tensors}
    assert model.verify_against(contents) == []
    contents["layer0.bias"] = model.tensors[0].expected_content(1)
    assert model.verify_against(contents) == ["layer0.bias"]


# --- serialization ------------------------------------------------------------------


def test_serialize_roundtrip(gpu):
    model = small_model(gpu)
    model.update_step(7)
    image = serialize_state_dict(model.tensors)
    parsed = deserialize_state_dict(image)
    assert set(parsed) == {t.name for t in model.tensors}
    for tensor in model.tensors:
        spec, payload = parsed[tensor.name]
        assert spec == tensor.spec
        assert payload.equals(tensor.expected_content(7))


def test_file_size_matches_image(gpu):
    model = small_model(gpu)
    image = serialize_state_dict(model.tensors)
    assert image.size == file_size_for([t.spec for t in model.tensors])


def test_deserialize_rejects_garbage():
    from repro.hw.content import ByteContent
    with pytest.raises(ValueError, match="magic"):
        deserialize_state_dict(ByteContent(b"not a checkpoint" + bytes(32)))


def test_serialization_cost_scales():
    small = serialization_time_ns(int(100e6), 100)
    large = serialization_time_ns(int(1e9), 100)
    assert large > 9 * small


def test_serialize_full_resnet_image(gpu):
    model_spec = build_model("resnet50")
    model = ModelInstance.materialize("resnet50", model_spec.tensors, gpu)
    image = serialize_state_dict(model.tensors)
    assert image.size > model_spec.total_bytes
    parsed = deserialize_state_dict(image)
    assert len(parsed) == 161


# --- optimizer specs ----------------------------------------------------------------


def test_sgd_momentum_doubles_state():
    params = build_model("resnet50").tensors
    extra = optimizer_state_specs(params, "sgd_momentum")
    assert len(extra) == len(params)
    assert sum(s.size_bytes for s in extra) == sum(
        s.size_bytes for s in params)


def test_adam_state_triples_plus_steps():
    params = [TensorSpec("w", (8, 8))]
    extra = optimizer_state_specs(params, "adam")
    assert len(extra) == 3
    names = {s.name for s in extra}
    assert names == {"optimizer.exp_avg.w", "optimizer.exp_avg_sq.w",
                     "optimizer.step.w"}


def test_plain_sgd_adds_nothing():
    params = [TensorSpec("w", (8, 8))]
    assert checkpoint_specs(params, "sgd") == params


def test_unknown_optimizer_rejected():
    with pytest.raises(ValueError, match="unknown optimizer"):
        optimizer_state_specs([], "adamw2")

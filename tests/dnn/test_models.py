"""Validate the model zoo against the paper's Table II."""

import pytest

from repro.dnn.gpt import GPT_CONFIGS, build_gpt, shard_gpt, total_checkpoint_bytes
from repro.dnn.models import MODEL_BUILDERS, TABLE_II, build_model
from repro.units import MIB


# --- exact parameter counts (torchvision / HF reference values) -----------------

EXACT_PARAMS = {
    "alexnet": 61_100_840,
    "convnext_base": 88_591_464,
    "resnet50": 25_557_032,
    "swin_b": 87_768_224,
    "vgg19_bn": 143_678_248,
    "vit_l_32": 306_535_400,
}


@pytest.mark.parametrize("name,expected", sorted(EXACT_PARAMS.items()))
def test_exact_parameter_counts(name, expected):
    assert build_model(name).param_count == expected


def test_bert_large_parameter_count_close():
    # HF bert-large-uncased with MLM head (decoder tied): ~336.2M.
    model = build_model("bert_large")
    assert model.param_count == pytest.approx(336.2e6, rel=0.001)


@pytest.mark.parametrize("name", sorted(TABLE_II))
def test_table_ii_layer_counts(name):
    assert build_model(name).tensor_count == TABLE_II[name]["layers"]


@pytest.mark.parametrize("name", sorted(TABLE_II))
def test_table_ii_sizes(name):
    size_mib = build_model(name).total_bytes / MIB
    assert size_mib == pytest.approx(TABLE_II[name]["size_mib"], rel=0.01)


@pytest.mark.parametrize("name", sorted(TABLE_II))
def test_table_ii_param_totals(name):
    params = build_model(name).param_count
    assert params == pytest.approx(TABLE_II[name]["params"], rel=0.005)


def test_unknown_model_rejected():
    with pytest.raises(ValueError, match="unknown model"):
        build_model("resnet51")


def test_all_tensor_names_unique():
    for name in MODEL_BUILDERS:
        model = build_model(name)
        names = [spec.name for spec in model.tensors]
        assert len(names) == len(set(names)), name


# --- GPT configs -----------------------------------------------------------------


@pytest.mark.parametrize("name,billions", [
    ("gpt-1.5b", 1.56), ("gpt-4.2b", 4.24), ("gpt-8.3b", 8.27),
    ("gpt-12.9b", 12.85), ("gpt-22.4b", 22.52),
])
def test_gpt_config_param_counts(name, billions):
    config = GPT_CONFIGS[name]
    assert config.param_count() / 1e9 == pytest.approx(billions, rel=0.01)


def test_gpt_22b_checkpoint_near_paper_size():
    # The paper: 22.4B parameters => 89.6 GB of fp32 checkpoint data.
    config = GPT_CONFIGS["gpt-22.4b"]
    assert config.param_count() * 4 / 1e9 == pytest.approx(89.6, rel=0.02)


def test_unsharded_gpt_matches_formula():
    config = GPT_CONFIGS["gpt-1.5b"]
    model = build_gpt(config)
    assert model.param_count == config.param_count()


@pytest.mark.parametrize("tp,pp", [(1, 1), (8, 2), (4, 4), (2, 1)])
def test_sharding_preserves_sharded_tensors(tp, pp):
    """Column/row-parallel tensors split exactly; norms and biases are
    replicated per Megatron semantics, so the shard sum exceeds the
    unsharded total by exactly the replication overhead."""
    config = GPT_CONFIGS["gpt-1.5b"]
    shards = shard_gpt(config, tensor_parallel=tp, pipeline_parallel=pp)
    assert len(shards) == tp * pp
    total = sum(shard.param_count for shard in shards)
    h, layers = config.hidden, config.layers
    replicated_per_extra_rank = layers * (
        4 * h        # the two layer norms
        + h          # attention.dense bias (row-parallel, replicated here)
        + h          # mlp.dense_4h_to_h bias
    ) + (2 * h       # final layernorm
         + config.seq_length * h)  # position embeddings on stage-0 ranks
    expected = config.param_count() + (tp - 1) * replicated_per_extra_rank
    assert total == expected


def test_shard_names_follow_megatron_convention():
    shards = shard_gpt(GPT_CONFIGS["gpt-1.5b"], 2, 2)
    names = [shard.name for shard in shards]
    assert names == [
        "gpt-1.5b/mp_rank_00_000", "gpt-1.5b/mp_rank_01_000",
        "gpt-1.5b/mp_rank_00_001", "gpt-1.5b/mp_rank_01_001",
    ]


def test_pipeline_stage_layer_distribution():
    config = GPT_CONFIGS["gpt-22.4b"]  # 49 layers over 2 stages: 25 + 24
    shards = shard_gpt(config, tensor_parallel=1, pipeline_parallel=2)
    stage0_layers = sum(1 for spec in shards[0].tensors
                        if "input_layernorm.weight" in spec.name)
    stage1_layers = sum(1 for spec in shards[1].tensors
                        if "input_layernorm.weight" in spec.name)
    assert (stage0_layers, stage1_layers) == (25, 24)


def test_total_checkpoint_bytes_accounts_all_shards():
    config = GPT_CONFIGS["gpt-1.5b"]
    total = total_checkpoint_bytes(config, 8, 2)
    assert total == sum(s.total_bytes for s in shard_gpt(config, 8, 2))


def test_indivisible_tensor_parallel_rejected():
    config = GPT_CONFIGS["gpt-1.5b"]  # hidden 1600
    with pytest.raises(ValueError, match="not divisible"):
        shard_gpt(config, tensor_parallel=7, pipeline_parallel=1)


def test_iteration_time_scales_with_size():
    small = GPT_CONFIGS["gpt-1.5b"].iteration_ns()
    large = GPT_CONFIGS["gpt-22.4b"].iteration_ns()
    assert large > 10 * small
    # The Fig. 2 anchor: ~1.78 s per iteration at 22.4B.
    assert large == pytest.approx(1.79e9, rel=0.02)

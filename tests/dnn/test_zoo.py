"""Validate the extended zoo against known torchvision parameter counts."""

import pytest

from repro.dnn.zoo import (ZOO_BUILDERS, all_model_names, build_resnet,
                           build_zoo_model)

# torchvision reference values.
EXACT = {
    "resnet18": 11_689_512,
    "resnet34": 21_797_672,
    "resnet101": 44_549_160,
    "resnet152": 60_192_808,
    "vgg11_bn": 132_868_840,
    "vgg13_bn": 133_053_736,
    "vgg16_bn": 138_365_992,
    "vit_b_16": 86_567_656,
    "vit_b_32": 88_224_232,
    "vit_l_16": 304_326_632,
    "swin_t": 28_288_354,
    "swin_s": 49_606_258,
    "convnext_tiny": 28_589_128,
    "convnext_small": 50_223_688,
    "convnext_large": 197_767_336,
}


@pytest.mark.parametrize("name,expected", sorted(EXACT.items()))
def test_exact_zoo_parameter_counts(name, expected):
    assert build_zoo_model(name).param_count == expected


def test_zoo_includes_table_ii_models():
    names = all_model_names()
    for representative in ("resnet50", "bert_large", "vit_l_32"):
        assert representative in names
    assert len(names) >= 22


def test_family_builders_match_table_ii_versions():
    """The generalized builders must regenerate the Table II variants."""
    from repro.dnn.models import build_model
    from repro.dnn.zoo import build_convnext, build_swin, build_vit

    assert build_resnet("resnet50", "bottleneck",
                        (3, 4, 6, 3)).param_count == \
        build_model("resnet50").param_count
    assert build_vit("vit_l_32", 32, 1024, 24, 4096).param_count == \
        build_model("vit_l_32").param_count
    assert build_swin("swin_b", 128, (2, 2, 18, 2),
                      (4, 8, 16, 32)).param_count == \
        build_model("swin_b").param_count
    assert build_convnext("convnext_base", (128, 256, 512, 1024),
                          (3, 3, 27, 3)).param_count == \
        build_model("convnext_base").param_count


def test_zoo_names_unique_per_model():
    for name in ZOO_BUILDERS:
        model = build_zoo_model(name)
        tensor_names = [spec.name for spec in model.tensors]
        assert len(tensor_names) == len(set(tensor_names)), name


def test_unknown_zoo_model_rejected():
    with pytest.raises(ValueError, match="unknown model"):
        build_zoo_model("resnet9000")


def test_bad_block_kind_rejected():
    with pytest.raises(ValueError, match="block kind"):
        build_resnet("x", "bottlenек", (2, 2, 2, 2))

"""Unit tests for cost ledgers and interval recorders."""

import pytest

from repro.metrics import CostLedger, IntervalRecorder, aggregate_utilization


# --- CostLedger ----------------------------------------------------------------


def test_ledger_accumulates():
    ledger = CostLedger()
    ledger.add("rdma", 100)
    ledger.add("rdma", 50)
    ledger.add("serialize", 150)
    assert ledger.get("rdma") == 150
    assert ledger.total() == 300
    assert ledger.fraction("serialize") == 0.5


def test_ledger_empty_fractions():
    ledger = CostLedger()
    assert ledger.fraction("anything") == 0.0
    assert ledger.fractions() == {}
    assert ledger.total() == 0


def test_ledger_rejects_negative():
    ledger = CostLedger()
    with pytest.raises(ValueError):
        ledger.add("x", -1)


def test_ledger_merge_and_reset():
    a = CostLedger()
    a.add("x", 10)
    b = CostLedger()
    b.add("x", 5)
    b.add("y", 1)
    a.merge(b)
    assert a.asdict() == {"x": 15, "y": 1}
    a.reset()
    assert a.total() == 0


# --- IntervalRecorder -------------------------------------------------------------


def test_recorder_basic_utilization():
    recorder = IntervalRecorder("gpu")
    recorder.begin(0)
    recorder.end(60)
    recorder.begin(80)
    recorder.end(100)
    assert recorder.busy_ns(0, 100) == 80
    assert recorder.utilization(0, 100) == pytest.approx(0.8)


def test_recorder_window_clipping():
    recorder = IntervalRecorder()
    recorder.begin(10)
    recorder.end(90)
    assert recorder.busy_ns(50, 100) == 40
    assert recorder.busy_ns(0, 50) == 40
    assert recorder.busy_ns(200, 300) == 0


def test_recorder_open_interval_counts():
    recorder = IntervalRecorder()
    recorder.begin(50)
    assert recorder.busy
    assert recorder.utilization(0, 100) == pytest.approx(0.5)


def test_recorder_misuse_detected():
    recorder = IntervalRecorder("r")
    with pytest.raises(ValueError, match="idle"):
        recorder.end(10)
    recorder.begin(0)
    with pytest.raises(ValueError, match="busy"):
        recorder.begin(5)
    with pytest.raises(ValueError, match="before begin"):
        recorder.end(-1)


def test_recorder_trace_bins():
    recorder = IntervalRecorder()
    recorder.begin(0)
    recorder.end(50)
    trace = recorder.trace(0, 100, bin_ns=25)
    assert [u for _t, u in trace] == [1.0, 1.0, 0.0, 0.0]
    assert [t for t, _u in trace] == [0, 25, 50, 75]


def test_recorder_trace_validates_bin():
    recorder = IntervalRecorder()
    with pytest.raises(ValueError):
        recorder.trace(0, 100, bin_ns=0)


def test_aggregate_utilization():
    a = IntervalRecorder()
    a.begin(0)
    a.end(100)
    b = IntervalRecorder()
    b.begin(0)
    b.end(50)
    assert aggregate_utilization([a, b], 0, 100) == pytest.approx(0.75)
    assert aggregate_utilization([], 0, 100) == 0.0


def test_zero_length_window():
    recorder = IntervalRecorder()
    assert recorder.utilization(10, 10) == 0.0

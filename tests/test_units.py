"""Unit tests for unit helpers and formatting."""

import pytest

from repro import units


def test_size_constants():
    assert units.KIB == 1024
    assert units.MIB == 1024 ** 2
    assert units.GIB == 1024 ** 3
    assert units.mib(1.5) == 1536 * 1024


def test_time_constants():
    assert units.SECOND == 1_000_000_000
    assert units.usecs(2.5) == 2500
    assert units.msecs(1) == 1_000_000
    assert units.secs(0.25) == 250_000_000


def test_bandwidth_conversions():
    assert units.gbps(100) == pytest.approx(12.5e9)
    assert units.gbytes(5.8) == pytest.approx(5.8e9)
    assert units.mbytes(1) == 1e6


def test_transfer_time_rounds_up():
    # 1 byte at 1 GB/s is 1ns exactly; 1 byte at 3 GB/s rounds up to 1ns.
    assert units.transfer_time_ns(1, 1e9) == 1
    assert units.transfer_time_ns(1, 3e9) == 1
    assert units.transfer_time_ns(int(1e9), 1e9) == units.SECOND
    assert units.transfer_time_ns(0, 1e9) == 0


def test_transfer_time_validates():
    with pytest.raises(ValueError):
        units.transfer_time_ns(-1, 1e9)
    with pytest.raises(ValueError):
        units.transfer_time_ns(1, 0)


def test_bandwidth_achieved():
    assert units.bandwidth_achieved(int(1e9), units.SECOND) == \
        pytest.approx(1e9)
    with pytest.raises(ValueError):
        units.bandwidth_achieved(1, 0)


def test_fmt_bytes():
    assert units.fmt_bytes(512) == "512B"
    assert units.fmt_bytes(units.mib(97)) == "97.00MiB"
    assert units.fmt_bytes(units.gib(1) + units.mib(256)) == "1.25GiB"
    assert units.fmt_bytes(-units.KIB) == "-1.00KiB"


def test_fmt_time():
    assert units.fmt_time(500) == "500ns"
    assert units.fmt_time(units.usecs(3)) == "3.000us"
    assert units.fmt_time(units.msecs(42)) == "42.000ms"
    assert units.fmt_time(units.secs(1.5)) == "1.500s"


def test_fmt_bandwidth():
    assert units.fmt_bandwidth(5.8e9) == "5.80GB/s"
    assert units.fmt_bandwidth(2.5e6) == "2.50MB/s"
    assert units.fmt_bandwidth(999) == "999.00B/s"

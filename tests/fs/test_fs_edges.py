"""Edge cases across the filesystem layer."""

import pytest

from repro.errors import ConnectionClosed
from repro.fs import DaxFilesystem, Filesystem, LocalExtFilesystem
from repro.hw import ByteContent, NvmeDevice, PatternContent, PmemDimm
from repro.sim import Environment
from repro.units import gib, mib


def run(env, gen):
    return env.run_process(env.process(gen))


def test_read_beyond_eof_returns_short():
    env = Environment()
    fs = Filesystem(env, "mem")

    def scenario(env):
        yield from fs.write_file("/f", ByteContent(b"12345"))
        handle = yield from fs.open("/f")
        handle.seek(3)
        content = yield from handle.read(100)
        return content.to_bytes()

    assert run(env, scenario(env)) == b"45"


def test_read_at_eof_returns_empty():
    env = Environment()
    fs = Filesystem(env, "mem")

    def scenario(env):
        yield from fs.write_file("/f", ByteContent(b"abc"))
        handle = yield from fs.open("/f")
        handle.seek(3)
        content = yield from handle.read(10)
        return content.size

    assert run(env, scenario(env)) == 0


def test_listdir_root():
    env = Environment()
    fs = Filesystem(env, "mem")

    def scenario(env):
        yield from fs.mkdir("/a")
        yield from fs.write_file("/b", ByteContent(b"x"))
        names = yield from fs.listdir("/")
        return names

    assert run(env, scenario(env)) == ["a", "b"]


def test_write_without_fsync_faster_on_ext4():
    env = Environment()
    fs = LocalExtFilesystem(env, NvmeDevice(env))

    def timed(env, fsync):
        start = env.now
        yield from fs.write_file(f"/f-{fsync}",
                                 PatternContent(seed=1, size=mib(4)),
                                 fsync=fsync)
        return env.now - start

    with_sync = run(env, timed(env, True))
    without = run(env, timed(env, False))
    assert without < with_sync


def test_dax_fsync_far_cheaper_than_ext4():
    env = Environment()
    ext4 = LocalExtFilesystem(env, NvmeDevice(env))
    dax = DaxFilesystem(env, PmemDimm(env, dimms=1, dimm_capacity=gib(2)))

    def fsync_cost(env, fs):
        handle = yield from fs.open("/f", create=True)
        yield from handle.write(ByteContent(b"x" * 4096))
        start = env.now
        yield from handle.fsync()
        cost = env.now - start
        yield from handle.close()
        return cost

    ext4_cost = run(env, fsync_cost(env, ext4))
    dax_cost = run(env, fsync_cost(env, dax))
    assert dax_cost < ext4_cost / 10


def test_direct_read_skips_page_cache_cost():
    env = Environment()
    fs = LocalExtFilesystem(env, NvmeDevice(env))
    size = mib(64)

    def setup(env):
        yield from fs.write_file("/f", PatternContent(seed=2, size=size))

    run(env, setup(env))

    def timed(env, direct):
        handle = yield from fs.open("/f")
        start = env.now
        yield from handle.read(size, direct=direct)
        elapsed = env.now - start
        yield from handle.close()
        return elapsed

    buffered = run(env, timed(env, False))
    direct = run(env, timed(env, True))
    assert direct < buffered


def test_tcp_send_after_close_raises():
    from repro.net import Fabric, TcpStack

    env = Environment()
    fabric = Fabric(env)
    a = TcpStack(env, fabric, fabric.attach("a"), "a")
    b = TcpStack(env, fabric, fabric.attach("b"), "b")

    def scenario(env):
        listener = b.listen(1)
        conn = yield from a.connect("b", 1)
        yield from listener.accept()
        conn.close()
        with pytest.raises(ConnectionClosed):
            yield from conn.send("late")
        return True

    assert run(env, scenario(env))

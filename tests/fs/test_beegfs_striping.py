"""Tests for multi-target BeeGFS striping."""

import pytest

from repro.fs import DaxFilesystem
from repro.fs.beegfs import BeegfsClient, BeegfsServer, StripePattern
from repro.hw import ComputeNode, PatternContent, PmemDimm, StorageNode
from repro.net import Fabric
from repro.rdma import Rnic
from repro.sim import Environment
from repro.units import gib, kib, mib


def make_striped(targets=3):
    env = Environment()
    fabric = Fabric(env)
    server_node = StorageNode(env, "server")
    Rnic(env, server_node, fabric)
    backings = [
        DaxFilesystem(env, PmemDimm(env, name=f"pmem{i}", dimms=1,
                                    dimm_capacity=gib(8)),
                      name=f"dax{i}")
        for i in range(targets)
    ]
    server = BeegfsServer(env, server_node, backings)
    node = ComputeNode(env, "client", gpu_count=1)
    Rnic(env, node, fabric)
    holder = {}

    def setup(env):
        holder["client"] = yield from BeegfsClient.mount(env, node, server)

    env.run_process(env.process(setup(env)))
    return env, server, holder["client"], backings


def test_striped_write_read_roundtrip():
    env, _server, client, _backings = make_striped(targets=3)
    payload = PatternContent(seed=5, size=kib(512) * 7 + 1234)

    def scenario(env):
        yield from client.write_file("/striped", payload)
        content = yield from client.read_file("/striped")
        return content

    content = env.run_process(env.process(scenario(env)))
    assert content.equals(payload)


def test_stripes_land_on_every_target():
    env, server, client, backings = make_striped(targets=3)
    payload = PatternContent(seed=6, size=mib(3))

    def scenario(env):
        yield from client.write_file("/f", payload)

    env.run_process(env.process(scenario(env)))
    expected = server.stripe.per_target_bytes(0, payload.size)
    for backing, expected_bytes in zip(backings, expected):
        assert backing.exists("/f")
        # Each target holds only its own chunks, back to back.
        root = backing.root.children["f"]
        assert root.data.size == expected_bytes


def test_partial_overwrite_striped():
    env, _server, client, _backings = make_striped(targets=2)
    base = PatternContent(seed=7, size=mib(2))
    patch = PatternContent(seed=8, size=kib(700))

    def scenario(env):
        yield from client.write_file("/f", base)
        handle = yield from client.open("/f")
        handle.seek(kib(300))
        yield from handle.write(patch)
        yield from handle.close()
        content = yield from client.read_file("/f")
        return content

    content = env.run_process(env.process(scenario(env)))
    assert content.slice(0, kib(300)).equals(base.slice(0, kib(300)))
    assert content.slice(kib(300), kib(700)).equals(patch)
    tail_off = kib(1000)
    assert content.slice(tail_off, mib(2) - tail_off).equals(
        base.slice(tail_off, mib(2) - tail_off))


def test_stat_reports_logical_size():
    env, _server, client, _backings = make_striped(targets=3)

    def scenario(env):
        yield from client.write_file("/f", PatternContent(seed=9,
                                                          size=mib(5)))
        info = yield from client.stat("/f")
        return info

    assert env.run_process(env.process(scenario(env))) == {
        "kind": "file", "size": mib(5)}


def test_rename_and_unlink_apply_to_all_targets():
    env, _server, client, backings = make_striped(targets=2)

    def scenario(env):
        yield from client.write_file("/a", PatternContent(seed=1,
                                                          size=mib(2)))
        yield from client.rename("/a", "/b")
        info = yield from client.stat("/b")
        yield from client.unlink("/b")
        return info

    info = env.run_process(env.process(scenario(env)))
    assert info["size"] == mib(2)
    for backing in backings:
        assert not backing.exists("/a")
        assert not backing.exists("/b")


def test_striping_speeds_up_large_writes():
    """Three DAX targets absorb a big write ~in parallel."""
    size = mib(96)

    def timed(targets):
        env, _server, client, _b = make_striped(targets=targets)

        def scenario(env):
            start = env.now
            yield from client.write_file(
                "/big", PatternContent(seed=2, size=size), fsync=False)
            return env.now - start

        return env.run_process(env.process(scenario(env)))

    one = timed(1)
    three = timed(3)
    assert three < one


def test_mismatched_stripe_width_rejected():
    env = Environment()
    node = StorageNode(env, "server")
    backing = DaxFilesystem(env, node.pmem_fsdax)
    with pytest.raises(ValueError, match="stripe width"):
        BeegfsServer(env, node, [backing],
                     stripe=StripePattern(targets=4))


def test_target_local_offsets():
    stripe = StripePattern(targets=3, chunk_bytes=kib(512))
    # Global chunk 0 -> target 0 local chunk 0; chunk 3 -> target 0 local
    # chunk 1; chunk 4 -> target 1 local chunk 1.
    assert stripe.target_local_offset(0) == 0
    assert stripe.target_local_offset(kib(512) * 3) == kib(512)
    assert stripe.target_local_offset(kib(512) * 4 + 100) == kib(512) + 100

"""Tests for the VFS namespace, handles, and local filesystems."""

import pytest

from repro.errors import (FileExists, FileNotFound, FsError, IsADirectory,
                          NotADirectory)
from repro.fs import DaxFilesystem, Filesystem, LocalExtFilesystem
from repro.hw import ByteContent, NvmeDevice, PatternContent, PmemDimm
from repro.sim import Environment
from repro.units import gbytes, gib, mib


@pytest.fixture
def fs():
    env = Environment()
    return env, Filesystem(env, "memfs")


def run(env, gen):
    return env.run_process(env.process(gen))


# --- namespace ------------------------------------------------------------------


def test_create_write_read_roundtrip(fs):
    env, fs = fs

    def scenario(env):
        yield from fs.mkdir("/ckpt")
        yield from fs.write_file("/ckpt/model.pt", ByteContent(b"weights"))
        content = yield from fs.read_file("/ckpt/model.pt")
        return content.to_bytes()

    assert run(env, scenario(env)) == b"weights"


def test_open_missing_file_fails(fs):
    env, fs = fs

    def scenario(env):
        with pytest.raises(FileNotFound):
            yield from fs.open("/nope")
        return True

    assert run(env, scenario(env))


def test_exclusive_create_conflict(fs):
    env, fs = fs

    def scenario(env):
        yield from fs.write_file("/f", ByteContent(b"x"))
        with pytest.raises(FileExists):
            yield from fs.open("/f", create=True, exclusive=True)
        return True

    assert run(env, scenario(env))


def test_truncate_resets_contents(fs):
    env, fs = fs

    def scenario(env):
        yield from fs.write_file("/f", ByteContent(b"long-old-content"))
        handle = yield from fs.open("/f", create=True, truncate=True)
        yield from handle.write(ByteContent(b"new"))
        yield from handle.close()
        content = yield from fs.read_file("/f")
        return content.to_bytes()

    assert run(env, scenario(env)) == b"new"


def test_mkdir_parents_and_nested_paths(fs):
    env, fs = fs

    def scenario(env):
        yield from fs.mkdir("/a/b/c", parents=True)
        yield from fs.write_file("/a/b/c/file", ByteContent(b"deep"))
        names = yield from fs.listdir("/a/b/c")
        return names

    assert run(env, scenario(env)) == ["file"]


def test_mkdir_without_parents_fails(fs):
    env, fs = fs

    def scenario(env):
        with pytest.raises(FileNotFound):
            yield from fs.mkdir("/no/such/parent")
        return True

    assert run(env, scenario(env))


def test_rename_atomic_replace(fs):
    env, fs = fs

    def scenario(env):
        yield from fs.write_file("/ckpt.tmp", ByteContent(b"new-version"))
        yield from fs.write_file("/ckpt", ByteContent(b"old-version"))
        yield from fs.rename("/ckpt.tmp", "/ckpt")
        content = yield from fs.read_file("/ckpt")
        exists = fs.exists("/ckpt.tmp")
        return content.to_bytes(), exists

    content, tmp_exists = run(env, scenario(env))
    assert content == b"new-version"
    assert not tmp_exists


def test_unlink_removes_file(fs):
    env, fs = fs

    def scenario(env):
        yield from fs.write_file("/gone", ByteContent(b"x"))
        yield from fs.unlink("/gone")
        return fs.exists("/gone")

    assert run(env, scenario(env)) is False


def test_unlink_directory_rejected(fs):
    env, fs = fs

    def scenario(env):
        yield from fs.mkdir("/d")
        with pytest.raises(IsADirectory):
            yield from fs.unlink("/d")
        return True

    assert run(env, scenario(env))


def test_file_as_directory_component_rejected(fs):
    env, fs = fs

    def scenario(env):
        yield from fs.write_file("/f", ByteContent(b"x"))
        with pytest.raises(NotADirectory):
            yield from fs.open("/f/child", create=True)
        return True

    assert run(env, scenario(env))


def test_stat_reports_size(fs):
    env, fs = fs

    def scenario(env):
        yield from fs.write_file("/f", ByteContent(b"12345"))
        info = yield from fs.stat("/f")
        return info

    assert run(env, scenario(env)) == {"kind": "file", "size": 5}


def test_relative_path_rejected(fs):
    env, fs = fs

    def scenario(env):
        with pytest.raises(FsError, match="absolute"):
            yield from fs.open("relative/path")
        return True

    assert run(env, scenario(env))


def test_sparse_write_reads_zero_hole(fs):
    env, fs = fs

    def scenario(env):
        handle = yield from fs.open("/sparse", create=True)
        handle.seek(100)
        yield from handle.write(ByteContent(b"tail"))
        yield from handle.close()
        content = yield from fs.read_file("/sparse")
        return content.to_bytes()

    data = run(env, scenario(env))
    assert len(data) == 104
    assert data[:100] == bytes(100)
    assert data[100:] == b"tail"


def test_closed_handle_rejected(fs):
    env, fs = fs

    def scenario(env):
        handle = yield from fs.open("/f", create=True)
        yield from handle.close()
        with pytest.raises(FsError, match="closed"):
            yield from handle.write(ByteContent(b"x"))
        return True

    assert run(env, scenario(env))


def test_syscalls_cost_time(fs):
    env, fs = fs

    def scenario(env):
        yield from fs.write_file("/f", ByteContent(b"x"))
        return env.now

    elapsed = run(env, scenario(env))
    assert elapsed > 0
    assert fs.syscall_count >= 4  # open, write, fsync, close
    assert fs.ledger.get("syscall") > 0


# --- ext4-NVMe timing ---------------------------------------------------------------


def test_ext4_write_rate_near_device_limit():
    env = Environment()
    nvme = NvmeDevice(env)
    fs = LocalExtFilesystem(env, nvme)
    size = mib(512)

    def scenario(env):
        start = env.now
        yield from fs.write_file("/big", PatternContent(seed=1, size=size),
                                 fsync=False)
        return env.now - start

    elapsed = env.run_process(env.process(scenario(env)))
    observed_bps = size / (elapsed / 1e9)
    # Page-cache copy (8 GB/s) + block writeback (2.7 GB/s) + per-request
    # latency in series => ~1.75 GB/s effective streaming write.
    assert gbytes(1.6) < observed_bps < gbytes(1.9)
    assert fs.ledger.get("block_io") > fs.ledger.get("page_cache")


def test_ext4_fsync_costs_journal_ios():
    env = Environment()
    nvme = NvmeDevice(env)
    fs = LocalExtFilesystem(env, nvme)

    def scenario(env):
        handle = yield from fs.open("/f", create=True)
        yield from handle.write(ByteContent(b"x" * 4096))
        before = env.now
        yield from handle.fsync()
        return env.now - before

    elapsed = env.run_process(env.process(scenario(env)))
    assert elapsed >= 2 * nvme.io_latency_ns


# --- ext4-DAX timing -----------------------------------------------------------------


def test_dax_write_rate_is_copy_bound():
    env = Environment()
    pmem = PmemDimm(env, dimms=3, dimm_capacity=gib(4))
    fs = DaxFilesystem(env, pmem)
    size = mib(512)

    def scenario(env):
        start = env.now
        yield from fs.write_file("/ckpt", PatternContent(seed=2, size=size),
                                 fsync=False)
        return env.now - start

    elapsed = env.run_process(env.process(scenario(env)))
    observed_bps = size / (elapsed / 1e9)
    assert observed_bps == pytest.approx(gbytes(5.64), rel=0.05)
    assert fs.ledger.get("dax_write") > 0
    assert fs.ledger.get("block_io") == 0


def test_dax_faster_than_nvme_for_same_write():
    env = Environment()
    pmem = PmemDimm(env, dimms=3, dimm_capacity=gib(4))
    nvme = NvmeDevice(env)
    dax = DaxFilesystem(env, pmem)
    ext4 = LocalExtFilesystem(env, nvme)
    size = mib(256)

    def timed_write(env, fs):
        start = env.now
        yield from fs.write_file("/f", PatternContent(seed=3, size=size))
        return env.now - start

    dax_ns = env.run_process(env.process(timed_write(env, dax)))
    ext4_ns = env.run_process(env.process(timed_write(env, ext4)))
    assert dax_ns < ext4_ns

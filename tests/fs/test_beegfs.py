"""Tests for the BeeGFS client/server baseline over RPC-over-RDMA."""

import pytest

from repro.errors import FileNotFound
from repro.fs import DaxFilesystem
from repro.fs.beegfs import BeegfsClient, BeegfsServer, StripePattern
from repro.hw import ByteContent, ComputeNode, PatternContent, StorageNode
from repro.net import Fabric
from repro.rdma import Rnic
from repro.sim import AllOf, Environment
from repro.units import gbytes, gib, kib, mib


def make_mounted(gpu_count=1, client_nodes=1):
    env = Environment()
    fabric = Fabric(env)
    server_node = StorageNode(env, "server")
    Rnic(env, server_node, fabric)
    backing = DaxFilesystem(env, server_node.pmem_fsdax)
    server = BeegfsServer(env, server_node, backing)
    clients = []
    for i in range(client_nodes):
        node = ComputeNode(env, f"client{i}", gpu_count=gpu_count)
        Rnic(env, node, fabric)
        clients.append(node)

    mounted = []

    def setup(env):
        for node in clients:
            client = yield from BeegfsClient.mount(env, node, server)
            mounted.append(client)

    env.run_process(env.process(setup(env)))
    return env, server, mounted


def test_mount_and_roundtrip():
    env, server, (client,) = make_mounted()

    def scenario(env):
        yield from client.mkdir("/ckpt")
        yield from client.write_file("/ckpt/m.pt", ByteContent(b"payload"))
        content = yield from client.read_file("/ckpt/m.pt")
        return content.to_bytes()

    assert env.run_process(env.process(scenario(env))) == b"payload"
    assert server.backing.exists("/ckpt/m.pt")


def test_errors_marshalled_to_client():
    env, _server, (client,) = make_mounted()

    def scenario(env):
        with pytest.raises(FileNotFound):
            yield from client.open("/missing")
        return True

    assert env.run_process(env.process(scenario(env)))


def test_two_clients_share_one_namespace():
    env, _server, (client_a, client_b) = make_mounted(client_nodes=2)

    def scenario(env):
        yield from client_a.write_file("/shared", ByteContent(b"from-a"))
        content = yield from client_b.read_file("/shared")
        return content.to_bytes()

    assert env.run_process(env.process(scenario(env))) == b"from-a"


def test_bulk_write_effective_bandwidth():
    """Single-stream writes land near the Table I calibration: staging +
    wire + per-chunk server CPU + DAX copy => ~1.7 GB/s."""
    env, _server, (client,) = make_mounted()
    size = mib(512)

    def scenario(env):
        start = env.now
        yield from client.write_file("/big", PatternContent(seed=1, size=size),
                                     fsync=False)
        return env.now - start

    elapsed = env.run_process(env.process(scenario(env)))
    observed = size / (elapsed / 1e9)
    assert gbytes(1.4) < observed < gbytes(2.0)


def test_concurrent_writers_on_one_mount_serialize():
    """Two ranks on one node share the mount's single bulk stream, so the
    pair takes about twice as long as one."""
    env, _server, (client,) = make_mounted()
    size = mib(128)

    def one_write(env, path):
        yield from client.write_file(path, PatternContent(seed=2, size=size),
                                     fsync=False)

    def solo(env):
        start = env.now
        yield from one_write(env, "/solo")
        return env.now - start

    solo_ns = env.run_process(env.process(solo(env)))

    def pair(env):
        start = env.now
        writers = [env.process(one_write(env, f"/pair{i}"))
                   for i in range(2)]
        yield AllOf(env, writers)
        return env.now - start

    pair_ns = env.run_process(env.process(pair(env)))
    assert pair_ns == pytest.approx(2 * solo_ns, rel=0.1)


def test_two_nodes_overlap_better_than_one():
    """Separate mounts (separate nodes) do overlap — server-side stages
    still contend, but wall clock beats strict serialization."""
    env, _server, clients = make_mounted(client_nodes=2)
    size = mib(128)

    def write_on(env, client, path):
        yield from client.write_file(path, PatternContent(seed=3, size=size),
                                     fsync=False)

    def solo(env):
        start = env.now
        yield from write_on(env, clients[0], "/solo")
        return env.now - start

    solo_ns = env.run_process(env.process(solo(env)))

    def both(env):
        start = env.now
        writers = [env.process(write_on(env, client, f"/n{i}"))
                   for i, client in enumerate(clients)]
        yield AllOf(env, writers)
        return env.now - start

    both_ns = env.run_process(env.process(both(env)))
    assert both_ns < 2 * solo_ns
    assert both_ns > solo_ns


def test_metadata_ops_cost_server_cpu():
    env, server, (client,) = make_mounted()

    def scenario(env):
        start = env.now
        yield from client.mkdir("/meta")
        yield from client.stat("/meta")
        names = yield from client.listdir("/")
        return env.now - start, names

    elapsed, names = env.run_process(env.process(scenario(env)))
    assert "meta" in names
    assert elapsed > 0
    assert server.rpc.calls_served >= 3


# --- striping ---------------------------------------------------------------------


def test_stripe_split_respects_chunk_boundaries():
    stripe = StripePattern(targets=3, chunk_bytes=kib(512))
    pieces = list(stripe.split(kib(256), kib(1024)))
    assert pieces == [
        (0, kib(256), kib(256)),
        (1, kib(512), kib(512)),
        (2, kib(1024), kib(256)),
    ]


def test_stripe_per_target_balance():
    stripe = StripePattern(targets=4, chunk_bytes=kib(512))
    totals = stripe.per_target_bytes(0, kib(512) * 8)
    assert totals == [kib(1024)] * 4


def test_stripe_single_target_takes_everything():
    stripe = StripePattern(targets=1)
    assert stripe.per_target_bytes(0, mib(10)) == [mib(10)]

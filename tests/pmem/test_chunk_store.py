"""Unit tests for the refcounted content-addressed chunk store."""

import hashlib

import pytest

from repro.errors import PmemError, PoolExhausted
from repro.hw import PatternContent, PmemDimm
from repro.pmem import PmemPool
from repro.pmem.chunks import (CHUNK_TABLE_TAG, ChunkStore, chunk_tag)
from repro.sim import Environment
from repro.units import gib, kib


def make_pool():
    env = Environment()
    device = PmemDimm(env, dimms=1, dimm_capacity=gib(1))
    return PmemPool.format(device)


def digest_of(n):
    return hashlib.sha1(b"chunk-%d" % n).digest()


def put_chunk(store, n, size=kib(64), refs=1):
    digest = digest_of(n)
    extent = store.alloc_chunk(digest, size)
    extent.write(0, PatternContent(seed=n, size=size))
    extent.persist()
    store.apply([(digest, extent, refs)], {})
    return digest


def test_create_attach_roundtrip():
    pool = make_pool()
    store = ChunkStore.create(pool, chunk_bytes=kib(64))
    d0 = put_chunk(store, 0)
    d1 = put_chunk(store, 1, refs=3)
    assert ChunkStore.attach(pool) is store  # cached on the handle

    pool.close()
    reopened = PmemPool.open(pool.device)
    fresh = ChunkStore.attach(reopened)
    assert fresh is not store
    assert fresh.chunk_bytes == kib(64)
    assert fresh.lookup(d0).refcount == 1
    assert fresh.lookup(d1).refcount == 3
    got = fresh.allocation_of(fresh.lookup(d1))
    assert got.read(0, kib(64)).equals(PatternContent(seed=1, size=kib(64)))


def test_attach_without_store_returns_none():
    pool = make_pool()
    assert ChunkStore.attach(pool) is None
    store = ChunkStore.ensure(pool)
    assert ChunkStore.attach(pool) is store
    with pytest.raises(PmemError, match="chunk size"):
        ChunkStore.ensure(pool, chunk_bytes=store.chunk_bytes + 1)


def test_apply_merges_new_and_shared_in_one_commit():
    pool = make_pool()
    store = ChunkStore.create(pool)
    d0 = put_chunk(store, 0)
    d1 = digest_of(1)
    extent = store.alloc_chunk(d1, kib(64))
    extent.write(0, PatternContent(seed=1, size=kib(64)))
    extent.persist()
    store.apply([(d1, extent, 2)], {d0: 1})
    assert store.lookup(d0).refcount == 2
    assert store.lookup(d1).refcount == 2
    assert store.chunk_count == 2


def test_unref_frees_at_zero_and_refuses_over_free():
    pool = make_pool()
    store = ChunkStore.create(pool)
    d0 = put_chunk(store, 0, refs=2)
    assert store.unref([d0]) == []
    assert store.lookup(d0).refcount == 1
    freed = store.unref([d0])
    assert len(freed) == 1
    assert store.lookup(d0) is None
    assert pool.allocator.find_by_tag(chunk_tag(d0)) == []
    with pytest.raises(PmemError, match="unknown chunk"):
        store.unref([d0])

    d1 = put_chunk(store, 1, refs=1)
    with pytest.raises(PmemError, match="over-free"):
        store.unref([d1, d1])
    # The refused unref must not have committed a partial decrement.
    assert store.lookup(d1).refcount == 1


def test_capacity_enforced():
    pool = make_pool()
    store = ChunkStore.create(pool, max_chunks=2)
    put_chunk(store, 0)
    put_chunk(store, 1)
    with pytest.raises(PoolExhausted):
        store.alloc_chunk(digest_of(2), kib(64))


def test_set_refcount_repair_paths():
    pool = make_pool()
    store = ChunkStore.create(pool)
    d0 = put_chunk(store, 0, refs=5)
    store.set_refcount(d0, 1)
    assert store.lookup(d0).refcount == 1
    store.set_refcount(d0, 0)
    assert store.lookup(d0) is None
    assert pool.allocator.find_by_tag(chunk_tag(d0)) == []


def test_table_extent_is_tagged_and_single():
    pool = make_pool()
    ChunkStore.create(pool)
    assert len(pool.find_by_tag(CHUNK_TABLE_TAG)) == 1
    with pytest.raises(PmemError, match="already has"):
        ChunkStore.create(pool)

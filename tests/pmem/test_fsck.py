"""Unit coverage for the structural verifier: one corruption per finding
kind, each followed by a repair pass that must leave the pool clean
without losing any genuinely-DONE checkpoint."""

import pytest

from repro.core.consistency import (begin_checkpoint, commit_checkpoint,
                                    valid_checkpoint)
from repro.core.index import (DATA_TAG, FLAG_DONE, FLAG_EMPTY, META_TAG,
                              ModelMeta, ModelTable)
from repro.dnn.tensor import TensorSpec
from repro.hw import PmemDimm
from repro.obs import Observability
from repro.pmem import PmemPool
from repro.pmem.fsck import (K_DANGLING_META, K_DONE_ADDR_ZERO,
                             K_EXTENT_SHARED, K_LEAKED_EXTENT,
                             K_META_UNREADABLE, K_STALE_ACTIVE,
                             K_TABLE_TORN, K_VERSION_EXTENT_MISSING,
                             fsck, repair)
from repro.sim import Environment
from repro.units import gib

SPECS = [TensorSpec("layer0.weight", (128, 64)),
         TensorSpec("layer0.bias", (128,))]


def setup_pool(max_models=8):
    env = Environment()
    device = PmemDimm(env, dimms=1, dimm_capacity=gib(1))
    pool = PmemPool.format(device, max_extents=4096)
    table = ModelTable.create(pool, max_models=max_models)
    return pool, table


def add_model(pool, table, name, steps=(1, 2)):
    meta = ModelMeta.create(pool, name, SPECS)
    table.insert(name, meta.meta.addr)
    for step in steps:
        version = begin_checkpoint(meta)
        commit_checkpoint(meta, version, step=step)
    return meta


def reopen_meta(pool, table_name_pool=None):
    table = ModelTable.open(pool)
    return table, {name: ModelMeta.open(pool, table.lookup(name))
                   for name in table.names()}


def test_clean_pool_has_no_findings():
    pool, table = setup_pool()
    add_model(pool, table, "model")
    report = fsck(pool)
    assert report.clean, report.describe()
    assert report.checked["models"] == 1
    assert report.checked["extents"] >= 4  # table + meta + 2 data


def test_dangling_meta_entry_is_found_and_dropped():
    pool, table = setup_pool()
    add_model(pool, table, "model")
    table.insert("ghost", 0x77777000)  # no extent backs this address
    report = fsck(pool)
    assert report.kinds().get(K_DANGLING_META) == 1
    assert report.errors()

    result = repair(pool)
    assert result.clean, result.describe()
    table2, metas = reopen_meta(pool)
    assert table2.names() == ["model"]
    assert valid_checkpoint(metas["model"])[1] == 2


def test_stale_active_slot_is_demoted_not_lost():
    pool, table = setup_pool()
    meta = add_model(pool, table, "model")
    begin_checkpoint(meta)  # crash mid-pull: slot stays ACTIVE
    report = fsck(pool)
    assert report.kinds().get(K_STALE_ACTIVE) == 1
    assert not report.errors()  # redundancy loss, not corruption

    result = repair(pool)
    assert result.clean, result.describe()
    _table, metas = reopen_meta(pool)
    flags = metas["model"].read_flags()
    assert FLAG_EMPTY in flags.states
    # The newest DONE checkpoint survived the repair untouched.
    assert valid_checkpoint(metas["model"])[1] == 2


def test_done_slot_with_zero_addr_is_found():
    pool, table = setup_pool()
    meta = add_model(pool, table, "model")
    # Emulate the pre-fix drop_version ordering bug: the MIndex address
    # is zeroed and the extent freed while the flag still says DONE.
    flags = meta.read_flags()
    victim = flags.newest_done()
    region = meta.data_regions[victim]
    addrs = list(meta.mindex.version_addrs)
    addrs[victim] = 0
    meta.mindex.version_addrs = tuple(addrs)
    meta._mindex_record.write(meta.mindex.pack())
    pool.free(region)

    report = fsck(pool)
    assert report.kinds().get(K_DONE_ADDR_ZERO) == 1
    result = repair(pool)
    assert result.clean, result.describe()
    _table, metas = reopen_meta(pool)
    # The older DONE checkpoint is what recovery falls back to.
    assert valid_checkpoint(metas["model"])[1] == 1


def test_done_slot_with_missing_extent_is_demoted():
    pool, table = setup_pool()
    meta = add_model(pool, table, "model")
    flags = meta.read_flags()
    victim = flags.newest_done()
    # Free the extent but leave the MIndex pointing at it.
    pool.free(meta.data_regions[victim])

    # Strict open refuses the dangling address; lenient (fsck) maps it
    # to a missing region so the rest of the model stays inspectable.
    with pytest.raises(Exception):
        ModelMeta.open(pool, meta.meta.addr)
    lenient = ModelMeta.open(pool, meta.meta.addr, lenient=True)
    assert lenient.data_regions[victim] is None

    report = fsck(pool)
    assert report.kinds().get(K_VERSION_EXTENT_MISSING) == 1
    result = repair(pool)
    assert result.clean, result.describe()
    _table, metas = reopen_meta(pool)
    assert valid_checkpoint(metas["model"])[1] == 1


def test_leaked_portus_extents_are_reclaimed_foreign_kept():
    pool, table = setup_pool()
    add_model(pool, table, "model")
    pool.alloc(4096, tag=f"{DATA_TAG}/orphan/v0")
    pool.alloc(4096, tag=f"{META_TAG}/orphan")
    pool.alloc(4096, tag="foreign-subsystem")
    report = fsck(pool)
    assert report.kinds().get(K_LEAKED_EXTENT) == 2
    assert not report.errors()

    result = repair(pool)
    assert result.clean, result.describe()
    # Only Portus-tagged leaks were freed; the foreign extent is not ours.
    tags = {record.tag for record in pool.allocator.records()}
    assert "foreign-subsystem" in tags
    assert f"{DATA_TAG}/orphan/v0" not in tags


def test_torn_table_slot_is_rewritten():
    pool, table = setup_pool()
    add_model(pool, table, "model")  # gens 1..: newest lands in slot 0
    record = table._record
    committed = record.read()
    states = record.slot_states()
    # Find the non-newest slot and stomp garbage over it (a torn write).
    newest = max((i for i in (0, 1)
                  if isinstance(states[i], tuple)),
                 key=lambda i: states[i][1])
    stale = 1 - newest
    garbage = b"\xde\xad\xbe\xef" * (record.slot_size // 4)
    record.allocation.write_bytes(record._slot_offset(stale),
                                  garbage[:record.slot_size])
    record.allocation.persist(record._slot_offset(stale), record.slot_size)

    report = fsck(pool)
    assert report.kinds().get(K_TABLE_TORN) == 1
    result = repair(pool)
    assert result.clean, result.describe()
    # Both slots valid again, committed payload unchanged.
    healed = ModelTable.open(pool)
    assert healed.names() == ["model"]
    assert all(isinstance(s, tuple) for s in healed._record.slot_states())
    assert healed._record.read()[0] == committed[0]


def test_extent_claimed_by_two_models_is_found():
    pool, table = setup_pool()
    meta_a = add_model(pool, table, "aaa")
    meta_b = add_model(pool, table, "bbb")
    # Model bbb's v0 hijacks aaa's v0 extent (its own becomes a leak).
    addrs = list(meta_b.mindex.version_addrs)
    addrs[0] = meta_a.mindex.version_addrs[0]
    meta_b.mindex.version_addrs = tuple(addrs)
    meta_b._mindex_record.write(meta_b.mindex.pack())

    report = fsck(pool)
    assert report.kinds().get(K_EXTENT_SHARED) == 1
    result = repair(pool)
    assert result.clean, result.describe()
    _table, metas = reopen_meta(pool)
    # aaa keeps its extents and newest checkpoint; bbb lost one slot.
    assert valid_checkpoint(metas["aaa"])[1] == 2
    assert metas["aaa"].mindex.version_addrs[0] not in \
        (metas["bbb"].mindex.version_addrs)


def test_unreadable_meta_header_drops_the_model():
    pool, table = setup_pool()
    add_model(pool, table, "good")
    bad = add_model(pool, table, "bad")
    bad.meta.write_bytes(0, b"\x00" * 16)  # stomp the geometry header
    bad.meta.persist(0, 16)

    report = fsck(pool)
    assert report.kinds().get(K_META_UNREADABLE) == 1
    result = repair(pool)
    assert result.clean, result.describe()
    assert result.passes >= 1  # entry dropped and orphans reclaimed
    table2, metas = reopen_meta(pool)
    assert table2.names() == ["good"]
    assert valid_checkpoint(metas["good"])[1] == 2


def test_fsck_emits_observability_counters():
    pool, table = setup_pool()
    add_model(pool, table, "model")
    table.insert("ghost", 0x5555000)
    obs = Observability()
    repair(pool, obs=obs)
    assert obs.metrics.counter("fsck.runs").value >= 2
    assert obs.metrics.counter(
        f"fsck.findings.{K_DANGLING_META}").value >= 1
    assert obs.metrics.counter(
        f"fsck.repairs.{K_DANGLING_META}").value == 1


def test_repair_on_clean_pool_is_a_no_op():
    pool, table = setup_pool()
    add_model(pool, table, "model")
    result = repair(pool)
    assert result.clean and result.actions == [] and result.passes == 0

"""Tests for PmemPool format/open/crash and the persistent allocator."""

import random

import pytest

from repro.errors import PmemError, PoolCorruption, PoolExhausted
from repro.hw import ByteContent, PmemDimm
from repro.pmem import PmemPool
from repro.sim import Environment
from repro.units import gib, mib


def make_device(dimms=1, dimm_capacity=gib(1)):
    env = Environment()
    return PmemDimm(env, dimms=dimms, dimm_capacity=dimm_capacity)


def test_format_then_open_roundtrip():
    device = make_device()
    pool = PmemPool.format(device)
    pool.close()
    reopened = PmemPool.open(device)
    assert reopened.allocator.records() == []


def test_format_refuses_dirty_device():
    device = make_device()
    device.alloc(4096)
    with pytest.raises(PmemError, match="non-empty"):
        PmemPool.format(device)


def test_open_unformatted_device_fails():
    device = make_device()
    with pytest.raises(PoolCorruption):
        PmemPool.open(device)


def test_alloc_survives_reopen():
    device = make_device()
    pool = PmemPool.format(device)
    region = pool.alloc(mib(1), tag="model-a/v0")
    region.write(0, ByteContent(b"tensor-bytes"))
    region.persist(0, 12)
    pool.close()

    reopened = PmemPool.open(device)
    records = reopened.allocator.records()
    assert len(records) == 1
    assert records[0].tag == "model-a/v0"
    assert records[0].size == mib(1)
    found = reopened.find_by_tag("model-a/v0")
    assert found[0].read_bytes(0, 12) == b"tensor-bytes"


def test_free_removes_record_and_space():
    device = make_device()
    pool = PmemPool.format(device)
    region = pool.alloc(mib(1), tag="gone")
    used_before = pool.used_bytes
    pool.free(region)
    assert pool.used_bytes == used_before - mib(1)
    assert pool.find_by_tag("gone") == []


def test_crash_after_persist_keeps_data():
    device = make_device()
    pool = PmemPool.format(device)
    region = pool.alloc(4096, tag="ckpt")
    region.write(0, ByteContent(b"persisted-payload"))
    region.persist(0, 17)
    pool.crash(random.Random(1))

    recovered = PmemPool.open(device)
    found = recovered.find_by_tag("ckpt")
    assert len(found) == 1
    assert found[0].read_bytes(0, 17) == b"persisted-payload"


def test_crash_without_persist_may_lose_data():
    device = make_device()
    pool = PmemPool.format(device)
    region = pool.alloc(4096, tag="ckpt")
    region.write(0, ByteContent(b"Y" * 100))
    rng = random.Random(0)
    rng.choice = lambda options: "lost"
    pool.crash(rng)

    recovered = PmemPool.open(device)
    found = recovered.find_by_tag("ckpt")
    # The allocation record was committed, so the extent survives ...
    assert len(found) == 1
    # ... but the unflushed payload is gone.
    assert found[0].read_bytes(0, 100) == bytes(100)


def test_reconcile_reclaims_leaked_extent():
    """Crash between device.alloc and AllocTable commit leaks space; open()
    must reclaim it."""
    device = make_device()
    pool = PmemPool.format(device)
    pool.alloc(mib(1), tag="committed")
    # Simulate the crash window: device space reserved, no table commit.
    device.alloc(mib(2), tag="leaked-by-crash")
    used_with_leak = device.used_bytes
    pool.close()

    recovered = PmemPool.open(device)
    assert device.used_bytes == used_with_leak - mib(2)
    assert [r.tag for r in recovered.allocator.records()] == ["committed"]


def test_alloc_table_capacity_limit():
    device = make_device()
    pool = PmemPool.format(device, max_extents=4)
    for i in range(4):
        pool.alloc(4096, tag=f"r{i}")
    with pytest.raises(PoolExhausted, match="AllocTable full"):
        pool.alloc(4096, tag="overflow")


def test_pool_exhaustion_maps_to_pool_error():
    device = make_device(dimm_capacity=mib(16))
    pool = PmemPool.format(device)
    with pytest.raises(PoolExhausted):
        pool.alloc(mib(64), tag="too-big")


def test_closed_pool_rejects_operations():
    device = make_device()
    pool = PmemPool.format(device)
    pool.close()
    with pytest.raises(PmemError, match="closed"):
        pool.alloc(4096, tag="nope")


def test_many_alloc_free_cycles_stay_consistent():
    device = make_device()
    pool = PmemPool.format(device)
    rng = random.Random(7)
    live = []
    for step in range(200):
        if live and rng.random() < 0.45:
            victim = live.pop(rng.randrange(len(live)))
            pool.free(victim)
        else:
            live.append(pool.alloc(rng.randrange(1, 65536), tag=f"s{step}"))
    # Committed table and live handles must agree exactly.
    committed = {r.addr for r in pool.allocator.records()}
    assert committed == {a.addr for a in live}
    pool.close()
    reopened = PmemPool.open(device)
    assert {r.addr for r in reopened.allocator.records()} == committed

"""Tests for CRC frames, CommittedRecord crash atomicity, durability."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PmemError, PoolCorruption
from repro.hw import ByteContent, PmemDimm
from repro.pmem.layout import CommittedRecord, pack_blob, unpack_blob
from repro.sim import Environment
from repro.units import gib


def make_allocation(size=8192):
    env = Environment()
    pmem = PmemDimm(env, dimms=1, dimm_capacity=gib(1))
    return pmem.alloc(size, tag="test")


# --- blobs ---------------------------------------------------------------------


def test_blob_roundtrip():
    frame = pack_blob(b"hello portus", generation=7)
    payload, generation = unpack_blob(frame)
    assert payload == b"hello portus"
    assert generation == 7


def test_blob_detects_corruption():
    frame = bytearray(pack_blob(b"data", generation=1))
    frame[-1] ^= 0xFF
    with pytest.raises(PoolCorruption, match="checksum"):
        unpack_blob(bytes(frame))


def test_blob_detects_truncation():
    frame = pack_blob(b"data-that-gets-cut", generation=1)
    with pytest.raises(PoolCorruption):
        unpack_blob(frame[:8])
    with pytest.raises(PoolCorruption, match="truncated"):
        unpack_blob(frame[:-3])


def test_blob_detects_bad_magic():
    frame = bytearray(pack_blob(b"data", generation=1))
    frame[0] ^= 0xFF
    with pytest.raises(PoolCorruption, match="magic"):
        unpack_blob(bytes(frame))


# --- durability model ---------------------------------------------------------------


def test_unpersisted_write_may_be_lost_on_crash():
    allocation = make_allocation()
    allocation.write(0, ByteContent(b"volatile"))
    assert allocation.unflushed_ranges == [(0, 8)]
    rng = random.Random(0)
    # Force the "lost" outcome deterministically.
    rng.choice = lambda options: "lost"
    allocation.crash(rng)
    assert allocation.read_bytes(0, 8) == bytes(8)


def test_persisted_write_survives_crash():
    allocation = make_allocation()
    allocation.write(0, ByteContent(b"durable!"))
    allocation.persist(0, 8)
    assert allocation.unflushed_ranges == []
    rng = random.Random(0)
    allocation.crash(rng)
    assert allocation.read_bytes(0, 8) == b"durable!"


def test_partial_persist_trims_unflushed_ranges():
    allocation = make_allocation()
    allocation.write(0, ByteContent(b"x" * 100))
    allocation.persist(20, 30)
    assert allocation.unflushed_ranges == [(0, 20), (50, 50)]


def test_torn_crash_outcome_is_detectable():
    allocation = make_allocation()
    allocation.write(0, ByteContent(b"ohno" * 4))
    rng = random.Random(0)
    rng.choice = lambda options: "torn"
    allocation.crash(rng)
    with pytest.raises(ValueError, match="torn"):
        allocation.read_bytes(0, 16)


# --- CommittedRecord ------------------------------------------------------------------


def test_committed_record_empty_reads_none():
    allocation = make_allocation()
    record = CommittedRecord(allocation, 0, slot_size=256)
    assert record.read() is None


def test_committed_record_roundtrip_and_generations():
    allocation = make_allocation()
    record = CommittedRecord(allocation, 0, slot_size=256)
    assert record.write(b"v1") == 1
    assert record.read() == (b"v1", 1)
    assert record.write(b"v2") == 2
    assert record.read() == (b"v2", 2)


def test_committed_record_payload_too_large():
    allocation = make_allocation()
    record = CommittedRecord(allocation, 0, slot_size=64)
    with pytest.raises(PmemError, match="exceeds slot"):
        record.write(b"x" * 64)


def test_committed_record_survives_any_crash(seed=None):
    """A crash during the Nth write must leave version N or N-1 readable."""
    for master_seed in range(20):
        allocation = make_allocation()
        record = CommittedRecord(allocation, 0, slot_size=256)
        rng = random.Random(master_seed)
        committed = 0
        for version in range(1, 10):
            payload = f"version-{version}".encode()
            record.write(payload)
            committed = version
            if rng.random() < 0.4:
                # Crash immediately after the commit: write() persisted, so
                # the newest version must survive.
                allocation.crash(rng)
                break
        survived = record.read()
        assert survived is not None
        payload, generation = survived
        assert generation == committed
        assert payload == f"version-{committed}".encode()


@given(st.integers(0, 10_000))
@settings(max_examples=30, deadline=None)
def test_committed_record_crash_mid_write_property(seed):
    """Crash *between* the raw slot write and its persist: the previous
    committed value must still be readable (never the torn new one)."""
    allocation = make_allocation()
    record = CommittedRecord(allocation, 0, slot_size=256)
    record.write(b"stable")
    # A correct updater only ever writes the *stale* slot.  Simulate the
    # crash window inside write(): raw bytes hit the stale slot but the
    # persist never happened.
    stale_slot = 1 if record._read_slot(0) is not None else 0
    rng = random.Random(seed)
    garbage = bytes(rng.getrandbits(8) for _ in range(100))
    allocation.write(record._slot_offset(stale_slot), ByteContent(garbage))
    allocation.crash(rng)
    survived = record.read()
    assert survived is not None
    # CRC framing makes random garbage invalid, so the committed value is
    # always the one that survives.
    assert survived[0] == b"stable"

"""ExtentAllocator crash windows: the leak-only invariant, pinned down.

The allocator's orderings (alloc: device-reserve -> table-commit; free:
table-commit -> device-release) mean a power cut in either window may
*leak* device space but can never lose a committed extent or leave the
table pointing at unbacked space.  These tests use the crash-point hook
to die at exactly those boundaries and assert ``reconcile`` restores the
invariant on the next open.
"""

import random

import pytest

from repro.errors import PowerFailure
from repro.faults.crashpoints import CrashPointRecorder
from repro.hw import PmemDimm
from repro.pmem import PmemPool
from repro.pmem.fsck import K_ALLOC_BACKING_MISSING
from repro.sim import Environment
from repro.units import gib, mib


def make_pool():
    env = Environment()
    device = PmemDimm(env, dimms=1, dimm_capacity=gib(1))
    return device, PmemPool.format(device, max_extents=4096)


def device_matches_table(device, pool):
    """The post-reconcile invariant: device allocations are exactly the
    pool metadata plus the committed extents — no leaks, no dangling."""
    device_addrs = {allocation.addr for allocation in device.allocations}
    committed = {record.addr for record in pool.allocator.records()}
    assert device_addrs == committed | {pool.meta.addr}


def crash_at(device, index, op):
    """Run *op* with a power fault armed at boundary *index*; returns the
    recorder after asserting the fault actually fired there."""
    rng = random.Random(17)
    recorder = CrashPointRecorder(device, crash_at=index,
                                  power_fail=lambda: device.crash(rng))
    with pytest.raises(PowerFailure):
        op()
    recorder.disarm()
    assert recorder.fired is not None
    return recorder


def test_crash_between_device_alloc_and_table_commit_only_leaks():
    device, pool = make_pool()
    keeper = pool.alloc(mib(1), tag="keeper")
    # Boundary 0 of an alloc is "alloc.commit": space reserved on the
    # device, nothing in the table yet.
    recorder = crash_at(device, 0, lambda: pool.alloc(mib(2), tag="lost"))
    assert recorder.fired.endswith("alloc.commit:lost")

    recovered = PmemPool.open(device)
    tags = [record.tag for record in recovered.allocator.records()]
    assert tags == ["keeper"]  # the half-born extent was reclaimed
    assert recovered.find_by_tag("keeper")[0].addr == keeper.addr
    device_matches_table(device, recovered)


def test_crash_between_table_commit_and_device_release_only_leaks():
    device, pool = make_pool()
    victim = pool.alloc(mib(1), tag="victim")
    used_before = device.used_bytes
    # A free's boundaries: record.write(0), record.persist(1) for the
    # table commit, then free.release(2) before the device release.
    recorder = crash_at(device, 2, lambda: pool.free(victim))
    assert recorder.fired.endswith("free.release:victim")
    # The removal is committed but the space is still held on-device.
    assert device.used_bytes == used_before

    recovered = PmemPool.open(device)
    assert recovered.find_by_tag("victim") == []
    # Reconcile released the straggler allocation.
    assert device.used_bytes < used_before
    device_matches_table(device, recovered)


@pytest.mark.parametrize("boundary", [1, 2])
def test_crash_during_alloc_table_persist_never_dangles(boundary):
    """Dying inside the AllocTable commit itself (slot written/unflushed)
    must leave either the old or the new table — and in both cases every
    committed record is device-backed."""
    device, pool = make_pool()
    pool.alloc(mib(1), tag="stable")
    crash_at(device, boundary, lambda: pool.alloc(mib(2), tag="maybe"))

    recovered = PmemPool.open(device)
    tags = {record.tag for record in recovered.allocator.records()}
    assert "stable" in tags
    assert tags <= {"stable", "maybe"}
    device_matches_table(device, recovered)

    from repro.pmem.fsck import fsck
    report = fsck(recovered)
    assert not [f for f in report.findings
                if f.kind == K_ALLOC_BACKING_MISSING], report.describe()


def test_committed_extents_never_lost_across_random_crash_sweep():
    """Every boundary of an alloc+free pair, exhaustively: 'keeper' (and
    anything else committed at crash time) must survive every cut."""
    # Counting pass to size the schedule.
    device, pool = make_pool()
    pool.alloc(mib(1), tag="keeper")
    recorder = CrashPointRecorder(device)
    extra = pool.alloc(mib(2), tag="extra")
    pool.free(extra)
    recorder.disarm()
    total = recorder.count
    assert total == 6  # alloc: commit+write+persist; free: write+persist+release

    for index in range(total):
        device, pool = make_pool()
        pool.alloc(mib(1), tag="keeper")

        def op():
            extent = pool.alloc(mib(2), tag="extra")
            pool.free(extent)

        crash_at(device, index, op)
        recovered = PmemPool.open(device)
        tags = {record.tag for record in recovered.allocator.records()}
        assert "keeper" in tags, f"boundary {index} lost a committed extent"
        device_matches_table(device, recovered)

"""fsck learns refcounts: recompute-from-reachability vs the stored
ChunkTable counts, with the portusctl exit-code contract (0 clean /
1 dirty / 2 repaired) and idempotent repair on every new finding kind."""

import pytest

from repro.dnn.tensor import ModelInstance, TensorSpec
from repro.harness.cluster import PaperCluster
from repro.pmem.chunks import ChunkStore
from repro.pmem.fsck import (EXIT_CLEAN, EXIT_DIRTY, EXIT_REPAIRED,
                             K_CHUNK_BACKING_MISSING, K_CHUNK_REF_LEAK,
                             K_CHUNK_REF_OVERFREE, K_MANIFEST_BAD,
                             K_MANIFEST_CHUNK_MISSING, fsck, repair)

CHUNK = 256 * 1024

SPECS = [TensorSpec("backbone.weight", (256, 1024)),
         TensorSpec("backbone.bias", (1024,)),
         TensorSpec("head.weight", (64, 1024)),
         TensorSpec("head.bias", (64,))]


@pytest.fixture
def cluster():
    cluster = PaperCluster(seed=11)

    def scenario(env):
        instance = ModelInstance.materialize(
            "m", SPECS, cluster.volta.gpus[0], model_seed=5)
        session = yield from cluster.portus_register(
            instance, dedup=True, chunk_bytes=CHUNK)
        session.model.update_step(1)
        yield from session.checkpoint(1)
        session.model.update_step(2, only=["head.weight"])
        yield from session.checkpoint(2)

    cluster.run(scenario)
    return cluster


def _store(cluster):
    return ChunkStore.attach(cluster.portus_pool)


def _shared_entry(store):
    shared = [e for e in store.entries() if e.refcount >= 2]
    assert shared, "expected backbone chunks shared across versions"
    return shared[0]


def test_clean_dedup_pool_exits_clean(cluster):
    report = fsck(cluster.portus_pool)
    assert report.clean
    result = repair(cluster.portus_pool)
    assert result.exit_code == EXIT_CLEAN
    assert result.actions == []


def test_ref_leak_detected_lowered_and_idempotent(cluster):
    store = _store(cluster)
    entry = _shared_entry(store)
    want = entry.refcount
    store.set_refcount(entry.digest, want + 3)

    report = fsck(cluster.portus_pool)
    assert K_CHUNK_REF_LEAK in report.kinds()
    assert not report.errors()  # a leak is space-only: warning severity

    result = repair(cluster.portus_pool)
    assert result.exit_code == EXIT_REPAIRED
    assert store.lookup(entry.digest).refcount == want
    # Second run: nothing left to do — the tri-state contract's 0.
    assert repair(cluster.portus_pool).exit_code == EXIT_CLEAN


def test_ref_overfree_is_an_error_and_raised_back(cluster):
    store = _store(cluster)
    entry = _shared_entry(store)
    want = entry.refcount
    store.set_refcount(entry.digest, want - 1)

    report = fsck(cluster.portus_pool)
    assert K_CHUNK_REF_OVERFREE in report.kinds()
    assert report.errors()  # a future unref would free restorable bytes

    result = repair(cluster.portus_pool)
    assert result.exit_code == EXIT_REPAIRED
    assert store.lookup(entry.digest).refcount == want
    assert repair(cluster.portus_pool).exit_code == EXIT_CLEAN


def test_unreachable_chunk_refs_drop_to_zero_and_free(cluster):
    """A chunk no manifest reaches (the apply-committed / manifest-GC'd
    crash window) is repaired to refcount 0: entry removed, extent
    freed."""
    store = _store(cluster)
    digest = b"\xab" * 20
    extent = store.alloc_chunk(digest, CHUNK)
    store.apply([(digest, extent, 2)], {})
    before = store.chunk_count

    report = fsck(cluster.portus_pool)
    assert report.kinds().get(K_CHUNK_REF_LEAK) == 1

    result = repair(cluster.portus_pool)
    assert result.exit_code == EXIT_REPAIRED
    assert store.lookup(digest) is None
    assert store.chunk_count == before - 1
    assert cluster.portus_pool.allocator.lookup(extent.addr) is None
    assert repair(cluster.portus_pool).exit_code == EXIT_CLEAN


def test_manifest_missing_chunk_demotes_slot(cluster):
    """Dropping a chunk out from under a DONE manifest makes that slot
    unrestorable: fsck demotes it rather than pretending."""
    entry_map = cluster.daemon.model_map["m"]
    store = _store(cluster)
    flags = entry_map.meta.read_flags()
    newest = flags.newest_done()
    other = set(entry_map.meta.read_manifest(1 - newest))
    # A digest only the newest version holds (its fine-tuned head), so
    # the other slot must survive the demotion.
    victim = next(d for d in entry_map.meta.read_manifest(newest)
                  if d not in other)
    store.drop_entry(victim)

    report = fsck(cluster.portus_pool)
    assert K_MANIFEST_CHUNK_MISSING in report.kinds()
    assert fsck(cluster.portus_pool).clean is False

    result = repair(cluster.portus_pool)
    assert result.exit_code == EXIT_REPAIRED
    after = entry_map.meta.read_flags()
    assert after.states[newest] == 0  # demoted to EMPTY
    assert entry_map.meta.read_manifest(newest) == []
    # The surviving version still verifies: the pool ends clean.
    assert repair(cluster.portus_pool).exit_code == EXIT_CLEAN
    assert after.newest_done() is not None


def test_chunk_backing_missing_cascades_to_clean(cluster):
    """Freeing the extent under a live chunk entry is the worst case:
    repair drops the entry, the next pass demotes the manifests that
    referenced it, the pass after lowers the leaked sibling refcounts —
    all within one repair() call."""
    store = _store(cluster)
    entry = _shared_entry(store)
    cluster.portus_pool.free(store.allocation_of(entry))

    report = fsck(cluster.portus_pool)
    assert K_CHUNK_BACKING_MISSING in report.kinds()
    assert report.errors()

    result = repair(cluster.portus_pool)
    assert result.exit_code == EXIT_REPAIRED
    assert result.clean
    assert store.lookup(entry.digest) is None
    assert repair(cluster.portus_pool).exit_code == EXIT_CLEAN


def test_truncated_manifest_is_bad_and_demoted(cluster):
    entry_map = cluster.daemon.model_map["m"]
    flags = entry_map.meta.read_flags()
    newest = flags.newest_done()
    digests = entry_map.meta.read_manifest(newest)
    entry_map.meta.write_manifest(newest, digests[:-1])

    report = fsck(cluster.portus_pool)
    assert K_MANIFEST_BAD in report.kinds()
    result = repair(cluster.portus_pool)
    assert result.exit_code == EXIT_REPAIRED
    assert repair(cluster.portus_pool).exit_code == EXIT_CLEAN


def test_fsck_exit_codes_through_dirty_report(cluster):
    """EXIT_DIRTY is what portusctl fsck returns while findings stand."""
    store = _store(cluster)
    entry = _shared_entry(store)
    store.set_refcount(entry.digest, entry.refcount + 1)
    report = fsck(cluster.portus_pool)
    assert (EXIT_CLEAN if report.clean else EXIT_DIRTY) == EXIT_DIRTY
    repair(cluster.portus_pool)
    report = fsck(cluster.portus_pool)
    assert (EXIT_CLEAN if report.clean else EXIT_DIRTY) == EXIT_CLEAN

"""Unit tests for MemoryDevice allocation and addressing."""

import pytest

from repro.errors import InvalidAddressError, OutOfMemoryError
from repro.hw import ByteContent, DramDevice, GpuMemory, MemoryDevice, PmemDimm
from repro.hw.node import ComputeNode, CpuSet, StorageNode
from repro.sim import Environment
from repro.units import SECOND, gbytes, gib, mib


@pytest.fixture
def device():
    env = Environment()
    return MemoryDevice(env, "dev", capacity=mib(1),
                        read_bw_bps=gbytes(10), write_bw_bps=gbytes(10))


def test_alloc_and_free_roundtrip(device):
    a = device.alloc(1000, tag="a")
    assert device.used_bytes >= 1000
    a.free()
    assert device.used_bytes == 0
    assert device.free_bytes == device.capacity


def test_alloc_alignment(device):
    a = device.alloc(1)
    b = device.alloc(1)
    assert a.addr % 64 == 0
    assert b.addr % 64 == 0
    assert b.addr - a.addr == 64


def test_out_of_memory(device):
    device.alloc(mib(1) - 64)
    with pytest.raises(OutOfMemoryError):
        device.alloc(mib(1))


def test_free_coalesces_holes(device):
    chunks = [device.alloc(1024) for _ in range(4)]
    for chunk in chunks:
        chunk.free()
    # After freeing everything the free list must be one hole again.
    assert device._free == [(0, device.capacity)]


def test_reuse_freed_space(device):
    a = device.alloc(mib(1) - 64)
    a.free()
    b = device.alloc(mib(1) - 64)
    assert b.addr == a.addr


def test_use_after_free_detected(device):
    a = device.alloc(100)
    a.free()
    with pytest.raises(InvalidAddressError):
        a.write(0, ByteContent(b"x"))
    with pytest.raises(InvalidAddressError):
        a.free()


def test_address_based_read_write(device):
    a = device.alloc(100)
    device.write_at(a.addr + 10, ByteContent(b"abc"))
    assert device.read_at(a.addr + 10, 3).to_bytes() == b"abc"
    assert a.read_bytes(10, 3) == b"abc"


def test_address_access_outside_allocation_rejected(device):
    a = device.alloc(100)
    with pytest.raises(InvalidAddressError):
        device.read_at(a.end + 64, 1)
    with pytest.raises(InvalidAddressError):
        device.write_at(a.addr + 98, ByteContent(b"abcd"))


def test_allocation_at_finds_covering_region(device):
    a = device.alloc(100, tag="target")
    assert device.allocation_at(a.addr + 50) is a


# --- concrete devices ---------------------------------------------------------


def test_pmem_dimm_capacity_and_bandwidth():
    env = Environment()
    pmem = PmemDimm(env, dimms=3, dimm_capacity=gib(256))
    assert pmem.capacity == 3 * gib(256)
    assert pmem.write_channel.capacity_bps == pytest.approx(gbytes(3 * 2.8))
    assert pmem.read_channel.capacity_bps == pytest.approx(gbytes(3 * 6.8))
    # Write bandwidth degrades under many concurrent writers.
    assert pmem.write_channel.capacity_for(2) == pytest.approx(
        gbytes(3 * 2.8))
    assert pmem.write_channel.capacity_for(16) == pytest.approx(
        gbytes(3 * 2.0))


def test_gpu_has_asymmetric_pcie_channels():
    env = Environment()
    gpu = GpuMemory(env)
    assert gpu.pcie_read.capacity_bps == pytest.approx(gbytes(5.8))
    assert gpu.pcie_write.capacity_bps == pytest.approx(gbytes(9.0))


def test_compute_node_wiring():
    env = Environment()
    node = ComputeNode(env, "volta", gpu_count=4, gpu_memory=gib(32))
    assert len(node.gpus) == 4
    assert node.nvme is not None
    assert node.gpus[0].capacity == gib(32)


def test_storage_node_has_both_pmem_modes():
    env = Environment()
    node = StorageNode(env)
    assert node.pmem_devdax.capacity == 3 * gib(256)
    assert node.pmem_fsdax.capacity == 3 * gib(256)


# --- CpuSet --------------------------------------------------------------------


def test_cpuset_serializes_when_saturated():
    env = Environment()
    cpus = CpuSet(env, cores=2)
    done_at = []

    def job(env, tag):
        yield from cpus.execute(100)
        done_at.append((tag, env.now))

    for tag in "abcd":
        env.process(job(env, tag))
    env.run()
    assert [t for _tag, t in done_at] == [100, 100, 200, 200]


def test_cpuset_throughput_work():
    env = Environment()
    cpus = CpuSet(env, cores=1)

    def job(env):
        yield from cpus.execute_throughput(gbytes(1), gbytes(1))
        return env.now

    assert env.run_process(env.process(job(env))) == SECOND


def test_dram_device_defaults():
    env = Environment()
    dram = DramDevice(env)
    assert dram.capacity == gib(1024)

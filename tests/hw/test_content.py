"""Unit and property tests for the content model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.content import (ByteContent, CompositeContent, PatternContent,
                              SegmentBuffer, TornContent, ZeroContent,
                              pattern_bytes)


# --- pattern determinism ------------------------------------------------------


def test_pattern_bytes_deterministic():
    assert pattern_bytes(7, 0, 64) == pattern_bytes(7, 0, 64)
    assert pattern_bytes(7, 0, 64) != pattern_bytes(8, 0, 64)


def test_pattern_slice_matches_offset_stream():
    whole = PatternContent(seed=42, size=1000)
    part = whole.slice(100, 50)
    assert part.to_bytes() == whole.to_bytes()[100:150]


@given(seed=st.integers(0, 2**32), base=st.integers(0, 2**20),
       offset=st.integers(0, 500), length=st.integers(0, 500))
@settings(max_examples=50)
def test_pattern_slice_property(seed, base, offset, length):
    whole = PatternContent(seed, 1000, base=base)
    part = whole.slice(offset, length)
    assert part.to_bytes() == whole.to_bytes()[offset:offset + length]


def test_pattern_equality_by_fingerprint_without_materializing():
    huge_a = PatternContent(seed=1, size=100 * 1024**3)
    huge_b = PatternContent(seed=1, size=100 * 1024**3)
    assert huge_a.equals(huge_b)


def test_distinct_huge_patterns_compare_unequal_without_crashing():
    # Distinct streams differ in the first window, so the bounded
    # comparison answers False after materializing only one window.
    huge_a = PatternContent(seed=1, size=100 * 1024**3)
    huge_b = PatternContent(seed=2, size=100 * 1024**3)
    assert not huge_a.equals(huge_b)
    assert not huge_b.equals(huge_a)


def test_large_equal_pair_with_differing_fingerprints():
    """128 MiB regression: same bytes, different canonical forms.

    A single pattern vs a hand-built composite of the same stream: the
    top-level fingerprints differ (composite vs pattern), the size is
    over MATERIALIZE_LIMIT, and before the bounded-window fix this pair
    raised ValueError out of ``Content.equals``.
    """
    size = 128 * 1024 * 1024
    half = size // 2
    whole = PatternContent(seed=9, size=size)
    split = CompositeContent([PatternContent(seed=9, size=half),
                              PatternContent(seed=9, size=half, base=half)])
    assert whole.fingerprint() != split.fingerprint()
    assert whole.equals(split)
    assert split.equals(whole)
    # A pair that differs only in the last window must come back False.
    flipped = pattern_bytes(9, size - 1, 1)[0] ^ 0xFF
    tail_off = CompositeContent([
        PatternContent(seed=9, size=size - 1),
        ByteContent(bytes([flipped])),
    ])
    assert not whole.equals(tail_off)


def test_large_bytecontent_pair_materializes_windowed():
    # Byte-backed halves force the per-window materialize path (their
    # window fingerprints are sha1 digests, never equal to the pattern's).
    size = 128 * 1024 * 1024
    half = size // 2
    whole = PatternContent(seed=4, size=size)
    raw = CompositeContent([
        ByteContent(pattern_bytes(4, 0, half)),
        ByteContent(pattern_bytes(4, half, half)),
    ])
    assert whole.equals(raw)


def test_materialize_limit_enforced():
    huge = PatternContent(seed=1, size=100 * 1024**3)
    with pytest.raises(ValueError, match="materialize"):
        huge.to_bytes()


def test_cross_kind_equality_small():
    pattern = PatternContent(seed=5, size=128)
    raw = ByteContent(pattern.to_bytes())
    assert pattern.equals(raw)
    assert raw.equals(pattern)
    assert not raw.equals(ByteContent(b"\x00" * 128))


def test_zero_content():
    zero = ZeroContent(16)
    assert zero.to_bytes() == bytes(16)
    assert zero.slice(4, 8).to_bytes() == bytes(8)
    assert zero.equals(ByteContent(bytes(16)))


def test_torn_content_never_equal():
    torn = TornContent(10)
    assert not torn.equals(torn)
    assert not torn.equals(ZeroContent(10))
    with pytest.raises(ValueError, match="torn"):
        torn.to_bytes()


def test_slice_bounds_checked():
    content = ByteContent(b"abcdef")
    with pytest.raises(ValueError):
        content.slice(4, 10)
    with pytest.raises(ValueError):
        content.slice(-1, 2)


# --- composites ------------------------------------------------------------------


def test_composite_slice_across_parts():
    composite = CompositeContent(
        [ByteContent(b"aaaa"), ByteContent(b"bbbb"), ByteContent(b"cccc")])
    assert composite.size == 12
    assert composite.slice(2, 6).to_bytes() == b"aabbbb"


def test_adjacent_pattern_slices_rejoin():
    whole = PatternContent(seed=9, size=100)
    left = whole.slice(0, 40)
    right = whole.slice(40, 60)
    composite = CompositeContent([left, right]).slice(0, 100)
    assert isinstance(composite, PatternContent)
    assert composite.equals(whole)


# --- SegmentBuffer -----------------------------------------------------------------


def test_buffer_starts_zeroed():
    buffer = SegmentBuffer(100)
    assert buffer.read().to_bytes() == bytes(100)


def test_buffer_write_then_read_back():
    buffer = SegmentBuffer(100)
    buffer.write(10, ByteContent(b"hello"))
    assert buffer.read_bytes(10, 5) == b"hello"
    assert buffer.read_bytes(0, 10) == bytes(10)
    assert buffer.read_bytes(15, 5) == bytes(5)


def test_buffer_overwrite_partial_overlap():
    buffer = SegmentBuffer(20)
    buffer.write(0, ByteContent(b"A" * 10))
    buffer.write(5, ByteContent(b"B" * 10))
    assert buffer.read_bytes(0, 20) == b"A" * 5 + b"B" * 10 + bytes(5)


def test_buffer_write_inside_existing_segment():
    buffer = SegmentBuffer(10)
    buffer.write(0, ByteContent(b"X" * 10))
    buffer.write(3, ByteContent(b"yy"))
    assert buffer.read_bytes(0, 10) == b"XXXyyXXXXX"


def test_buffer_bounds_checked():
    buffer = SegmentBuffer(10)
    with pytest.raises(ValueError):
        buffer.write(8, ByteContent(b"abc"))
    with pytest.raises(ValueError):
        buffer.read(5, 6)


def test_buffer_holds_virtual_content_without_materializing():
    buffer = SegmentBuffer(100 * 1024**3)
    huge = PatternContent(seed=3, size=90 * 1024**3)
    buffer.write(0, huge)
    read_back = buffer.read(0, huge.size)
    assert read_back.equals(huge)
    window = buffer.read(12345, 100)
    assert window.to_bytes() == huge.slice(12345, 100).to_bytes()


@given(st.lists(
    st.tuples(st.integers(0, 90), st.binary(min_size=1, max_size=20)),
    min_size=1, max_size=20))
@settings(max_examples=50)
def test_buffer_matches_reference_bytearray(writes):
    """Property: SegmentBuffer behaves exactly like a plain bytearray."""
    buffer = SegmentBuffer(128)
    reference = bytearray(128)
    for offset, data in writes:
        if offset + len(data) > 128:
            continue
        buffer.write(offset, ByteContent(data))
        reference[offset:offset + len(data)] = data
    assert buffer.read().to_bytes() == bytes(reference)

"""Crash semantics across device kinds and the durable/volatile split."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw import ByteContent, DramDevice, GpuMemory, PmemDimm
from repro.sim import Environment
from repro.units import gib


def test_crash_is_noop_on_volatile_devices():
    """DRAM/GPU have no durable view; crash() must not touch contents.

    (A crash of a *volatile* device in the simulation means the device
    object keeps representing the same physical bytes — the daemon-level
    code decides what a reboot wipes.)"""
    env = Environment()
    for device in (DramDevice(env, capacity=gib(1)),
                   GpuMemory(env, capacity=gib(1))):
        allocation = device.alloc(64)
        allocation.write(0, ByteContent(b"volatile-but-safe-here!"))
        device.crash(random.Random(0))
        assert allocation.read_bytes(0, 23) == b"volatile-but-safe-here!"
        assert allocation.durable is None
        assert allocation.unflushed_ranges == []


def test_pmem_version_bumps_on_crash():
    """A crash rewrites the buffer from the durable view, so in-flight
    DMA snapshots must observe a version change (torn detection)."""
    env = Environment()
    pmem = PmemDimm(env, dimms=1, dimm_capacity=gib(1))
    allocation = pmem.alloc(128)
    allocation.write(0, ByteContent(b"x" * 64))
    version = allocation.version
    allocation.crash(random.Random(0))
    assert allocation.version > version


@given(st.lists(st.tuples(st.integers(0, 96), st.binary(min_size=1,
                                                        max_size=32),
                          st.booleans()),
                min_size=1, max_size=15),
       st.integers(0, 10_000))
@settings(max_examples=40, deadline=None)
def test_persisted_prefix_always_survives(writes, crash_seed):
    """Property: after any write/persist interleaving and a crash, every
    byte covered only by persisted writes matches the pre-crash view."""
    env = Environment()
    pmem = PmemDimm(env, dimms=1, dimm_capacity=gib(1))
    allocation = pmem.alloc(128)
    persisted_view = bytearray(128)
    at_risk = set()
    for offset, data, persist in writes:
        if offset + len(data) > 128:
            continue
        allocation.write(offset, ByteContent(data))
        if persist:
            allocation.persist(offset, len(data))
            for i in range(offset, offset + len(data)):
                persisted_view[i] = data[i - offset]
                at_risk.discard(i)
        else:
            at_risk.update(range(offset, offset + len(data)))
    allocation.crash(random.Random(crash_seed))
    for i in range(128):
        if i in at_risk:
            continue  # unspecified: lost, evicted, or torn
        try:
            survived = allocation.read_bytes(i, 1)
        except ValueError:
            pytest.fail(f"persisted byte {i} became torn")
        assert survived[0] == persisted_view[i], f"byte {i}"

"""Differential property suite: incremental vs reference fluid scheduler.

The incremental scheduler (dirty-channel component re-solve + same-tick
coalescing, ``repro.sim.resources._FluidScheduler``) must be
*observationally identical* to the retained full-recompute reference
solver: same rates after every membership change, same completion event
stream, same per-channel byte accounting.  This suite drives randomized
flow churn — staggered admits, striped same-tick stripe sets, natural
finishes, per-flow rate caps, congestion-threshold crossings, disjoint
components — through both schedulers and asserts bit-identical results.

``PORTUS_FLUID_EXAMPLES`` scales the schedule count (default 200, the
acceptance bar for this suite).
"""

import os
import random

from repro.errors import ProcessInterrupted
from repro.sim import Environment, SharedChannel, Transfer
from repro.sim.resources import scheduler_stats, use_reference_scheduler

N_SCHEDULES = int(os.environ.get("PORTUS_FLUID_EXAMPLES", "200"))

#: Capacities come from an integer grid so that equal fair shares across
#: disjoint components are *exactly* equal floats (the solvers' freeze
#: tolerance merges shares within 1e-9; an exact tie resolves identically
#: in both, a sub-1e-9 near-tie is not representable off this grid).
CAPACITY_GRID = [25, 40, 64, 100, 128, 250, 400, 512, 1000]
MB = 1_000_000


def _random_schedule(rng):
    """A topology + operation list, as plain data."""
    groups = []
    for g in range(rng.randint(1, 3)):
        nic_cap = rng.choice(CAPACITY_GRID) * 100 * MB
        congested = rng.random() < 0.5
        groups.append({
            "nic_cap": nic_cap,
            "congested_cap": (nic_cap // 2) if congested else None,
            "threshold": rng.randint(1, 4),
            "pmem_cap": rng.choice(CAPACITY_GRID) * 50 * MB,
        })
    clients = []
    for c in range(rng.randint(2, 6)):
        ops = []
        for _ in range(rng.randint(1, 4)):
            stripes = rng.choice([1, 1, 2, 4])
            size = rng.randint(1, 400) * MB + rng.randint(0, 999)
            if rng.random() < 0.05:
                size = 0
            ops.append({
                "delay": rng.randint(0, 40) * 1_000_000 + rng.randint(0, 99),
                "size": size,
                "stripes": stripes,
                "cap": (rng.choice(CAPACITY_GRID) * 10 * MB
                        if rng.random() < 0.3 else None),
                "latency": rng.choice([0, 0, 1000, 12_345]),
                # local=True keeps the flow off the shared group channels,
                # creating a disjoint component.
                "local": rng.random() < 0.25,
            })
        clients.append({
            "group": rng.randrange(len(groups)),
            "link_cap": rng.choice(CAPACITY_GRID) * 200 * MB,
            "ops": ops,
        })
    return {"groups": groups, "clients": clients,
            "probe_period": rng.randint(3, 9) * 1_000_000}


def _run(schedule, reference):
    env = Environment()
    if reference:
        use_reference_scheduler(env)
    shared = []
    for g, spec in enumerate(schedule["groups"]):
        nic = SharedChannel(env, spec["nic_cap"], name=f"nic{g}",
                            congested_capacity_bps=spec["congested_cap"],
                            congestion_threshold=spec["threshold"])
        pmem = SharedChannel(env, spec["pmem_cap"], name=f"pmem{g}",
                             congested_capacity_bps=spec["pmem_cap"] // 2,
                             congestion_threshold=2)
        shared.append((nic, pmem))
    completions = []
    live = {}
    probes = []

    def client(env, index, spec):
        link = SharedChannel(env, spec["link_cap"], name=f"link{index}")
        nic, pmem = shared[spec["group"]]
        for op_index, op in enumerate(spec["ops"]):
            yield env.timeout(op["delay"])
            stripes = []
            for s in range(op["stripes"]):
                label = f"c{index}.op{op_index}.s{s}"
                path = [link] if op["local"] else [link, nic, pmem]
                size = op["size"] // op["stripes"]
                transfer = Transfer(env, path, size,
                                    latency_ns=op["latency"],
                                    rate_cap_bps=op["cap"], label=label)
                live[label] = transfer
                transfer.callbacks.append(_completed)
                stripes.append(transfer)
            for transfer in stripes:
                yield transfer

    def _completed(event):
        live.pop(event.label, None)
        completions.append((event.label, event.started_at,
                            event.finished_at, event.rate_bps))

    def probe(env):
        try:
            while True:
                yield env.timeout(schedule["probe_period"])
                if live:
                    probes.append((env.now, sorted(
                        (label, t.rate_bps, t.remaining)
                        for label, t in live.items())))
        except ProcessInterrupted:
            pass

    workers = [env.process(client(env, i, spec))
               for i, spec in enumerate(schedule["clients"])]
    prober = env.process(probe(env))
    for worker in workers:
        env.run_process(worker)
    prober.interrupt()
    env.run()
    carried = {ch.name: ch._bytes_carried
               for pair in shared for ch in pair}
    return {"completions": completions, "probes": probes,
            "carried": carried, "end": env.now,
            "stats": scheduler_stats(env)}


def test_incremental_matches_reference_on_randomized_churn():
    rng = random.Random(0xF1D0)
    solved_incremental = solved_reference = 0
    for case in range(N_SCHEDULES):
        schedule = _random_schedule(rng)
        incremental = _run(schedule, reference=False)
        ref = _run(schedule, reference=True)
        context = f"schedule {case}"
        assert incremental["completions"] == ref["completions"], context
        assert incremental["probes"] == ref["probes"], context
        assert incremental["carried"] == ref["carried"], context
        assert incremental["end"] == ref["end"], context
        solved_incremental += incremental["stats"]["flows_solved"]
        solved_reference += ref["stats"]["flows_solved"]
    # The point of the rewrite: the incremental scheduler touches far
    # fewer flows per membership change than the full recompute.
    assert solved_incremental < solved_reference


def test_incremental_and_reference_agree_rerun_deterministically():
    """The same schedule replayed through the same scheduler is
    bit-identical (no hidden iteration-order nondeterminism)."""
    schedule = _random_schedule(random.Random(7))
    for reference in (False, True):
        first = _run(schedule, reference)
        second = _run(schedule, reference)
        assert first == second

"""Unit tests for Resource, Store, and the fluid SharedChannel."""

import pytest

from repro.sim import AllOf, AnyOf, Environment, Resource, SharedChannel, Store, Transfer
from repro.units import SECOND, gbytes


# --- Resource ----------------------------------------------------------------


def test_resource_mutual_exclusion():
    env = Environment()
    resource = Resource(env, capacity=1)
    trace = []

    def worker(env, tag):
        req = resource.request()
        yield req
        trace.append((tag, "in", env.now))
        yield env.timeout(10)
        trace.append((tag, "out", env.now))
        resource.release(req)

    env.process(worker(env, "a"))
    env.process(worker(env, "b"))
    env.run()
    assert trace == [("a", "in", 0), ("a", "out", 10),
                     ("b", "in", 10), ("b", "out", 20)]


def test_resource_capacity_two_admits_pair():
    env = Environment()
    resource = Resource(env, capacity=2)
    entered = []

    def worker(env, tag):
        req = resource.request()
        yield req
        entered.append((tag, env.now))
        yield env.timeout(10)
        resource.release(req)

    for tag in "abc":
        env.process(worker(env, tag))
    env.run()
    assert entered == [("a", 0), ("b", 0), ("c", 10)]


def test_resource_cancel_waiting_request():
    env = Environment()
    resource = Resource(env, capacity=1)
    held = resource.request()
    env.run()
    waiting = resource.request()
    assert resource.queue_length == 1
    waiting.cancel()
    assert resource.queue_length == 0
    resource.release(held)
    assert resource.in_use == 0


# --- Store --------------------------------------------------------------------


def test_store_fifo_order():
    env = Environment()
    store = Store(env)
    got = []

    def producer(env):
        for item in (1, 2, 3):
            yield store.put(item)
            yield env.timeout(1)

    def consumer(env):
        for _ in range(3):
            item = yield store.get()
            got.append((item, env.now))

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert [item for item, _ in got] == [1, 2, 3]


def test_store_get_blocks_until_put():
    env = Environment()
    store = Store(env)
    result = {}

    def consumer(env):
        result["value"] = yield store.get()
        result["time"] = env.now

    def producer(env):
        yield env.timeout(42)
        yield store.put("x")

    env.process(consumer(env))
    env.process(producer(env))
    env.run()
    assert result == {"value": "x", "time": 42}


def test_bounded_store_blocks_put():
    env = Environment()
    store = Store(env, capacity=1)
    times = []

    def producer(env):
        yield store.put("a")
        times.append(("a", env.now))
        yield store.put("b")
        times.append(("b", env.now))

    def consumer(env):
        yield env.timeout(100)
        yield store.get()

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert times == [("a", 0), ("b", 100)]


# --- Conditions -----------------------------------------------------------------


def test_allof_waits_for_slowest():
    env = Environment()

    def proc(env):
        t1 = env.timeout(10, "fast")
        t2 = env.timeout(30, "slow")
        result = yield AllOf(env, [t1, t2])
        return (env.now, result.values())

    assert env.run_process(env.process(proc(env))) == (30, ["fast", "slow"])


def test_anyof_returns_on_first():
    env = Environment()

    def proc(env):
        t1 = env.timeout(10, "fast")
        t2 = env.timeout(30, "slow")
        result = yield AnyOf(env, [t1, t2])
        return (env.now, "fast" in result.values())

    assert env.run_process(env.process(proc(env))) == (10, True)


def test_allof_empty_fires_immediately():
    env = Environment()

    def proc(env):
        result = yield AllOf(env, [])
        return (env.now, len(result))

    assert env.run_process(env.process(proc(env))) == (0, 0)


# --- SharedChannel ---------------------------------------------------------------


def test_single_transfer_takes_size_over_capacity():
    env = Environment()
    channel = SharedChannel(env, capacity_bps=gbytes(1))

    def proc(env):
        t = channel.transfer(1_000_000_000)  # 1 GB at 1 GB/s -> 1 s
        yield t
        return env.now

    assert env.run_process(env.process(proc(env))) == SECOND


def test_two_transfers_share_bandwidth_equally():
    env = Environment()
    channel = SharedChannel(env, capacity_bps=gbytes(1))

    def proc(env):
        t1 = channel.transfer(500_000_000)
        t2 = channel.transfer(500_000_000)
        yield AllOf(env, [t1, t2])
        return env.now

    # Two 0.5 GB flows at 0.5 GB/s each -> both finish at 1 s.
    assert env.run_process(env.process(proc(env))) == SECOND


def test_short_flow_releases_bandwidth_to_long_flow():
    env = Environment()
    channel = SharedChannel(env, capacity_bps=gbytes(1))

    def proc(env):
        long = channel.transfer(1_000_000_000)
        short = channel.transfer(100_000_000)
        yield short
        short_done = env.now
        yield long
        return (short_done, env.now)

    # Shared phase: short needs 0.1 GB at 0.5 GB/s -> done at 0.2 s, long has
    # moved 0.1 GB.  Solo phase: 0.9 GB at 1 GB/s -> +0.9 s -> 1.1 s total.
    short_done, long_done = env.run_process(env.process(proc(env)))
    assert short_done == pytest.approx(0.2 * SECOND, rel=1e-6)
    assert long_done == pytest.approx(1.1 * SECOND, rel=1e-6)


def test_latency_delays_first_byte():
    env = Environment()
    channel = SharedChannel(env, capacity_bps=gbytes(1))

    def proc(env):
        t = channel.transfer(1_000_000_000, latency_ns=5000)
        yield t
        return env.now

    assert env.run_process(env.process(proc(env))) == SECOND + 5000


def test_rate_cap_binds_below_fair_share():
    env = Environment()
    channel = SharedChannel(env, capacity_bps=gbytes(10))

    def proc(env):
        t = channel.transfer(1_000_000_000, rate_cap_bps=gbytes(1))
        yield t
        return env.now

    assert env.run_process(env.process(proc(env))) == pytest.approx(
        SECOND, rel=1e-6)


def test_capped_flow_leaves_residual_capacity_unused_by_it():
    env = Environment()
    channel = SharedChannel(env, capacity_bps=gbytes(2))

    def proc(env):
        capped = channel.transfer(1_000_000_000, rate_cap_bps=gbytes(0.5))
        free = channel.transfer(1_500_000_000)
        yield AllOf(env, [capped, free])
        return (capped.elapsed_ns, free.elapsed_ns)

    capped_ns, free_ns = env.run_process(env.process(proc(env)))
    # Max-min: capped flow pinned at 0.5 GB/s -> 2 s; free flow gets the
    # residual 1.5 GB/s -> 1 s.
    assert capped_ns == pytest.approx(2 * SECOND, rel=1e-6)
    assert free_ns == pytest.approx(1 * SECOND, rel=1e-6)


def test_multi_channel_path_bottleneck():
    env = Environment()
    fast = SharedChannel(env, capacity_bps=gbytes(10), name="fast")
    slow = SharedChannel(env, capacity_bps=gbytes(1), name="slow")

    def proc(env):
        t = Transfer(env, [fast, slow], 1_000_000_000)
        yield t
        return env.now

    assert env.run_process(env.process(proc(env))) == pytest.approx(
        SECOND, rel=1e-6)


def test_disjoint_channels_do_not_interfere():
    env = Environment()
    ch1 = SharedChannel(env, capacity_bps=gbytes(1))
    ch2 = SharedChannel(env, capacity_bps=gbytes(1))

    def proc(env):
        t1 = ch1.transfer(1_000_000_000)
        t2 = ch2.transfer(1_000_000_000)
        yield AllOf(env, [t1, t2])
        return env.now

    assert env.run_process(env.process(proc(env))) == pytest.approx(
        SECOND, rel=1e-6)


def test_shared_bottleneck_with_private_segments():
    env = Environment()
    nic = SharedChannel(env, capacity_bps=gbytes(1), name="nic")
    pcie_a = SharedChannel(env, capacity_bps=gbytes(10), name="pcie-a")
    pcie_b = SharedChannel(env, capacity_bps=gbytes(10), name="pcie-b")

    def proc(env):
        t1 = Transfer(env, [pcie_a, nic], 500_000_000)
        t2 = Transfer(env, [pcie_b, nic], 500_000_000)
        yield AllOf(env, [t1, t2])
        return env.now

    # Both flows share only the NIC: 0.5 GB/s each -> 1 s.
    assert env.run_process(env.process(proc(env))) == pytest.approx(
        SECOND, rel=1e-6)


def test_zero_byte_transfer_completes_instantly():
    env = Environment()
    channel = SharedChannel(env, capacity_bps=gbytes(1))

    def proc(env):
        t = channel.transfer(0)
        yield t
        return env.now

    assert env.run_process(env.process(proc(env))) == 0


def test_sixteen_flows_fair_share():
    env = Environment()
    nic = SharedChannel(env, capacity_bps=gbytes(16))

    def proc(env):
        flows = [nic.transfer(1_000_000_000) for _ in range(16)]
        yield AllOf(env, flows)
        return env.now

    # 16 x 1 GB at 1 GB/s each -> all finish together at 1 s.
    assert env.run_process(env.process(proc(env))) == pytest.approx(
        SECOND, rel=1e-6)


def test_bytes_carried_accounting():
    env = Environment()
    channel = SharedChannel(env, capacity_bps=gbytes(1))

    def proc(env):
        yield channel.transfer(123_456_789)

    env.run_process(env.process(proc(env)))
    assert channel.bytes_carried == pytest.approx(123_456_789, rel=1e-3)


def test_bytes_carried_exact_after_many_rate_changes():
    """Carried bytes must equal transferred bytes *exactly* (after
    rounding), even when every flow's rate changes many times.

    The channel accumulates per-tick byte increments in float; the old
    integer-truncating accumulator lost up to a byte per rate change and
    drifted visibly under churn.  Staggered admits of awkward
    (non-divisible) sizes force dozens of rate recomputations, and the
    finishing tick's overshoot clamp keeps the ceil'd wakeup horizon
    from over-counting.
    """
    env = Environment()
    channel = SharedChannel(env, capacity_bps=gbytes(1),
                            congested_capacity_bps=gbytes(1) // 2,
                            congestion_threshold=4)
    sizes = [123_456_789 + 7 * i for i in range(40)]

    def client(env, delay, size):
        yield env.timeout(delay)
        yield channel.transfer(size)

    for i, size in enumerate(sizes):
        env.process(client(env, i * 1_000_003, size))
    env.run()
    assert channel.bytes_carried == sum(sizes)

"""Property-based tests for the fluid-flow bandwidth model."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import AllOf, Environment, SharedChannel, Transfer
from repro.units import SECOND, gbytes


@given(sizes=st.lists(st.integers(1, 500_000_000), min_size=1,
                      max_size=12))
@settings(max_examples=40, deadline=None)
def test_total_time_conserves_work(sizes):
    """Property: with one shared channel, the last completion is exactly
    total_bytes/capacity regardless of how flows interleave (the channel
    is work-conserving)."""
    env = Environment()
    channel = SharedChannel(env, capacity_bps=gbytes(1))

    def proc(env):
        flows = [channel.transfer(size) for size in sizes]
        yield AllOf(env, flows)
        return env.now

    finish = env.run_process(env.process(proc(env)))
    expected = sum(sizes) / gbytes(1) * SECOND
    assert finish == pytest.approx(expected, rel=1e-6, abs=2)


@given(sizes=st.lists(st.integers(1_000_000, 100_000_000), min_size=2,
                      max_size=8))
@settings(max_examples=30, deadline=None)
def test_completion_order_matches_size_order(sizes):
    """Property: flows started together on one channel finish in size
    order (equal shares => smaller flows drain first)."""
    env = Environment()
    channel = SharedChannel(env, capacity_bps=gbytes(2))
    completions = []

    def waiter(env, transfer, size):
        yield transfer
        completions.append((env.now, size))

    def proc(env):
        procs = []
        for size in sizes:
            transfer = channel.transfer(size)
            procs.append(env.process(waiter(env, transfer, size)))
        yield AllOf(env, procs)

    env.run_process(env.process(proc(env)))
    finish_times = {}
    for time, size in completions:
        finish_times.setdefault(size, time)
    ordered = sorted(sizes)
    for smaller, larger in zip(ordered, ordered[1:]):
        assert finish_times[smaller] <= finish_times[larger]


@given(size=st.integers(1, 10_000_000),
       staggered=st.integers(0, 5_000_000))
@settings(max_examples=30, deadline=None)
def test_single_flow_time_is_exact(size, staggered):
    """Property: an uncontended flow takes exactly size/capacity, no
    matter when it starts."""
    env = Environment()
    channel = SharedChannel(env, capacity_bps=gbytes(1))

    def proc(env):
        yield env.timeout(staggered)
        start = env.now
        yield channel.transfer(size)
        return env.now - start

    elapsed = env.run_process(env.process(proc(env)))
    assert elapsed == pytest.approx(size / gbytes(1) * SECOND,
                                    rel=1e-9, abs=1)


def test_congested_channel_switches_capacity():
    env = Environment()
    channel = SharedChannel(env, capacity_bps=gbytes(8),
                            congested_capacity_bps=gbytes(4),
                            congestion_threshold=2)

    def proc(env, flows):
        start = env.now
        transfers = [channel.transfer(100_000_000) for _ in range(flows)]
        yield AllOf(env, transfers)
        return env.now - start

    two = env.run_process(env.process(proc(env, 2)))
    four = env.run_process(env.process(proc(env, 4)))
    # 2 flows x 100MB at 8 GB/s total = 25 ms; 4 flows at the congested
    # 4 GB/s = 100 ms.
    assert two == pytest.approx(0.025 * SECOND, rel=1e-6)
    assert four == pytest.approx(0.100 * SECOND, rel=1e-6)


def test_congestion_parameters_validated():
    env = Environment()
    with pytest.raises(ValueError):
        SharedChannel(env, capacity_bps=gbytes(1),
                      congested_capacity_bps=gbytes(2))
    with pytest.raises(ValueError):
        SharedChannel(env, capacity_bps=gbytes(1),
                      congested_capacity_bps=0)


@given(cap=st.floats(0.1, 2.0), size=st.integers(1_000, 50_000_000))
@settings(max_examples=20, deadline=None)
def test_rate_cap_never_exceeded(cap, size):
    """Property: a capped flow can never beat size/cap."""
    env = Environment()
    channel = SharedChannel(env, capacity_bps=gbytes(10))

    def proc(env):
        transfer = channel.transfer(size, rate_cap_bps=gbytes(cap))
        yield transfer
        return env.now

    elapsed = env.run_process(env.process(proc(env)))
    floor = size / gbytes(cap) * SECOND
    assert elapsed >= math.floor(floor)

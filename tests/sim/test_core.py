"""Unit tests for the discrete-event engine core."""

import pytest

from repro.errors import (ProcessInterrupted, SimulationDeadlock,
                          SimulationError)
from repro.sim import Environment
from repro.units import SECOND


def test_timeout_advances_clock():
    env = Environment()

    def proc(env):
        yield env.timeout(100)
        return env.now

    p = env.process(proc(env))
    assert env.run_process(p) == 100
    assert env.now == 100


def test_timeouts_fire_in_order():
    env = Environment()
    fired = []

    def waiter(env, delay):
        yield env.timeout(delay)
        fired.append(delay)

    for delay in (30, 10, 20):
        env.process(waiter(env, delay))
    env.run()
    assert fired == [10, 20, 30]


def test_same_time_events_fifo_by_creation():
    env = Environment()
    fired = []

    def waiter(env, tag):
        yield env.timeout(50)
        fired.append(tag)

    for tag in "abc":
        env.process(waiter(env, tag))
    env.run()
    assert fired == ["a", "b", "c"]


def test_process_return_value():
    env = Environment()

    def child(env):
        yield env.timeout(5)
        return "done"

    def parent(env):
        value = yield env.process(child(env))
        return value + "!"

    assert env.run_process(env.process(parent(env))) == "done!"


def test_yield_already_processed_event_resumes_immediately():
    env = Environment()
    ev = env.event()
    ev.succeed("early")
    env.run()  # process the event with no listeners

    def proc(env):
        value = yield ev
        return (env.now, value)

    assert env.run_process(env.process(proc(env))) == (0, "early")


def test_event_failure_propagates_into_process():
    env = Environment()
    ev = env.event()

    def proc(env):
        with pytest.raises(ValueError, match="boom"):
            yield ev
        return "caught"

    p = env.process(proc(env))
    ev.fail(ValueError("boom"))
    assert env.run_process(p) == "caught"


def test_unhandled_process_exception_raises_from_run():
    env = Environment()

    def proc(env):
        yield env.timeout(1)
        raise RuntimeError("explode")

    env.process(proc(env))
    with pytest.raises(RuntimeError, match="explode"):
        env.run()


def test_joining_failed_process_rethrows():
    env = Environment()

    def child(env):
        yield env.timeout(1)
        raise KeyError("gone")

    def parent(env):
        with pytest.raises(KeyError):
            yield env.process(child(env))
        return "survived"

    assert env.run_process(env.process(parent(env))) == "survived"


def test_event_cannot_trigger_twice():
    env = Environment()
    ev = env.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)
    with pytest.raises(SimulationError):
        ev.fail(ValueError())


def test_interrupt_delivers_cause():
    env = Environment()

    def victim(env):
        try:
            yield env.timeout(1000)
        except ProcessInterrupted as exc:
            return ("interrupted", exc.cause, env.now)
        return "not reached"

    def attacker(env, target):
        yield env.timeout(10)
        target.interrupt(cause="preempt")

    target = env.process(victim(env))
    env.process(attacker(env, target))
    assert env.run_process(target) == ("interrupted", "preempt", 10)


def test_interrupted_process_can_rewait():
    env = Environment()

    def victim(env):
        try:
            yield env.timeout(1000)
        except ProcessInterrupted:
            pass
        yield env.timeout(5)
        return env.now

    def attacker(env, target):
        yield env.timeout(10)
        target.interrupt()

    target = env.process(victim(env))
    env.process(attacker(env, target))
    assert env.run_process(target) == 15


def test_interrupt_finished_process_is_error():
    env = Environment()

    def quick(env):
        yield env.timeout(1)

    p = env.process(quick(env))
    env.run()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_run_until_stops_clock_exactly():
    env = Environment()

    def proc(env):
        yield env.timeout(10 * SECOND)

    env.process(proc(env))
    env.run(until=3 * SECOND)
    assert env.now == 3 * SECOND
    env.run()
    assert env.now == 10 * SECOND


def test_run_until_in_past_rejected():
    env = Environment()
    env.run(until=100)
    with pytest.raises(ValueError):
        env.run(until=50)


def test_run_process_deadlock_detection():
    env = Environment()

    def stuck(env):
        yield env.event()  # never triggered

    p = env.process(stuck(env))
    with pytest.raises(SimulationDeadlock):
        env.run_process(p)


def test_yield_non_event_fails_process():
    env = Environment()

    def bad(env):
        yield 42

    p = env.process(bad(env))
    with pytest.raises(SimulationError, match="not an Event"):
        env.run_process(p)


def test_cross_environment_yield_rejected():
    env1 = Environment()
    env2 = Environment()

    def bad(env1, env2):
        yield env2.timeout(1)

    p = env1.process(bad(env1, env2))
    with pytest.raises(SimulationError, match="different environment"):
        env1.run_process(p)


def test_run_all_collects_values():
    env = Environment()

    def worker(env, n):
        yield env.timeout(n)
        return n * 2

    procs = [env.process(worker(env, n)) for n in (3, 1, 2)]
    assert env.run_all(procs) == [6, 2, 4]

"""Tests for the seeded named random streams."""

from repro.sim import RandomStreams


def test_streams_are_reproducible():
    a = RandomStreams(7).stream("crash")
    b = RandomStreams(7).stream("crash")
    assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]


def test_streams_are_independent_by_name():
    streams = RandomStreams(7)
    crash = [streams.stream("crash").random() for _ in range(3)]
    jitter = [streams.stream("jitter").random() for _ in range(3)]
    assert crash != jitter


def test_adding_a_consumer_does_not_perturb_others():
    solo = RandomStreams(7)
    solo_draws = [solo.stream("crash").random() for _ in range(3)]

    both = RandomStreams(7)
    both.stream("new-consumer").random()  # interleaved new consumer
    both_draws = [both.stream("crash").random() for _ in range(3)]
    assert solo_draws == both_draws


def test_master_seed_changes_everything():
    a = RandomStreams(1).stream("x").random()
    b = RandomStreams(2).stream("x").random()
    assert a != b


def test_reseed_resets_streams():
    streams = RandomStreams(1)
    first = streams.stream("x").random()
    streams.reseed(1)
    assert streams.stream("x").random() == first
    streams.reseed(2)
    assert streams.stream("x").random() != first


def test_same_stream_object_returned():
    streams = RandomStreams(0)
    assert streams.stream("a") is streams.stream("a")

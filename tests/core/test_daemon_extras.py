"""Tests for daemon extras: LIST op, DRAM fallback, failure handling."""

import pytest

from repro.core.client import PortusClient
from repro.core.consistency import valid_checkpoint
from repro.core.daemon import PortusDaemon
from repro.errors import RkeyViolation
from repro.harness.cluster import PaperCluster
from repro.pmem import PmemPool
from repro.units import gbytes, to_seconds


def test_list_reports_inventory_over_the_network():
    cluster = PaperCluster(seed=20)

    def scenario(env):
        session = yield from cluster.portus_register("alexnet")
        session.model.update_step(4)
        yield from session.checkpoint(4)
        rows = yield from cluster.portus_client().list_models()
        return rows

    rows = cluster.run(scenario)
    assert len(rows) == 1
    row = rows[0]
    assert row["model"] == "alexnet"
    assert row["layers"] == 16
    assert row["attached"] is True
    assert {"state": "DONE", "step": 4} in row["versions"]


def test_list_empty_daemon():
    cluster = PaperCluster(seed=21)

    def scenario(env):
        rows = yield from cluster.portus_client().list_models()
        return rows

    assert cluster.run(scenario) == []


def test_dram_fallback_mode():
    """Paper §IV-a: upon the absence of PMem, Portus can use DRAM.

    The pool formats on the server's DRAM device; checkpoints and
    restores work identically (durability guarantees are weaker, which
    is the trade the paper accepts for that mode)."""
    cluster = PaperCluster(seed=22, start_daemon=True)
    dram_pool = PmemPool.format(cluster.server.dram)
    dram_daemon = PortusDaemon(cluster.env, cluster.server, dram_pool,
                               cluster.server_tcp, port=9901)
    dram_daemon.start()

    def scenario(env):
        client = PortusClient(env, cluster.volta, cluster.volta_tcp,
                              dram_daemon)
        instance = cluster.materialize("resnet50")
        session = yield from client.register(instance)
        instance.update_step(3)
        start = env.now
        yield from session.checkpoint(3)
        elapsed = env.now - start
        instance.update_step(9)
        step = yield from session.restore()
        contents = {t.name: t.content() for t in instance.tensors}
        return elapsed, step, instance.verify_against(contents, step=3)

    elapsed, step, mismatched = cluster.run(scenario)
    assert step == 3
    assert mismatched == []
    entry = dram_daemon.model_map["resnet50"]
    assert valid_checkpoint(entry.meta) == (entry.meta.read_flags()
                                            .newest_done(), 3)
    # Same speed as PMem: the network path is the bottleneck either way
    # (the paper's Fig. 10 point).
    rate = entry.meta.mindex.total_bytes / to_seconds(elapsed)
    assert rate == pytest.approx(gbytes(5.8), rel=0.05)


def test_client_vanishing_mid_pull_aborts_cleanly():
    """Deregistering the client's MRs mid-checkpoint (job died) must
    abort the pull: the daemon reports an error, the target slot is
    rolled back, and the previous checkpoint stays restorable."""
    from repro.core import protocol

    cluster = PaperCluster(seed=23)

    def scenario(env):
        session = yield from cluster.portus_register("vgg19_bn")
        session.model.update_step(1)
        yield from session.checkpoint(1)
        session.model.update_step(2)
        message, size = protocol.do_checkpoint("vgg19_bn", 2)
        yield from session.conn.send(message, wire_size=size)
        yield env.timeout(1_000_000)  # 1 ms into a ~100 ms pull
        # The training process dies: every MR is torn down.
        for mr in session.mrs:
            cluster.volta.nic.deregister_mr(mr)
        reply = yield from session.conn.recv()
        return session, reply

    session, reply = cluster.run(scenario)
    assert reply["op"] == protocol.OP_ERROR
    assert isinstance(reply["error"], RkeyViolation)
    entry = cluster.daemon.model_map["vgg19_bn"]
    assert not entry.busy  # the CAS guard was released
    assert valid_checkpoint(entry.meta)[1] == 1  # old version intact


def test_error_does_not_wedge_daemon():
    """After a failed checkpoint the same model checkpoints fine again."""
    from repro.core import protocol

    cluster = PaperCluster(seed=24)

    def scenario(env):
        session = yield from cluster.portus_register("alexnet")
        session.model.update_step(1)
        # Fail: restore before any checkpoint.
        message, size = protocol.do_restore("alexnet")
        yield from session.conn.send(message, wire_size=size)
        reply = yield from session.conn.recv()
        assert reply["op"] == protocol.OP_ERROR
        # Then a normal checkpoint succeeds.
        reply = yield from session.checkpoint(1)
        return reply

    reply = cluster.run(scenario)
    assert reply["op"] == "CHECKPOINT_DONE"
    assert reply["step"] == 1

"""Unit tests for the transfer engine (repro.core.engine).

The rig builds a real datapath — GPU allocations behind the Volta NIC,
a PMem region behind the server NIC, connected RC QPs — and drives a
:class:`TransferEngine` over it directly, so credit flow, striping,
stream limiting, and abort semantics are observable without the daemon
in the way.  The daemon-level behaviour (per-WR CPU charging, reply
fields, REGISTER negotiation) is tested end to end through
:class:`PaperCluster`.
"""

from types import SimpleNamespace

import pytest

from repro.core import protocol
from repro.core.engine import (ENGINE_CHUNK_BYTES, IngestLimiter,
                               LocalCopyEngine, TransferEngine, build_items,
                               stripe_items)
from repro.errors import ReproError, WorkRequestError
from repro.harness.cluster import PaperCluster
from repro.rdma.verbs import connect
from repro.sim import Transfer
from repro.units import kib, mib


def _pairs(sizes):
    """Synthetic (descriptor, client) pairs with packed offsets."""
    pairs = []
    offset = 0
    for index, size in enumerate(sizes):
        descriptor = SimpleNamespace(name=f"t{index}", offset=offset,
                                     size=size)
        pairs.append((descriptor, {"addr": 0x1000 + offset, "rkey": 1}))
        offset += size
    return pairs


# -- build_items ---------------------------------------------------------------


def test_build_items_segments_large_tensors():
    chunk = kib(64)
    pairs = _pairs([kib(64) * 3 + 5, kib(64), 17])
    items = build_items(pairs, chunk)
    # t0 -> 4 parts (3 full + 5 B tail), t1 and t2 whole.
    assert [item.name for item in items] == \
        ["t0#0", "t0#1", "t0#2", "t0#3", "t1", "t2"]
    assert sum(item.size for item in items) == sum(d.size
                                                   for d, _c in pairs)
    # Segments tile the tensor contiguously on both sides.
    parts = items[:4]
    for previous, part in zip(parts, parts[1:]):
        assert part.local_offset == previous.local_offset + previous.size
        assert part.remote_addr == previous.remote_addr + previous.size
    assert parts[-1].size == 5


def test_build_items_none_disables_segmentation():
    pairs = _pairs([mib(64), kib(1)])
    items = build_items(pairs, None)
    assert [item.size for item in items] == [mib(64), kib(1)]
    assert [item.name for item in items] == ["t0", "t1"]


# -- stripe_items --------------------------------------------------------------


def test_stripe_items_lpt_balances_bytes():
    items = build_items(_pairs([100, 90, 80, 30, 20, 10, 10]), None)
    queues = stripe_items(items, 3)
    loads = [sum(item.size for item in queue) for queue in queues]
    # LPT on this multiset: 100+10+10, 90+20, 80+30.
    assert sorted(loads) == [110, 110, 120]
    # Largest-first within each lane.
    for queue in queues:
        sizes = [item.size for item in queue]
        assert sizes == sorted(sizes, reverse=True)


def test_stripe_items_is_deterministic_on_ties():
    items = build_items(_pairs([64] * 8), None)
    first = stripe_items(items, 3)
    second = stripe_items(items, 3)
    assert [[i.name for i in q] for q in first] == \
        [[i.name for i in q] for q in second]


# -- IngestLimiter -------------------------------------------------------------


def test_ingest_limiter_caps_and_queues():
    cluster = PaperCluster(seed=1, ampere_nodes=0, start_daemon=False)
    limiter = IngestLimiter(cluster.env, capacity=2)
    a, b, c = limiter.request("x"), limiter.request("x"), limiter.request("x")
    assert a.triggered and b.triggered and not c.triggered
    assert limiter.in_use == 2
    limiter.release(a)
    assert c.triggered
    limiter.release(b)
    limiter.release(c)
    assert limiter.in_use == 0


def test_ingest_limiter_grants_fair_share_across_owners():
    cluster = PaperCluster(seed=1, ampere_nodes=0, start_daemon=False)
    limiter = IngestLimiter(cluster.env, capacity=2)
    a1, a2 = limiter.request("a"), limiter.request("a")
    a3 = limiter.request("a")  # queued first...
    b1 = limiter.request("b")  # ...but b holds nothing
    assert not a3.triggered and not b1.triggered
    limiter.release(a1)
    # Owner-fair: the freed slot goes to b (zero held) over a's FIFO head.
    assert b1.triggered and not a3.triggered
    limiter.release(a2)
    assert a3.triggered


def test_ingest_limiter_cancel_queued_and_held():
    cluster = PaperCluster(seed=1, ampere_nodes=0, start_daemon=False)
    limiter = IngestLimiter(cluster.env, capacity=1)
    held = limiter.request("a")
    queued = limiter.request("b")
    queued.cancel()  # withdrawn from the wait queue
    follower = limiter.request("c")
    held.cancel()  # held token: cancel == release
    assert follower.triggered
    assert limiter.in_use == 1


# -- the engine over a real datapath -------------------------------------------


class _Rig:
    """A live GPU -> PMem datapath with *num_qps* server-side QPs."""

    def __init__(self, sizes, num_qps, seed=7):
        self.cluster = PaperCluster(seed=seed, ampere_nodes=0,
                                    start_daemon=False)
        self.sizes = sizes
        cluster = self.cluster

        def setup(env):
            total = sum(sizes)
            region = cluster.server.pmem_devdax.alloc(total, tag="rig")
            region_mr = yield from cluster.server.nic.register_mr(region)
            gpu = cluster.volta.gpus[0]
            pairs = []
            offset = 0
            for index, size in enumerate(sizes):
                src = gpu.alloc(size, tag=f"rig-t{index}")
                mr = yield from cluster.volta.nic.register_mr(src)
                descriptor = SimpleNamespace(name=f"t{index}",
                                             offset=offset, size=size)
                pairs.append((descriptor, {"addr": mr.addr,
                                           "rkey": mr.rkey}))
                offset += size
            server_qps = []
            for _lane in range(num_qps):
                _client_qp, server_qp = yield from connect(
                    env, cluster.volta.nic, cluster.server.nic)
                server_qps.append(server_qp)
            return region_mr, pairs, server_qps

        self.region_mr, self.pairs, self.qps = cluster.run(setup)

    def pull(self, **kwargs):
        engine = TransferEngine(self.cluster.env, self.qps, **kwargs)
        holder = {}

        def scenario(env):
            holder["bytes"] = yield from engine.pull(
                self.region_mr, self.pairs, "rig")

        self.cluster.run(scenario)
        return engine, holder["bytes"]


def test_engine_moves_every_byte_and_counts_wrs():
    sizes = [kib(256), kib(64), kib(7)]
    rig = _Rig(sizes, num_qps=2)
    engine, moved = rig.pull(depth=4, chunk_bytes=kib(64))
    assert moved == sum(sizes)
    assert engine.posted_wrs == 4 + 1 + 1
    nic = rig.cluster.server.nic
    assert nic.wrs_posted == engine.posted_wrs
    assert nic.wrs_completed == engine.posted_wrs
    assert nic.wrs_failed == 0
    assert nic.wrs_inflight == 0


def test_engine_peak_inflight_bounded_by_credits():
    rig = _Rig([kib(512)] * 2, num_qps=2)
    engine, _moved = rig.pull(depth=3, chunk_bytes=kib(16))
    # 64 items over 2 lanes, never more than depth per lane in flight.
    assert engine.posted_wrs == 64
    assert engine.peak_inflight <= 3 * 2
    # The sliding window actually fills its credits.
    assert engine.peak_inflight == 3 * 2


def test_engine_stream_limit_caps_global_inflight():
    rig = _Rig([kib(512)] * 2, num_qps=4)
    limiter = IngestLimiter(rig.cluster.env, capacity=2)
    engine, moved = rig.pull(depth=8, chunk_bytes=kib(32),
                             stream_limit=limiter)
    assert moved == kib(512) * 2
    assert engine.peak_inflight <= 2
    assert limiter.in_use == 0  # every token returned


def test_engine_barrier_mode_is_slower_than_pipelined():
    # Per-tensor WRs in registration order: every window holds one
    # straggler and three small tensors, so the barrier idles 3 of its
    # 4 slots while the straggler drains; the sliding window refills
    # them the moment each completion returns a credit.
    sizes = [kib(512), kib(16), kib(16), kib(16)] * 6
    elapsed = {}
    for pipelined in (True, False):
        rig = _Rig(sizes, num_qps=1)
        start = rig.cluster.env.now
        _engine, moved = rig.pull(depth=4, chunk_bytes=None,
                                  largest_first=False,
                                  pipelined=pipelined)
        assert moved == sum(sizes)
        elapsed[pipelined] = rig.cluster.env.now - start
    assert elapsed[True] < elapsed[False]


def test_engine_abort_flushes_every_qp_in_stripe_set():
    # Satellite 3: one failing WR must retire the in-flight WRs on ALL
    # lanes of the stripe set, not just the lane that saw the error.
    rig = _Rig([kib(256)] * 4, num_qps=4)
    nic = rig.cluster.server.nic
    state = {"reads": 0}

    def hook(kind, label, length):
        state["reads"] += 1
        if state["reads"] == 6:
            return WorkRequestError(f"{label}: injected")
        return None

    nic.fault_hook = hook
    epochs_before = [qp.epoch for qp in rig.qps]
    with pytest.raises(ReproError):
        rig.pull(depth=2, chunk_bytes=kib(32))
    for qp, before in zip(rig.qps, epochs_before):
        assert qp.epoch > before, "a lane of the stripe set was not flushed"


def test_engine_abort_rescues_hung_wrs_on_sibling_lanes():
    rig = _Rig([kib(256)] * 4, num_qps=4)
    nic = rig.cluster.server.nic
    state = {"reads": 0}

    def hook(kind, label, length):
        state["reads"] += 1
        if state["reads"] == 3:
            return "hang"  # a lost completion on one lane
        if state["reads"] == 9:
            return WorkRequestError(f"{label}: injected")
        return None

    nic.fault_hook = hook
    # Without the stripe-set flush the hung WR would park forever and
    # the run would deadlock instead of raising.
    with pytest.raises(ReproError):
        rig.pull(depth=2, chunk_bytes=kib(32))
    assert nic.wrs_inflight == 0


def test_local_copy_engine_single_stream_matches_one_transfer():
    total = mib(24)
    durations = []
    for chunked in (True, False):
        cluster = PaperCluster(seed=2, ampere_nodes=0, start_daemon=False)
        device = cluster.server.pmem_devdax

        def scenario(env, chunked=chunked, device=device):
            start = env.now
            if chunked:
                copier = LocalCopyEngine(env, device)
                yield from copier.move(total, label="probe")
            else:
                yield Transfer(env, [device.read_channel,
                                     device.write_channel], total,
                               label="probe")
            return env.now - start

        durations.append(cluster.run(scenario))
    assert durations[0] == durations[1]


# -- daemon-level behaviour ----------------------------------------------------


def _segments(size):
    return -(-size // ENGINE_CHUNK_BYTES)


def test_striped_checkpoint_restore_roundtrip_bit_exact():
    cluster = PaperCluster(seed=40, client_num_qps=4,
                           daemon_kwargs={"engine": {"max_pmem_streams": 4}})

    def scenario(env):
        session = yield from cluster.portus_register("alexnet")
        model = session.model
        assert len(session.qps) == 4
        model.update_step(1)
        reply = yield from session.checkpoint(1)
        # Satellite 2: the DONE reply reports the bytes that crossed.
        assert reply["bytes_pulled"] == model.total_bytes
        for tensor in model.tensors:
            tensor.set_step(99)
        step = yield from session.restore()
        bad = [tensor.name for tensor in model.tensors
               if not tensor.content().equals(tensor.expected_content(1))]
        return step, bad

    step, bad = cluster.run(scenario)
    assert step == 1
    assert bad == []
    entry = cluster.daemon.model_map["alexnet"]
    assert len(entry.qps) == 4  # REGISTER negotiated the stripe set
    nic = cluster.server.nic
    assert nic.wrs_failed == 0
    assert nic.wrs_inflight == 0


def test_incremental_checkpoint_posts_only_dirty_wrs():
    # Satellite 1: the per-WR CPU charge follows WRs actually posted —
    # an incremental pull posts (and pays for) the dirty subset's
    # segments, not one WQE per model layer.
    cluster = PaperCluster(seed=41)

    def scenario(env):
        session = yield from cluster.portus_register("resnet50")
        model = session.model
        model.update_step(1)
        yield from session.checkpoint(1)
        nic = cluster.server.nic
        posted_before = nic.wrs_posted
        dirty = ["fc.weight", "fc.bias"]
        model.update_step(2, only=dirty)
        yield from session.checkpoint(2, dirty=dirty)
        expected = sum(_segments(t.size_bytes) for t in model.tensors
                       if t.name in dirty)
        return nic.wrs_posted - posted_before, expected, model

    posted, expected, model = cluster.run(scenario)
    assert posted == expected
    assert posted < len(model.tensors)  # far fewer than one per layer


def test_full_checkpoint_wr_count_includes_segmentation():
    cluster = PaperCluster(seed=42)

    def scenario(env):
        session = yield from cluster.portus_register("alexnet")
        session.model.update_step(1)
        nic = cluster.server.nic
        posted_before = nic.wrs_posted
        yield from session.checkpoint(1)
        expected = sum(_segments(t.size_bytes)
                       for t in session.model.tensors)
        return nic.wrs_posted - posted_before, expected

    posted, expected = cluster.run(scenario)
    assert posted == expected


def test_restore_reply_reports_bytes_pushed():
    cluster = PaperCluster(seed=43)

    def scenario(env):
        session = yield from cluster.portus_register("alexnet")
        model = session.model
        model.update_step(1)
        yield from session.checkpoint(1)
        reply = yield from session._call(
            lambda: protocol.do_restore(model.name),
            protocol.OP_RESTORE_DONE)
        return reply, model.total_bytes

    reply, total = cluster.run(scenario)
    assert reply["bytes_pushed"] == total
    assert cluster.daemon.bytes_pushed == total


def test_unknown_engine_option_is_rejected():
    with pytest.raises(ReproError):
        PaperCluster(seed=44, daemon_kwargs={"engine": {"typo": 1}})

"""Abort semantics for partially-pulled checkpoint slots.

The original abort always rolled an ACTIVE slot back to DONE at its old
step.  That is only safe while the slot's TensorData is untouched: once
any bytes of the aborted checkpoint landed (engine pull or the
incremental path's clean-tensor prefill), the slot holds a mix of two
steps and must be invalidated instead.  ``data_dirty`` carries that
signal from the daemon's abort path.
"""

import pytest

from repro.core.consistency import (abort_checkpoint, begin_checkpoint,
                                    commit_checkpoint, valid_checkpoint)
from repro.core.index import FLAG_ACTIVE, FLAG_DONE, FLAG_EMPTY, ModelMeta
from repro.dnn.tensor import TensorSpec
from repro.errors import NoValidCheckpoint
from repro.hw import PmemDimm
from repro.pmem import PmemPool
from repro.sim import Environment
from repro.units import gib


@pytest.fixture
def pool():
    env = Environment()
    device = PmemDimm(env, dimms=1, dimm_capacity=gib(8))
    return PmemPool.format(device, max_extents=4096)


SPECS = [TensorSpec("w", (64, 64)), TensorSpec("b", (64,))]


def _meta_with_two_commits(pool):
    """Both slots DONE — the torn-slot window only opens once the
    checkpoint target is a slot that previously held real data."""
    meta = ModelMeta.create(pool, "m", SPECS)
    v1 = begin_checkpoint(meta)
    commit_checkpoint(meta, v1, step=7)
    v2 = begin_checkpoint(meta)
    commit_checkpoint(meta, v2, step=8)
    return meta


def test_dirty_abort_invalidates_the_torn_slot(pool):
    meta = _meta_with_two_commits(pool)
    target = begin_checkpoint(meta)  # overwrites the DONE@7 slot
    assert meta.read_flags().steps[target] == 7
    abort_checkpoint(meta, target, data_dirty=True)
    flags = meta.read_flags()
    assert flags.states[target] == FLAG_EMPTY
    assert flags.steps[target] == 0
    # The sibling's DONE version keeps the model restorable.
    assert valid_checkpoint(meta) == (1 - target, 8)


def test_clean_abort_still_rolls_back_to_done(pool):
    meta = _meta_with_two_commits(pool)
    target = begin_checkpoint(meta)
    abort_checkpoint(meta, target, data_dirty=False)
    flags = meta.read_flags()
    assert flags.states[target] == FLAG_DONE
    assert flags.steps[target] == 7
    # With both slots DONE again, the newer step wins.
    assert valid_checkpoint(meta) == (1 - target, 8)


def test_dirty_abort_of_first_checkpoint_stays_empty(pool):
    meta = ModelMeta.create(pool, "m", SPECS)
    target = begin_checkpoint(meta)
    abort_checkpoint(meta, target, data_dirty=True)
    flags = meta.read_flags()
    assert flags.states[target] == FLAG_EMPTY
    assert flags.steps[target] == 0
    with pytest.raises(NoValidCheckpoint):
        valid_checkpoint(meta)


def test_abort_ignores_non_active_slots(pool):
    meta = _meta_with_two_commits(pool)
    flags_before = meta.read_flags()
    abort_checkpoint(meta, 0, data_dirty=True)  # slot 0 is DONE, not ACTIVE
    flags_after = meta.read_flags()
    assert flags_after.states == flags_before.states
    assert flags_after.steps == flags_before.steps


def test_dirty_abort_then_next_checkpoint_reuses_the_slot(pool):
    meta = _meta_with_two_commits(pool)
    target = begin_checkpoint(meta)
    abort_checkpoint(meta, target, data_dirty=True)
    # The invalidated slot is the natural next target (its sibling holds
    # the newest DONE), and a clean run through it restores normal life.
    retry = begin_checkpoint(meta)
    assert retry == target
    commit_checkpoint(meta, retry, step=9)
    assert valid_checkpoint(meta) == (retry, 9)
    assert meta.read_flags().states[retry] == FLAG_DONE


def test_abort_after_crash_redo_window(pool):
    """ACTIVE slot found at recovery (daemon restarted mid-pull): the
    recovery path aborts it dirty — the pull progress is unknown."""
    meta = _meta_with_two_commits(pool)
    target = begin_checkpoint(meta)
    # Simulate recovery-time repair of the torn slot.
    assert meta.read_flags().states[target] == FLAG_ACTIVE
    abort_checkpoint(meta, target, data_dirty=True)
    assert valid_checkpoint(meta) == (1 - target, 8)

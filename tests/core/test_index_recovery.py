"""Recovery-ordering and geometry regressions in the three-level index.

Three bugs this file pins down:

* ``drop_version`` used to commit the MIndex (or free the extent) before
  demoting the version flag, so a crash inside the window left a DONE
  flag pointing at address 0 / freed space — and ``ModelMeta.open``
  blew up on the next restart.  The fixed ordering is swept with a power
  fault at *every* write boundary.
* ``ModelMeta.open`` used to re-derive record geometry from the
  allocation size; a pool that rounds allocations up made it probe the
  B slot at the wrong offset and read stale metadata.  Geometry is now
  persisted in a write-once header.
* ``ModelTable.open`` trusted its caller's ``max_models`` for the slot
  geometry; a daemon configured differently than the formatter silently
  misread the table.  Geometry is now persisted and mismatches rejected.
"""

import random

import pytest

from repro.core.consistency import (begin_checkpoint, commit_checkpoint,
                                    valid_checkpoint)
from repro.core.index import (FLAG_DONE, META_TAG, ModelMeta, ModelTable)
from repro.dnn.tensor import TensorSpec
from repro.errors import PmemError, PowerFailure
from repro.faults.crashpoints import CrashPointRecorder
from repro.hw import PmemDimm
from repro.pmem import PmemPool
from repro.pmem.fsck import fsck, repair
from repro.sim import Environment
from repro.units import gib

SPECS = [TensorSpec("layer0.weight", (128, 64)),
         TensorSpec("layer0.bias", (128,))]


def make_pool():
    env = Environment()
    device = PmemDimm(env, dimms=1, dimm_capacity=gib(1))
    return device, PmemPool.format(device, max_extents=4096)


def checkpointed_model(pool, table, name="model"):
    meta = ModelMeta.create(pool, name, SPECS)
    table.insert(name, meta.meta.addr)
    for step in (1, 2):
        version = begin_checkpoint(meta)
        commit_checkpoint(meta, version, step=step)
    return meta


# --- drop_version write ordering (crash-point sweep) -----------------------------


def _drop_version_scenario(crash_index):
    """Build a two-checkpoint model, then drop the older version with a
    power fault armed at *crash_index* (None = counting pass)."""
    device, pool = make_pool()
    table = ModelTable.create(pool, max_models=8)
    meta = checkpointed_model(pool, table)
    older = 1 - meta.read_flags().newest_done()
    rng = random.Random(23)
    recorder = CrashPointRecorder(device, crash_at=crash_index,
                                  power_fail=lambda: device.crash(rng))
    try:
        meta.drop_version(older)
        completed = True
    except PowerFailure:
        completed = False
    recorder.disarm()
    return device, meta.meta.addr, recorder, completed


def test_drop_version_sweep_never_strands_a_done_flag():
    _device, _addr, recorder, completed = _drop_version_scenario(None)
    assert completed
    total = recorder.count
    assert total >= 6  # flags record, mindex record, alloc-table free

    for index in range(total):
        device, meta_addr, recorder, completed = _drop_version_scenario(index)
        assert not completed, f"boundary {index} did not fire"
        context = f"crash at {recorder.fired}"

        recovered = PmemPool.open(device)
        # Recovery must open the model without tripping on a DONE flag
        # whose extent is gone — the pre-fix failure mode.
        meta = ModelMeta.open(recovered, meta_addr)
        flags = meta.read_flags()
        for version in (0, 1):
            if flags.states[version] != FLAG_DONE:
                continue
            addr = meta.mindex.version_addrs[version]
            assert addr != 0, f"DONE flag with addr 0: {context}"
            assert recovered.allocator.lookup(addr) is not None, \
                f"DONE flag over freed extent: {context}"
        # The newest checkpoint survives every cut.
        assert valid_checkpoint(meta) == (flags.newest_done(), 2), context
        # A crash mid-drop may leak, never corrupt: no fsck errors, and
        # repair always converges.
        report = fsck(recovered)
        assert report.errors() == [], f"{context}:\n{report.describe()}"
        assert repair(recovered).clean, context


def test_drop_version_boundary_schedule_is_deterministic():
    first = _drop_version_scenario(None)[2].boundaries
    second = _drop_version_scenario(None)[2].boundaries
    assert first == second


# --- ModelMeta record geometry (persisted header) --------------------------------


def _pool_with_padded_meta_allocs(pad=4096):
    """A pool whose allocator hands metadata regions more space than
    requested — the rounding that used to break B-slot probing."""
    device, pool = make_pool()
    orig_alloc = pool.alloc

    def padded_alloc(size, tag):
        if tag.startswith(META_TAG):
            size += pad
        return orig_alloc(size, tag)

    pool.alloc = padded_alloc
    return device, pool


def test_meta_geometry_survives_padded_region():
    _device, pool = _pool_with_padded_meta_allocs()
    table = ModelTable.create(pool, max_models=8)
    meta = checkpointed_model(pool, table)
    assert meta.meta.size > ModelMeta.meta_region_size(len(SPECS))

    # Force a second MIndex generation so the newest frame sits in the B
    # slot — the slot the old size-derived probe would miss.
    older = 1 - meta.read_flags().newest_done()
    meta.drop_version(older)
    meta.ensure_regions()
    current_addrs = meta.mindex.version_addrs

    reopened = ModelMeta.open(pool, meta.meta.addr)
    assert reopened.mindex.version_addrs == current_addrs
    assert reopened.flags_slot == meta.flags_slot
    assert reopened.mindex_slot == meta.mindex_slot
    assert valid_checkpoint(reopened)[1] == 2
    assert fsck(pool).clean


def test_meta_geometry_header_rejects_garbage():
    _device, pool = make_pool()
    table = ModelTable.create(pool, max_models=8)
    meta = checkpointed_model(pool, table)
    meta.meta.write_bytes(0, b"\xff" * 16)
    meta.meta.persist(0, 16)
    with pytest.raises(PmemError, match="magic"):
        ModelMeta.open(pool, meta.meta.addr)


# --- ModelTable geometry coupling ------------------------------------------------


def test_model_table_open_uses_persisted_geometry():
    _device, pool = make_pool()
    table = ModelTable.create(pool, max_models=64)
    table.insert("model", 0x1000)

    reopened = ModelTable.open(pool)  # no max_models argument at all
    assert reopened.max_models == 64
    assert reopened.names() == ["model"]
    assert reopened.lookup("model") == 0x1000

    # Matching explicit geometry is fine; a mismatch is loudly rejected
    # instead of silently misreading the record slots.
    assert ModelTable.open(pool, max_models=64).max_models == 64
    with pytest.raises(PmemError, match="max_models=128"):
        ModelTable.open(pool, max_models=128)


def test_model_table_geometry_survives_many_generations():
    _device, pool = make_pool()
    table = ModelTable.create(pool, max_models=16)
    for i in range(10):  # bounce the record across both slots
        table.insert(f"m{i:02d}", 0x1000 * (i + 1))
    reopened = ModelTable.open(pool)
    assert reopened.max_models == 16
    assert len(reopened) == 10
    assert reopened.lookup("m07") == 0x8000

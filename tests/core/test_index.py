"""Tests for the three-level index: ModelTable, MIndex, version flags."""

import pytest

from repro.core.consistency import (abort_checkpoint, begin_checkpoint,
                                    commit_checkpoint, valid_checkpoint)
from repro.core.index import (FLAG_ACTIVE, FLAG_DONE, FLAG_EMPTY, MIndex,
                              ModelMeta, ModelTable, TensorDescriptor,
                              VersionFlags, layout_tensors)
from repro.dnn.models import build_model
from repro.dnn.tensor import TensorSpec
from repro.errors import (CheckpointInProgress, ModelNotFound,
                          NoValidCheckpoint, PortusError)
from repro.hw import PmemDimm
from repro.pmem import PmemPool
from repro.sim import Environment
from repro.units import gib


@pytest.fixture
def pool():
    env = Environment()
    device = PmemDimm(env, dimms=1, dimm_capacity=gib(8))
    return PmemPool.format(device, max_extents=4096)


SPECS = [TensorSpec("layer0.weight", (128, 64)),
         TensorSpec("layer0.bias", (128,)),
         TensorSpec("head.weight", (10, 128))]


# --- layout ---------------------------------------------------------------------


def test_layout_aligns_offsets():
    descriptors, size = layout_tensors(SPECS)
    for descriptor in descriptors:
        assert descriptor.offset % 64 == 0
    assert size >= sum(spec.size_bytes for spec in SPECS)
    assert descriptors[1].offset >= descriptors[0].offset + SPECS[0].size_bytes


def test_descriptor_pack_roundtrip():
    descriptor = TensorDescriptor("a.b.weight", "float32", (3, 4, 5), 240,
                                  128)
    packed = descriptor.pack()
    restored = TensorDescriptor.unpack(packed, 0)
    assert restored.name == descriptor.name
    assert restored.shape == (3, 4, 5)
    assert restored.dtype_name == "float32"
    assert restored.size == 240
    assert restored.offset == 128


def test_mindex_pack_roundtrip():
    descriptors, total = layout_tensors(SPECS)
    index = MIndex("bert", descriptors, (0x1000, 0x2000),
                   sum(d.size for d in descriptors))
    restored = MIndex.unpack(index.pack())
    assert restored.model_name == "bert"
    assert restored.layer_count == 3
    assert restored.version_addrs == (0x1000, 0x2000)
    assert restored.descriptors[2].name == "head.weight"


def test_mindex_paddr_is_region_plus_offset():
    descriptors, _total = layout_tensors(SPECS)
    index = MIndex("m", descriptors, (0x10000, 0x20000), 0)
    d = index.descriptors[1]
    assert index.paddr(d, 0) == 0x10000 + d.offset
    assert index.paddr(d, 1) == 0x20000 + d.offset


def test_mindex_descriptor_lookup():
    descriptors, _ = layout_tensors(SPECS)
    index = MIndex("m", descriptors, (0, 0), 0)
    assert index.descriptor("layer0.bias").size == 128 * 4
    with pytest.raises(PortusError):
        index.descriptor("nope")


# --- ModelMeta ------------------------------------------------------------------


def test_model_meta_create_and_open(pool):
    meta = ModelMeta.create(pool, "resnet50", SPECS)
    assert meta.read_flags().states == [FLAG_EMPTY, FLAG_EMPTY]
    reopened = ModelMeta.open(pool, meta.meta.addr)
    assert reopened.mindex.model_name == "resnet50"
    assert reopened.mindex.layer_count == 3
    assert reopened.data_regions[0].addr == meta.data_regions[0].addr


def test_model_meta_full_model_scale(pool):
    spec = build_model("bert_large")
    meta = ModelMeta.create(pool, "bert_large", spec.tensors)
    assert meta.mindex.layer_count == 396
    assert meta.mindex.total_bytes == spec.total_bytes
    reopened = ModelMeta.open(pool, meta.meta.addr)
    assert reopened.mindex.layer_count == 396


def test_drop_and_ensure_regions(pool):
    meta = ModelMeta.create(pool, "m", SPECS)
    begin = begin_checkpoint(meta)
    commit_checkpoint(meta, begin, step=5)
    reclaimed = meta.drop_version(1 - begin)
    assert reclaimed > 0
    assert meta.data_regions[1 - begin] is None
    reopened = ModelMeta.open(pool, meta.meta.addr)
    assert reopened.data_regions[1 - begin] is None
    reopened.ensure_regions()
    assert reopened.data_regions[1 - begin] is not None
    assert reopened.mindex.version_addrs[1 - begin] != 0


# --- version flags / consistency protocol ---------------------------------------------


def test_double_mapping_alternates_targets(pool):
    meta = ModelMeta.create(pool, "m", SPECS)
    first = begin_checkpoint(meta)
    commit_checkpoint(meta, first, step=1)
    second = begin_checkpoint(meta)
    assert second == 1 - first
    commit_checkpoint(meta, second, step=2)
    third = begin_checkpoint(meta)
    assert third == first  # ping-pong


def test_valid_checkpoint_prefers_newest_step(pool):
    meta = ModelMeta.create(pool, "m", SPECS)
    v1 = begin_checkpoint(meta)
    commit_checkpoint(meta, v1, step=10)
    v2 = begin_checkpoint(meta)
    commit_checkpoint(meta, v2, step=20)
    assert valid_checkpoint(meta) == (v2, 20)


def test_active_version_never_restorable(pool):
    meta = ModelMeta.create(pool, "m", SPECS)
    v1 = begin_checkpoint(meta)
    commit_checkpoint(meta, v1, step=10)
    v2 = begin_checkpoint(meta)  # crashes mid-pull: stays ACTIVE
    assert meta.read_flags().states[v2] == FLAG_ACTIVE
    assert valid_checkpoint(meta) == (v1, 10)


def test_no_valid_checkpoint_initially(pool):
    meta = ModelMeta.create(pool, "m", SPECS)
    with pytest.raises(NoValidCheckpoint):
        valid_checkpoint(meta)
    begin_checkpoint(meta)  # crash during the very first checkpoint
    with pytest.raises(NoValidCheckpoint):
        valid_checkpoint(meta)


def test_commit_requires_active(pool):
    meta = ModelMeta.create(pool, "m", SPECS)
    with pytest.raises(CheckpointInProgress):
        commit_checkpoint(meta, 0, step=1)


def test_abort_rolls_back_to_previous_state(pool):
    meta = ModelMeta.create(pool, "m", SPECS)
    v1 = begin_checkpoint(meta)
    commit_checkpoint(meta, v1, step=7)
    v2 = begin_checkpoint(meta)
    abort_checkpoint(meta, v2)
    flags = meta.read_flags()
    assert flags.states[v2] != FLAG_ACTIVE
    assert valid_checkpoint(meta) == (v1, 7)


def test_flags_pack_roundtrip():
    flags = VersionFlags((FLAG_DONE, FLAG_ACTIVE), (42, 43))
    restored = VersionFlags.unpack(flags.pack())
    assert restored.states == [FLAG_DONE, FLAG_ACTIVE]
    assert restored.steps == [42, 43]
    assert restored.newest_done() == 0
    assert restored.checkpoint_target() == 1


# --- ModelTable -----------------------------------------------------------------------


def test_model_table_roundtrip(pool):
    table = ModelTable.create(pool)
    table.insert("bert", 0x1000)
    table.insert("alexnet", 0x2000)
    assert table.names() == ["alexnet", "bert"]
    assert table.lookup("bert") == 0x1000

    reopened = ModelTable.open(pool)
    assert reopened.names() == ["alexnet", "bert"]
    assert reopened.lookup("alexnet") == 0x2000


def test_model_table_remove(pool):
    table = ModelTable.create(pool)
    table.insert("m", 0x500)
    assert table.remove("m") == 0x500
    with pytest.raises(ModelNotFound):
        table.lookup("m")
    with pytest.raises(ModelNotFound):
        table.remove("m")


def test_model_table_capacity(pool):
    table = ModelTable.create(pool, max_models=2)
    table.insert("a", 1)
    table.insert("b", 2)
    with pytest.raises(Exception, match="full"):
        table.insert("c", 3)
    table.insert("a", 9)  # replacing is always allowed
    assert table.lookup("a") == 9

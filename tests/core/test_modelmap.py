"""Unit and property tests for the ModelMap red-black tree."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.modelmap import ModelMap


def test_insert_and_lookup():
    tree = ModelMap()
    tree.insert("resnet50", 1)
    tree.insert("alexnet", 2)
    assert tree["resnet50"] == 1
    assert tree["alexnet"] == 2
    assert tree.get("vgg", "missing") == "missing"
    assert len(tree) == 2


def test_insert_replaces_value():
    tree = ModelMap()
    tree.insert("m", 1)
    tree.insert("m", 2)
    assert tree["m"] == 2
    assert len(tree) == 1


def test_missing_key_raises():
    tree = ModelMap()
    with pytest.raises(KeyError):
        tree["nope"]


def test_delete_returns_value():
    tree = ModelMap()
    tree.insert("a", 10)
    assert tree.delete("a") == 10
    assert "a" not in tree
    with pytest.raises(KeyError):
        tree.delete("a")


def test_items_sorted():
    tree = ModelMap()
    for name in ["swin", "alexnet", "vit", "bert", "resnet"]:
        tree.insert(name, name.upper())
    assert tree.keys() == sorted(["swin", "alexnet", "vit", "bert",
                                  "resnet"])
    assert [v for _k, v in tree.items()] == [
        k.upper() for k in tree.keys()]


def test_invariants_after_sequential_inserts():
    tree = ModelMap()
    for i in range(100):
        tree.insert(f"model-{i:03d}", i)
        tree.check_invariants()
    assert len(tree) == 100


@given(st.lists(st.tuples(st.sampled_from("id"),
                          st.text("abcdef", min_size=1, max_size=4)),
                max_size=120))
@settings(max_examples=100, deadline=None)
def test_matches_dict_reference(operations):
    """Property: ModelMap behaves exactly like a dict + sorted()."""
    tree = ModelMap()
    reference = {}
    for op, key in operations:
        if op == "i":
            tree.insert(key, key)
            reference[key] = key
        elif key in reference:
            assert tree.delete(key) == reference.pop(key)
        else:
            with pytest.raises(KeyError):
                tree.delete(key)
        tree.check_invariants()
    assert tree.keys() == sorted(reference)
    assert len(tree) == len(reference)
    for key, value in reference.items():
        assert tree[key] == value

"""Client-side error paths and session lifecycle."""

import pytest

from repro.core import protocol
from repro.core.client import ModelSession
from repro.errors import ModelNotFound, ProtocolError
from repro.harness.cluster import PaperCluster


def test_check_raises_on_unexpected_op():
    with pytest.raises(ProtocolError, match="expected"):
        ModelSession._check({"op": "SOMETHING"}, protocol.OP_REGISTERED)


def test_check_reraises_daemon_error():
    with pytest.raises(ModelNotFound):
        ModelSession._check({"op": protocol.OP_ERROR,
                             "error": ModelNotFound("m")},
                            protocol.OP_REGISTERED)


def test_double_restore_is_fine():
    cluster = PaperCluster(seed=40)

    def scenario(env):
        session = yield from cluster.portus_register("alexnet")
        session.model.update_step(1)
        yield from session.checkpoint(1)
        step_a = yield from session.restore()
        step_b = yield from session.restore()
        return step_a, step_b

    assert cluster.run(scenario) == (1, 1)


def test_operations_after_unregister_fail():
    cluster = PaperCluster(seed=41)

    def scenario(env):
        session = yield from cluster.portus_register("alexnet")
        session.model.update_step(1)
        yield from session.checkpoint(1)
        yield from session.unregister()
        # The daemon no longer knows the model; the connection is closed.
        from repro.errors import ConnectionClosed
        with pytest.raises(ConnectionClosed):
            yield from session.checkpoint(2)
        return True

    assert cluster.run(scenario)


def test_session_bookkeeping():
    cluster = PaperCluster(seed=42)

    def scenario(env):
        session = yield from cluster.portus_register("alexnet")
        session.model.update_step(3)
        reply = yield from session.checkpoint()  # defaults to model.step
        return session, reply

    session, reply = cluster.run(scenario)
    assert reply["step"] == 3
    assert session.checkpoints == 1
    assert session.last_checkpoint_ns == reply["duration_ns"]
    client = cluster.portus_client()
    assert session in client.sessions


def test_two_sessions_same_client():
    cluster = PaperCluster(seed=43)

    def scenario(env):
        client = cluster.portus_client()
        a = yield from client.register(cluster.materialize("alexnet",
                                                           gpu=0))
        b = yield from client.register(cluster.materialize("resnet50",
                                                           gpu=1))
        a.model.update_step(1)
        b.model.update_step(1)
        yield from a.checkpoint(1)
        yield from b.checkpoint(1)
        return len(client.sessions)

    assert cluster.run(scenario) == 2
    assert sorted(cluster.daemon.models()) == ["alexnet", "resnet50"]

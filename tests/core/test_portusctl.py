"""Tests for Portusctl: view, dump, and the console entry point."""

import pytest

from repro.core.portusctl import dump, dump_to_file, format_view, main, view
from repro.dnn.serialize import deserialize_state_dict
from repro.errors import NoValidCheckpoint
from repro.harness.cluster import PaperCluster


@pytest.fixture
def checkpointed_cluster():
    cluster = PaperCluster(seed=11)

    def scenario(env):
        session_a = yield from cluster.portus_register("alexnet", gpu=0)
        session_b = yield from cluster.portus_register("resnet50", gpu=1)
        session_a.model.update_step(10)
        session_b.model.update_step(20)
        yield from session_a.checkpoint(10)
        yield from session_b.checkpoint(20)
        return session_a, session_b

    sessions = cluster.run(scenario)
    return cluster, sessions


def test_view_lists_models_and_versions(checkpointed_cluster):
    cluster, _sessions = checkpointed_cluster
    rows = view(cluster.portus_pool)
    assert [row["model"] for row in rows] == ["alexnet", "resnet50"]
    alexnet = rows[0]
    assert alexnet["layers"] == 16
    states = {v["state"] for v in alexnet["versions"]}
    assert "DONE" in states


def test_format_view_renders_table(checkpointed_cluster):
    cluster, _sessions = checkpointed_cluster
    text = format_view(view(cluster.portus_pool))
    assert "alexnet" in text
    assert "DONE" in text
    assert "MODEL" in text


def test_dump_is_loadable_and_bit_exact(checkpointed_cluster):
    cluster, (session_a, _b) = checkpointed_cluster
    image = dump(cluster.portus_pool, "alexnet")
    parsed = deserialize_state_dict(image)
    assert len(parsed) == 16
    for tensor in session_a.model.tensors:
        _spec, payload = parsed[tensor.name]
        assert payload.equals(tensor.expected_content(10))


def test_dump_without_checkpoint_fails():
    cluster = PaperCluster(seed=12)

    def scenario(env):
        yield from cluster.portus_register("alexnet")

    cluster.run(scenario)
    with pytest.raises(NoValidCheckpoint):
        dump(cluster.portus_pool, "alexnet")


def test_dump_to_simulated_filesystem(checkpointed_cluster):
    cluster, _sessions = checkpointed_cluster

    def scenario(env):
        yield from cluster.volta_ext4.mkdir("/export")
        size = yield from dump_to_file(cluster.portus_pool, "resnet50",
                                       cluster.volta_ext4,
                                       "/export/resnet50.pt")
        return size

    size = cluster.run(scenario)
    assert size > 0
    assert cluster.volta_ext4.exists("/export/resnet50.pt")


def test_cli_view_runs(capsys):
    assert main(["view"]) == 0
    out = capsys.readouterr().out
    assert "resnet50" in out
    assert "DONE" in out


def test_cli_dump_writes_host_file(tmp_path, capsys):
    target = tmp_path / "resnet50.pt"
    assert main(["dump", "resnet50", str(target)]) == 0
    data = target.read_bytes()
    assert data[:8] == b"RPTCKPT1"
    assert len(data) > 97 * 1024 * 1024  # the full 97 MiB of weights


def test_cli_repack_reports(capsys):
    assert main(["repack"]) == 0
    out = capsys.readouterr().out
    assert "reclaimed" in out


def test_cli_dump_unknown_model_exits_cleanly(tmp_path, capsys):
    """Regression: an unknown model must produce a clean error message
    and a nonzero exit, not a raw traceback from table.lookup()."""
    target = tmp_path / "nope.pt"
    assert main(["dump", "no-such-model", str(target)]) == 1
    captured = capsys.readouterr()
    assert "portusctl:" in captured.err
    assert "no-such-model" in captured.err
    assert not target.exists()


def test_cli_dump_model_without_checkpoint_exits_cleanly(tmp_path, capsys,
                                                         monkeypatch):
    """Regression: a model that exists but has no valid checkpoint also
    gets the clean-error path."""
    import repro.core.portusctl as portusctl_mod

    def demo_without_checkpoints(tracing=False):
        cluster = PaperCluster(seed=13)

        def scenario(env):
            yield from cluster.portus_register("alexnet")

        cluster.run(scenario)
        return cluster, cluster.portus_pool

    monkeypatch.setattr(portusctl_mod, "_demo_pool",
                        demo_without_checkpoints)
    assert main(["dump", "alexnet", str(tmp_path / "x.pt")]) == 1
    err = capsys.readouterr().err
    assert "portusctl:" in err and "NoValidCheckpoint" in err


def test_cli_stats_prints_metrics_json(capsys):
    import json

    assert main(["stats"]) == 0
    out = capsys.readouterr().out
    snapshot = json.loads(out)
    assert snapshot["daemon.checkpoints_completed"]["value"] == 2
    assert snapshot["daemon.checkpoint_latency_ns"]["count"] == 2


def test_cli_stats_trace_out_writes_chrome_trace(tmp_path, capsys):
    import json

    trace_path = tmp_path / "demo.json"
    assert main(["stats", "--trace-out", str(trace_path)]) == 0
    trace = json.loads(trace_path.read_text())
    names = {event["name"] for event in trace["traceEvents"]}
    assert "daemon.DO_CHECKPOINT" in names
    assert "engine.read" in names


# --- fleet mode: --daemons N ----------------------------------------------------


def test_cli_fsck_fleet_reports_every_shard(capsys):
    import json

    assert main(["fsck", "--daemons", "3", "--json"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["clean"] is True
    assert sorted(report["shards"]) == ["server", "server1", "server2"]
    # Per-key rollup over the fleet: each demo shard holds one model.
    assert report["checked"]["models"] == 3
    for shard in report["shards"].values():
        assert shard["clean"] is True


def test_cli_fsck_fleet_text_has_rollup_line(capsys):
    assert main(["fsck", "--daemons", "2"]) == 0
    out = capsys.readouterr().out
    assert "== server ==" in out
    assert "== server1 ==" in out
    assert "fleet: clean (2/2 shards clean)" in out


def test_cli_health_fleet_rolls_up_worst_state(capsys):
    import json

    assert main(["health", "--daemons", "3", "--json"]) == 0
    snapshot = json.loads(capsys.readouterr().out)
    assert snapshot["state"] == "healthy"
    assert sorted(snapshot["shards"]) == ["server", "server1", "server2"]
    for entry in snapshot["shards"].values():
        assert entry["state"] == "healthy"
        assert entry["sample"]["up"] is True


def test_cli_stats_fleet_embeds_per_shard_work(capsys):
    import json

    assert main(["stats", "--daemons", "2"]) == 0
    snapshot = json.loads(capsys.readouterr().out)
    per_shard = snapshot["fleet"]["per_shard"]
    assert sorted(per_shard) == ["server", "server1"]
    for entry in per_shard.values():
        assert entry["checkpoints_completed"] == 1
        assert entry["bytes_pulled"] > 0
    # The flat metrics snapshot rides along unchanged.
    assert "daemon.checkpoints_completed" in snapshot["metrics"]

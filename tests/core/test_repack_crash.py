"""Crash-window coverage for the online repack's migration pass.

``repack_live`` moves a survivor's newest DONE TensorData into a lower
extent through the LocalCopyEngine.  The simulated move takes real
(simulated) time, so a daemon crash or power loss can land inside it.
The guard contract: nothing is committed until the move finishes on a
still-open pool — an interrupted or pool-dead move leaves the MIndex
pointing at the intact old region, bit-exact, and leaks at most the
fresh extent (handed back when the pool survives).
"""

import random

import pytest

from repro.core.consistency import begin_checkpoint, commit_checkpoint
from repro.core.index import ModelMeta, ModelTable
from repro.core.repack import repack_live
from repro.dnn.tensor import TensorSpec
from repro.hw import PmemDimm
from repro.errors import ProcessInterrupted
from repro.pmem import PmemPool
from repro.sim import Environment
from repro.units import gib

SPECS = [TensorSpec("w", (1024, 512)), TensorSpec("b", (1024,))]
MARKER = bytes(range(256)) * 16  # 4 KiB of recognizable payload


def build():
    """One model, both slots DONE (steps 5 then 6), marker bytes in the
    newest slot.  Reclaiming the stale v0 opens a hole *below* v1, so
    the compaction pass will try to migrate v1 downward."""
    env = Environment()
    device = PmemDimm(env, dimms=1, dimm_capacity=gib(4))
    pool = PmemPool.format(device)
    table = ModelTable.create(pool)
    meta = ModelMeta.create(pool, "m", SPECS)
    table.insert("m", meta.meta.addr)
    for step in (5, 6):
        version = begin_checkpoint(meta)
        commit_checkpoint(meta, version, step)
    newest = meta.read_flags().newest_done()
    region = meta.data_regions[newest]
    region.write_bytes(0, MARKER)
    region.persist()
    return env, pool, table, newest


def _check_intact(pool, step=6):
    meta = ModelMeta.open(pool, ModelTable.open(pool).lookup("m"))
    flags = meta.read_flags()
    newest = flags.newest_done()
    assert newest is not None
    assert flags.steps[newest] == step
    region = meta.data_regions[newest]
    assert region is not None
    assert region.read_bytes(0, len(MARKER)) == MARKER
    return meta, newest


def _migration_duration():
    """Simulated ns a clean migration takes (deterministic per setup)."""
    env, pool, table, _newest = build()
    report = env.run_process(env.process(repack_live(env, pool, table)))
    assert report.models_migrated == ["m"]
    return env.now


def test_clean_migration_moves_data_down_and_preserves_it():
    env, pool, table, newest = build()
    old_addr = ModelMeta.open(
        pool, table.lookup("m")).data_regions[newest].addr
    report = env.run_process(env.process(repack_live(env, pool, table)))
    assert report.models_migrated == ["m"]
    assert report.bytes_moved > 0
    meta, new_newest = _check_intact(pool)
    assert meta.data_regions[new_newest].addr < old_addr


def test_interrupt_mid_move_commits_nothing():
    duration = _migration_duration()
    env, pool, table, newest = build()
    used_before = pool.used_bytes
    stale_size = ModelMeta.open(
        pool, table.lookup("m")).data_regions[1 - newest].size
    old_addr = ModelMeta.open(
        pool, table.lookup("m")).data_regions[newest].addr

    proc = env.process(repack_live(env, pool, table))

    def crash(env):
        yield env.timeout(duration // 2)
        proc.interrupt(cause="daemon-crash")

    env.process(crash(env))
    with pytest.raises(ProcessInterrupted):
        env.run_process(proc)
    proc.defuse()  # the failure was consumed here, not by another process

    # The old region is still the committed truth, bit-exact.
    meta, new_newest = _check_intact(pool)
    assert meta.data_regions[new_newest].addr == old_addr
    # The fresh extent was handed back: only the stale slot's
    # reclamation shows in the accounting — no leak on a live pool.
    assert pool.used_bytes == used_before - stale_size


def test_interrupted_repack_can_be_rerun_to_completion():
    duration = _migration_duration()
    env, pool, table, _newest = build()
    proc = env.process(repack_live(env, pool, table))

    def crash(env):
        yield env.timeout(duration // 2)
        proc.interrupt(cause="daemon-crash")

    env.process(crash(env))
    with pytest.raises(ProcessInterrupted):
        env.run_process(proc)
    proc.defuse()

    report = env.run_process(env.process(repack_live(env, pool, table)))
    assert report.models_migrated == ["m"]
    _check_intact(pool)


def test_pool_death_mid_move_stops_before_touching_dead_media():
    duration = _migration_duration()
    env, pool, table, newest = build()
    old_addr = ModelMeta.open(
        pool, table.lookup("m")).data_regions[newest].addr

    def die(env):
        yield env.timeout(duration // 2)
        pool.close()

    env.process(die(env))
    report = env.run_process(env.process(repack_live(env, pool, table)))
    # The pass bailed after the move: nothing migrated, nothing freed.
    assert report.models_migrated == []
    assert report.bytes_moved == 0

    # Recovery: reopen the pool (reconciling crash leakage) and verify
    # the old region is still the committed, bit-exact truth.
    reopened = PmemPool.open(pool.device)
    meta, new_newest = _check_intact(reopened)
    assert meta.data_regions[new_newest].addr == old_addr


def test_chaos_schedule_interrupts_anywhere_in_the_move_window():
    """Seeded sweep: a crash at any instant of the move window never
    costs the newest DONE version its data or leaks on a live pool."""
    duration = _migration_duration()
    for seed in range(20):
        rng = random.Random(seed)
        env, pool, table, newest = build()
        used_before = pool.used_bytes
        stale_size = ModelMeta.open(
            pool, table.lookup("m")).data_regions[1 - newest].size
        proc = env.process(repack_live(env, pool, table))

        def crash(env, proc=proc, at=rng.randrange(1, duration)):
            yield env.timeout(at)
            proc.interrupt(cause=f"chaos-{seed}")

        env.process(crash(env))
        with pytest.raises(ProcessInterrupted):
            env.run_process(proc)
        proc.defuse()
        _check_intact(pool)
        assert pool.used_bytes == used_before - stale_size
        # And the job is still finishable.
        report = env.run_process(env.process(repack_live(env, pool, table)))
        assert report.models_migrated == ["m"]
        _check_intact(pool)

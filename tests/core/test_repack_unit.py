"""Unit tests for the repacking tool beyond the e2e happy path."""

import pytest

from repro.core.consistency import begin_checkpoint, commit_checkpoint
from repro.core.index import ModelMeta, ModelTable
from repro.core.repack import RepackReport, repack
from repro.dnn.tensor import TensorSpec
from repro.hw import PmemDimm
from repro.pmem import PmemPool
from repro.sim import Environment
from repro.units import gib

SPECS = [TensorSpec("w", (1024, 512)), TensorSpec("b", (1024,))]


@pytest.fixture
def pool_and_table():
    env = Environment()
    device = PmemDimm(env, dimms=1, dimm_capacity=gib(4))
    pool = PmemPool.format(device)
    table = ModelTable.create(pool)
    return pool, table


def add_model(pool, table, name, committed_steps):
    meta = ModelMeta.create(pool, name, SPECS)
    table.insert(name, meta.meta.addr)
    for step in committed_steps:
        version = begin_checkpoint(meta)
        commit_checkpoint(meta, version, step)
    return meta


def test_repack_empty_table(pool_and_table):
    pool, table = pool_and_table
    report = repack(pool, table)
    assert report.models_compacted == []
    assert report.models_dropped == []
    assert report.bytes_reclaimed == 0


def test_repack_drops_never_checkpointed_model(pool_and_table):
    pool, table = pool_and_table
    add_model(pool, table, "crashed-job", committed_steps=[])
    report = repack(pool, table)
    assert report.models_dropped == ["crashed-job"]
    assert "crashed-job" not in table
    assert report.bytes_reclaimed > 0


def test_repack_keeps_invalid_model_when_asked(pool_and_table):
    pool, table = pool_and_table
    add_model(pool, table, "maybe-recoverable", committed_steps=[])
    report = repack(pool, table, drop_invalid=False)
    assert report.models_dropped == []
    assert "maybe-recoverable" in table


def test_repack_compacts_interrupted_checkpoint(pool_and_table):
    """Scenario (2) of §III-D2: crash mid-checkpoint leaves an ACTIVE
    slot; repack reclaims it and keeps the valid one."""
    pool, table = pool_and_table
    meta = add_model(pool, table, "m", committed_steps=[5])
    begin_checkpoint(meta)  # crashes: stays ACTIVE
    report = repack(pool, table)
    assert report.models_compacted == ["m"]
    reopened = ModelMeta.open(pool, table.lookup("m"))
    flags = reopened.read_flags()
    assert flags.newest_done() is not None
    assert flags.steps[flags.newest_done()] == 5


def test_repack_idempotent(pool_and_table):
    pool, table = pool_and_table
    add_model(pool, table, "m", committed_steps=[1, 2])
    first = repack(pool, table)
    assert first.models_compacted == ["m"]
    second = repack(pool, table)
    assert second.models_compacted == []
    assert second.bytes_reclaimed == 0


def test_repack_skip_list(pool_and_table):
    pool, table = pool_and_table
    add_model(pool, table, "live", committed_steps=[1, 2])
    add_model(pool, table, "done", committed_steps=[1, 2])
    report = repack(pool, table, skip=["live"])
    assert report.models_compacted == ["done"]


def test_report_repr():
    report = RepackReport()
    report.models_dropped.append("x")
    report.bytes_reclaimed = 1024
    text = repr(report)
    assert "dropped=1" in text and "1024B" in text

"""Tests for Portus sync/async checkpoint policies (Fig. 9 semantics)."""

import pytest

from repro.core.async_ckpt import PortusAsyncPolicy, PortusSyncPolicy
from repro.core.consistency import valid_checkpoint
from repro.dnn.training import TrainingJob
from repro.harness.cluster import PaperCluster
from repro.ops.policy import AdaptiveIntervalController
from repro.units import msecs, secs


def run_policy(cluster, model_name, policy_cls, iterations, iteration_ns,
               frequency):
    holder = {}

    def scenario(env):
        session = yield from cluster.portus_register(model_name)
        policy = policy_cls(env, [session], frequency=frequency)
        job = TrainingJob(env, [session.model], iteration_ns=iteration_ns,
                          hook=policy)
        holder.update(session=session, policy=policy, job=job)
        yield from job.run(iterations)

    cluster.run(scenario)
    return holder["session"], holder["policy"], holder["job"]


def test_async_hides_small_model_checkpoint():
    """ResNet50 pull (~17 ms) fits inside F+B of a 120 ms iteration:
    async overhead ~ zero, sync pays the full pull every time."""
    sync_cluster = PaperCluster(seed=2)
    _s, sync_policy, sync_job = run_policy(
        sync_cluster, "resnet50", PortusSyncPolicy, iterations=20,
        iteration_ns=msecs(120), frequency=1)

    async_cluster = PaperCluster(seed=2)
    _s, async_policy, async_job = run_policy(
        async_cluster, "resnet50", PortusAsyncPolicy, iterations=20,
        iteration_ns=msecs(120), frequency=1)

    assert async_policy.stall_ns == 0
    assert sync_policy.stall_ns > 0
    assert async_job.elapsed_ns < sync_job.elapsed_ns
    # Async training time == pure compute (checkpointing fully hidden).
    assert async_job.elapsed_ns == pytest.approx(20 * msecs(120),
                                                 rel=0.01)


def test_async_checkpoints_are_consistent_not_torn():
    """The after_backward barrier prevents the optimizer update from
    racing the pull: every persisted checkpoint is bit-exact."""
    cluster = PaperCluster(seed=3)
    session, policy, _job = run_policy(
        cluster, "vgg19_bn", PortusAsyncPolicy, iterations=6,
        iteration_ns=msecs(100), frequency=2)
    assert policy.checkpoints_taken == 3
    entry = cluster.daemon.model_map["vgg19_bn"]
    version, step = valid_checkpoint(entry.meta)
    assert step == 6
    for tensor, descriptor in zip(session.model.tensors,
                                  entry.meta.mindex.descriptors):
        stored = entry.meta.read_tensor(descriptor, version)
        assert stored.equals(tensor.expected_content(step))


def test_async_stalls_when_pull_exceeds_fb_window():
    """A pull longer than F+B must stall at the barrier (the GPT case)."""
    cluster = PaperCluster(seed=4)
    # BERT pull ~232 ms; iteration 100 ms => F+B ~80 ms < pull.
    _s, policy, job = run_policy(
        cluster, "bert_large", PortusAsyncPolicy, iterations=6,
        iteration_ns=msecs(100), frequency=2)
    assert policy.stall_ns > 0
    assert policy.barrier_waits > 0
    util = job.recorders[0].utilization(job.started_at, job.finished_at)
    assert util < 1.0


def test_async_beats_sync_even_when_stalling():
    """Overlap with F+B always recovers some of the pull time."""
    sync_cluster = PaperCluster(seed=5)
    _s, _p, sync_job = run_policy(
        sync_cluster, "bert_large", PortusSyncPolicy, iterations=6,
        iteration_ns=msecs(100), frequency=2)
    async_cluster = PaperCluster(seed=5)
    _s, _p, async_job = run_policy(
        async_cluster, "bert_large", PortusAsyncPolicy, iterations=6,
        iteration_ns=msecs(100), frequency=2)
    assert async_job.elapsed_ns < sync_job.elapsed_ns


def test_job_end_drains_outstanding_checkpoint():
    cluster = PaperCluster(seed=6)
    _session, policy, _job = run_policy(
        cluster, "alexnet", PortusAsyncPolicy, iterations=4,
        iteration_ns=msecs(50), frequency=4)
    # The checkpoint fired on the last iteration; drain must have
    # completed it before the job ended.
    assert cluster.daemon.checkpoints_completed == 1
    entry = cluster.daemon.model_map["alexnet"]
    assert valid_checkpoint(entry.meta)[1] == 4


def test_policy_rejects_bad_frequency():
    cluster = PaperCluster(seed=7)
    with pytest.raises(ValueError):
        PortusSyncPolicy(cluster.env, [], frequency=0)
    with pytest.raises(ValueError):
        PortusAsyncPolicy(cluster.env, [], frequency=0)


def test_async_needs_exactly_one_of_frequency_and_controller():
    cluster = PaperCluster(seed=7)
    controller = AdaptiveIntervalController()
    with pytest.raises(ValueError):
        PortusAsyncPolicy(cluster.env, [])
    with pytest.raises(ValueError):
        PortusAsyncPolicy(cluster.env, [], frequency=2,
                          controller=controller)


def test_adaptive_interval_shortens_mid_run_after_failures():
    """The live Young/Daly feed: failures the operator reports mid-run
    shrink the MTBF estimate, and the policy's next per-iteration
    decision checkpoints more often — no restart, no re-plumbing."""
    cluster = PaperCluster(seed=8)
    holder = {}

    def scenario(env):
        session = yield from cluster.portus_register("bert_large")
        controller = AdaptiveIntervalController(
            min_interval_ns=msecs(100), max_interval_ns=secs(120),
            prior_mtbf_ns=secs(30), prior_cost_ns=msecs(150))
        controller.observe_start(env.now)
        policy = PortusAsyncPolicy(env, [session], controller=controller)
        job = TrainingJob(env, [session.model],
                          iteration_ns=msecs(100), hook=policy)
        holder.update(policy=policy, job=job, controller=controller)

        def storm(env):
            # A burst of daemon deaths two simulated seconds in — what
            # the remediation operator would report while healing them.
            yield env.timeout(secs(2))
            for _ in range(9):
                controller.observe_failure(env.now)

        env.process(storm(env), name="failure-storm")
        yield from job.run(60)

    cluster.run(scenario)
    policy, controller = holder["policy"], holder["controller"]
    decided = dict(policy.frequencies_used)
    # Before the storm (iteration 5, t=0.5s) the prior MTBF holds; after
    # it (iteration 60, t>=6s) nine failures shrink the estimate and the
    # recommended interval with it.
    assert decided[60] < decided[5] / 2
    assert controller.failures == 9
    # The shorter interval really produced more checkpoints than the
    # pre-storm frequency would have allowed over 60 iterations.
    assert policy.checkpoints_taken > 60 // decided[5]
    assert policy.checkpoints_taken == cluster.daemon.checkpoints_completed


def test_adaptive_policy_feeds_barrier_stall_back_as_cost():
    """A fully hidden checkpoint reports cost 0: the controller's EWMA
    converges down and the interval drops to its lower clamp."""
    cluster = PaperCluster(seed=9)
    holder = {}

    def scenario(env):
        session = yield from cluster.portus_register("resnet50")
        controller = AdaptiveIntervalController(
            min_interval_ns=msecs(200), max_interval_ns=secs(120),
            prior_mtbf_ns=secs(30), prior_cost_ns=msecs(50))
        controller.observe_start(env.now)
        policy = PortusAsyncPolicy(env, [session], controller=controller)
        job = TrainingJob(env, [session.model],
                          iteration_ns=msecs(100), hook=policy)
        holder.update(policy=policy, controller=controller)
        yield from job.run(40)

    cluster.run(scenario)
    policy, controller = holder["policy"], holder["controller"]
    assert controller.costs_observed >= 1
    assert controller.cost_ns == 0.0  # the pull hid inside F+B
    # Post-observation decisions sit at the clamp: every 2 iterations.
    assert policy.frequencies_used[-1][1] == 2

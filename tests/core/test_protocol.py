"""Unit tests for control-plane message construction."""

from repro.core import protocol


def test_register_size_scales_with_tensor_count():
    few, few_size = protocol.register("m", [{"name": "a"}], server_qp=None)
    many, many_size = protocol.register("m", [{"name": str(i)}
                                              for i in range(400)],
                                        server_qp=None)
    assert few["op"] == protocol.OP_REGISTER
    assert many_size - few_size == 399 * 128
    assert len(many["tensors"]) == 400


def test_operational_messages_are_tiny():
    for message, size in (protocol.do_checkpoint("m", 7),
                          protocol.do_restore("m"),
                          protocol.unregister("m"),
                          protocol.list_models()):
        assert size <= 64
        assert "op" in message


def test_do_checkpoint_carries_step():
    message, _size = protocol.do_checkpoint("bert", 42)
    assert message == {"op": "DO_CHECKPOINT", "model": "bert", "step": 42}


def test_reply_merges_fields():
    message, size = protocol.reply(protocol.OP_CHECKPOINT_DONE,
                                   model="m", step=3)
    assert message == {"op": "CHECKPOINT_DONE", "model": "m", "step": 3}
    assert size == 64


def test_error_reply_carries_exception():
    exc = ValueError("nope")
    message, _size = protocol.error_reply(exc)
    assert message["op"] == protocol.OP_ERROR
    assert message["error"] is exc

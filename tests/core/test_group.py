"""The parallel-group layer: record, store, and commit semantics.

Unit level (pool only): the GroupRecord's A/B commit survives reopen,
the GroupStore's leak-only registration, and the fsck findings/repairs
for every group-specific corruption.  Cluster level: the daemon's
two-phase commit — refusal when a member lacks the step, refusal of
regressions, idempotent re-commit, and the pinned-step restore path.
"""

import importlib

import pytest

from repro.core.consistency import begin_checkpoint, commit_checkpoint
from repro.core.group import (GroupRecord, GroupStore, group_tag,
                              register_group)
from repro.core.index import ModelMeta, ModelTable
from repro.dnn.gpt import shard_gpt, tiny_gpt
from repro.dnn.layout import gpt_layout
from repro.dnn.tensor import ModelInstance
from repro.errors import (GroupCommitRefused, GroupNotFound,
                          NoValidGroupCheckpoint, PortusError)
from repro.harness.cluster import PaperCluster
from repro.hw import PmemDimm
from repro.pmem import PmemPool
from repro.sim import Environment
from repro.units import gib

fsck_mod = importlib.import_module("repro.pmem.fsck")

CONFIG = tiny_gpt()
TP, PP = 2, 1
LAYOUT = gpt_layout(CONFIG, TP, PP)
SHARDS = shard_gpt(CONFIG, TP, PP)


def make_pool():
    env = Environment()
    device = PmemDimm(env, dimms=1, dimm_capacity=gib(1))
    return PmemPool.format(device, max_extents=4096)


def populate_members(pool, steps=(10, 20)):
    table = ModelTable.create(pool)
    metas = {}
    for shard in SHARDS:
        meta = ModelMeta.create(pool, shard.name, shard.tensors)
        table.insert(shard.name, meta.meta.addr)
        metas[shard.name] = meta
        for step in steps:
            version = begin_checkpoint(meta)
            commit_checkpoint(meta, version, step=step)
    return table, metas


# -- record + store (unit) ----------------------------------------------------


def test_group_record_round_trips_layout_and_step():
    pool = make_pool()
    blob = LAYOUT.pack()
    record = GroupRecord.create(pool, CONFIG.name, blob)
    assert record.committed_step == 0
    record.commit(10)
    reopened = GroupRecord.open(
        pool.device.allocation_at(record.allocation.addr))
    assert reopened.committed_step == 10
    assert reopened.layout_blob == blob
    assert reopened.layout() == LAYOUT
    assert record.allocation.tag == group_tag(CONFIG.name)


def test_group_store_persists_across_reopen():
    pool = make_pool()
    populate_members(pool)
    store = GroupStore.open_or_create(pool)
    assert store.table is None  # lazy: no group table until first use
    store.register(CONFIG.name, LAYOUT.pack())
    store.lookup(CONFIG.name).commit(20)

    store2 = GroupStore.open_or_create(pool)
    assert store2.names() == [CONFIG.name]
    assert store2.lookup(CONFIG.name).committed_step == 20
    with pytest.raises(GroupNotFound):
        store2.lookup("nope")


def test_group_store_attach_requires_identical_layout():
    pool = make_pool()
    store = GroupStore.open_or_create(pool)
    record = store.register(CONFIG.name, LAYOUT.pack())
    assert store.register(CONFIG.name, LAYOUT.pack()) is record
    other = gpt_layout(CONFIG, 1, 2)
    with pytest.raises(PortusError, match="different layout"):
        store.register(CONFIG.name, other.pack())


def test_group_store_remove_frees_the_record():
    pool = make_pool()
    populate_members(pool)
    store = GroupStore.open_or_create(pool)
    store.register(CONFIG.name, LAYOUT.pack())
    store.remove(CONFIG.name)
    assert store.names() == []
    assert GroupStore.open_or_create(pool).names() == []
    assert fsck_mod.fsck(pool).clean


# -- fsck findings ------------------------------------------------------------


def test_fsck_flags_and_rolls_back_unrestorable_committed_step():
    pool = make_pool()
    _table, metas = populate_members(pool)
    store = GroupStore.open_or_create(pool)
    store.register(CONFIG.name, LAYOUT.pack()).commit(20)
    assert fsck_mod.fsck(pool).clean

    # Demote one member's DONE@20 slot: the committed step is now torn.
    meta = metas[SHARDS[0].name]
    flags = meta.read_flags()
    for version in range(len(flags.states)):
        if flags.steps[version] == 20:
            flags.states[version] = 0
            flags.steps[version] = 0
    meta.write_flags(flags)

    report = fsck_mod.fsck(pool)
    assert report.kinds().get(fsck_mod.K_GROUP_STEP_UNRESTORABLE) == 1
    result = fsck_mod.repair(pool)
    assert result.clean, result.describe()
    assert GroupStore.open_or_create(pool).lookup(
        CONFIG.name).committed_step == 10


def test_fsck_drops_group_with_missing_member():
    pool = make_pool()
    table, _metas = populate_members(pool)
    store = GroupStore.open_or_create(pool)
    store.register(CONFIG.name, LAYOUT.pack()).commit(10)
    table.remove(SHARDS[1].name)

    report = fsck_mod.fsck(pool)
    assert report.kinds().get(fsck_mod.K_GROUP_MEMBER_MISSING) == 1
    result = fsck_mod.repair(pool)
    assert result.clean, result.describe()
    assert GroupStore.open_or_create(pool).names() == []


def test_fsck_drops_dangling_group_entry():
    pool = make_pool()
    populate_members(pool)
    store = GroupStore.open_or_create(pool)
    store.register(CONFIG.name, LAYOUT.pack())
    store.table.insert("ghost", 0x66666000)

    report = fsck_mod.fsck(pool)
    assert report.kinds().get(fsck_mod.K_GROUP_DANGLING) == 1
    result = fsck_mod.repair(pool)
    assert result.clean, result.describe()
    assert GroupStore.open_or_create(pool).names() == [CONFIG.name]


def test_fsck_reclaims_unreferenced_group_record():
    pool = make_pool()
    populate_members(pool)
    store = GroupStore.open_or_create(pool)
    store.register(CONFIG.name, LAYOUT.pack())
    # Crash window in register: a record region written but never
    # linked into the group table is a leak, reclaimed by repair.
    GroupRecord.create(pool, "orphan", LAYOUT.pack())

    report = fsck_mod.fsck(pool)
    assert report.kinds().get(fsck_mod.K_LEAKED_EXTENT) == 1
    result = fsck_mod.repair(pool)
    assert result.clean, result.describe()


# -- daemon two-phase commit (cluster) ----------------------------------------


def group_cluster():
    cluster = PaperCluster(seed=19, ampere_nodes=0)
    state = {}

    def setup(env):
        client = cluster.portus_client()
        sessions = []
        instances = []
        for index, shard in enumerate(SHARDS):
            instance = ModelInstance.materialize(
                shard.name, shard.tensors,
                cluster.volta.gpus[index % 4], model_seed=index)
            session = yield from client.register(instance)
            instances.append(instance)
            sessions.append(session)
        group = yield from register_group(client, CONFIG.name, LAYOUT,
                                          sessions)
        state.update(group=group, instances=instances, client=client)

    cluster.run(setup)
    return cluster, state


def test_group_dump_commits_and_queries():
    cluster, state = group_cluster()

    def dump(env):
        for instance in state["instances"]:
            instance.update_step(10)
        step = yield from state["group"].dump(10)
        info = yield from state["group"].query()
        return step, info["step"]

    assert cluster.run(dump) == (10, 10)
    metrics = cluster.obs.metrics
    assert metrics.counter("daemon.group_commits").value >= 1
    assert metrics.counter("daemon.group_registers").value >= 1


def test_group_commit_refused_without_member_checkpoints():
    cluster, state = group_cluster()

    def bare_commit(env):
        yield from state["group"]._commit(7)

    with pytest.raises(GroupCommitRefused, match="no DONE checkpoint"):
        cluster.run(bare_commit)


def test_group_commit_refuses_step_regression():
    cluster, state = group_cluster()

    def regress(env):
        for instance in state["instances"]:
            instance.update_step(10)
        yield from state["group"].dump(10)
        # The members will happily checkpoint an older step; the group
        # commit is what refuses to move backwards.
        for instance in state["instances"]:
            instance.update_step(5)
        yield from state["group"].dump(5)

    with pytest.raises(GroupCommitRefused, match="behind"):
        cluster.run(regress)


def test_group_commit_is_idempotent():
    cluster, state = group_cluster()

    def recommit(env):
        for instance in state["instances"]:
            instance.update_step(10)
        yield from state["group"].dump(10)
        reply = yield from state["group"]._commit(10)
        return reply["step"]

    assert cluster.run(recommit) == 10


def test_group_restore_without_commit_raises_typed_error():
    cluster, state = group_cluster()

    def restore(env):
        yield from state["group"].restore()

    with pytest.raises(NoValidGroupCheckpoint):
        cluster.run(restore)


def test_member_restore_can_pin_an_older_step():
    cluster, state = group_cluster()

    def pinned(env):
        group, instances = state["group"], state["instances"]
        for step in (10, 20):
            for instance in instances:
                instance.update_step(step)
            yield from group.dump(step)
        session = group.sessions[LAYOUT.members[0]]
        restored = yield from session.restore(step=10)
        return restored, instances[0].step

    assert cluster.run(pinned) == (10, 10)

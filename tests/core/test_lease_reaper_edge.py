"""The lease reaper's in-flight edge case (daemon.py `_reap_expired`).

A healthy pull can legitimately outlast a short lease — the client went
quiet because it is *waiting for the daemon*, not because it died.  With
a request timeout configured, a live in-flight request is proof of
liveness and the reaper must skip the entry (the wedged case is the
request timeout's job to kill).  Only a daemon with *no* request timeout
reaps in-flight work, as a last resort against a permanently held CAS
guard.
"""

import pytest

from repro.core.consistency import valid_checkpoint
from repro.dnn.tensor import ModelInstance, TensorSpec
from repro.errors import ReproError, RequestTimeout
from repro.faults import FaultInjector
from repro.harness.cluster import PaperCluster
from repro.units import msecs, usecs

#: Big enough that the checkpoint pull takes ~170 us of simulated time —
#: several reaper periods past the deliberately tiny lease below.
SPECS = [TensorSpec("block.weight", (512, 256)),
         TensorSpec("block.bias", (512,)),
         TensorSpec("head.weight", (16, 512))]

LEASE_NS = usecs(60)
REAPER_NS = usecs(15)


def make_cluster(request_timeout_ns, seed=5):
    return PaperCluster(seed=seed, ampere_nodes=0,
                        daemon_kwargs=dict(
                            request_timeout_ns=request_timeout_ns,
                            lease_ns=LEASE_NS,
                            reaper_interval_ns=REAPER_NS))


def register_model(cluster, seed=5):
    def setup(env):
        instance = ModelInstance.materialize("model", SPECS,
                                             cluster.volta.gpus[0],
                                             model_seed=seed)
        session = yield from cluster.portus_client().register(instance)
        return session

    return cluster.run(setup)


def test_healthy_pull_outlasting_short_lease_is_not_reaped():
    cluster = make_cluster(request_timeout_ns=msecs(50))
    session = register_model(cluster)

    def scenario(env):
        session.model.update_step(1)
        # The pull takes several reaper periods; the lease expires while
        # the request is legitimately in flight.  A live request is
        # proof of liveness — the reaper must leave it alone.
        reply = yield from session.checkpoint(1)
        return reply

    reply = cluster.run(scenario)
    assert reply["step"] == 1
    assert cluster.daemon.reaped_sessions == 0
    assert cluster.daemon.model_map["model"].attached
    entry = cluster.daemon.model_map["model"]
    _version, step = valid_checkpoint(entry.meta)
    assert step == 1


def test_wedged_pull_times_out_then_idle_session_is_reaped():
    cluster = make_cluster(request_timeout_ns=usecs(400))
    session = register_model(cluster)
    injector = FaultInjector(cluster.env, cluster)

    def scenario(env):
        session.model.update_step(1)
        injector.set_wr_fault_rate("server", rate=0.0, hang_rate=1.0)
        started = env.now
        with pytest.raises(RequestTimeout):
            yield from session.checkpoint(1)
        # The request timeout killed the wedged pull — NOT the reaper:
        # the lease expired several reaper periods before the timeout
        # fired, yet the in-flight request kept the session alive until
        # the timeout's own cleanup released it.
        assert env.now - started >= usecs(400) > LEASE_NS
        # The client now goes silent; with no in-flight request left,
        # the expired lease is reaped normally.
        yield env.timeout(LEASE_NS + 4 * REAPER_NS)

    cluster.run(scenario)
    assert cluster.daemon.reaped_sessions == 1
    assert not cluster.daemon.model_map["model"].attached


def test_daemon_without_request_timeout_reaps_inflight_as_last_resort():
    cluster = make_cluster(request_timeout_ns=None)
    session = register_model(cluster)
    injector = FaultInjector(cluster.env, cluster)

    def scenario(env):
        session.model.update_step(1)
        injector.set_wr_fault_rate("server", rate=0.0, hang_rate=1.0)
        # Nothing else will ever release the CAS guard: no request
        # timeout, a hung WR.  Fire the doomed checkpoint and abandon it
        # (the daemon never replies once the reaper kills the handler;
        # the client only sees its QPs flushed by the reap).

        def doomed():
            try:
                yield from session.checkpoint(1)
            except ReproError:
                pass

        env.process(doomed(), name="doomed-ckpt")
        yield env.timeout(LEASE_NS + 8 * REAPER_NS)

    cluster.run(scenario)
    assert cluster.daemon.reaped_sessions == 1
    entry = cluster.daemon.model_map["model"]
    assert not entry.busy  # the interrupt's cleanup released the guard
    assert not entry.attached

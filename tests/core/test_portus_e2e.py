"""End-to-end Portus tests: register / checkpoint / restore / recover."""

import pytest

from repro.core.consistency import valid_checkpoint
from repro.core.repack import repack
from repro.errors import (CheckpointInProgress, ModelNotFound,
                          NoValidCheckpoint, PortusError)
from repro.harness.cluster import PaperCluster
from repro.units import gbytes, to_seconds


@pytest.fixture
def cluster():
    return PaperCluster(seed=1)


def test_register_builds_index(cluster):
    def scenario(env):
        session = yield from cluster.portus_register("resnet50")
        return session

    session = cluster.run(scenario)
    assert cluster.daemon.models() == ["resnet50"]
    entry = cluster.daemon.model_map["resnet50"]
    assert entry.meta.mindex.layer_count == 161
    assert entry.attached
    # Client registered one MR per tensor.
    assert len(session.mrs) == 161


def test_checkpoint_persists_exact_bytes(cluster):
    def scenario(env):
        session = yield from cluster.portus_register("alexnet")
        session.model.update_step(5)
        reply = yield from session.checkpoint(5)
        return session, reply

    session, reply = cluster.run(scenario)
    assert reply["step"] == 5
    entry = cluster.daemon.model_map["alexnet"]
    version, step = valid_checkpoint(entry.meta)
    assert step == 5
    # Every tensor's bytes on PMem match the step-5 weights exactly.
    for tensor, descriptor in zip(session.model.tensors,
                                  entry.meta.mindex.descriptors):
        stored = entry.meta.read_tensor(descriptor, version)
        assert stored.equals(tensor.expected_content(5))


def test_restore_roundtrip_bit_exact(cluster):
    def scenario(env):
        session = yield from cluster.portus_register("resnet50")
        session.model.update_step(30)
        yield from session.checkpoint(30)
        session.model.update_step(45)  # training continues...
        step = yield from session.restore()  # ...then rolls back
        return session, step

    session, step = cluster.run(scenario)
    assert step == 30
    contents = {t.name: t.content() for t in session.model.tensors}
    assert session.model.verify_against(contents, step=30) == []


def test_double_mapping_keeps_previous_version(cluster):
    def scenario(env):
        session = yield from cluster.portus_register("alexnet")
        session.model.update_step(1)
        yield from session.checkpoint(1)
        session.model.update_step(2)
        yield from session.checkpoint(2)
        return session

    cluster.run(scenario)
    entry = cluster.daemon.model_map["alexnet"]
    flags = entry.meta.read_flags()
    # Both versions are DONE, holding steps 1 and 2.
    assert sorted(flags.steps) == [1, 2]
    version, step = valid_checkpoint(entry.meta)
    assert step == 2


def test_restore_without_checkpoint_fails(cluster):
    def scenario(env):
        session = yield from cluster.portus_register("alexnet")
        with pytest.raises(NoValidCheckpoint):
            yield from session.restore()
        return True

    assert cluster.run(scenario)


def test_checkpoint_unknown_model_fails(cluster):
    from repro.core import protocol

    def scenario(env):
        session = yield from cluster.portus_register("alexnet")
        message, size = protocol.do_checkpoint("ghost", 1)
        yield from session.conn.send(message, wire_size=size)
        reply = yield from session.conn.recv()
        return reply

    reply = cluster.run(scenario)
    assert isinstance(reply["error"], ModelNotFound)


def test_concurrent_checkpoints_same_model_rejected(cluster):
    """The per-entry CAS guard: a second DO_CHECKPOINT for a model with
    one already in flight is refused."""
    from repro.core import protocol

    def scenario(env):
        session = yield from cluster.portus_register("vit_l_32")
        session.model.update_step(1)
        message, size = protocol.do_checkpoint("vit_l_32", 1)
        yield from session.conn.send(message, wire_size=size)
        yield from session.conn.send(message, wire_size=size)
        first = yield from session.conn.recv()
        second = yield from session.conn.recv()
        return first, second

    first, second = cluster.run(scenario)
    replies = [first, second]
    errors = [r for r in replies if r["op"] == "ERROR"]
    done = [r for r in replies if r["op"] == "CHECKPOINT_DONE"]
    assert len(errors) == 1 and len(done) == 1
    assert isinstance(errors[0]["error"], CheckpointInProgress)


def test_multi_tenant_models_checkpoint_concurrently(cluster):
    """Different models are independent: two concurrent checkpoints both
    succeed, sharing the wire fairly."""
    from repro.sim import AllOf

    def scenario(env):
        session_a = yield from cluster.portus_register("vgg19_bn", gpu=0)
        session_b = yield from cluster.portus_register("swin_b", gpu=1)
        session_a.model.update_step(1)
        session_b.model.update_step(1)
        jobs = [env.process(session_a.checkpoint(1)),
                env.process(session_b.checkpoint(1))]
        yield AllOf(env, jobs)
        return session_a, session_b

    cluster.run(scenario)
    assert cluster.daemon.checkpoints_completed == 2


def test_checkpoint_speed_near_bar_bandwidth(cluster):
    """Single-GPU pull rate ~= 5.8 GB/s (the BAR read cap)."""
    def scenario(env):
        session = yield from cluster.portus_register("bert_large")
        session.model.update_step(1)
        start = env.now
        yield from session.checkpoint(1)
        return env.now - start, session.model.total_bytes

    elapsed, size = cluster.run(scenario)
    rate = size / to_seconds(elapsed)
    assert rate == pytest.approx(gbytes(5.8), rel=0.05)


def test_restore_faster_than_checkpoint(cluster):
    """Writes to GPU are not BAR-limited, so restore beats checkpoint."""
    def scenario(env):
        session = yield from cluster.portus_register("bert_large")
        session.model.update_step(1)
        start = env.now
        yield from session.checkpoint(1)
        ckpt_ns = env.now - start
        start = env.now
        yield from session.restore()
        restore_ns = env.now - start
        return ckpt_ns, restore_ns

    ckpt_ns, restore_ns = cluster.run(scenario)
    assert restore_ns < ckpt_ns


def test_unregister_frees_pmem(cluster):
    def scenario(env):
        session = yield from cluster.portus_register("alexnet")
        session.model.update_step(1)
        yield from session.checkpoint(1)
        used = cluster.portus_pool.used_bytes
        yield from session.unregister()
        return used

    used_before = cluster.run(scenario)
    assert cluster.daemon.models() == []
    assert cluster.portus_pool.used_bytes < used_before


def test_daemon_restart_recovers_index_and_restores(cluster):
    """Daemon restart: ModelMap rebuilt from PMem; a re-attached client
    restores the exact pre-restart weights."""
    def phase1(env):
        session = yield from cluster.portus_register("resnet50")
        session.model.update_step(77)
        yield from session.checkpoint(77)
        return session

    old_session = cluster.run(phase1)
    model = old_session.model
    cluster.restart_daemon()
    assert cluster.daemon.models() == ["resnet50"]

    def phase2(env):
        # Simulate a fresh process: construct an "empty" model with the
        # same specs (here we reuse the GPU allocations) and re-attach.
        client = cluster.portus_client()
        session = yield from client.register(model)
        model.update_step(99)  # diverged weights to be rolled back
        step = yield from session.restore()
        return session, step

    session, step = cluster.run(phase2)
    assert step == 77
    contents = {t.name: t.content() for t in session.model.tensors}
    assert session.model.verify_against(contents, step=77) == []


def test_attach_with_mismatched_specs_rejected(cluster):
    def phase1(env):
        session = yield from cluster.portus_register("alexnet")
        yield from session.checkpoint(1)

    cluster.run(phase1)
    cluster.restart_daemon()

    def phase2(env):
        # Register a different architecture under the same name.
        instance = cluster.materialize("resnet50", gpu=1,
                                       instance_name="alexnet")
        client = cluster.portus_client()
        with pytest.raises(PortusError):
            yield from client.register(instance)
        return True

    assert cluster.run(phase2)


def test_crash_during_checkpoint_keeps_previous_version(cluster):
    """Power loss mid-pull: after recovery the previous DONE checkpoint
    is still restorable and bit-exact (the double-mapping guarantee)."""
    def phase1(env):
        session = yield from cluster.portus_register("alexnet")
        session.model.update_step(10)
        yield from session.checkpoint(10)
        # Start the second checkpoint but crash mid-pull.
        session.model.update_step(20)
        from repro.core import protocol
        message, size = protocol.do_checkpoint("alexnet", 20)
        yield from session.conn.send(message, wire_size=size)
        yield env.timeout(1_000_000)  # 1 ms into a ~40 ms pull
        return session

    session = cluster.run(phase1)
    model = session.model
    cluster.crash_server()
    cluster.restart_daemon()

    def phase2(env):
        client = cluster.portus_client()
        new_session = yield from client.register(model)
        step = yield from new_session.restore()
        return new_session, step

    new_session, step = cluster.run(phase2)
    assert step == 10
    contents = {t.name: t.content() for t in new_session.model.tensors}
    assert new_session.model.verify_against(contents, step=10) == []


def test_repack_after_finished_job(cluster):
    def scenario(env):
        session = yield from cluster.portus_register("alexnet")
        session.model.update_step(1)
        yield from session.checkpoint(1)
        session.model.update_step(2)
        yield from session.checkpoint(2)

    cluster.run(scenario)
    used_before = cluster.portus_pool.used_bytes
    report = repack(cluster.portus_pool, cluster.daemon.table)
    assert report.models_compacted == ["alexnet"]
    assert report.bytes_reclaimed > 0
    assert cluster.portus_pool.used_bytes < used_before
    # The surviving version is still restorable.
    entry_meta = cluster.daemon.model_map["alexnet"].meta
    reopened = type(entry_meta).open(cluster.portus_pool,
                                     entry_meta.meta.addr)
    assert valid_checkpoint(reopened)[1] == 2

"""Tests for incremental checkpointing (dirty-tensor pulls)."""

import pytest

from repro.core.consistency import valid_checkpoint
from repro.harness.cluster import PaperCluster


HEAD = "fc.weight"


def test_incremental_pulls_only_dirty_and_stays_complete():
    """Fine-tuning ResNet50's head: the second checkpoint pulls only the
    head tensors, yet the stored version is complete and correct."""
    cluster = PaperCluster(seed=50)

    def scenario(env):
        session = yield from cluster.portus_register("resnet50")
        model = session.model
        model.update_step(1)
        yield from session.checkpoint(1)
        pulled_before = cluster.daemon.bytes_pulled
        # Only the classifier head trains.
        dirty = ["fc.weight", "fc.bias"]
        model.update_step(2, only=dirty)
        yield from session.checkpoint(2, dirty=dirty)
        pulled = cluster.daemon.bytes_pulled - pulled_before
        return session, dirty, pulled

    session, dirty, pulled = cluster.run(scenario)
    head_bytes = sum(t.size_bytes for t in session.model.tensors
                     if t.name in dirty)
    assert pulled == head_bytes  # only the dirty bytes crossed the wire

    entry = cluster.daemon.model_map["resnet50"]
    version, step = valid_checkpoint(entry.meta)
    assert step == 2
    # Every tensor in the new version is correct: dirty ones at step 2,
    # frozen ones carrying their step-1 bytes.
    for tensor, descriptor in zip(session.model.tensors,
                                  entry.meta.mindex.descriptors):
        stored = entry.meta.read_tensor(descriptor, version)
        expected_step = 2 if tensor.name in dirty else 1
        assert stored.equals(tensor.expected_content(expected_step)), \
            tensor.name


def test_incremental_restore_roundtrip():
    cluster = PaperCluster(seed=51)

    def scenario(env):
        session = yield from cluster.portus_register("alexnet")
        model = session.model
        model.update_step(1)
        yield from session.checkpoint(1)
        dirty = ["classifier.6.weight", "classifier.6.bias"]
        model.update_step(2, only=dirty)
        yield from session.checkpoint(2, dirty=dirty)
        # Trash everything, restore, verify per-tensor.
        for tensor in model.tensors:
            tensor.set_step(99)
        step = yield from session.restore()
        bad = []
        for tensor in model.tensors:
            expected_step = 2 if tensor.name in dirty else 1
            if not tensor.content().equals(
                    tensor.expected_content(expected_step)):
                bad.append(tensor.name)
        return step, bad

    step, bad = cluster.run(scenario)
    assert step == 2
    assert bad == []


def test_incremental_without_previous_version_falls_back_to_full():
    cluster = PaperCluster(seed=52)

    def scenario(env):
        session = yield from cluster.portus_register("alexnet")
        session.model.update_step(1)
        # First checkpoint ever, but marked incremental: nothing to copy
        # from, so everything must be pulled.
        yield from session.checkpoint(1, dirty=["classifier.6.bias"])
        return session

    session = cluster.run(scenario)
    assert cluster.daemon.bytes_pulled == session.model.total_bytes


def test_incremental_much_faster_for_frozen_backbone():
    cluster = PaperCluster(seed=53)

    def scenario(env):
        session = yield from cluster.portus_register("vit_l_32")
        model = session.model
        model.update_step(1)
        start = env.now
        yield from session.checkpoint(1)
        full_ns = env.now - start
        dirty = ["heads.head.weight", "heads.head.bias"]
        model.update_step(2, only=dirty)
        start = env.now
        yield from session.checkpoint(2, dirty=dirty)
        incremental_ns = env.now - start
        return full_ns, incremental_ns

    full_ns, incremental_ns = cluster.run(scenario)
    # The local PMem copy (~8.4 GB/s interleaved write, no network, no
    # BAR) replaces the 5.8 GB/s pull: a solid constant-factor win.
    assert incremental_ns < full_ns * 0.75

"""End-to-end deduplicated checkpoints: delta pulls, shared extents,
refcounts across versions/tenants, bit-exact restores."""

import pytest

from repro.core.consistency import valid_checkpoint
from repro.dnn.tensor import ModelInstance, TensorSpec
from repro.errors import PortusError
from repro.harness.cluster import PaperCluster
from repro.pmem.chunks import ChunkStore
from repro.units import kib

CHUNK = 256 * 1024

SPECS = [TensorSpec("backbone.weight", (256, 1024)),  # 1 MiB
         TensorSpec("backbone.bias", (1024,)),
         TensorSpec("head.weight", (64, 1024)),       # 256 KiB
         TensorSpec("head.bias", (64,))]


@pytest.fixture
def cluster():
    return PaperCluster(seed=7)


def _register(cluster, name, gpu=0, seed=77):
    instance = ModelInstance.materialize(
        name, SPECS, cluster.volta.gpus[gpu], model_seed=seed)
    return cluster.portus_register(instance, dedup=True, chunk_bytes=CHUNK)


def test_first_checkpoint_pulls_whole_region_then_only_deltas(cluster):
    def scenario(env):
        session = yield from _register(cluster, "m")
        session.model.update_step(1)
        first = yield from session.checkpoint(1)
        # Fine-tune only the head: the backbone chunks are already
        # stored, so the second checkpoint moves only the head's chunks.
        session.model.update_step(2, only=["head.weight", "head.bias"])
        second = yield from session.checkpoint(2)
        return session, first, second

    session, first, second = cluster.run(scenario)
    assert first["bytes_logical"] == session.model.total_bytes
    assert first["chunks_shared"] == 0
    assert first["bytes_pulled"] > 0
    # Second checkpoint: only the chunks the head dirtied move.
    assert second["bytes_pulled"] < first["bytes_pulled"] / 2
    assert second["chunks_shared"] > 0
    assert second["bytes_logical"] == first["bytes_logical"]


def test_dedup_restore_roundtrip_bit_exact(cluster):
    def scenario(env):
        session = yield from _register(cluster, "m")
        session.model.update_step(3)
        yield from session.checkpoint(3)
        session.model.update_step(4, only=["head.weight"])
        yield from session.checkpoint(4)
        session.model.update_step(9)  # diverge, then roll back
        step = yield from session.restore()
        return session, step

    session, step = cluster.run(scenario)
    assert step == 4
    # Only the head moved at step 4; the backbone's newest bytes are
    # its step-3 weights — the restore must reproduce exactly that mix.
    for tensor in session.model.tensors:
        want = 4 if tensor.name == "head.weight" else 3
        assert tensor.content().equals(tensor.expected_content(want)), \
            tensor.name


def test_cross_tenant_chunks_stored_once(cluster):
    """Two tenants fine-tuning the same base weights share backbone
    extents: the second tenant's first checkpoint pulls only its own
    distinct head bytes."""
    def scenario(env):
        a = yield from _register(cluster, "tenant-a", gpu=0, seed=77)
        b = yield from _register(cluster, "tenant-b", gpu=1, seed=77)
        a.model.update_step(1)
        # Same seed + step => identical bytes; then each tenant diverges
        # only its head.
        b.model.update_step(1)
        a.model.update_step(2, only=["head.weight", "head.bias"])
        first = yield from a.checkpoint(2)
        b.model.update_step(3, only=["head.weight", "head.bias"])
        second = yield from b.checkpoint(3)
        return first, second

    first, second = cluster.run(scenario)
    assert first["chunks_shared"] == 0
    # Tenant B found its backbone already stored by tenant A.
    assert second["chunks_shared"] > 0
    assert second["bytes_pulled"] < first["bytes_pulled"] / 2
    store = ChunkStore.attach(cluster.portus_pool)
    assert store.logical_bytes > store.stored_bytes


def test_drop_version_decrements_instead_of_freeing(cluster):
    """The third checkpoint overwrites the first's slot: shared chunks
    survive (refcount drops by one), distinct chunks are freed."""
    def scenario(env):
        session = yield from _register(cluster, "m")
        session.model.update_step(1)
        yield from session.checkpoint(1)
        session.model.update_step(2, only=["head.weight"])
        yield from session.checkpoint(2)
        session.model.update_step(3, only=["head.weight"])
        yield from session.checkpoint(3)
        return session

    cluster.run(scenario)
    entry = cluster.daemon.model_map["m"]
    store = ChunkStore.attach(cluster.portus_pool)
    flags = entry.meta.read_flags()
    assert sorted(flags.steps) == [2, 3]
    # Both manifests fully resolvable; backbone chunks counted twice.
    for version in (0, 1):
        for digest in entry.meta.read_manifest(version):
            assert store.lookup(digest) is not None
    shared = [e for e in store.entries() if e.refcount >= 2]
    assert shared, "backbone chunks should be shared across versions"


def test_unregister_releases_all_references(cluster):
    def scenario(env):
        session = yield from _register(cluster, "m")
        session.model.update_step(1)
        yield from session.checkpoint(1)
        session.model.update_step(2)
        yield from session.checkpoint(2)
        yield from session.unregister()

    cluster.run(scenario)
    store = ChunkStore.attach(cluster.portus_pool)
    assert store.chunk_count == 0
    assert store.stored_bytes == 0


def test_daemon_restart_keeps_dedup_checkpoints(cluster):
    def phase1(env):
        session = yield from _register(cluster, "m")
        session.model.update_step(5)
        yield from session.checkpoint(5)
        return session

    old = cluster.run(phase1)
    model = old.model
    cluster.restart_daemon()

    def phase2(env):
        client = cluster.portus_client()
        session = yield from client.register(model, dedup=True,
                                             chunk_bytes=CHUNK)
        model.update_step(6)  # diverged weights to roll back
        step = yield from session.restore()
        return session, step

    session, step = cluster.run(phase2)
    assert step == 5
    contents = {t.name: t.content() for t in session.model.tensors}
    assert session.model.verify_against(contents, step=5) == []


def test_layout_mismatch_on_attach_rejected(cluster):
    def phase1(env):
        session = yield from _register(cluster, "m")
        yield from session.checkpoint(0)
        return session.model

    model = cluster.run(phase1)
    cluster.restart_daemon()

    def phase2(env):
        client = cluster.portus_client()
        with pytest.raises(PortusError):
            yield from client.register(model)  # contiguous attach
        with pytest.raises(PortusError):
            yield from client.register(model, dedup=True,
                                       chunk_bytes=2 * CHUNK)
        return True

    assert cluster.run(phase2)


def test_chunk_bytes_without_dedup_rejected(cluster):
    def scenario(env):
        instance = ModelInstance.materialize(
            "m", SPECS, cluster.volta.gpus[0], model_seed=1)
        client = cluster.portus_client()
        with pytest.raises(PortusError):
            yield from client.register(instance, chunk_bytes=kib(64))
        return True

    assert cluster.run(scenario)

"""Tests for the two-sided RPC-over-RDMA layer."""

import pytest

from repro.errors import FileNotFound, ProtocolError
from repro.hw import ComputeNode, StorageNode
from repro.net import Fabric
from repro.rdma import Rnic, RpcClient, RpcServer, connect
from repro.sim import AllOf, Environment
from repro.units import gbytes, mib, to_seconds


def make_rpc_pair(chunk_cpu_ns=None):
    env = Environment()
    fabric = Fabric(env)
    client_node = ComputeNode(env, "client", gpu_count=1)
    server_node = StorageNode(env, "server")
    Rnic(env, client_node, fabric)
    Rnic(env, server_node, fabric)
    kwargs = {}
    if chunk_cpu_ns is not None:
        kwargs["chunk_cpu_ns"] = chunk_cpu_ns
    server = RpcServer(env, server_node.cpus, **kwargs)
    holder = {}

    def setup(env):
        client_qp, server_qp = yield from connect(env, client_node.nic,
                                                  server_node.nic)
        env.process(server.serve(server_qp))
        holder["client"] = RpcClient(env, client_qp)

    env.run_process(env.process(setup(env)))
    return env, server, holder["client"]


def test_call_response_roundtrip():
    env, server, client = make_rpc_pair()

    def echo(args):
        return ({"echo": args}, 64)
        yield

    server.register("echo", echo)

    def scenario(env):
        result = yield from client.call("echo", {"x": 1})
        return result

    assert env.run_process(env.process(scenario(env))) == {"echo": {"x": 1}}
    assert server.calls_served == 1


def test_unknown_op_is_fatal():
    env, _server, client = make_rpc_pair()

    def scenario(env):
        yield from client.call("nothing")

    with pytest.raises(ProtocolError, match="no RPC handler"):
        env.run_process(env.process(scenario(env)))


def test_application_errors_marshalled():
    env, server, client = make_rpc_pair()

    def boom(args):
        raise FileNotFound("/missing")
        yield

    server.register("boom", boom)

    def scenario(env):
        with pytest.raises(FileNotFound):
            yield from client.call("boom")
        return True

    assert env.run_process(env.process(scenario(env)))


def test_bulk_payload_pays_per_chunk_cpu():
    env, server, client = make_rpc_pair()

    def sink(args):
        return ({}, 64)
        yield

    server.register("sink", sink)
    size = mib(64)

    def scenario(env):
        start = env.now
        yield from client.call("sink", payload_size=size)
        return env.now - start

    elapsed = env.run_process(env.process(scenario(env)))
    effective = size / to_seconds(elapsed)
    # Wire (8.3 GB/s) + 89us per 512 KiB chunk => ~3.4 GB/s effective.
    assert gbytes(3.0) < effective < gbytes(3.9)


def test_handler_time_included():
    env, server, client = make_rpc_pair()

    def slow(args):
        yield env.timeout(1_000_000)
        return ({}, 64)

    server.register("slow", slow)

    def scenario(env):
        start = env.now
        yield from client.call("slow")
        return env.now - start

    assert env.run_process(env.process(scenario(env))) >= 1_000_000


def test_concurrent_callers_serialize_on_one_connection():
    env, server, client = make_rpc_pair()

    def sink(args):
        return ({}, 64)
        yield

    server.register("sink", sink)
    size = mib(32)

    def one(env):
        yield from client.call("sink", payload_size=size)

    def solo(env):
        start = env.now
        yield from one(env)
        return env.now - start

    solo_ns = env.run_process(env.process(solo(env)))

    def pair(env):
        start = env.now
        procs = [env.process(one(env)) for _ in range(2)]
        yield AllOf(env, procs)
        return env.now - start

    pair_ns = env.run_process(env.process(pair(env)))
    assert pair_ns == pytest.approx(2 * solo_ns, rel=0.05)

"""Unit tests for RDMA verbs: MRs, one-sided READ/WRITE, SEND/RECV."""

import pytest

from repro.errors import MemoryRegionError, RkeyViolation
from repro.hw import ByteContent, ComputeNode, PatternContent, StorageNode
from repro.hw.content import TornContent
from repro.net import Fabric
from repro.rdma import Rnic, connect, enable_peer_memory
from repro.sim import AllOf, Environment
from repro.units import gbytes, mib, secs, usecs


def make_cluster():
    env = Environment()
    fabric = Fabric(env)
    client = ComputeNode(env, "client", gpu_count=1)
    server = StorageNode(env, "server")
    client_nic = Rnic(env, client, fabric)
    server_nic = Rnic(env, server, fabric)
    return env, client, server, client_nic, server_nic


def test_register_mr_costs_time_and_installs_rkey():
    env, client, _server, client_nic, _server_nic = make_cluster()

    def proc(env):
        allocation = client.dram.alloc(4096)
        mr = yield from client_nic.register_mr(allocation)
        return (env.now, mr.rkey, client_nic.registered_mrs)

    now, rkey, count = env.run_process(env.process(proc(env)))
    # Fixed driver cost plus page pinning at 0.25 ns/byte.
    assert now == usecs(40) + int(4096 * 0.25)
    assert rkey > 0
    assert count == 1


def test_gpu_registration_requires_peer_memory():
    env, client, _server, client_nic, _server_nic = make_cluster()
    gpu = client.gpus[0]

    def bad(env):
        allocation = gpu.alloc(4096)
        with pytest.raises(MemoryRegionError, match="peer memory"):
            yield from client_nic.register_mr(allocation)
        return True

    assert env.run_process(env.process(bad(env)))

    def good(env):
        enable_peer_memory(client_nic, gpu)
        allocation = gpu.alloc(4096)
        mr = yield from client_nic.register_mr(allocation)
        return mr.valid

    assert env.run_process(env.process(good(env)))


def test_one_sided_read_moves_content():
    env, client, server, client_nic, server_nic = make_cluster()

    def proc(env):
        src = client.dram.alloc(1024)
        src.write(0, ByteContent(b"checkpoint-bytes".ljust(1024, b".")))
        dst = server.pmem_devdax.alloc(1024)
        src_mr = yield from client_nic.register_mr(src)
        dst_mr = yield from server_nic.register_mr(dst)
        server_qp, _client_qp = yield from connect(env, server_nic,
                                                   client_nic)
        yield server_qp.read(dst_mr, 0, src_mr.rkey, src_mr.addr, 1024)
        return dst.read_bytes(0, 16)

    assert env.run_process(env.process(proc(env))) == b"checkpoint-bytes"


def test_one_sided_write_moves_content():
    env, client, server, client_nic, server_nic = make_cluster()

    def proc(env):
        src = server.pmem_devdax.alloc(512)
        src.write(0, ByteContent(b"restored".ljust(512, b"!")))
        dst = client.dram.alloc(512)
        src_mr = yield from server_nic.register_mr(src)
        dst_mr = yield from client_nic.register_mr(dst)
        server_qp, _ = yield from connect(env, server_nic, client_nic)
        yield server_qp.write(src_mr, 0, dst_mr.rkey, dst_mr.addr, 512)
        return dst.read_bytes(0, 8)

    assert env.run_process(env.process(proc(env))) == b"restored"


def test_read_from_gpu_capped_by_bar_bandwidth():
    env, client, server, client_nic, server_nic = make_cluster()
    gpu = client.gpus[0]
    enable_peer_memory(client_nic, gpu)
    size = mib(580)  # at 5.8 GB/s -> ~0.1048 s

    def proc(env):
        src = gpu.alloc(size)
        src.write(0, PatternContent(seed=1, size=size))
        dst = server.pmem_devdax.alloc(size)
        src_mr = yield from client_nic.register_mr(src)
        dst_mr = yield from server_nic.register_mr(dst)
        server_qp, _ = yield from connect(env, server_nic, client_nic)
        start = env.now
        yield server_qp.read(dst_mr, 0, src_mr.rkey, src_mr.addr, size)
        return env.now - start

    elapsed = env.run_process(env.process(proc(env)))
    expected = size / gbytes(5.8) * 1e9
    assert elapsed == pytest.approx(expected, rel=0.01)


def test_read_from_dram_faster_than_gpu():
    """The paper: GPU BAR reads peak 30% below DRAM reads (Fig 10)."""
    env, client, server, client_nic, server_nic = make_cluster()
    gpu = client.gpus[0]
    enable_peer_memory(client_nic, gpu)
    size = mib(256)

    def timed_read(env, src_device):
        src = src_device.alloc(size)
        src.write(0, PatternContent(seed=2, size=size))
        dst = server.dram.alloc(size)
        src_mr = yield from client_nic.register_mr(src)
        dst_mr = yield from server_nic.register_mr(dst)
        server_qp, _ = yield from connect(env, server_nic, client_nic)
        start = env.now
        yield server_qp.read(dst_mr, 0, src_mr.rkey, src_mr.addr, size)
        return env.now - start

    gpu_ns = env.run_process(env.process(timed_read(env, gpu)))
    dram_ns = env.run_process(env.process(timed_read(env, client.dram)))
    assert dram_ns < gpu_ns
    assert gpu_ns / dram_ns == pytest.approx(8.3 / 5.8, rel=0.02)


def test_write_to_gpu_not_bar_limited():
    """The paper: BAR does not affect writes (Fig 10d)."""
    env, client, server, client_nic, server_nic = make_cluster()
    gpu = client.gpus[0]
    enable_peer_memory(client_nic, gpu)
    size = mib(256)

    def timed_write(env, dst_device):
        src = server.dram.alloc(size)
        src.write(0, PatternContent(seed=3, size=size))
        dst = dst_device.alloc(size)
        src_mr = yield from server_nic.register_mr(src)
        dst_mr = yield from client_nic.register_mr(dst)
        server_qp, _ = yield from connect(env, server_nic, client_nic)
        start = env.now
        yield server_qp.write(src_mr, 0, dst_mr.rkey, dst_mr.addr, size)
        return env.now - start

    gpu_ns = env.run_process(env.process(timed_write(env, gpu)))
    dram_ns = env.run_process(env.process(timed_write(env, client.dram)))
    assert gpu_ns == pytest.approx(dram_ns, rel=0.02)


def test_stale_rkey_rejected():
    env, client, server, client_nic, server_nic = make_cluster()

    def proc(env):
        src = client.dram.alloc(256)
        dst = server.dram.alloc(256)
        src_mr = yield from client_nic.register_mr(src)
        dst_mr = yield from server_nic.register_mr(dst)
        server_qp, _ = yield from connect(env, server_nic, client_nic)
        client_nic.deregister_mr(src_mr)
        with pytest.raises(RkeyViolation):
            yield server_qp.read(dst_mr, 0, src_mr.rkey, src_mr.addr, 256)
        return True

    assert env.run_process(env.process(proc(env)))


def test_out_of_bounds_remote_access_rejected():
    env, client, server, client_nic, server_nic = make_cluster()

    def proc(env):
        src = client.dram.alloc(256)
        dst = server.dram.alloc(1024)
        src_mr = yield from client_nic.register_mr(src)
        dst_mr = yield from server_nic.register_mr(dst)
        server_qp, _ = yield from connect(env, server_nic, client_nic)
        with pytest.raises(RkeyViolation, match="outside MR"):
            yield server_qp.read(dst_mr, 0, src_mr.rkey, src_mr.addr, 1024)
        return True

    assert env.run_process(env.process(proc(env)))


def test_torn_read_detected_when_source_mutates():
    """A read overlapping a source write must yield torn content."""
    env, client, server, client_nic, server_nic = make_cluster()
    size = mib(64)

    def proc(env):
        src = client.dram.alloc(size)
        src.write(0, PatternContent(seed=4, size=size))
        dst = server.dram.alloc(size)
        src_mr = yield from client_nic.register_mr(src)
        dst_mr = yield from server_nic.register_mr(dst)
        server_qp, _ = yield from connect(env, server_nic, client_nic)

        def mutator(env):
            yield env.timeout(usecs(100))  # mid-flight
            src.write(0, PatternContent(seed=5, size=size))

        env.process(mutator(env))
        yield server_qp.read(dst_mr, 0, src_mr.rkey, src_mr.addr, size)
        return dst.read(0, size)

    content = env.run_process(env.process(proc(env)))
    assert isinstance(content, TornContent)


def test_concurrent_reads_share_gpu_bar():
    """Two concurrent GPU reads each get half the BAR bandwidth."""
    env, client, server, client_nic, server_nic = make_cluster()
    gpu = client.gpus[0]
    enable_peer_memory(client_nic, gpu)
    size = mib(290)  # 2 x 290 MiB at 5.8 GB/s shared

    def proc(env):
        mrs = []
        for i in range(2):
            src = gpu.alloc(size)
            src.write(0, PatternContent(seed=i, size=size))
            dst = server.dram.alloc(size)
            src_mr = yield from client_nic.register_mr(src)
            dst_mr = yield from server_nic.register_mr(dst)
            mrs.append((src_mr, dst_mr))
        server_qp, _ = yield from connect(env, server_nic, client_nic)
        start = env.now
        reads = [server_qp.read(dst_mr, 0, src_mr.rkey, src_mr.addr, size)
                 for src_mr, dst_mr in mrs]
        yield AllOf(env, reads)
        return env.now - start

    elapsed = env.run_process(env.process(proc(env)))
    expected = 2 * size / gbytes(5.8) * 1e9
    assert elapsed == pytest.approx(expected, rel=0.02)


def test_two_sided_send_recv():
    env, _client, _server, client_nic, server_nic = make_cluster()

    def proc(env):
        client_qp, server_qp = yield from connect(env, client_nic,
                                                  server_nic)

        def server_side(env):
            payload = yield from server_qp.recv()
            return payload

        server_proc = env.process(server_side(env))
        yield client_qp.send({"op": "DO_CHECKPOINT"}, size=64)
        payload = yield server_proc
        return payload

    assert env.run_process(env.process(proc(env))) == {"op": "DO_CHECKPOINT"}

"""The adaptive checkpoint-interval controller (Young/Daly optimum)."""

import math

import pytest

from repro.ops.policy import (AdaptiveIntervalController, expected_overhead,
                              young_interval_ns)
from repro.units import msecs, secs


def test_young_interval_matches_the_formula():
    cost, mtbf = msecs(5), secs(30)
    assert young_interval_ns(cost, mtbf) == int(math.sqrt(2 * cost * mtbf))


def test_young_point_minimizes_expected_overhead():
    cost, mtbf = msecs(5), secs(30)
    optimum = young_interval_ns(cost, mtbf)
    best = expected_overhead(optimum, cost, mtbf)
    for factor in (0.25, 0.5, 2.0, 4.0):
        other = max(1, int(optimum * factor))
        assert expected_overhead(other, cost, mtbf) > best


def test_expected_overhead_rejects_degenerate_inputs():
    with pytest.raises(ValueError):
        expected_overhead(0, msecs(1), secs(1))
    with pytest.raises(ValueError):
        expected_overhead(msecs(1), msecs(1), 0)


def test_controller_starts_from_the_prior():
    controller = AdaptiveIntervalController(prior_mtbf_ns=secs(30),
                                            prior_cost_ns=msecs(5))
    controller.observe_start(0)
    assert controller.mtbf_ns(0) == pytest.approx(secs(30))
    assert controller.interval_ns(0) == young_interval_ns(msecs(5), secs(30))


def test_failures_shorten_the_interval_and_quiet_time_stretches_it():
    controller = AdaptiveIntervalController(prior_mtbf_ns=secs(30),
                                            prior_cost_ns=msecs(5),
                                            max_interval_ns=secs(3600))
    controller.observe_start(0)
    baseline = controller.interval_ns(secs(60))
    for at in (secs(10), secs(20), secs(30), secs(40)):
        controller.observe_failure(at)
    assert controller.interval_ns(secs(60)) < baseline
    # A long quiet stretch pushes MTBF — and the interval — back up.
    flaky_now = controller.interval_ns(secs(60))
    assert controller.interval_ns(secs(6000)) > flaky_now


def test_checkpoint_cost_ewma_tracks_drift():
    controller = AdaptiveIntervalController(cost_alpha=0.5)
    controller.observe_checkpoint_cost(msecs(4))
    assert controller.cost_ns == pytest.approx(msecs(4))
    controller.observe_checkpoint_cost(msecs(8))
    assert controller.cost_ns == pytest.approx(msecs(6))
    with pytest.raises(ValueError):
        controller.observe_checkpoint_cost(-1)


def test_interval_clamps_to_the_configured_band():
    # A stable deployment's Young optimum (~19 s here) hits the ceiling.
    calm = AdaptiveIntervalController(min_interval_ns=msecs(10),
                                      max_interval_ns=msecs(20),
                                      prior_mtbf_ns=secs(3600),
                                      prior_cost_ns=msecs(50))
    calm.observe_start(0)
    assert calm.interval_ns(0) == msecs(20)
    # A crash-looping one (MTBF driven to ~10 us) hits the floor.
    flaky = AdaptiveIntervalController(min_interval_ns=msecs(10),
                                       max_interval_ns=msecs(20),
                                       prior_mtbf_ns=msecs(1),
                                       prior_cost_ns=msecs(50))
    flaky.observe_start(0)
    for _ in range(100):
        flaky.observe_failure(0)
    assert flaky.interval_ns(0) == msecs(10)


def test_frequency_rounds_to_whole_iterations():
    controller = AdaptiveIntervalController(prior_mtbf_ns=secs(30),
                                            prior_cost_ns=msecs(5))
    controller.observe_start(0)
    interval = controller.interval_ns(0)
    assert controller.frequency(interval, 0) == 1
    assert controller.frequency(interval * 10, 0) == 1  # never below 1
    assert controller.frequency(max(1, interval // 4), 0) == 4


def test_controller_is_deterministic():
    def drive():
        controller = AdaptiveIntervalController()
        controller.observe_start(0)
        for at in (secs(3), secs(9), secs(11)):
            controller.observe_failure(at)
            controller.observe_checkpoint_cost(msecs(2))
        return (controller.interval_ns(secs(20)),
                controller.mtbf_ns(secs(20)), controller.cost_ns)

    assert drive() == drive()

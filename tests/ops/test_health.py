"""The health model: pure classification of heartbeat health samples."""

from repro.ops.health import (H_CORRUPT, H_DEGRADED, H_DOWN, H_HEALTHY,
                              H_WEDGED, STATES, HealthThresholds, classify,
                              overlay_fsck, worst)
from repro.pmem.fsck import SEV_WARN, Finding, FsckReport
from repro.units import msecs


def sample(up=True, closed=False, utilization=0.1, oldest_inflight=0,
           **counters):
    base = {"requests": 10, "errors": 0, "slow_requests": 0,
            "checkpoints_aborted": 0, "restores_aborted": 0,
            "dropped_replies": 0, "reaped_sessions": 0}
    base.update(counters)
    return {"time_ns": 0, "up": up, "port": 9900, "models": 1,
            "attached": 1, "inflight": 1 if oldest_inflight else 0,
            "oldest_inflight_age_ns": oldest_inflight,
            "pool": {"closed": closed, "used_bytes": 0,
                     "capacity_bytes": 100, "utilization": utilization},
            "counters": base}


def dirty_report():
    report = FsckReport()
    report.add(Finding("stale-active", SEV_WARN, "v0 still ACTIVE"))
    return report


def test_missing_or_dead_samples_classify_down():
    assert classify(None)[0] == H_DOWN
    assert classify(sample(up=False))[0] == H_DOWN
    assert classify(sample(closed=True))[0] == H_DOWN


def test_quiet_sample_is_healthy():
    state, reasons = classify(sample())
    assert state == H_HEALTHY
    assert reasons == []


def test_stuck_inflight_request_means_wedged():
    thresholds = HealthThresholds(wedge_ns=msecs(10))
    state, reasons = classify(sample(oldest_inflight=msecs(50)),
                              thresholds=thresholds)
    assert state == H_WEDGED
    assert any("stuck" in reason for reason in reasons)
    # A pull younger than the threshold is liveness, not a wedge.
    assert classify(sample(oldest_inflight=msecs(5)),
                    thresholds=thresholds)[0] == H_HEALTHY


def test_nearly_full_pool_degrades():
    state, reasons = classify(sample(utilization=0.95))
    assert state == H_DEGRADED
    assert any("high water" in reason for reason in reasons)


def test_fault_burst_since_previous_sample_degrades():
    previous = sample()
    current = sample(errors=2, dropped_replies=2)
    assert classify(current, previous)[0] == H_DEGRADED
    # Without the previous sample there is no delta to judge.
    assert classify(current)[0] == H_HEALTHY
    # A burst below the threshold stays healthy.
    assert classify(sample(errors=1), previous)[0] == H_HEALTHY


def test_counter_resets_never_count_as_negative_bursts():
    previous = sample(errors=50)
    assert classify(sample(errors=0), previous)[0] == H_HEALTHY


def test_fsck_overlay_upgrades_to_corrupt_but_never_past_down():
    state, reasons = overlay_fsck(H_HEALTHY, [], dirty_report())
    assert state == H_CORRUPT
    assert any("stale-active" in reason for reason in reasons)
    assert overlay_fsck(H_WEDGED, [], dirty_report())[0] == H_CORRUPT
    assert overlay_fsck(H_DOWN, [], dirty_report())[0] == H_DOWN
    assert overlay_fsck(H_HEALTHY, [], FsckReport())[0] == H_HEALTHY
    assert overlay_fsck(H_HEALTHY, [], None)[0] == H_HEALTHY


def test_worst_follows_severity_order():
    assert worst([]) == H_HEALTHY
    assert worst([H_HEALTHY, H_DEGRADED]) == H_DEGRADED
    assert worst([H_CORRUPT, H_WEDGED, H_DOWN]) == H_DOWN
    assert list(STATES)[0] == H_HEALTHY and list(STATES)[-1] == H_DOWN


def test_classification_is_deterministic():
    previous = sample()
    current = sample(utilization=0.99, errors=5,
                     oldest_inflight=msecs(200))
    assert classify(current, previous) == classify(current, previous)

"""The remediation operator: detect → diagnose → remediate → verify."""

import random

import pytest

from repro.core.consistency import valid_checkpoint
from repro.core.failover import FailoverCheckpointer
from repro.core.retry import RetryPolicy
from repro.dnn.tensor import ModelInstance, TensorSpec
from repro.errors import ReproError
from repro.faults import FaultInjector
from repro.harness.cluster import PaperCluster
from repro.ops.health import H_HEALTHY, HealthThresholds
from repro.ops.operator import (A_BREAKER, A_COOLDOWN, A_RESTART,
                                RemediationOperator)
from repro.pmem.fsck import fsck
from repro.units import msecs, usecs

SPECS = [TensorSpec("block.weight", (512, 256)),
         TensorSpec("block.bias", (512,)),
         TensorSpec("head.weight", (16, 512))]

THRESHOLDS = HealthThresholds(wedge_ns=msecs(2))


def make_rig(seed=3, **daemon_kwargs):
    """Cluster + registered session + failover + running operator."""
    policy = RetryPolicy(rng=random.Random(seed), max_attempts=8,
                         deadline_ns=msecs(10), reply_timeout_ns=msecs(4))
    cluster = PaperCluster(seed=seed, ampere_nodes=0,
                           daemon_kwargs=daemon_kwargs or None,
                           client_retry=policy)

    def setup(env):
        instance = ModelInstance.materialize("model", SPECS,
                                             cluster.volta.gpus[0],
                                             model_seed=seed)
        session = yield from cluster.portus_client().register(instance)
        return session

    session = cluster.run(setup)
    failover = FailoverCheckpointer(cluster.env, session, cluster.volta,
                                    failure_threshold=1,
                                    probe_interval_ns=msecs(1))
    operator = cluster.enable_operator(interval_ns=usecs(200),
                                       thresholds=THRESHOLDS)
    operator.register_failover(failover)
    return cluster, session, failover, operator


# -- crash → restart → drain-back -------------------------------------------------


def test_operator_restarts_dead_daemon_and_drains_clients_back():
    cluster, session, failover, operator = make_rig()
    paths = []

    def scenario(env):
        session.model.update_step(1)
        result = yield from failover.checkpoint(1)
        paths.append(result["path"])
        cluster.kill_daemon()
        # No manual restart: the operator must notice "down" on its next
        # tick, park the client on the DRAM path, restart the daemon,
        # verify, and drain the client back.
        yield env.timeout(msecs(2))
        session.model.update_step(2)
        result = yield from failover.checkpoint(2)
        paths.append(result["path"])

    cluster.run(scenario)
    assert paths == ["portus", "portus"]
    assert operator.restarts == 1
    assert failover.forced_degrades == 1
    assert failover.drains == 1
    assert not failover.operator_hold
    assert operator.last_state == H_HEALTHY
    assert operator.converged
    assert any("action=restart-daemon" in line
               for line in operator.decisions)
    # Step 1 rode out the crash and the drained-back step 2 re-covered
    # it with a durable Portus checkpoint.
    entry = cluster.daemon.model_map["model"]
    _version, step = valid_checkpoint(entry.meta)
    assert step == 2


def test_operator_holds_clients_on_local_path_while_daemon_is_down():
    cluster, session, failover, operator = make_rig()

    def scenario(env):
        session.model.update_step(1)
        yield from failover.checkpoint(1)
        cluster.kill_daemon()
        yield env.timeout(usecs(500))  # one tick: force-degrade+restart
        return (yield from failover.checkpoint(1))

    cluster.run(scenario)
    # Whatever the timing, the client never saw a hard failure: every
    # step landed on exactly one of the two paths.
    assert failover.portus_checkpoints + failover.local_checkpoints == 2


# -- corruption → repair ----------------------------------------------------------


def test_operator_repairs_injected_pool_corruption():
    cluster, session, failover, operator = make_rig()
    injector = FaultInjector(cluster.env, cluster)

    def scenario(env):
        session.model.update_step(1)
        yield from failover.checkpoint(1)
        assert injector.corrupt_pool("stale-active")
        assert injector.corrupt_pool("leak")
        assert not fsck(cluster.portus_pool).clean
        yield env.timeout(msecs(2))

    cluster.run(scenario)
    assert operator.repairs >= 1
    assert operator.last_fsck_clean
    assert fsck(cluster.portus_pool).clean
    assert any("action=fsck-repair" in line for line in operator.decisions)
    entry = cluster.daemon.model_map["model"]
    _version, step = valid_checkpoint(entry.meta)
    assert step == 1  # repair only demoted/reclaimed, never the newest


def test_operator_never_runs_fsck_while_a_pull_is_in_flight():
    cluster, session, failover, operator = make_rig()

    def scenario(env):
        session.model.update_step(1)
        ckpt = env.process(session.checkpoint(1), name="ckpt")
        # Several operator ticks land while the pull's ACTIVE slot is
        # legitimately mid-flight; none may demote it.
        yield ckpt

    cluster.run(scenario)
    assert not any("stale-active" in line for line in operator.decisions)
    entry = cluster.daemon.model_map["model"]
    _version, step = valid_checkpoint(entry.meta)
    assert step == 1


# -- wedged daemon → restart ------------------------------------------------------


def test_operator_restarts_wedged_daemon():
    # No request timeout: a hung WR wedges the daemon forever — exactly
    # the failure class only the operator's restart can clear.
    cluster, session, failover, operator = make_rig()
    injector = FaultInjector(cluster.env, cluster)

    def scenario(env):
        session.model.update_step(1)
        yield from failover.checkpoint(1)
        injector.set_wr_fault_rate("server", rate=0.0, hang_rate=1.0)
        session.model.update_step(2)

        def doomed():
            try:
                yield from session.checkpoint(2)
            except ReproError:
                pass

        env.process(doomed(), name="wedged-ckpt")
        yield env.timeout(msecs(6))
        injector.set_wr_fault_rate("server", rate=0.0, hang_rate=0.0)
        yield env.timeout(msecs(2))

    cluster.run(scenario)
    assert operator.restarts >= 1
    assert any("state=wedged" in line for line in operator.decisions)
    assert operator.last_state == H_HEALTHY


# -- guard rails: cooldown, breaker, escalation -----------------------------------


def fresh_operator():
    cluster = PaperCluster(ampere_nodes=0)
    return RemediationOperator(cluster.env, cluster,
                               interval_ns=usecs(200),
                               cooldown_ns=usecs(600),
                               breaker_window_ns=msecs(4),
                               breaker_limit=3,
                               breaker_cooldown_ns=msecs(8))


def test_same_action_is_rate_limited_by_the_cooldown():
    operator = fresh_operator()
    fired = []
    act = lambda: fired.append(1) or True
    assert operator._gated(A_RESTART, 1000, act) == A_RESTART
    assert operator._gated(A_RESTART, 1200, act) == A_COOLDOWN
    assert operator._gated(A_RESTART, 1000 + usecs(600), act) == A_RESTART
    assert len(fired) == 2


def test_circuit_breaker_opens_on_remediation_flapping():
    operator = fresh_operator()
    act = lambda: True
    now = usecs(1)
    opened = None
    for _ in range(10):
        result = operator._gated(A_RESTART, now, act)
        if result == A_BREAKER:
            opened = now
            break
        now += operator.cooldown_ns
    assert opened is not None, "breaker never opened under flapping"
    assert operator.breaker_trips == 1
    assert operator._breaker_open_until == opened + operator.breaker_cooldown_ns


def test_failed_verification_escalates_after_repeated_attempts():
    operator = fresh_operator()
    operator.escalate_after = 2
    act = lambda: False  # remediation that never verifies
    now = usecs(1)
    for _ in range(4):
        operator._gated(A_RESTART, now, act)
        now += operator.breaker_window_ns + operator.cooldown_ns
    assert operator.escalations == 2


# -- determinism ------------------------------------------------------------------


def test_operator_decisions_are_bit_identical_across_runs():
    def drive():
        cluster, session, failover, operator = make_rig(seed=11)
        injector = FaultInjector(cluster.env, cluster)

        def scenario(env):
            session.model.update_step(1)
            yield from failover.checkpoint(1)
            cluster.kill_daemon()
            yield env.timeout(msecs(1))
            injector.corrupt_pool("leak")
            yield env.timeout(msecs(3))

        cluster.run(scenario)
        return tuple(operator.decisions)

    assert drive() == drive()

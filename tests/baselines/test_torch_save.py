"""Tests for the torch.save baseline against the three storage targets."""

import pytest

from repro.baselines import TorchSaveCheckpointer
from repro.dnn.models import build_model
from repro.dnn.tensor import ModelInstance, TensorSpec
from repro.fs import DaxFilesystem, LocalExtFilesystem
from repro.fs.beegfs import BeegfsClient, BeegfsServer
from repro.hw import ComputeNode, StorageNode
from repro.net import Fabric
from repro.rdma import Rnic
from repro.sim import Environment
from repro.units import MIB, gbytes, gib, mib


def make_local_setup():
    env = Environment()
    node = ComputeNode(env, "client", gpu_count=1)
    fs = LocalExtFilesystem(env, node.nvme)
    return env, node, fs


def make_beegfs_setup():
    env = Environment()
    fabric = Fabric(env)
    server_node = StorageNode(env, "server")
    Rnic(env, server_node, fabric)
    backing = DaxFilesystem(env, server_node.pmem_fsdax)
    server = BeegfsServer(env, server_node, backing)
    node = ComputeNode(env, "client", gpu_count=1)
    Rnic(env, node, fabric)
    holder = {}

    def setup(env):
        holder["fs"] = yield from BeegfsClient.mount(env, node, server)

    env.run_process(env.process(setup(env)))
    return env, node, holder["fs"]


def materialize(node, name="resnet50", seed=1):
    spec = build_model(name)
    return ModelInstance.materialize(name, spec.tensors, node.gpus[0],
                                     model_seed=seed)


def test_checkpoint_then_restore_roundtrip_local():
    env, node, fs = make_local_setup()
    ckpt = TorchSaveCheckpointer(env, fs, node.cpus)
    model = materialize(node)

    def scenario(env):
        model.update_step(12)
        yield from ckpt.checkpoint(model)
        model.update_step(20)  # training continued; now crash + restore
        restored = yield from ckpt.restore(model)
        return model.verify_against(restored, step=12)

    assert env.run_process(env.process(scenario(env))) == []


def test_checkpoint_roundtrip_over_beegfs():
    env, node, fs = make_beegfs_setup()
    ckpt = TorchSaveCheckpointer(env, fs, node.cpus)
    model = materialize(node)

    def scenario(env):
        model.update_step(3)
        yield from ckpt.checkpoint(model)
        restored = yield from ckpt.restore(model)
        return model.verify_against(restored, step=3)

    assert env.run_process(env.process(scenario(env))) == []


def test_checkpoint_file_uses_tmp_rename():
    env, node, fs = make_local_setup()
    ckpt = TorchSaveCheckpointer(env, fs, node.cpus)
    model = materialize(node)

    def scenario(env):
        yield from ckpt.checkpoint(model)
        return True

    env.run_process(env.process(scenario(env)))
    assert fs.exists("/checkpoints/resnet50.pt")
    assert not fs.exists("/checkpoints/resnet50.pt.tmp")


def test_breakdown_ledger_covers_all_phases():
    env, node, fs = make_beegfs_setup()
    ckpt = TorchSaveCheckpointer(env, fs, node.cpus)
    model = materialize(node, "bert_large")

    def scenario(env):
        yield from ckpt.checkpoint(model)
        return True

    env.run_process(env.process(scenario(env)))
    ledger = ckpt.ledger
    assert ledger.get("gpu_to_dram") > 0
    assert ledger.get("serialization") > 0
    assert ledger.get("fs_write") > 0
    # Serialization dominates the baseline path (Table I: 41.7%).
    assert ledger.fraction("serialization") > ledger.fraction("gpu_to_dram")


def test_bert_checkpoint_rate_matches_calibration():
    """Whole-path effective rate ~0.72 GB/s (1.386 ns per byte)."""
    env, node, fs = make_beegfs_setup()
    ckpt = TorchSaveCheckpointer(env, fs, node.cpus)
    model = materialize(node, "bert_large")

    def scenario(env):
        start = env.now
        yield from ckpt.checkpoint(model)
        return env.now - start

    elapsed = env.run_process(env.process(scenario(env)))
    rate = model.total_bytes / (elapsed / 1e9)
    assert rate == pytest.approx(gbytes(1 / 1.386), rel=0.06)


def test_restore_faster_on_local_nvme_than_beegfs():
    """Fig 12 shape: with GDS, local ext4 restores beat remote BeeGFS."""
    env_l, node_l, fs_l = make_local_setup()
    ckpt_l = TorchSaveCheckpointer(env_l, fs_l, node_l.cpus)
    model_l = materialize(node_l, "vit_l_32")

    def timed(env, ckpt, model):
        yield from ckpt.checkpoint(model)
        start = env.now
        yield from ckpt.restore(model)
        return env.now - start

    local_ns = env_l.run_process(
        env_l.process(timed(env_l, ckpt_l, model_l)))

    env_b, node_b, fs_b = make_beegfs_setup()
    ckpt_b = TorchSaveCheckpointer(env_b, fs_b, node_b.cpus)
    model_b = materialize(node_b, "vit_l_32")
    beegfs_ns = env_b.run_process(
        env_b.process(timed(env_b, ckpt_b, model_b)))
    assert local_ns < beegfs_ns


def test_many_small_tensors_pay_more_overhead():
    """Per-record costs: same bytes, more tensors -> slower checkpoint."""
    env, node, fs = make_beegfs_setup()
    ckpt = TorchSaveCheckpointer(env, fs, node.cpus)
    few = ModelInstance.materialize(
        "few", [TensorSpec("w", (4096, 1024))], node.gpus[0])
    many_specs = [TensorSpec(f"w{i}", (64, 1024)) for i in range(64)]
    many = ModelInstance.materialize("many", many_specs, node.gpus[0])
    assert few.total_bytes == many.total_bytes

    def timed(env, model):
        start = env.now
        yield from ckpt.checkpoint(model)
        return env.now - start

    few_ns = env.run_process(env.process(timed(env, few)))
    many_ns = env.run_process(env.process(timed(env, many)))
    assert many_ns > few_ns

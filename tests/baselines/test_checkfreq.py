"""Tests for the CheckFreq two-phase pipeline and its frequency tuner."""

import pytest

from repro.baselines import (CheckFreqPolicy, SyncCheckpointPolicy,
                             TorchSaveCheckpointer, recommend_frequency)
from repro.dnn.tensor import ModelInstance, TensorSpec
from repro.dnn.training import TrainingJob
from repro.fs import LocalExtFilesystem
from repro.hw import ComputeNode
from repro.sim import Environment
from repro.units import SECOND, msecs, secs, usecs


def make_setup(tensor_mib=64):
    env = Environment()
    node = ComputeNode(env, "client", gpu_count=1)
    fs = LocalExtFilesystem(env, node.nvme)
    ckpt = TorchSaveCheckpointer(env, fs, node.cpus)
    specs = [TensorSpec("w", (tensor_mib * 1024 * 256,))]  # MiB of fp32
    model = ModelInstance.materialize("m", specs, node.gpus[0])
    return env, node, fs, ckpt, model


def test_checkfreq_persists_in_background():
    env, _node, fs, ckpt, model = make_setup()
    policy = CheckFreqPolicy(env, ckpt, frequency=5)
    job = TrainingJob(env, [model], iteration_ns=msecs(100), hook=policy)
    env.run_process(env.process(job.run(10)))
    assert policy.snapshots_taken == 2
    assert policy.persists_completed == 2
    assert policy.last_persisted_step == 10
    assert fs.exists("/checkpoints/m.pt")


def test_checkfreq_cheaper_than_sync():
    """Persist overlaps compute, so CheckFreq beats blocking torch.save."""
    env1, _n1, _fs1, ckpt1, model1 = make_setup()
    sync = SyncCheckpointPolicy(env1, ckpt1, frequency=5)
    job1 = TrainingJob(env1, [model1], iteration_ns=msecs(100), hook=sync)
    env1.run_process(env1.process(job1.run(20)))

    env2, _n2, _fs2, ckpt2, model2 = make_setup()
    cf = CheckFreqPolicy(env2, ckpt2, frequency=5)
    job2 = TrainingJob(env2, [model2], iteration_ns=msecs(100), hook=cf)
    env2.run_process(env2.process(job2.run(20)))

    assert job2.elapsed_ns < job1.elapsed_ns


def test_backlog_stalls_when_persist_exceeds_interval():
    """Checkpoint every iteration with a slow persist: the pipeline rule
    (one in-flight persist) must throttle training to persist speed."""
    env, _node, _fs, ckpt, model = make_setup(tensor_mib=256)
    policy = CheckFreqPolicy(env, ckpt, frequency=1)
    job = TrainingJob(env, [model], iteration_ns=msecs(10), hook=policy)
    env.run_process(env.process(job.run(8)))
    assert policy.stall_ns > 0
    util = job.recorders[0].utilization(job.started_at, job.finished_at)
    assert util < 0.5


def test_no_stall_when_interval_is_generous():
    env, _node, _fs, ckpt, model = make_setup(tensor_mib=16)
    policy = CheckFreqPolicy(env, ckpt, frequency=50)
    job = TrainingJob(env, [model], iteration_ns=msecs(50), hook=policy)
    env.run_process(env.process(job.run(100)))
    assert policy.persists_completed == 2
    assert policy.stall_ns == 0


def test_job_end_drains_pipeline():
    env, _node, fs, ckpt, model = make_setup()
    policy = CheckFreqPolicy(env, ckpt, frequency=10)
    job = TrainingJob(env, [model], iteration_ns=msecs(10), hook=policy)
    env.run_process(env.process(job.run(10)))
    # The run must not finish before the persist completed.
    assert policy.persists_completed == 1
    assert fs.exists("/checkpoints/m.pt")


# --- frequency tuner -----------------------------------------------------------


def test_recommend_frequency_meets_budget():
    iter_ns = msecs(100)
    snapshot_ns = msecs(20)
    persist_ns = secs(2)
    k = recommend_frequency(iter_ns, snapshot_ns, persist_ns,
                            overhead_budget=0.035)
    window = k * iter_ns
    stall = snapshot_ns + max(0, persist_ns - (window - snapshot_ns))
    assert stall / (window + stall) <= 0.035


def test_recommend_frequency_small_checkpoint_allows_every_iteration():
    k = recommend_frequency(msecs(100), usecs(100), msecs(50),
                            overhead_budget=0.035)
    assert k == 1


def test_recommend_frequency_rejects_bad_budget():
    with pytest.raises(ValueError):
        recommend_frequency(msecs(100), msecs(1), msecs(1),
                            overhead_budget=0)


def test_sync_policy_counts_and_stalls():
    env, _node, _fs, ckpt, model = make_setup()
    policy = SyncCheckpointPolicy(env, ckpt, frequency=2)
    job = TrainingJob(env, [model], iteration_ns=msecs(10), hook=policy)
    env.run_process(env.process(job.run(6)))
    assert policy.checkpoints_taken == 3
    assert policy.stall_ns > 0
    assert job.elapsed_ns > 6 * msecs(10)

"""Exception hierarchy shared across the library.

Every subsystem raises exceptions rooted at :class:`ReproError` so callers
can distinguish library failures from programming errors.  The tree mirrors
the subsystem layout: simulation, hardware, RDMA, PMem, filesystem, and the
Portus protocol each get their own branch.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


# --- simulation engine -------------------------------------------------------


class SimulationError(ReproError):
    """Base class for discrete-event engine failures."""


class SimulationDeadlock(SimulationError):
    """The event queue drained while processes were still waiting."""


class ProcessInterrupted(SimulationError):
    """Raised inside a process that another process interrupted.

    The ``cause`` attribute carries the value passed to ``interrupt()``.
    """

    def __init__(self, cause: object = None) -> None:
        super().__init__(f"process interrupted: {cause!r}")
        self.cause = cause


# --- hardware / devices ------------------------------------------------------


class HardwareError(ReproError):
    """Base class for device-level failures."""


class OutOfMemoryError(HardwareError):
    """A device allocation did not fit."""


class InvalidAddressError(HardwareError):
    """An access touched bytes outside any live allocation."""


# --- RDMA ---------------------------------------------------------------------


class RdmaError(ReproError):
    """Base class for RDMA verb failures."""


class MemoryRegionError(RdmaError):
    """Registration failure or access outside a registered region."""


class RkeyViolation(RdmaError):
    """A one-sided operation presented a stale or wrong rkey."""


class QpStateError(RdmaError):
    """Operation posted to a queue pair in the wrong state."""


class WorkRequestError(RdmaError):
    """A posted work request completed with an error status (the CQE
    carried IBV_WC_RETRY_EXC_ERR / IBV_WC_WR_FLUSH_ERR and friends)."""


# --- persistent memory ---------------------------------------------------------


class PmemError(ReproError):
    """Base class for persistent-memory pool failures."""


class PoolCorruption(PmemError):
    """Superblock/checksum validation failed when opening a pool."""


class PoolExhausted(PmemError):
    """The allocator could not satisfy a request."""


class PowerFailure(PmemError):
    """An injected power fault cut a persistence operation short.

    Raised by the crash-point harness from inside a metadata write
    boundary after the device has been power-failed; the in-progress
    operation must not complete.
    """


# --- filesystems ----------------------------------------------------------------


class FsError(ReproError):
    """Base class for simulated filesystem failures."""


class FileNotFound(FsError):
    """Path lookup failed."""


class FileExists(FsError):
    """Exclusive create hit an existing path."""


class NoSpace(FsError):
    """The backing device ran out of blocks."""


class IsADirectory(FsError):
    """A file operation was applied to a directory path."""


class NotADirectory(FsError):
    """A path component was not a directory."""


# --- network --------------------------------------------------------------------


class NetworkError(ReproError):
    """Base class for fabric / control-plane failures."""


class ConnectionClosed(NetworkError):
    """The peer closed the control-plane connection."""


class LinkDown(NetworkError):
    """A fabric path was requested while one of its links is down."""


# --- Portus protocol --------------------------------------------------------------


class PortusError(ReproError):
    """Base class for Portus client/daemon failures."""


class ModelNotFound(PortusError):
    """Lookup of a model name in the index found nothing."""


class ModelAlreadyRegistered(PortusError):
    """A registration collided with a live model of the same name."""


class NoValidCheckpoint(PortusError):
    """Restore found no completed (flag == DONE) checkpoint version."""


class CheckpointInProgress(PortusError):
    """A conflicting operation raced with an active checkpoint."""


class ProtocolError(PortusError):
    """Malformed or out-of-order control-plane message."""


class DaemonUnavailable(PortusError):
    """The daemon is (re)starting, crashed, or lost its pool mid-request.

    Transient by design: a client retry after re-attach is expected to
    succeed once the daemon is back."""


class NotAttached(PortusError):
    """The model exists in the index but no live client is attached
    (e.g. right after a daemon restart, before the client re-registers,
    or after its lease was reaped)."""


class RequestTimeout(PortusError):
    """A control-plane request exceeded its deadline (client gave up
    waiting for the reply, or the daemon aborted a wedged handler)."""


class AdmissionReject(PortusError):
    """The daemon (or its tenant's bandwidth budget) refused new work.

    Transient backpressure, not a failure: the session transport stays
    up and the client retries after ``retry_after_ns`` (the daemon's
    deterministic hint) instead of its own jittered backoff.
    """

    def __init__(self, message: str, retry_after_ns: int = 0) -> None:
        super().__init__(message)
        self.retry_after_ns = int(retry_after_ns)


class TenantQuotaExceeded(PortusError):
    """A registration would push the tenant past its byte quota.

    Permanent for the offending request: retrying without freeing
    capacity (or raising the quota) cannot succeed."""


class GroupError(PortusError):
    """Base class for parallel-group checkpoint failures (DESIGN.md §14)."""


class GroupNotFound(GroupError):
    """Lookup of a group name in the group table found nothing."""


class GroupCommitRefused(GroupError):
    """A group commit named a step some member has no DONE slot for.

    The commit record was *not* written: the group stays at its previous
    committed step, which every member still retains (the double-slot
    target rule never overwrites the newest DONE version)."""


class NoValidGroupCheckpoint(GroupError):
    """The group has no fully committed step to restore (committed step
    0, or a member cannot serve the committed step — a torn group fsck
    has not yet repaired)."""


class DedupMigrationUnsupported(PortusError):
    """Migration was asked to move a deduplicated model (or a group with
    any dedup member) across pools.

    Permanent by design, not a transient failure: a dedup model's bytes
    live in the source pool's shared refcounted chunk store, and moving
    them would either strand cross-tenant sharing or require a
    chunk-store merge protocol that does not exist.  Callers must either
    re-register the model on the destination or keep it where it is."""


class MigrationIncomplete(PortusError):
    """A migration failed *after* its commit point (the ring flip).

    The destination copy is committed and the ring routes to it — the
    move itself succeeded and must not be unwound.  What remains is
    leaked, not lost: possibly an un-evicted source copy and a session
    still rebinding.  ``leaked`` names what cleanup (re-running the
    eviction, re-attaching the session) still owes."""

    def __init__(self, message: str, leaked: tuple = ()) -> None:
        super().__init__(message)
        self.leaked = tuple(leaked)

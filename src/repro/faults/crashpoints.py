"""Crash-point injection: power loss at exact metadata write boundaries.

Random power-loss chaos (``FaultPlan.random``) cuts the simulation at
*times*; this module cuts it at *places*.  The PMem metadata layer calls
``device.crash_hook(point, tag)`` at every persistence boundary:

* ``record.write``   — a :class:`~repro.pmem.layout.CommittedRecord`
  update is about to begin (nothing written yet);
* ``record.persist`` — the new frame sits in the store buffer, unflushed
  (power loss here loses or tears exactly that slot);
* ``alloc.commit``   — device space reserved, AllocTable not yet
  committed (power loss leaks the extent);
* ``free.release``   — removal committed, device space not yet released
  (power loss also leaks).

A :class:`CrashPointRecorder` installed as that hook numbers the
boundaries in execution order, and — when armed with ``crash_at=i`` —
power-fails the machine at exactly boundary *i* and raises
:class:`~repro.errors.PowerFailure` so the in-progress operation can
never complete.  A counting pass (``crash_at=None``) over a workload
enumerates its boundary schedule; a sweep then replays the workload once
per boundary.  Both passes are ordinary seeded simulations, so the
schedule is bit-identical across runs.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.errors import PowerFailure
from repro.hw.device import MemoryDevice


class CrashPointRecorder:
    """Numbers metadata write boundaries; optionally dies at one of them.

    Installing the recorder sets ``device.crash_hook``; it stays armed
    until it fires (it disarms itself first, so the power-fail path can
    touch the device without re-entering) or :meth:`disarm` is called.

    *power_fail* is what "the machine loses power" means for the caller:
    a cluster test passes the injector's POWER_LOSS primitive (daemon
    dies with the machine), a pool-level test passes
    ``lambda: device.crash(rng)``.
    """

    def __init__(self, device: MemoryDevice,
                 crash_at: Optional[int] = None,
                 power_fail: Optional[Callable[[], None]] = None) -> None:
        self.device = device
        self.crash_at = crash_at
        self.power_fail = power_fail
        #: Every boundary seen, as ``"index:point:tag"`` lines — the
        #: deterministic schedule two runs of the same seed can diff.
        self.boundaries: List[str] = []
        #: The boundary this recorder fired at, or None.
        self.fired: Optional[str] = None
        device.crash_hook = self

    def __call__(self, point: str, tag: str) -> None:
        index = len(self.boundaries)
        label = f"{index}:{point}:{tag}"
        self.boundaries.append(label)
        if self.crash_at is None or index != self.crash_at:
            return
        self.fired = label
        self.disarm()
        if self.power_fail is not None:
            self.power_fail()
        raise PowerFailure(f"injected power fault at boundary {label}")

    def disarm(self) -> None:
        """Stop observing (and never fire); idempotent."""
        if self.device.crash_hook is self:
            self.device.crash_hook = None

    @property
    def count(self) -> int:
        return len(self.boundaries)

"""Declarative fault plans: what breaks, where, and when.

A :class:`FaultPlan` is an ordered schedule of :class:`FaultEvent`\\ s.
Plans are plain data — they can be built by hand for a targeted test,
generated from a seeded RNG for chaos sweeps (:meth:`FaultPlan.random`),
logged as one line per event, and replayed bit-identically from the same
seed.  Nothing in this module touches a live simulation; that is the
:class:`~repro.faults.injector.FaultInjector`'s job.
"""

from __future__ import annotations

import random
from typing import Any, Dict, Iterator, List, Optional, Sequence

from repro.units import msecs, usecs


class FaultKind:
    """The fault vocabulary (string constants, not an enum, so plans
    serialize trivially)."""

    #: Take a fabric endpoint's link down / bring it back.
    LINK_DOWN = "link_down"
    LINK_UP = "link_up"
    #: Install (or clear, with rate 0) a WR completion-fault rate on a
    #: NIC: each posted one-sided WR independently fails or hangs.
    WR_FAULT_RATE = "wr_fault_rate"
    #: Transition every QP on a NIC to the error state (port flap /
    #: firmware reset: outstanding WRs flush).
    QP_ERROR = "qp_error"
    #: Sever established TCP connections of one host (RST storm).
    TCP_DROP = "tcp_drop"
    #: A client process dies: its connections drop, QPs error out, MRs
    #: deregister, sessions vanish without UNREGISTER.
    CLIENT_KILL = "client_kill"
    #: The daemon process dies (no power loss: PMem bytes survive).
    DAEMON_CRASH = "daemon_crash"
    #: A fresh daemon starts on the same port, re-opening the pool and
    #: re-running index recovery.
    DAEMON_RESTART = "daemon_restart"
    #: Power loss on the storage server: unflushed PMem is lost or torn
    #: and the daemon dies with the machine.
    POWER_LOSS = "power_loss"
    #: Structural damage to the PMem index (bit rot, a buggy firmware
    #: write, an operator fat-finger): a stale slot, torn flags, or a
    #: leaked extent appears in the pool.  Only ``pmem.fsck`` notices.
    POOL_CORRUPT = "pool_corrupt"

    ALL = (LINK_DOWN, LINK_UP, WR_FAULT_RATE, QP_ERROR, TCP_DROP,
           CLIENT_KILL, DAEMON_CRASH, DAEMON_RESTART, POWER_LOSS,
           POOL_CORRUPT)


class FaultEvent:
    """One scheduled fault: *kind* hits *target* at *at_ns*."""

    def __init__(self, at_ns: int, kind: str, target: Optional[str] = None,
                 params: Optional[Dict[str, Any]] = None) -> None:
        if at_ns < 0:
            raise ValueError(f"fault scheduled in the past: {at_ns}")
        if kind not in FaultKind.ALL:
            raise ValueError(f"unknown fault kind {kind!r}")
        self.at_ns = int(at_ns)
        self.kind = kind
        self.target = target
        self.params = dict(params or {})

    def describe(self, with_time: bool = True) -> str:
        """One deterministic log line (used by the determinism check)."""
        extra = ""
        if self.params:
            inner = ",".join(f"{k}={self.params[k]!r}"
                             for k in sorted(self.params))
            extra = f" [{inner}]"
        where = f" @{self.target}" if self.target else ""
        prefix = f"{self.at_ns}ns " if with_time else ""
        return f"{prefix}{self.kind}{where}{extra}"

    def to_dict(self) -> Dict[str, Any]:
        return {"at_ns": self.at_ns, "kind": self.kind,
                "target": self.target, "params": dict(self.params)}

    def __repr__(self) -> str:
        return f"<FaultEvent {self.describe()}>"


class FaultPlan:
    """An ordered fault schedule."""

    def __init__(self, events: Optional[Sequence[FaultEvent]] = None) -> None:
        self.events: List[FaultEvent] = sorted(events or [],
                                               key=lambda e: e.at_ns)

    def add(self, event: FaultEvent) -> "FaultPlan":
        self.events.append(event)
        self.events.sort(key=lambda e: e.at_ns)
        return self

    def at(self, at_ns: int, kind: str, target: Optional[str] = None,
           **params: Any) -> "FaultPlan":
        """Fluent shorthand: ``plan.at(t, FaultKind.LINK_DOWN, "volta")``."""
        return self.add(FaultEvent(at_ns, kind, target, params))

    def describe(self) -> str:
        return "\n".join(event.describe() for event in self.events)

    def shifted(self, delta_ns: int) -> "FaultPlan":
        """A copy with every event moved *delta_ns* later.

        Plans are usually authored with times relative to "the workload
        starts now"; injection works in absolute simulation time, so the
        caller anchors the plan with ``plan.shifted(env.now)``.
        """
        return FaultPlan([FaultEvent(e.at_ns + delta_ns, e.kind, e.target,
                                     e.params) for e in self.events])

    def horizon_ns(self) -> int:
        """Time of the last scheduled event (0 for an empty plan)."""
        return self.events[-1].at_ns if self.events else 0

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:
        return f"<FaultPlan {len(self.events)} events>"

    # -- generators ---------------------------------------------------------------

    @classmethod
    def random(cls, rng: random.Random, horizon_ns: int,
               events: int = 4,
               endpoints: Sequence[str] = ("volta",),
               nics: Sequence[str] = ("server", "volta"),
               clients: Sequence[str] = ("volta",),
               allow_power_loss: bool = True,
               allow_daemon_faults: bool = True,
               max_wr_rate: float = 0.3,
               auto_recover_daemon: bool = True,
               allow_pool_corrupt: bool = False,
               storage_shards: Sequence[str] = ("server",)) -> "FaultPlan":
        """A randomized but *well-formed* schedule.

        Well-formed means faults that need an undo get one: a link that
        goes down comes back up, a WR fault rate set non-zero is cleared,
        a crashed/power-lost daemon is restarted — all inside the
        horizon, so a retrying client can always eventually make
        progress.  Every draw comes from *rng*, so the same seed yields
        the same plan, byte for byte.

        With ``auto_recover_daemon=False`` crashed/power-lost daemons
        get **no** paired restart — the schedule leaves the deployment
        broken on purpose, and recovering it is somebody else's job (the
        remediation operator's, in the self-healing chaos sweeps).
        ``allow_pool_corrupt`` adds :data:`FaultKind.POOL_CORRUPT`
        events (stale-active / torn-flags / leaked-extent damage) to the
        draw, which likewise only fsck — and hence the operator — can
        undo.

        ``storage_shards`` lists the storage-node names of a sharded
        fleet; every daemon-side fault (TCP_DROP, DAEMON_CRASH and its
        paired restart, POWER_LOSS, POOL_CORRUPT) then targets one
        shard drawn from *rng*.  The default single-shard tuple draws
        **nothing** extra from the RNG, so every legacy seed still
        yields its historical plan byte for byte.
        """
        kinds = [FaultKind.LINK_DOWN, FaultKind.WR_FAULT_RATE,
                 FaultKind.QP_ERROR, FaultKind.TCP_DROP]
        if allow_daemon_faults:
            kinds.append(FaultKind.DAEMON_CRASH)
        if allow_power_loss:
            kinds.append(FaultKind.POWER_LOSS)
        if allow_pool_corrupt:
            kinds.append(FaultKind.POOL_CORRUPT)
        shards = list(storage_shards)
        # Single-shard plans keep the legacy no-target events (and,
        # critically, the legacy RNG draw sequence).
        multi = len(shards) > 1

        def draw_shard() -> Optional[str]:
            return rng.choice(shards) if multi else None

        plan = cls()
        for _ in range(events):
            at_ns = rng.randrange(1, max(2, horizon_ns))
            kind = rng.choice(kinds)
            if kind == FaultKind.LINK_DOWN:
                target = rng.choice(list(endpoints))
                outage = rng.randrange(usecs(50), msecs(2))
                plan.at(at_ns, FaultKind.LINK_DOWN, target)
                plan.at(at_ns + outage, FaultKind.LINK_UP, target)
            elif kind == FaultKind.WR_FAULT_RATE:
                target = rng.choice(list(nics))
                rate = rng.uniform(0.02, max_wr_rate)
                hang = rng.uniform(0.0, 0.1)
                burst = rng.randrange(usecs(100), msecs(5))
                plan.at(at_ns, FaultKind.WR_FAULT_RATE, target,
                        rate=round(rate, 4), hang_rate=round(hang, 4))
                plan.at(at_ns + burst, FaultKind.WR_FAULT_RATE, target,
                        rate=0.0, hang_rate=0.0)
            elif kind == FaultKind.QP_ERROR:
                plan.at(at_ns, FaultKind.QP_ERROR, rng.choice(list(nics)))
            elif kind == FaultKind.TCP_DROP:
                target = draw_shard() if multi else "server"
                plan.at(at_ns, FaultKind.TCP_DROP, target)
            elif kind == FaultKind.DAEMON_CRASH:
                target = draw_shard()
                plan.at(at_ns, FaultKind.DAEMON_CRASH, target)
                if auto_recover_daemon:
                    downtime = rng.randrange(usecs(100), msecs(3))
                    plan.at(at_ns + downtime, FaultKind.DAEMON_RESTART,
                            target)
            elif kind == FaultKind.POWER_LOSS:
                target = draw_shard()
                plan.at(at_ns, FaultKind.POWER_LOSS, target)
                if auto_recover_daemon:
                    downtime = rng.randrange(usecs(200), msecs(3))
                    plan.at(at_ns + downtime, FaultKind.DAEMON_RESTART,
                            target)
            elif kind == FaultKind.POOL_CORRUPT:
                target = draw_shard()
                mode = rng.choice(("stale-active", "torn-flags", "leak"))
                plan.at(at_ns, FaultKind.POOL_CORRUPT, target, mode=mode)
        return plan

"""The fault injector: applies a :class:`FaultPlan` to a live cluster.

The injector is the only component that reaches into simulation objects
to break them.  Each primitive is also callable directly (targeted
tests); :meth:`FaultInjector.install` runs a whole plan on its own
process, logging every applied event with its simulation timestamp so
two runs of the same seed can be diffed line by line.

Injection primitives and what they model:

* ``set_link`` — a fabric link going down/up (cable pull, port flap);
  new paths through the endpoint raise ``LinkDown``.
* ``set_wr_fault_rate`` — a flaky HCA: every posted one-sided WR
  independently completes in error or never completes ("hang", a lost
  completion that only a QP flush retires).  Draws come from a named
  seeded stream, so the fault pattern is replayable.
* ``qp_error`` — firmware reset: every QP on a NIC transitions to the
  error state and flushes its outstanding WRs.
* ``tcp_drop`` — RST storm: established control-plane connections of a
  host are severed.
* ``kill_client`` — a training process dies mid-whatever: connections
  drop, its QPs error out, its MRs deregister, its sessions vanish
  without UNREGISTER (the daemon-side lease reaper is what notices).
* ``crash_daemon`` / ``restart_daemon`` — the storage daemon dying
  (PMem intact) and its successor recovering the index on the same port.
* ``power_loss`` — the storage server loses power: unflushed PMem is
  lost or torn, the daemon dies with the machine.
* ``corrupt_pool`` — structural index damage (bit rot, buggy firmware,
  fat-fingered tooling): a stale ACTIVE slot, torn version flags, or a
  leaked extent appears.  Damage only ever lands on *non-newest* state,
  matching what fsck can safely repair — the newest DONE checkpoint is
  never touched, so the chaos contract (newest acked restorable) holds.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Generator, List, Optional, Union

from repro.errors import ReproError, WorkRequestError
from repro.faults.plan import FaultEvent, FaultKind, FaultPlan
from repro.obs import Observability
from repro.rdma.nic import Rnic
from repro.sim import Environment


class FaultInjector:
    """Applies fault events to a :class:`~repro.harness.cluster.PaperCluster`."""

    def __init__(self, env: Environment, cluster=None, rand=None,
                 obs: Optional[Observability] = None) -> None:
        self.env = env
        self.cluster = cluster
        self.rand = rand if rand is not None else getattr(cluster, "rand",
                                                          None)
        if obs is None:
            cluster_obs = getattr(cluster, "obs", None)
            obs = cluster_obs if cluster_obs is not None else Observability()
        self.obs = obs
        #: Applied-event log: ``(sim_time_ns, description)`` tuples.
        self.log: List = []
        self._handlers: Dict[str, Callable[[FaultEvent], None]] = {
            FaultKind.LINK_DOWN: self._apply_link_down,
            FaultKind.LINK_UP: self._apply_link_up,
            FaultKind.WR_FAULT_RATE: self._apply_wr_fault_rate,
            FaultKind.QP_ERROR: self._apply_qp_error,
            FaultKind.TCP_DROP: self._apply_tcp_drop,
            FaultKind.CLIENT_KILL: self._apply_client_kill,
            FaultKind.DAEMON_CRASH: self._apply_daemon_crash,
            FaultKind.DAEMON_RESTART: self._apply_daemon_restart,
            FaultKind.POWER_LOSS: self._apply_power_loss,
            FaultKind.POOL_CORRUPT: self._apply_pool_corrupt,
        }
        self._leaks_injected = 0

    # -- plan execution ----------------------------------------------------------

    def install(self, plan: FaultPlan):
        """Start a process that applies *plan* on schedule; returns it."""
        return self.env.process(self._run_plan(plan), name="fault-injector")

    def _run_plan(self, plan: FaultPlan) -> Generator:
        for event in plan:
            delay = event.at_ns - self.env.now
            if delay > 0:
                yield self.env.timeout(delay)
            self.apply(event)

    def apply(self, event: FaultEvent) -> None:
        """Apply one event now and log it."""
        self._handlers[event.kind](event)
        self.log.append((self.env.now, event.describe(with_time=False)))
        self.obs.metrics.counter("faults.injected").inc()
        self.obs.metrics.counter(f"faults.injected.{event.kind}").inc()

    def log_lines(self) -> List[str]:
        return [f"{now}ns {what}" for now, what in self.log]

    # -- primitives --------------------------------------------------------------

    def set_link(self, endpoint: str, up: bool) -> None:
        self.cluster.fabric.set_link(endpoint, up)

    def set_wr_fault_rate(self, nic: Union[str, Rnic], rate: float,
                          hang_rate: float = 0.0,
                          rng: Optional[random.Random] = None) -> None:
        """Make every WR posted on *nic* fail with probability *rate* or
        hang with probability *hang_rate* (clear with both at 0)."""
        nic = self._nic(nic)
        if rate <= 0 and hang_rate <= 0:
            nic.fault_hook = None
            return
        if rng is None:
            if self.rand is None:
                raise ValueError("set_wr_fault_rate needs an rng or a "
                                 "cluster with RandomStreams")
            rng = self.rand.stream(f"faults.wr.{nic.name}")

        def hook(kind: str, label: str, _length: int):
            draw = rng.random()
            if draw < hang_rate:
                return "hang"
            if draw < hang_rate + rate:
                return WorkRequestError(
                    f"{label}: injected {kind} completion error")
            return None

        nic.fault_hook = hook

    def qp_error(self, nic: Union[str, Rnic],
                 reason: str = "injected QP error") -> int:
        """Error out every live QP on *nic*; returns how many."""
        nic = self._nic(nic)
        hit = 0
        for qp in nic.qps:
            if qp.error is None:
                qp.transition_to_error(reason)
                hit += 1
        return hit

    def drop_tcp(self, hostname: str) -> int:
        """Sever established control-plane connections of *hostname*."""
        dropped = 0
        for shard in self.cluster.shards:
            if hostname == shard.daemon.tcp.hostname:
                for conn in list(shard.daemon._conns):
                    conn.drop()
                    dropped += 1
                return dropped
        for (node_name, _shard), client in \
                list(self.cluster._portus_clients.items()):
            if node_name != hostname:
                continue
            for session in client.sessions:
                if session.conn is not None and not session.conn.closed:
                    session.conn.drop()
                    dropped += 1
        return dropped

    def kill_client(self, node_name: str) -> int:
        """The client process on *node_name* dies; returns sessions lost.

        Everything client-side evaporates: connections drop, QPs go to
        error (flushing any WR the daemon still has in flight toward
        this client), MRs deregister (late one-sided access now raises
        RkeyViolation, like DMA into a freed process).  The daemon is
        *not* told — only its lease reaper can reclaim the entry.
        """
        keys = [key for key in self.cluster._portus_clients
                if key[0] == node_name]
        killed = 0
        for key in keys:
            client = self.cluster._portus_clients.pop(key)
            for session in list(client.sessions):
                if session.conn is not None and not session.conn.closed:
                    session.conn.drop()
                for qp in session.qps:
                    if qp.error is None:
                        qp.transition_to_error("client process died")
                for mr in session.mrs:
                    if mr.valid:
                        client.node.nic.deregister_mr(mr)
                session.mrs = []
                killed += 1
            client.sessions = []
        return killed

    def crash_daemon(self, shard: int = 0) -> None:
        self.cluster.kill_daemon(shard=shard)

    def restart_daemon(self, shard: int = 0) -> None:
        if not self.cluster.shards[shard].daemon.stopped:
            self.cluster.kill_daemon(shard=shard)
        self.cluster.restart_daemon(shard=shard)

    def power_loss(self, shard: int = 0) -> None:
        self.cluster.crash_server(shard=shard)

    def _shard_index(self, target) -> int:
        """Resolve a fault event's storage-shard target (None = shard 0,
        the legacy single-daemon case)."""
        if target is None:
            return 0
        for shard in self.cluster.shards:
            if shard.name == target:
                return shard.index
        raise ReproError(f"no storage shard named {target!r}")

    def corrupt_pool(self, mode: str, shard: int = 0) -> bool:
        """Plant structural damage of *mode* in the live pool; returns
        False (skipped) when the pool is closed or has nothing to hit.

        Modes and the fsck finding each produces:

        * ``"leak"`` — commit a Portus-tagged extent no model reaches
          (``leaked-extent``);
        * ``"torn-flags"`` — scribble garbage over the *stale* slot of a
          model's version-flags record (``flags-torn-slot``; the newest
          generation stays readable, exactly like a torn write);
        * ``"stale-active"`` — flip a model's non-newest version slot to
          ACTIVE (``stale-active``: looks like a pull that died
          mid-flight without cleanup).

        Damage is confined to non-newest state on purpose: these are the
        corruptions fsck repairs by demoting/reclaiming, so an operator
        that runs repair converges without losing the newest committed
        checkpoint.
        """
        from repro.core.index import (DATA_TAG, FLAG_ACTIVE, ModelMeta,
                                      ModelTable)
        from repro.errors import PmemError
        from repro.hw.content import ByteContent

        pool = self.cluster.shards[shard].pool
        if pool.closed:
            return False
        if mode == "leak":
            self._leaks_injected += 1
            pool.alloc(4096,
                       tag=f"{DATA_TAG}/chaos-leak-{self._leaks_injected}")
            return True
        try:
            table = ModelTable.open(pool)
        except PmemError:
            return False
        names = sorted(table.names())
        if not names:
            return False
        rng = self.rand.stream("faults.pool_corrupt")
        name = names[rng.randrange(len(names))]
        meta = ModelMeta.open(pool, table.lookup(name), lenient=True)
        record = meta._flags_record
        committed = record.read()
        if committed is None:
            return False
        if mode == "torn-flags":
            # The slot NOT holding the newest generation takes the hit.
            stale = 0
            for index in (0, 1):
                slot = record._read_slot(index)
                if slot is not None and slot[1] == committed[1]:
                    stale = 1 - index
            record.allocation.write(record._slot_offset(stale),
                                    ByteContent(b"\xde\xad\xbe\xef" * 12))
            return True
        if mode == "stale-active":
            flags = meta.read_flags()
            victim = flags.checkpoint_target()
            if flags.states[victim] == FLAG_ACTIVE:
                return False  # a pull is mid-flight there; leave it
            flags.states[victim] = FLAG_ACTIVE
            meta.write_flags(flags)
            return True
        raise ReproError(f"unknown pool corruption mode {mode!r}")

    def arm_crash_point(self, device, crash_at=None):
        """Install a :class:`~repro.faults.crashpoints.CrashPointRecorder`
        on *device*: every metadata write boundary is numbered, and with
        *crash_at* set the whole storage server power-fails at exactly
        that boundary (the in-progress operation raises
        :class:`~repro.errors.PowerFailure` and never completes).

        With ``crash_at=None`` the recorder only counts — the counting
        pass that enumerates a workload's boundary schedule for a sweep.
        Returns the recorder.
        """
        from repro.faults.crashpoints import CrashPointRecorder
        from repro.faults.plan import FaultEvent, FaultKind

        def power_fail():
            self.apply(FaultEvent(self.env.now, FaultKind.POWER_LOSS))

        return CrashPointRecorder(device, crash_at=crash_at,
                                  power_fail=power_fail)

    # -- handler shims -----------------------------------------------------------

    def _apply_link_down(self, event: FaultEvent) -> None:
        self.set_link(event.target, up=False)

    def _apply_link_up(self, event: FaultEvent) -> None:
        self.set_link(event.target, up=True)

    def _apply_wr_fault_rate(self, event: FaultEvent) -> None:
        self.set_wr_fault_rate(event.target,
                               rate=event.params.get("rate", 0.0),
                               hang_rate=event.params.get("hang_rate", 0.0))

    def _apply_qp_error(self, event: FaultEvent) -> None:
        self.qp_error(event.target)

    def _apply_tcp_drop(self, event: FaultEvent) -> None:
        self.drop_tcp(event.target or self.cluster.daemon.tcp.hostname)

    def _apply_client_kill(self, event: FaultEvent) -> None:
        self.kill_client(event.target)

    def _apply_daemon_crash(self, event: FaultEvent) -> None:
        self.crash_daemon(shard=self._shard_index(event.target))

    def _apply_daemon_restart(self, event: FaultEvent) -> None:
        self.restart_daemon(shard=self._shard_index(event.target))

    def _apply_power_loss(self, event: FaultEvent) -> None:
        self.power_loss(shard=self._shard_index(event.target))

    def _apply_pool_corrupt(self, event: FaultEvent) -> None:
        applied = self.corrupt_pool(event.params.get("mode", "leak"),
                                    shard=self._shard_index(event.target))
        if not applied:
            self.obs.metrics.counter("faults.pool_corrupt_skipped").inc()

    # -- lookup ------------------------------------------------------------------

    def _nic(self, nic: Union[str, Rnic]) -> Rnic:
        if isinstance(nic, Rnic):
            return nic
        cluster = self.cluster
        storage = [shard.node for shard in cluster.shards]
        for node in storage + [cluster.volta] + cluster.amperes:
            if node.nic is not None and node.nic.name == nic:
                return node.nic
        raise ReproError(f"no NIC named {nic!r} in the cluster")

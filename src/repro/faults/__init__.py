"""Fault injection for the Portus datapath.

:mod:`repro.faults.plan` describes *what* goes wrong and *when* — a
declarative, seeded, fully deterministic schedule of fault events.
:mod:`repro.faults.injector` makes it happen inside a running
simulation: link flaps, RDMA completion errors, QP error transitions,
TCP connection drops, client death, daemon crash/restart, PMem power
loss.

The split mirrors real chaos tooling: plans are data (loggable,
diffable, replayable from a seed), the injector is the only component
that touches live simulation objects.
"""

from repro.faults.plan import (FaultEvent, FaultKind, FaultPlan)
from repro.faults.injector import FaultInjector
from repro.faults.crashpoints import CrashPointRecorder

__all__ = ["CrashPointRecorder", "FaultEvent", "FaultKind", "FaultPlan",
           "FaultInjector"]

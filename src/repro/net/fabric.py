"""The InfiniBand fabric: a non-blocking switch with per-port links.

The paper's testbed uses one Mellanox MSB7800 100 Gbps switch; such a
switch is non-blocking, so contention only arises on the endpoint links.
Each attached port therefore gets a directional TX/RX channel pair at the
wire's effective data rate, and a path between two ports is simply
``[src.tx, dst.rx]`` plus a propagation latency.

100 Gbps EDR carries ~12.1 GB/s of payload after 64b/66b encoding and
transport headers; we default to 11.75 GB/s effective.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.errors import LinkDown, NetworkError
from repro.sim import Environment, SharedChannel
from repro.units import gbytes, usecs


class Port:
    """An endpoint attachment: one TX and one RX channel.

    ``up`` is the link state the fault injector toggles: a flapped link
    refuses *new* paths (operations posted while it is down fail with
    :class:`LinkDown`); in-flight transfers are modelled as already
    committed to the wire and complete normally.
    """

    def __init__(self, env: Environment, name: str,
                 link_bw_bps: float) -> None:
        self.name = name
        self.tx = SharedChannel(env, link_bw_bps, f"{name}.tx")
        self.rx = SharedChannel(env, link_bw_bps, f"{name}.rx")
        self.up = True

    def __repr__(self) -> str:
        state = "up" if self.up else "DOWN"
        return f"<Port {self.name} {state}>"


class Fabric:
    """A single switch domain connecting every attached port."""

    def __init__(self, env: Environment, name: str = "ib0",
                 link_bw_bps: float = gbytes(11.75),
                 latency_ns: int = usecs(1.0)) -> None:
        self.env = env
        self.name = name
        self.link_bw_bps = link_bw_bps
        self.latency_ns = latency_ns
        self._ports: Dict[str, Port] = {}

    def attach(self, endpoint_name: str) -> Port:
        """Create a port for *endpoint_name*; names must be unique."""
        if endpoint_name in self._ports:
            raise NetworkError(
                f"port name {endpoint_name!r} already attached to {self.name}")
        port = Port(self.env, f"{self.name}.{endpoint_name}",
                    self.link_bw_bps)
        self._ports[endpoint_name] = port
        return port

    def port(self, endpoint_name: str) -> Port:
        """Look up an attached port by endpoint name."""
        try:
            return self._ports[endpoint_name]
        except KeyError:
            raise NetworkError(
                f"no port named {endpoint_name!r} on fabric {self.name}"
            ) from None

    def path(self, src: Port, dst: Port) -> Tuple[List[SharedChannel], int]:
        """Channels and latency for a transfer from *src* to *dst*.

        Loopback (same port) stays inside the node and skips the wire.
        """
        if src is dst:
            return [], 0
        for port in (src, dst):
            if not port.up:
                raise LinkDown(f"link {port.name} is down")
        return [src.tx, dst.rx], self.latency_ns

    def set_link(self, endpoint_name: str, up: bool) -> None:
        """Administratively (or faultily) bring a port down or back up."""
        self.port(endpoint_name).up = up

    def __repr__(self) -> str:
        return f"<Fabric {self.name} ports={sorted(self._ports)}>"

"""TCP sockets over IPoIB — the Portus control plane.

Portus moves *data* with RDMA verbs, but its control plane (model
registration packets, "DO_CHECKPOINT", completion notifications) is plain
TCP over IPoIB.  IPoIB traverses the kernel network stack on both ends, so
each message pays a fixed per-message cost (~25 µs one way) far above raw
RDMA latency — which is fine, because the control plane sends a handful of
small messages per checkpoint.

Messages are arbitrary Python objects with an explicit ``wire_size``; the
payload is delivered by reference (the control plane never carries tensor
data).
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Optional

from repro.errors import ConnectionClosed, NetworkError
from repro.net.fabric import Fabric, Port
from repro.sim import Environment, Store, Transfer
from repro.units import usecs

# One-way kernel-stack cost per message (send side + receive side).
DEFAULT_MESSAGE_LATENCY_NS = usecs(25)
# IPoIB goodput is far below native RDMA; it only matters for large
# registration packets (one per training job).
DEFAULT_TCP_BW_BPS = 2.5e9


class _Closed:
    """Sentinel queued to wake receivers when the peer closes."""


class TcpConnection:
    """One established, bidirectional, ordered byte-stream connection."""

    def __init__(self, env: Environment, fabric: Fabric,
                 local: Port, remote: Port,
                 message_latency_ns: int = DEFAULT_MESSAGE_LATENCY_NS,
                 bandwidth_bps: float = DEFAULT_TCP_BW_BPS) -> None:
        self.env = env
        self._fabric = fabric
        self._local = local
        self._remote = remote
        self._message_latency_ns = message_latency_ns
        self._bandwidth_bps = bandwidth_bps
        self._inbox: Store = Store(env)
        self._peer: Optional["TcpConnection"] = None
        self.closed = False

    def _bind(self, peer: "TcpConnection") -> None:
        self._peer = peer

    def send(self, message: Any, wire_size: int = 256) -> Generator:
        """Process: deliver *message* to the peer (completes on delivery)."""
        if self.closed:
            raise ConnectionClosed("send() on closed connection")
        if self._peer is None:
            raise NetworkError("connection not bound to a peer")
        channels, wire_latency = self._fabric.path(self._local, self._remote)
        transfer = Transfer(
            self.env, channels, wire_size,
            latency_ns=self._message_latency_ns + wire_latency,
            rate_cap_bps=self._bandwidth_bps,
            label="tcp")
        yield transfer
        if self._peer.closed:
            raise ConnectionClosed("peer closed during send")
        yield self._peer._inbox.put(message)

    def recv(self) -> Generator:
        """Process: wait for the next message from the peer."""
        if self.closed:
            raise ConnectionClosed("recv() on closed connection")
        message = yield self._inbox.get()
        if isinstance(message, _Closed):
            raise ConnectionClosed("peer closed the connection")
        return message

    def close(self) -> None:
        """Close both directions; pending receivers observe the close."""
        if self.closed:
            return
        self.closed = True
        if self._peer is not None and not self._peer.closed:
            self._peer._inbox.put(_Closed())

    def drop(self) -> None:
        """Abruptly sever the connection (fault injection / process death).

        Unlike :meth:`close`, both sides are torn down at once: pending
        receivers on *either* end observe :class:`ConnectionClosed`, as
        after an RST or the peer's host vanishing.
        """
        for side in (self, self._peer):
            if side is not None and not side.closed:
                side.closed = True
                side._inbox.put(_Closed())

    def __repr__(self) -> str:
        return f"<TcpConnection {self._local.name} -> {self._remote.name}>"


class _ListenerClosed:
    """Sentinel queued to wake a pending accept when the listener closes."""


class TcpListener:
    """A bound, listening server socket."""

    def __init__(self, stack: "TcpStack", port_number: int) -> None:
        self._stack = stack
        self.port_number = port_number
        self._backlog: Store = Store(stack.env)
        self.closed = False

    def accept(self) -> Generator:
        """Process: wait for the next inbound connection."""
        if self.closed:
            raise ConnectionClosed(
                f"accept() on closed listener :{self.port_number}")
        connection = yield self._backlog.get()
        if isinstance(connection, _ListenerClosed):
            raise ConnectionClosed(
                f"listener :{self.port_number} closed while accepting")
        return connection

    def close(self) -> None:
        """Unbind the port and wake any pending accept.

        Connections already established stay open; connections sitting in
        the backlog are dropped (the client will observe the close on its
        next send/recv), so a restarted daemon can re-bind the same port
        without inheriting half-open state.
        """
        if self.closed:
            return
        self.closed = True
        self._stack._listeners.pop(self.port_number, None)
        for pending in self._backlog.items:
            if isinstance(pending, TcpConnection):
                pending.drop()
        self._backlog.put(_ListenerClosed())


class TcpStack:
    """Per-node TCP endpoint: listen / connect over the fabric.

    Host addressing uses the endpoint name the node's port was attached
    under (the IPoIB interface name, morally).  The host registry lives on
    the fabric, so independent simulations never see each other.
    """

    def __init__(self, env: Environment, fabric: Fabric, port: Port,
                 hostname: str) -> None:
        self.env = env
        self.fabric = fabric
        self.port = port
        self.hostname = hostname
        self._listeners: Dict[int, TcpListener] = {}
        registry = getattr(fabric, "_tcp_hosts", None)
        if registry is None:
            registry = {}
            fabric._tcp_hosts = registry
        if hostname in registry:
            raise NetworkError(f"duplicate hostname {hostname!r} on fabric")
        registry[hostname] = self

    def listen(self, port_number: int) -> TcpListener:
        """Bind a listener on *port_number*."""
        if port_number in self._listeners:
            raise NetworkError(
                f"{self.hostname}: port {port_number} already bound")
        listener = TcpListener(self, port_number)
        self._listeners[port_number] = listener
        return listener

    def connect(self, hostname: str, port_number: int) -> Generator:
        """Process: three-way handshake with a listening peer."""
        try:
            peer_stack = self.fabric._tcp_hosts[hostname]
        except KeyError:
            raise NetworkError(f"no host named {hostname!r}") from None
        listener = peer_stack._listeners.get(port_number)
        if listener is None:
            raise NetworkError(
                f"connection refused: {hostname}:{port_number}")
        _channels, wire_latency = self.fabric.path(self.port, peer_stack.port)
        # SYN / SYN-ACK / ACK: ~1.5 RTTs of message latency.
        handshake = 3 * (DEFAULT_MESSAGE_LATENCY_NS + wire_latency)
        yield self.env.timeout(handshake)
        client_side = TcpConnection(self.env, self.fabric, self.port,
                                    peer_stack.port)
        server_side = TcpConnection(self.env, self.fabric, peer_stack.port,
                                    self.port)
        client_side._bind(server_side)
        server_side._bind(client_side)
        yield listener._backlog.put(server_side)
        return client_side

"""Network substrate: InfiniBand fabric and the TCP/IPoIB control plane."""

from repro.net.fabric import Fabric, Port
from repro.net.tcp import TcpConnection, TcpListener, TcpStack

__all__ = ["Fabric", "Port", "TcpConnection", "TcpListener", "TcpStack"]

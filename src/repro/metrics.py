"""Measurement helpers: cost ledgers and busy-interval recorders.

* :class:`CostLedger` — accumulates simulated nanoseconds per category.
  Filesystems and checkpointers write into one; the Table I / Fig. 13
  breakdown experiments read the per-category shares out.
* :class:`IntervalRecorder` — records busy intervals (GPU compute, link
  busy, ...) and computes utilization over windows; this drives the
  Fig. 16 GPU-utilization trace.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple


class CostLedger:
    """Nanoseconds accumulated per named category."""

    def __init__(self) -> None:
        self._ns: Dict[str, int] = {}

    def add(self, category: str, ns: int) -> None:
        if ns < 0:
            raise ValueError(f"negative cost for {category!r}: {ns}")
        self._ns[category] = self._ns.get(category, 0) + ns

    def get(self, category: str) -> int:
        return self._ns.get(category, 0)

    def total(self) -> int:
        return sum(self._ns.values())

    def fraction(self, category: str) -> float:
        """Share of the total attributed to *category* (0 when empty)."""
        total = self.total()
        return self._ns.get(category, 0) / total if total else 0.0

    def asdict(self) -> Dict[str, int]:
        return dict(self._ns)

    def fractions(self) -> Dict[str, float]:
        total = self.total()
        if not total:
            return {}
        return {k: v / total for k, v in self._ns.items()}

    def merge(self, other: "CostLedger") -> None:
        for category, ns in other._ns.items():
            self.add(category, ns)

    def reset(self) -> None:
        self._ns.clear()

    def __repr__(self) -> str:
        return f"<CostLedger {self._ns!r}>"


class IntervalRecorder:
    """Busy intervals on one resource, for utilization traces."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._intervals: List[Tuple[int, int]] = []
        self._open_since: Optional[int] = None

    def begin(self, now: int) -> None:
        if self._open_since is not None:
            raise ValueError(f"{self.name}: begin() while already busy")
        self._open_since = now

    def end(self, now: int) -> None:
        if self._open_since is None:
            raise ValueError(f"{self.name}: end() while idle")
        if now < self._open_since:
            raise ValueError(f"{self.name}: end before begin")
        self._intervals.append((self._open_since, now))
        self._open_since = None

    @property
    def busy(self) -> bool:
        return self._open_since is not None

    def busy_ns(self, start: int, end: int) -> int:
        """Busy time overlapping ``[start, end)`` (open interval included)."""
        if end < start:
            raise ValueError("window end before start")
        total = 0
        intervals = list(self._intervals)
        if self._open_since is not None:
            intervals.append((self._open_since, end))
        for lo, hi in intervals:
            total += max(0, min(hi, end) - max(lo, start))
        return total

    def utilization(self, start: int, end: int) -> float:
        """Fraction of ``[start, end)`` spent busy."""
        if end == start:
            return 0.0
        return self.busy_ns(start, end) / (end - start)

    def trace(self, start: int, end: int,
              bin_ns: int) -> List[Tuple[int, float]]:
        """Per-bin utilization series over ``[start, end)``."""
        if bin_ns <= 0:
            raise ValueError(f"bin must be positive, got {bin_ns}")
        series = []
        cursor = start
        while cursor < end:
            hi = min(cursor + bin_ns, end)
            series.append((cursor, self.utilization(cursor, hi)))
            cursor = hi
        return series


def aggregate_utilization(recorders: List[IntervalRecorder], start: int,
                          end: int) -> float:
    """Mean utilization across several recorders (e.g. all 16 GPUs)."""
    if not recorders:
        return 0.0
    return sum(r.utilization(start, end) for r in recorders) / len(recorders)

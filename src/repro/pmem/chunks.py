"""Refcounted content-addressed chunk store (dedup extents).

Deduplicated checkpoints store model bytes as fixed-size *chunks* keyed
by a content hash over :meth:`~repro.hw.content.Content.fingerprint`.
Each distinct chunk occupies exactly one AllocTable extent; versions and
tenants that share bytes share the extent and bump its reference count.

The store's metadata is a single :class:`~repro.pmem.layout.CommittedRecord`
(the *ChunkTable*) holding every ``(digest, addr, size, refcount)`` entry,
so refcount updates are crash-atomic the same way the AllocTable is.  The
write orderings keep every crash window leak-only:

* new chunk: reserve the extent (AllocTable commit) and land the bytes
  first, then commit the ChunkTable entry + refcounts in ONE record
  write.  A crash in between leaves a committed extent no ChunkTable
  entry references — fsck's leak scan reclaims it.
* unref to zero: commit the entry's removal (decrement and unlink are
  the same record write), then free the extent.  A crash in between
  also only leaks.

Every mutating commit fires the ``chunkref.update`` crash hook before
touching PMem, so the crash-point sweep can power-fail each refcount
boundary by name (the underlying record's ``record.write`` /
``record.persist`` and the allocator's ``alloc.commit`` /
``free.release`` boundaries fire as usual).
"""

from __future__ import annotations

import struct
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import PmemError, PoolExhausted
from repro.hw.device import Allocation
from repro.pmem.layout import CommittedRecord, blob_capacity

#: AllocTable tag of the ChunkTable metadata extent (one per pool).
CHUNK_TABLE_TAG = "portus-chunktable"
#: Tag prefix of chunk data extents: ``portus-chunk/<hex12>``.
CHUNK_TAG = "portus-chunk"

DIGEST_BYTES = 20  # sha1

_STORE_MAGIC = 0x43484E4B  # "CHNK"
_STORE_HEADER = struct.Struct("<IIQ")  # magic, count, chunk_bytes
_ENTRY = struct.Struct("<20sQQQ")  # digest, addr, size, refcount

DEFAULT_CHUNK_BYTES = 4 * 1024 * 1024
DEFAULT_MAX_CHUNKS = 16384


def chunk_tag(digest: bytes) -> str:
    """AllocTable tag for a chunk extent (truncated digest, unique enough
    for humans; identity lives in the ChunkTable)."""
    return f"{CHUNK_TAG}/{digest.hex()[:12]}"


def store_slot_size(max_chunks: int) -> int:
    return blob_capacity(_STORE_HEADER.size + max_chunks * _ENTRY.size)


class ChunkEntry:
    """One committed chunk: content digest, backing extent, refcount."""

    __slots__ = ("digest", "addr", "size", "refcount")

    def __init__(self, digest: bytes, addr: int, size: int,
                 refcount: int) -> None:
        if len(digest) != DIGEST_BYTES:
            raise PmemError(f"bad chunk digest length {len(digest)}")
        self.digest = digest
        self.addr = addr
        self.size = size
        self.refcount = refcount

    def pack(self) -> bytes:
        return _ENTRY.pack(self.digest, self.addr, self.size, self.refcount)

    def __repr__(self) -> str:
        return f"<ChunkEntry {self.digest.hex()[:12]}@{self.addr:#x}" \
               f"+{self.size} refs={self.refcount}>"


class ChunkStore:
    """The pool-wide refcounted chunk index.

    One live instance per open pool handle: daemon, fsck and repack on
    the same :class:`~repro.pmem.pool.PmemPool` object must share the
    same in-DRAM entry map (use :meth:`attach`), or their commits would
    overwrite each other's view.  A fresh ``PmemPool.open`` after a
    crash rebuilds the map from the committed record.
    """

    def __init__(self, pool, table_alloc: Allocation,
                 chunk_bytes: int, max_chunks: int) -> None:
        self.pool = pool
        self.table_alloc = table_alloc
        self.chunk_bytes = chunk_bytes
        self.max_chunks = max_chunks
        self.record = CommittedRecord(table_alloc, 0,
                                      store_slot_size(max_chunks))
        self._entries: Dict[bytes, ChunkEntry] = {}

    # -- lifecycle ---------------------------------------------------------------

    @classmethod
    def create(cls, pool, chunk_bytes: int = DEFAULT_CHUNK_BYTES,
               max_chunks: int = DEFAULT_MAX_CHUNKS) -> "ChunkStore":
        """Format a fresh ChunkTable on *pool* (at most one per pool)."""
        if pool.find_by_tag(CHUNK_TABLE_TAG):
            raise PmemError("pool already has a chunk store")
        if chunk_bytes <= 0:
            raise PmemError(f"bad chunk size {chunk_bytes}")
        table_alloc = pool.alloc(2 * store_slot_size(max_chunks),
                                 tag=CHUNK_TABLE_TAG)
        store = cls(pool, table_alloc, chunk_bytes, max_chunks)
        store._commit("create")
        pool.__dict__["_chunk_store"] = store
        return store

    @classmethod
    def attach(cls, pool) -> Optional["ChunkStore"]:
        """The pool's chunk store, or None if the pool has none.

        Cached on the pool handle so every subsystem holding this handle
        shares one DRAM copy of the entry map.
        """
        cached = pool.__dict__.get("_chunk_store")
        if cached is not None:
            return cached
        found = pool.find_by_tag(CHUNK_TABLE_TAG)
        if not found:
            return None
        if len(found) > 1:
            raise PmemError("multiple chunk-store tables on one pool")
        table_alloc = found[0]
        committed = CommittedRecord(
            table_alloc, 0, table_alloc.size // 2).read()
        if committed is None:
            raise PmemError("chunk-store table unreadable")
        payload, _generation = committed
        magic, count, chunk_bytes = _STORE_HEADER.unpack_from(payload)
        if magic != _STORE_MAGIC:
            raise PmemError(f"bad chunk-store magic {magic:#x}")
        max_chunks = (table_alloc.size // 2 - blob_capacity(
            _STORE_HEADER.size)) // _ENTRY.size
        store = cls(pool, table_alloc, chunk_bytes, max_chunks)
        for i in range(count):
            digest, addr, size, refcount = _ENTRY.unpack_from(
                payload, _STORE_HEADER.size + i * _ENTRY.size)
            store._entries[digest] = ChunkEntry(digest, addr, size, refcount)
        pool.__dict__["_chunk_store"] = store
        return store

    @classmethod
    def ensure(cls, pool, chunk_bytes: int = DEFAULT_CHUNK_BYTES,
               max_chunks: int = DEFAULT_MAX_CHUNKS) -> "ChunkStore":
        """Attach, creating the store on first use; validates chunk size."""
        store = cls.attach(pool)
        if store is None:
            return cls.create(pool, chunk_bytes=chunk_bytes,
                              max_chunks=max_chunks)
        if store.chunk_bytes != chunk_bytes:
            raise PmemError(
                f"pool chunk size is {store.chunk_bytes}, "
                f"requested {chunk_bytes}")
        return store

    # -- persistence ------------------------------------------------------------

    def _commit(self, op: str) -> None:
        hook = self.pool.device.crash_hook
        if hook is not None:
            # Crash point: a refcount/entry mutation is about to commit —
            # power loss here must leave refcounts recoverable by fsck.
            hook("chunkref.update", op)
        entries = sorted(self._entries.values(), key=lambda e: e.digest)
        payload = _STORE_HEADER.pack(_STORE_MAGIC, len(entries),
                                     self.chunk_bytes)
        payload += b"".join(entry.pack() for entry in entries)
        self.record.write(payload)

    # -- query -------------------------------------------------------------------

    def lookup(self, digest: bytes) -> Optional[ChunkEntry]:
        return self._entries.get(digest)

    def entries(self) -> List[ChunkEntry]:
        """Committed chunks, digest-sorted."""
        return sorted(self._entries.values(), key=lambda e: e.digest)

    def allocation_of(self, entry: ChunkEntry) -> Allocation:
        """The live device allocation backing a chunk entry."""
        record = self.pool.allocator.lookup(entry.addr)
        if record is None:
            raise PmemError(
                f"chunk {entry.digest.hex()[:12]} extent at "
                f"{entry.addr:#x} missing from AllocTable")
        return self.pool.allocator.allocation_for(record)

    @property
    def chunk_count(self) -> int:
        return len(self._entries)

    @property
    def stored_bytes(self) -> int:
        """Physical bytes held by chunk extents (each counted once)."""
        return sum(entry.size for entry in self._entries.values())

    @property
    def logical_bytes(self) -> int:
        """Bytes the chunks represent across all references."""
        return sum(entry.size * entry.refcount
                   for entry in self._entries.values())

    # -- mutation ----------------------------------------------------------------

    def alloc_chunk(self, digest: bytes, size: int) -> Allocation:
        """Reserve the extent for a new chunk (bytes land before
        :meth:`apply` makes the chunk visible)."""
        if digest in self._entries:
            raise PmemError(f"chunk {digest.hex()[:12]} already stored")
        if len(self._entries) >= self.max_chunks:
            raise PoolExhausted(f"ChunkTable full ({self.max_chunks})")
        return self.pool.alloc(size, tag=chunk_tag(digest))

    def apply(self, new: List[Tuple[bytes, Allocation, int]],
              shared: Dict[bytes, int]) -> None:
        """Commit a manifest's reference delta in one record write.

        *new* lists ``(digest, extent, initial_refcount)`` for chunks
        whose bytes are already persisted in *extent*; *shared* maps
        already-stored digests to their reference increment.  Inserting
        and incrementing in a single commit means a crash never splits a
        checkpoint's references.
        """
        if not new and not shared:
            return
        if len(self._entries) + len(new) > self.max_chunks:
            raise PoolExhausted(f"ChunkTable full ({self.max_chunks})")
        for digest, extent, refs in new:
            if digest in self._entries:
                raise PmemError(
                    f"chunk {digest.hex()[:12]} already stored")
            if refs <= 0:
                raise PmemError(f"bad initial refcount {refs}")
            self._entries[digest] = ChunkEntry(digest, extent.addr,
                                               extent.size, refs)
        for digest, delta in shared.items():
            entry = self._entries.get(digest)
            if entry is None:
                raise PmemError(
                    f"increment of unknown chunk {digest.hex()[:12]}")
            if delta <= 0:
                raise PmemError(f"bad refcount increment {delta}")
            entry.refcount += delta
        self._commit("apply")

    def unref(self, digests: Iterable[bytes]) -> List[Allocation]:
        """Drop one reference per digest occurrence; free orphaned chunks.

        Decrement and unlink commit in the same record write; extents
        whose count reached zero are freed afterwards (crash window:
        leak-only).  Returns the freed allocations.
        """
        drops: Dict[bytes, int] = {}
        for digest in digests:
            drops[digest] = drops.get(digest, 0) + 1
        if not drops:
            return []
        # Validate everything before touching the in-DRAM map, so a
        # refused unref leaves no partial decrement behind.
        for digest, count in sorted(drops.items()):
            entry = self._entries.get(digest)
            if entry is None:
                raise PmemError(
                    f"unref of unknown chunk {digest.hex()[:12]}")
            if entry.refcount < count:
                raise PmemError(
                    f"over-free of chunk {digest.hex()[:12]}: "
                    f"{entry.refcount} refs, dropping {count}")
        doomed: List[ChunkEntry] = []
        for digest, count in sorted(drops.items()):
            entry = self._entries[digest]
            entry.refcount -= count
            if entry.refcount == 0:
                doomed.append(entry)
        for entry in doomed:
            del self._entries[entry.digest]
        self._commit("unref")
        freed: List[Allocation] = []
        for entry in doomed:
            allocation = self.pool.allocator.allocation_for(
                self.pool.allocator.lookup(entry.addr))
            self.pool.free(allocation)
            freed.append(allocation)
        return freed

    def set_refcount(self, digest: bytes, refcount: int) -> None:
        """Force a chunk's refcount (fsck repair path).

        At zero the entry is removed and its extent freed, with the same
        leak-only ordering as :meth:`unref`.
        """
        entry = self._entries.get(digest)
        if entry is None:
            raise PmemError(f"unknown chunk {digest.hex()[:12]}")
        if refcount < 0:
            raise PmemError(f"bad refcount {refcount}")
        if refcount == 0:
            del self._entries[entry.digest]
            self._commit("repair")
            allocation = self.pool.allocator.allocation_for(
                self.pool.allocator.lookup(entry.addr))
            self.pool.free(allocation)
            return
        entry.refcount = refcount
        self._commit("repair")

    def drop_entry(self, digest: bytes) -> None:
        """Remove an entry without freeing its extent (fsck repair for
        chunks whose backing is already gone)."""
        if digest not in self._entries:
            raise PmemError(f"unknown chunk {digest.hex()[:12]}")
        del self._entries[digest]
        self._commit("repair")

    def __repr__(self) -> str:
        return f"<ChunkStore chunks={len(self._entries)} " \
               f"chunk_bytes={self.chunk_bytes}>"

"""Structural verification of the on-PMem Portus index (``portusctl fsck``).

Walks the whole persistent structure — Superblock → AllocTable →
ModelTable → per-model metadata (geometry header, VersionFlags, MIndex)
→ TensorData extents — and reports everything that violates a recovery
invariant:

* **dangling meta addresses** — a ModelTable entry pointing at space no
  committed extent backs;
* **DONE slots that cannot restore** — version address 0, extent
  missing, extent shorter than the tensor layout needs, or an extent
  claimed twice;
* **torn records** — a double-slot record with one slot cut short by
  power loss (the other slot keeps the data readable);
* **stale ACTIVE slots** — a checkpoint that was mid-pull at crash time
  and whose TensorData can no longer be trusted;
* **leaked extents** — committed Portus-tagged extents no model walk
  reaches (crash windows in alloc/free orderings leak by design);
* **chunk refcounts** (dedup layout) — every ChunkTable reference count
  is recomputed from reachability (one reference per occurrence in a
  DONE version's manifest): a stored count *above* the recomputed one is
  a leak (crash between apply/commit and manifest GC — space only), a
  count *below* it is an over-free (a future unref would free bytes a
  restorable checkpoint still needs); manifests referencing chunks the
  store does not hold demote their slot.

:func:`fsck` is read-only; :func:`repair` applies each finding's safe
repair action (demote untrustworthy slots, unlink missing extents, drop
dangling entries, rewrite torn slots, free leaks) and re-walks until the
pool verifies clean.  Repairs only ever *demote or reclaim* — a repair
never fabricates restorable state, so the newest genuinely-DONE
checkpoint always survives a repair pass.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.errors import InvalidAddressError, PmemError, ReproError
from repro.pmem.layout import CommittedRecord
from repro.pmem.pool import PmemPool, _SUPER_SLOT

SEV_ERROR = "error"      # breaks recovery or restore correctness
SEV_WARN = "warning"     # loses redundancy or space, not correctness

#: ``portusctl fsck`` / ``repair`` exit codes (machine contract).
EXIT_CLEAN = 0     # fsck: no findings / repair: nothing to do
EXIT_DIRTY = 1     # findings exist (after repair: unfixable ones)
EXIT_REPAIRED = 2  # repair fixed findings and the pool verifies clean

#: Finding kinds (stable strings: they key metrics and test assertions).
K_SUPERBLOCK_TORN = "superblock-torn-slot"
K_ALLOCTABLE_TORN = "alloctable-torn-slot"
K_ALLOCTABLE_OVERLAP = "alloctable-overlap"
K_ALLOC_BACKING_MISSING = "alloc-backing-missing"
K_TABLE_MISSING = "modeltable-missing"
K_TABLE_UNREADABLE = "modeltable-unreadable"
K_TABLE_TORN = "modeltable-torn-slot"
K_DANGLING_META = "dangling-meta"
K_META_UNREADABLE = "meta-unreadable"
K_FLAGS_UNREADABLE = "flags-unreadable"
K_FLAGS_TORN = "flags-torn-slot"
K_MINDEX_TORN = "mindex-torn-slot"
K_STALE_ACTIVE = "stale-active"
K_DONE_ADDR_ZERO = "done-addr-zero"
K_VERSION_EXTENT_MISSING = "version-extent-missing"
K_DONE_EXTENT_SHORT = "done-extent-short"
K_EXTENT_SHARED = "extent-shared"
K_LEAKED_EXTENT = "leaked-extent"
K_CHUNKTABLE_UNREADABLE = "chunktable-unreadable"
K_CHUNKTABLE_TORN = "chunktable-torn-slot"
K_MANIFEST_TORN = "manifest-torn-slot"
K_MANIFEST_BAD = "manifest-bad"
K_MANIFEST_CHUNK_MISSING = "manifest-chunk-missing"
K_CHUNK_BACKING_MISSING = "chunk-backing-missing"
K_CHUNK_REF_LEAK = "chunk-ref-leak"
K_CHUNK_REF_OVERFREE = "chunk-ref-overfree"
K_GROUPTABLE_UNREADABLE = "grouptable-unreadable"
K_GROUPTABLE_TORN = "grouptable-torn-slot"
K_GROUP_DANGLING = "group-dangling-record"
K_GROUP_RECORD_UNREADABLE = "group-record-unreadable"
K_GROUP_RECORD_TORN = "group-record-torn-slot"
K_GROUP_MEMBER_MISSING = "group-member-missing"
K_GROUP_STEP_UNRESTORABLE = "group-step-unrestorable"


class Finding:
    """One invariant violation, with an optional safe repair action."""

    def __init__(self, kind: str, severity: str, detail: str,
                 model: Optional[str] = None,
                 repair: Optional[Callable[[], None]] = None) -> None:
        self.kind = kind
        self.severity = severity
        self.detail = detail
        self.model = model
        self.repair = repair

    def describe(self) -> str:
        where = f" [{self.model}]" if self.model else ""
        fix = "" if self.repair is not None else " (no auto-repair)"
        return f"{self.severity}: {self.kind}{where}: {self.detail}{fix}"

    def to_dict(self) -> Dict:
        return {"kind": self.kind, "severity": self.severity,
                "model": self.model, "detail": self.detail,
                "repairable": self.repair is not None}

    def __repr__(self) -> str:
        return f"<Finding {self.describe()}>"


class FsckReport:
    """Everything one verification pass saw."""

    def __init__(self) -> None:
        self.findings: List[Finding] = []
        self.checked: Dict[str, int] = {"models": 0, "extents": 0,
                                        "records": 0}

    def add(self, finding: Finding) -> None:
        self.findings.append(finding)

    @property
    def clean(self) -> bool:
        return not self.findings

    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == SEV_ERROR]

    def warnings(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == SEV_WARN]

    def kinds(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for finding in self.findings:
            out[finding.kind] = out.get(finding.kind, 0) + 1
        return out

    def describe(self) -> str:
        lines = [f"checked {self.checked['models']} models, "
                 f"{self.checked['extents']} extents, "
                 f"{self.checked['records']} records"]
        if self.clean:
            lines.append("clean: no findings")
        else:
            lines.append(f"{len(self.errors())} errors, "
                         f"{len(self.warnings())} warnings")
            lines.extend(f.describe() for f in self.findings)
        return "\n".join(lines)

    def to_dict(self) -> Dict:
        """The ``portusctl fsck --json`` payload."""
        return {"clean": self.clean,
                "checked": dict(self.checked),
                "errors": len(self.errors()),
                "warnings": len(self.warnings()),
                "findings": [f.to_dict() for f in self.findings]}

    def __repr__(self) -> str:
        state = "clean" if self.clean else f"{len(self.findings)} findings"
        return f"<FsckReport {state}>"


class RepairResult:
    """What :func:`repair` did, plus the final verification report."""

    def __init__(self, actions: List[str], passes: int,
                 report: FsckReport) -> None:
        self.actions = actions
        self.passes = passes
        self.report = report

    @property
    def clean(self) -> bool:
        return self.report.clean

    def describe(self) -> str:
        lines = [f"repair: {len(self.actions)} actions in "
                 f"{self.passes} passes"]
        lines.extend(f"  fixed {action}" for action in self.actions)
        lines.append("pool verifies clean" if self.clean
                     else "pool still has findings:\n" +
                     self.report.describe())
        return "\n".join(lines)

    def to_dict(self) -> Dict:
        """The ``portusctl repair --json`` payload."""
        return {"clean": self.clean, "passes": self.passes,
                "actions": list(self.actions),
                "report": self.report.to_dict()}

    @property
    def exit_code(self) -> int:
        """``portusctl repair``'s tri-state: clean-untouched /
        repaired-to-clean / still dirty."""
        if not self.clean:
            return EXIT_DIRTY
        return EXIT_REPAIRED if self.actions else EXIT_CLEAN


# -- slot-level helpers --------------------------------------------------------


def _check_torn_slots(report: FsckReport, record: CommittedRecord,
                      kind: str, what: str,
                      model: Optional[str] = None) -> None:
    """Flag torn slots of a still-readable record; repair rewrites the
    committed payload (the write lands in the non-newest = torn slot)."""
    report.checked["records"] += 1
    committed = record.read()
    if committed is None:
        return  # unreadable records are the caller's (severer) finding
    payload = committed[0]
    for state in record.slot_states():
        if state == "torn":
            report.add(Finding(
                kind, SEV_WARN,
                f"{what}: one slot torn, newest generation "
                f"{committed[1]} intact", model=model,
                repair=lambda r=record, p=payload: r.write(p)))


# -- the walk ------------------------------------------------------------------


def fsck(pool: PmemPool, obs=None) -> FsckReport:
    """Verify every recovery invariant of the index on *pool* (read-only).

    The pool must be open (i.e. already past
    :meth:`~repro.pmem.pool.PmemPool.open`'s superblock validation and
    AllocTable reconcile).
    """
    from repro.core.index import (DATA_TAG, FLAG_ACTIVE, FLAG_DONE,
                                  META_TAG, TABLE_TAG, ModelMeta,
                                  ModelTable, VersionFlags, layout_tensors)
    from repro.pmem.chunks import CHUNK_TAG, ChunkStore

    if pool.closed:
        raise PmemError("fsck needs an open pool")
    report = FsckReport()
    allocator = pool.allocator

    # Level 0: superblock and AllocTable record health.
    _check_torn_slots(report, CommittedRecord(pool.meta, 0, _SUPER_SLOT),
                      K_SUPERBLOCK_TORN, "superblock")
    alloc_payload = allocator._table.read()
    if alloc_payload is not None:
        _check_torn_slots(report, allocator._table, K_ALLOCTABLE_TORN,
                          "AllocTable")

    # AllocTable: every committed extent must be backed and disjoint.
    records = allocator.records()
    report.checked["extents"] = len(records)
    previous = None
    for record in records:
        try:
            backing = pool.device.allocation_at(record.addr)
        except InvalidAddressError:
            backing = None
        if backing is None or backing.addr != record.addr \
                or backing.size < record.size:
            report.add(Finding(
                K_ALLOC_BACKING_MISSING, SEV_ERROR,
                f"extent {record.tag!r}@{record.addr:#x}+{record.size} "
                f"has no matching device backing"))
        if previous is not None \
                and record.addr < previous.addr + previous.size:
            report.add(Finding(
                K_ALLOCTABLE_OVERLAP, SEV_ERROR,
                f"extents {previous.tag!r}@{previous.addr:#x}+"
                f"{previous.size} and {record.tag!r}@{record.addr:#x} "
                f"overlap"))
        previous = record

    # Level 1: the ModelTable.
    try:
        table = ModelTable.open(pool)
    except PmemError as exc:
        kind = (K_TABLE_MISSING if "no Portus ModelTable" in str(exc)
                else K_TABLE_UNREADABLE)
        report.add(Finding(kind, SEV_ERROR, str(exc)))
        _count_findings(report, obs)
        return report
    table_region = table._record.allocation
    _check_torn_slots(report, table._record, K_TABLE_TORN, "ModelTable")

    referenced = {table_region.addr}
    claims: Dict[int, str] = {table_region.addr: "<ModelTable>"}

    def claim(addr: int, who: str) -> bool:
        """Record *who* references extent *addr*; False on a collision."""
        if addr in claims and claims[addr] != who:
            return False
        claims[addr] = who
        referenced.add(addr)
        return True

    # The shared chunk store (dedup layout), if this pool has one.  An
    # unreadable table only happens when power failed before its very
    # first commit — no chunk was ever stored, so the extent is pure
    # leakage and freeing it is safe (the next dedup register recreates
    # the store).
    store = None
    try:
        store = ChunkStore.attach(pool)
    except PmemError as exc:
        report.add(Finding(
            K_CHUNKTABLE_UNREADABLE, SEV_WARN, str(exc),
            repair=lambda p=pool: _free_chunk_table(p)))
    if store is not None:
        claim(store.table_alloc.addr, "<ChunkTable>")
        _check_torn_slots(report, store.record, K_CHUNKTABLE_TORN,
                          "ChunkTable")
    #: digest -> references recomputed from reachability (one per
    #: occurrence in a resolvable DONE manifest).
    recomputed: Dict[bytes, int] = {}

    # Levels 2+3: per-model metadata and TensorData extents.
    for name in table.names():
        report.checked["models"] += 1
        meta_addr = table.lookup(name)
        if allocator.lookup(meta_addr) is None:
            report.add(Finding(
                K_DANGLING_META, SEV_ERROR,
                f"table entry points at {meta_addr:#x}, which no "
                f"committed extent backs", model=name,
                repair=lambda t=table, n=name: t.remove(n)))
            continue
        try:
            meta = ModelMeta.open(pool, meta_addr, lenient=True)
        except (ReproError, InvalidAddressError) as exc:
            report.add(Finding(
                K_META_UNREADABLE, SEV_ERROR,
                f"metadata region at {meta_addr:#x} unreadable: {exc}",
                model=name,
                repair=lambda t=table, n=name: t.remove(n)))
            continue
        claim(meta_addr, f"{name}:meta")

        # Record health: version flags + MIndex.
        if meta._flags_record.read() is None:
            report.add(Finding(
                K_FLAGS_UNREADABLE, SEV_WARN,
                "version-flags record unreadable; both checkpoint slots "
                "are lost", model=name,
                repair=lambda m=meta: m.write_flags(VersionFlags())))
        else:
            _check_torn_slots(report, meta._flags_record, K_FLAGS_TORN,
                              "version flags", model=name)
        _check_torn_slots(report, meta._mindex_record, K_MINDEX_TORN,
                          "MIndex", model=name)

        flags = meta.read_flags()
        if meta.dedup:
            # Dedup models own no per-version extents: their version
            # addresses are 0 by design and their bytes live in the
            # chunk store, so the addr-based checks below do not apply.
            # Instead verify the manifests and accumulate reachability.
            _fsck_dedup_model(report, meta, name, flags, store, recomputed)
            continue
        needed = layout_tensors(
            [d.to_spec() for d in meta.mindex.descriptors])[1]
        for version in (0, 1):
            state = flags.states[version]
            step = flags.steps[version]
            addr = meta.mindex.version_addrs[version]
            if state == FLAG_ACTIVE:
                report.add(Finding(
                    K_STALE_ACTIVE, SEV_WARN,
                    f"v{version} still ACTIVE (step stamp {step}): a "
                    f"checkpoint was mid-pull at crash time; its "
                    f"TensorData cannot be trusted", model=name,
                    repair=lambda m=meta, v=version: _demote(m, v)))
            if addr == 0:
                if state == FLAG_DONE:
                    report.add(Finding(
                        K_DONE_ADDR_ZERO, SEV_ERROR,
                        f"v{version} DONE@{step} but its version "
                        f"address is 0 (extent reclaimed under a live "
                        f"flag)", model=name,
                        repair=lambda m=meta, v=version: _demote(m, v)))
                continue
            extent = allocator.lookup(addr)
            if extent is None:
                severity = SEV_ERROR if state == FLAG_DONE else SEV_WARN
                report.add(Finding(
                    K_VERSION_EXTENT_MISSING, severity,
                    f"v{version} ({_flag_name(state)}@{step}) points at "
                    f"{addr:#x}, which no committed extent backs",
                    model=name,
                    repair=lambda m=meta, v=version:
                        _demote_and_unlink(m, v)))
                continue
            if not claim(addr, f"{name}:v{version}"):
                report.add(Finding(
                    K_EXTENT_SHARED, SEV_ERROR,
                    f"v{version} claims extent {addr:#x} already owned "
                    f"by {claims[addr]}", model=name,
                    repair=lambda m=meta, v=version:
                        _demote_and_unlink(m, v)))
                continue
            if state == FLAG_DONE and extent.size < needed:
                report.add(Finding(
                    K_DONE_EXTENT_SHORT, SEV_ERROR,
                    f"v{version} DONE@{step} extent holds {extent.size} "
                    f"bytes, layout needs {needed}", model=name,
                    repair=lambda m=meta, v=version:
                        _demote_and_unlink(m, v)))

    # Chunk refcounts: compare every stored count against the one
    # recomputed from reachability.  Stored > recomputed is a leak (a
    # crash window between apply/commit and manifest GC over-holds —
    # space only); stored < recomputed is an over-free (a future unref
    # would free bytes a restorable checkpoint still needs).
    if store is not None:
        for entry in store.entries():
            backing = allocator.lookup(entry.addr)
            if backing is None or backing.size < entry.size:
                report.add(Finding(
                    K_CHUNK_BACKING_MISSING, SEV_ERROR,
                    f"chunk {entry.digest.hex()[:12]} extent at "
                    f"{entry.addr:#x}+{entry.size} has no committed "
                    f"backing",
                    repair=lambda s=store, d=entry.digest: s.drop_entry(d)))
                continue
            claim(entry.addr, f"<chunk:{entry.digest.hex()[:12]}>")
            want = recomputed.get(entry.digest, 0)
            if entry.refcount > want:
                report.add(Finding(
                    K_CHUNK_REF_LEAK, SEV_WARN,
                    f"chunk {entry.digest.hex()[:12]} holds "
                    f"{entry.refcount} refs, reachability needs {want}",
                    repair=lambda s=store, d=entry.digest, n=want:
                        s.set_refcount(d, n)))
            elif entry.refcount < want:
                report.add(Finding(
                    K_CHUNK_REF_OVERFREE, SEV_ERROR,
                    f"chunk {entry.digest.hex()[:12]} holds "
                    f"{entry.refcount} refs but {want} manifest "
                    f"references reach it",
                    repair=lambda s=store, d=entry.digest, n=want:
                        s.set_refcount(d, n)))

    # Parallel groups: the GroupTable, each group's commit record, and
    # the cross-model invariant that every member can serve the group's
    # committed step.
    _fsck_groups(report, pool, table, allocator, claim)

    # Leaks: committed Portus-tagged extents no walk reached.  Foreign
    # tags (anything not ours) are left alone.  The ChunkTable and
    # GroupTable extents are excluded: readable tables were claimed
    # above, unreadable ones already carry their own (freeing) finding.
    from repro.core.group import GROUP_TAG
    for record in records:
        if record.addr in referenced:
            continue
        ours = (record.tag == TABLE_TAG
                or record.tag.startswith(META_TAG + "/")
                or record.tag.startswith(DATA_TAG + "/")
                or record.tag.startswith(CHUNK_TAG + "/")
                or record.tag.startswith(GROUP_TAG + "/"))
        if not ours:
            continue
        report.add(Finding(
            K_LEAKED_EXTENT, SEV_WARN,
            f"extent {record.tag!r}@{record.addr:#x}+{record.size} is "
            f"unreachable from any model",
            repair=lambda p=pool, r=record:
                p.free(p.allocator.allocation_for(r))))

    _count_findings(report, obs)
    return report


def _flag_name(state: int) -> str:
    from repro.core.index import FLAG_NAMES
    return FLAG_NAMES.get(state, f"?{state}")


def _demote(meta, version: int) -> None:
    """Invalidate one version slot (EMPTY, step 0); never touches data."""
    flags = meta.read_flags()
    flags.states[version] = 0  # FLAG_EMPTY
    flags.steps[version] = 0
    meta.write_flags(flags)


def _fsck_dedup_model(report: FsckReport, meta, name: str, flags,
                      store, recomputed: Dict[bytes, int]) -> None:
    """Verify one dedup model's manifests; count reachable references.

    Only manifests of DONE slots that fully resolve against the chunk
    store contribute to *recomputed* — a slot flagged for demotion here
    must not hold references, or the refcount pass would repair toward
    a state the demotion is about to invalidate.
    """
    from repro.core.index import FLAG_ACTIVE, FLAG_DONE, region_extent

    region = region_extent(meta.mindex.descriptors)
    expected = (region + meta.chunk_bytes - 1) // meta.chunk_bytes
    for version in (0, 1):
        _check_torn_slots(report, meta.manifest_record(version),
                          K_MANIFEST_TORN, f"v{version} manifest",
                          model=name)
    for version in (0, 1):
        state = flags.states[version]
        step = flags.steps[version]
        if state == FLAG_ACTIVE:
            report.add(Finding(
                K_STALE_ACTIVE, SEV_WARN,
                f"v{version} still ACTIVE (step stamp {step}): a "
                f"checkpoint was mid-pull at crash time; its manifest "
                f"cannot be trusted", model=name,
                repair=lambda m=meta, v=version: _demote_dedup(m, v)))
        if state != FLAG_DONE:
            continue
        digests = meta.read_manifest(version)
        if len(digests) != expected:
            report.add(Finding(
                K_MANIFEST_BAD, SEV_ERROR,
                f"v{version} DONE@{step} manifest lists {len(digests)} "
                f"chunks, the layout needs {expected}", model=name,
                repair=lambda m=meta, v=version: _demote_dedup(m, v)))
            continue
        missing = [digest for digest in digests
                   if store is None or store.lookup(digest) is None]
        if missing:
            report.add(Finding(
                K_MANIFEST_CHUNK_MISSING, SEV_ERROR,
                f"v{version} DONE@{step} references "
                f"{len(set(missing))} chunks the store does not hold "
                f"(e.g. {missing[0].hex()[:12]})", model=name,
                repair=lambda m=meta, v=version: _demote_dedup(m, v)))
            continue
        for digest in digests:
            recomputed[digest] = recomputed.get(digest, 0) + 1


def _demote_dedup(meta, version: int) -> None:
    """Demote a dedup slot and clear its manifest; references the
    manifest held surface as chunk-ref leaks the next pass lowers."""
    _demote(meta, version)
    meta.write_manifest(version, [])


def _free_chunk_table(pool) -> None:
    """Reclaim an unreadable ChunkTable extent (pre-first-commit crash:
    no chunk was ever stored behind it)."""
    from repro.pmem.chunks import CHUNK_TABLE_TAG

    for allocation in pool.find_by_tag(CHUNK_TABLE_TAG):
        pool.free(allocation)
    pool.__dict__.pop("_chunk_store", None)


def _demote_and_unlink(meta, version: int) -> None:
    """Demote the slot and zero its MIndex address, so recovery stops
    chasing an extent that is gone; the next attach re-creates it."""
    _demote(meta, version)
    addrs = list(meta.mindex.version_addrs)
    if addrs[version]:
        addrs[version] = 0
        meta.mindex.version_addrs = tuple(addrs)
        regions = list(meta.data_regions)
        regions[version] = None
        meta.data_regions = tuple(regions)
        meta._mindex_record.write(meta.mindex.pack())


def _fsck_groups(report: FsckReport, pool, table, allocator,
                 claim: Callable[[int, str], bool]) -> None:
    """Verify the parallel-group layer, if this pool has one.

    Group invariants are *cross-model*: beyond the usual table/record
    structural health, the committed step must be servable — every
    member must still hold a DONE slot at it.  The repair for a
    violated step is demote-only: roll the record back to the newest
    step every member retains (possibly 0), never forward.
    """
    from repro.core.group import (GROUP_TABLE_TAG, GroupRecord, GroupTable)
    from repro.core.index import FLAG_DONE, ModelMeta

    if not pool.find_by_tag(GROUP_TABLE_TAG):
        return
    try:
        gtable = GroupTable.open(pool)
    except PmemError as exc:
        # Only a crash before the table's very first commit gets here —
        # no group was ever inserted, so the extent is pure leakage.
        report.add(Finding(
            K_GROUPTABLE_UNREADABLE, SEV_WARN, str(exc),
            repair=lambda p=pool: _free_group_table(p)))
        return
    claim(gtable._record.allocation.addr, "<GroupTable>")
    _check_torn_slots(report, gtable._record, K_GROUPTABLE_TORN,
                      "GroupTable")
    for name in gtable.names():
        addr = gtable.lookup(name)
        if allocator.lookup(addr) is None:
            report.add(Finding(
                K_GROUP_DANGLING, SEV_ERROR,
                f"group table entry points at {addr:#x}, which no "
                f"committed extent backs", model=name,
                repair=lambda t=gtable, n=name: t.remove(n)))
            continue
        try:
            record = GroupRecord.open(pool.device.allocation_at(addr))
        except (ReproError, InvalidAddressError) as exc:
            # Dropping the entry turns the region into a leak the next
            # pass frees; re-registration recreates the group at step 0.
            report.add(Finding(
                K_GROUP_RECORD_UNREADABLE, SEV_ERROR,
                f"group record at {addr:#x} unreadable: {exc}",
                model=name,
                repair=lambda t=gtable, n=name: t.remove(n)))
            continue
        claim(addr, f"<group:{name}>")
        _check_torn_slots(report, record.record, K_GROUP_RECORD_TORN,
                          "group commit record", model=name)
        try:
            layout = record.layout()
        except ReproError as exc:
            report.add(Finding(
                K_GROUP_RECORD_UNREADABLE, SEV_ERROR,
                f"group layout blob invalid: {exc}", model=name,
                repair=lambda t=gtable, n=name: t.remove(n)))
            continue
        missing = [m for m in layout.members if m not in table]
        if missing:
            report.add(Finding(
                K_GROUP_MEMBER_MISSING, SEV_ERROR,
                f"{len(missing)} of {len(layout.members)} members "
                f"missing from the ModelTable (e.g. {missing[0]!r})",
                model=name,
                repair=lambda t=gtable, n=name: t.remove(n)))
            continue
        if record.committed_step <= 0:
            continue
        # Cross-model invariant: every member holds DONE at the
        # committed step.  Unreadable member metadata is skipped here —
        # its own finding removes the member, and the member-missing
        # cascade then drops the group on a later pass.
        shared: Optional[set] = None
        readable = True
        for member in layout.members:
            try:
                meta = ModelMeta.open(pool, table.lookup(member),
                                      lenient=True)
                flags = meta.read_flags()
            except (ReproError, InvalidAddressError):
                readable = False
                break
            done = {flags.steps[v] for v in range(len(flags.states))
                    if flags.states[v] == FLAG_DONE}
            shared = done if shared is None else shared & done
        if not readable or shared is None:
            continue
        if record.committed_step not in shared:
            best = max((s for s in shared
                        if 0 < s < record.committed_step), default=0)
            report.add(Finding(
                K_GROUP_STEP_UNRESTORABLE, SEV_ERROR,
                f"committed step {record.committed_step} is not DONE on "
                f"every member; newest fully-held step is {best}",
                model=name,
                repair=lambda r=record, s=best: r.commit(s)))


def _free_group_table(pool) -> None:
    """Reclaim an unreadable GroupTable extent (pre-first-commit crash:
    no group was ever inserted behind it)."""
    from repro.core.group import GROUP_TABLE_TAG

    for allocation in pool.find_by_tag(GROUP_TABLE_TAG):
        pool.free(allocation)


def _count_findings(report: FsckReport, obs) -> None:
    if obs is None:
        return
    obs.metrics.counter("fsck.runs").inc()
    for kind, count in report.kinds().items():
        obs.metrics.counter(f"fsck.findings.{kind}").inc(count)


# -- repair --------------------------------------------------------------------


def repair(pool: PmemPool, obs=None, max_passes: int = 4) -> RepairResult:
    """Apply every finding's repair action until the pool verifies clean.

    Repairs cascade (dropping a dangling entry turns its extents into
    leaks the next pass frees), so the walk re-runs after every pass;
    *max_passes* bounds pathological pools.  Returns the actions taken
    and the final report — ``result.clean`` is the contract the
    crash-point sweep asserts.
    """
    actions: List[str] = []
    passes = 0
    report = fsck(pool, obs=obs)
    while not report.clean and passes < max_passes:
        fixable = [f for f in report.findings if f.repair is not None]
        if not fixable:
            break
        for finding in fixable:
            finding.repair()
            actions.append(f"{finding.kind}"
                           + (f" [{finding.model}]" if finding.model
                              else ""))
            if obs is not None:
                obs.metrics.counter(
                    f"fsck.repairs.{finding.kind}").inc()
        passes += 1
        report = fsck(pool, obs=obs)
    if obs is not None:
        obs.metrics.counter("fsck.repair_passes").inc(passes)
    return RepairResult(actions, passes, report)

"""The persistent extent allocator (the paper's *Allocator* + *AllocTable*).

Every data region Portus places on PMem is recorded in the AllocTable — a
:class:`~repro.pmem.layout.CommittedRecord` holding the full extent list —
so ownership survives power loss.  The update order is the crash-safe one:

* allocate: reserve device space first, then commit the table.  A crash
  between the two leaks device space, which :meth:`reconcile` (and the
  repacking tool) reclaims by diffing live allocations against the table.
* free: commit the table first, then release device space.  A crash
  between the two also only leaks.

Space is therefore never *lost* to corruption, only temporarily leaked in
a direction the GC can always fix.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Optional

from repro.errors import PmemError, PoolExhausted
from repro.hw.device import Allocation, MemoryDevice
from repro.pmem.layout import CommittedRecord, blob_capacity

_ENTRY = struct.Struct("<QQ64s")
_COUNT = struct.Struct("<I")

TAG_BYTES = 64


class AllocRecord:
    """One committed extent: address, size, owner tag."""

    def __init__(self, addr: int, size: int, tag: str) -> None:
        if len(tag.encode("utf-8")) > TAG_BYTES:
            raise PmemError(f"allocation tag too long: {tag!r}")
        self.addr = addr
        self.size = size
        self.tag = tag

    def pack(self) -> bytes:
        return _ENTRY.pack(self.addr, self.size, self.tag.encode("utf-8"))

    @classmethod
    def unpack(cls, data: bytes, offset: int) -> "AllocRecord":
        addr, size, raw_tag = _ENTRY.unpack_from(data, offset)
        return cls(addr, size, raw_tag.rstrip(b"\x00").decode("utf-8"))

    def __repr__(self) -> str:
        return f"<AllocRecord {self.tag!r}@{self.addr:#x}+{self.size}>"


def table_slot_size(max_extents: int) -> int:
    """Slot bytes needed for a table of *max_extents* entries."""
    return blob_capacity(_COUNT.size + max_extents * _ENTRY.size)


class ExtentAllocator:
    """Allocates device extents and persists the AllocTable."""

    def __init__(self, device: MemoryDevice, table: CommittedRecord,
                 max_extents: int) -> None:
        self.device = device
        self._table = table
        self.max_extents = max_extents
        self._records: Dict[int, AllocRecord] = {}
        self._live: Dict[int, Allocation] = {}

    # -- persistence ------------------------------------------------------------

    def _commit(self) -> None:
        entries = sorted(self._records.values(), key=lambda r: r.addr)
        payload = _COUNT.pack(len(entries)) + b"".join(
            record.pack() for record in entries)
        self._table.write(payload)

    def load(self) -> None:
        """Rebuild the record map from the committed table (may be empty)."""
        committed = self._table.read()
        self._records.clear()
        if committed is None:
            return
        payload, _generation = committed
        (count,) = _COUNT.unpack_from(payload)
        for i in range(count):
            record = AllocRecord.unpack(payload, _COUNT.size + i * _ENTRY.size)
            self._records[record.addr] = record

    # -- allocation API ------------------------------------------------------------

    def alloc(self, size: int, tag: str) -> Allocation:
        """Reserve an extent, commit its record, return the allocation."""
        if len(self._records) >= self.max_extents:
            raise PoolExhausted(
                f"AllocTable full ({self.max_extents} extents)")
        try:
            allocation = self.device.alloc(size, tag=tag)
        except Exception as exc:
            raise PoolExhausted(str(exc)) from exc
        self._records[allocation.addr] = AllocRecord(allocation.addr, size,
                                                     tag)
        self._live[allocation.addr] = allocation
        hook = self.device.crash_hook
        if hook is not None:
            # Crash point: device space reserved, table not yet committed
            # — power loss here leaks the extent (reconcile reclaims it).
            hook("alloc.commit", tag)
        self._commit()
        return allocation

    def free(self, allocation: Allocation) -> None:
        """Commit the removal, then release device space."""
        if allocation.addr not in self._records:
            raise PmemError(
                f"allocation at {allocation.addr:#x} not in AllocTable")
        del self._records[allocation.addr]
        self._live.pop(allocation.addr, None)
        self._commit()
        hook = self.device.crash_hook
        if hook is not None:
            # Crash point: removal committed, device space not yet
            # released — power loss here leaks (reconcile reclaims).
            hook("free.release", allocation.tag)
        allocation.free()

    def records(self) -> List[AllocRecord]:
        """Committed extents, sorted by address."""
        return sorted(self._records.values(), key=lambda r: r.addr)

    def lookup(self, addr: int) -> Optional[AllocRecord]:
        return self._records.get(addr)

    def find_by_tag(self, tag: str) -> List[AllocRecord]:
        return [r for r in self.records() if r.tag == tag]

    def allocation_for(self, record: AllocRecord) -> Allocation:
        """The live device allocation backing a committed record."""
        allocation = self._live.get(record.addr)
        if allocation is None or allocation.freed:
            allocation = self.device.allocation_at(record.addr)
            self._live[record.addr] = allocation
        return allocation

    def reconcile(self, protected: List[Allocation]) -> List[Allocation]:
        """Free device allocations not covered by the committed table.

        *protected* allocations (pool metadata) are never touched.
        Returns the reclaimed allocations — crash leakage the paper's
        repacking tool cleans up.
        """
        protected_addrs = {a.addr for a in protected}
        committed_addrs = set(self._records)
        leaked = [
            allocation for allocation in self.device.allocations
            if allocation.addr not in committed_addrs
            and allocation.addr not in protected_addrs
        ]
        for allocation in leaked:
            self._live.pop(allocation.addr, None)
            allocation.free()
        # Rebuild the live map for every committed record.
        self._live = {
            addr: self.device.allocation_at(addr)
            for addr in self._records
        }
        return leaked

    @property
    def committed_bytes(self) -> int:
        return sum(record.size for record in self._records.values())

"""PmemPool: a formatted devdax namespace.

The pool occupies a raw PMem device the way Portus uses devdax: one
``mmap`` of the whole namespace, no kernel filesystem underneath.  Layout::

    +--------------+---------------------+--------------------------------+
    | superblock   | AllocTable          | data extents (ExtentAllocator) |
    | (A/B record) | (A/B record)        |                                |
    +--------------+---------------------+--------------------------------+

``format`` writes a fresh superblock; ``open`` validates it and replays
the AllocTable, reconciling any space leaked by a crash.  ``crash``
power-fails the underlying device (unflushed writes are lost or torn) and
returns a closed pool that must be re-opened — which is exactly what the
Portus daemon does on restart.
"""

from __future__ import annotations

import struct
from typing import List

from repro.errors import PmemError, PoolCorruption
from repro.hw.device import Allocation, MemoryDevice
from repro.pmem.alloc import ExtentAllocator, table_slot_size
from repro.pmem.layout import CommittedRecord, blob_capacity

_SUPER = struct.Struct("<IIQQ")  # magic, version, max_extents, data_capacity
_POOL_MAGIC = 0x504D454D  # "PMEM"
_POOL_VERSION = 1

_SUPER_SLOT = blob_capacity(_SUPER.size)


class PmemPool:
    """A formatted pool over one PMem device namespace."""

    def __init__(self, device: MemoryDevice, meta: Allocation,
                 allocator: ExtentAllocator) -> None:
        self.device = device
        self.meta = meta
        self.allocator = allocator
        self.closed = False

    # -- lifecycle ---------------------------------------------------------------

    @classmethod
    def format(cls, device: MemoryDevice,
               max_extents: int = 4096) -> "PmemPool":
        """Initialize a fresh pool on an empty device."""
        if device.used_bytes != 0:
            raise PmemError(
                f"{device.name}: refusing to format a non-empty device")
        meta_size = 2 * _SUPER_SLOT + 2 * table_slot_size(max_extents)
        meta = device.alloc(meta_size, tag="pool-meta")
        superblock = CommittedRecord(meta, 0, _SUPER_SLOT)
        data_capacity = device.capacity - meta_size
        superblock.write(_SUPER.pack(_POOL_MAGIC, _POOL_VERSION,
                                     max_extents, data_capacity))
        table = CommittedRecord(meta, 2 * _SUPER_SLOT,
                                table_slot_size(max_extents))
        allocator = ExtentAllocator(device, table, max_extents)
        allocator._commit()
        return cls(device, meta, allocator)

    @classmethod
    def open(cls, device: MemoryDevice) -> "PmemPool":
        """Open (and recover) an existing pool after a restart or crash."""
        try:
            meta = device.allocation_at(0)
        except Exception as exc:
            raise PoolCorruption(
                f"{device.name}: no pool metadata at offset 0") from exc
        superblock = CommittedRecord(meta, 0, _SUPER_SLOT)
        committed = superblock.read()
        if committed is None:
            raise PoolCorruption(f"{device.name}: superblock unreadable")
        payload, _generation = committed
        magic, version, max_extents, _capacity = _SUPER.unpack(payload)
        if magic != _POOL_MAGIC:
            raise PoolCorruption(f"{device.name}: bad pool magic {magic:#x}")
        if version != _POOL_VERSION:
            raise PoolCorruption(
                f"{device.name}: unsupported pool version {version}")
        table = CommittedRecord(meta, 2 * _SUPER_SLOT,
                                table_slot_size(max_extents))
        allocator = ExtentAllocator(device, table, max_extents)
        allocator.load()
        allocator.reconcile(protected=[meta])
        return cls(device, meta, allocator)

    def close(self) -> None:
        self.closed = True

    def crash(self, rng) -> None:
        """Power-fail the device and close this handle."""
        self.device.crash(rng)
        self.close()

    # -- allocation facade ----------------------------------------------------------

    def _check_open(self) -> None:
        if self.closed:
            raise PmemError("pool handle is closed")

    def alloc(self, size: int, tag: str) -> Allocation:
        """Allocate a crash-tracked data extent."""
        self._check_open()
        return self.allocator.alloc(size, tag)

    def free(self, allocation: Allocation) -> None:
        self._check_open()
        self.allocator.free(allocation)

    def find_by_tag(self, tag: str) -> List[Allocation]:
        """Live allocations whose AllocTable tag matches exactly."""
        self._check_open()
        return [self.allocator.allocation_for(record)
                for record in self.allocator.find_by_tag(tag)]

    @property
    def used_bytes(self) -> int:
        return self.allocator.committed_bytes

    @property
    def free_bytes(self) -> int:
        return self.device.free_bytes

    def __repr__(self) -> str:
        state = "closed" if self.closed else "open"
        return f"<PmemPool on {self.device.name} {state} " \
               f"extents={len(self.allocator.records())}>"

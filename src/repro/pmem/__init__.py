"""Persistent-memory management: pool, crash-safe records, extent allocator.

This is the devdax substrate Portus builds its three-level index on: a
:class:`PmemPool` formats a raw PMem namespace with a superblock and a
crash-safe metadata area, and the :class:`ExtentAllocator` hands out data
regions whose ownership records (the paper's *AllocTable*) survive power
loss through double-slot committed writes.
"""

from repro.pmem.alloc import AllocRecord, ExtentAllocator
from repro.pmem.fsck import Finding, FsckReport, RepairResult, fsck, repair
from repro.pmem.layout import CommittedRecord, pack_blob, unpack_blob
from repro.pmem.pool import PmemPool

__all__ = [
    "AllocRecord",
    "CommittedRecord",
    "ExtentAllocator",
    "Finding",
    "FsckReport",
    "PmemPool",
    "RepairResult",
    "fsck",
    "pack_blob",
    "repair",
    "unpack_blob",
]

"""On-PMem binary layouts: CRC-framed blobs and double-slot records.

Everything Portus persists as metadata (superblock, AllocTable,
ModelTable, MIndex records, version flags) uses two building blocks:

* :func:`pack_blob` / :func:`unpack_blob` — a length-prefixed, CRC32-
  protected frame.  A torn or partial write is detected by the checksum,
  never silently accepted.
* :class:`CommittedRecord` — the classic A/B double-slot update: two blob
  slots plus a generation number inside each frame.  An update writes the
  *older* slot and persists it; readers take the valid slot with the
  highest generation.  A crash at any point leaves at least one valid
  slot, so metadata updates are atomic with respect to power failure.
"""

from __future__ import annotations

import struct
import zlib
from typing import Optional, Tuple

from repro.errors import PmemError, PoolCorruption
from repro.hw.content import ByteContent
from repro.hw.device import Allocation

_FRAME_MAGIC = 0x504F5254  # "PORT"
_HEADER = struct.Struct("<IIQI")  # magic, length, generation, crc32


def blob_capacity(payload_size: int) -> int:
    """Bytes a frame of *payload_size* occupies on PMem."""
    return _HEADER.size + payload_size


def pack_blob(payload: bytes, generation: int = 0) -> bytes:
    """Frame *payload* with magic, length, generation and CRC."""
    crc = zlib.crc32(payload) & 0xFFFFFFFF
    return _HEADER.pack(_FRAME_MAGIC, len(payload), generation, crc) + payload


def unpack_blob(data: bytes) -> Tuple[bytes, int]:
    """Validate and unwrap a frame; returns ``(payload, generation)``.

    Raises :class:`PoolCorruption` on bad magic, truncation, or CRC
    mismatch — the caller decides whether that is fatal (superblock) or
    expected (the stale slot of a double-slot record).
    """
    if len(data) < _HEADER.size:
        raise PoolCorruption(f"frame truncated: {len(data)} bytes")
    magic, length, generation, crc = _HEADER.unpack_from(data)
    if magic != _FRAME_MAGIC:
        raise PoolCorruption(f"bad frame magic {magic:#x}")
    payload = data[_HEADER.size:_HEADER.size + length]
    if len(payload) != length:
        raise PoolCorruption(
            f"frame payload truncated: want {length}, have {len(payload)}")
    if zlib.crc32(payload) & 0xFFFFFFFF != crc:
        raise PoolCorruption("frame checksum mismatch")
    return payload, generation


class CommittedRecord:
    """A crash-atomic record stored as two alternating slots on PMem.

    The record lives inside *allocation* at ``offset``; each slot is
    ``slot_size`` bytes (header + max payload).  ``write`` targets the slot
    *not* holding the newest valid generation and persists it before
    returning, so the previous committed value stays intact throughout.
    """

    def __init__(self, allocation: Allocation, offset: int,
                 slot_size: int) -> None:
        if slot_size <= _HEADER.size:
            raise ValueError(f"slot too small: {slot_size}")
        self.allocation = allocation
        self.offset = offset
        self.slot_size = slot_size

    @property
    def footprint(self) -> int:
        """Total bytes the record occupies (two slots)."""
        return 2 * self.slot_size

    def max_payload(self) -> int:
        return self.slot_size - _HEADER.size

    def _slot_offset(self, index: int) -> int:
        return self.offset + index * self.slot_size

    def _read_slot(self, index: int) -> Optional[Tuple[bytes, int]]:
        try:
            raw = self.allocation.read_bytes(self._slot_offset(index),
                                             self.slot_size)
        except ValueError:
            # Torn content materialization — the slot is poison.
            return None
        try:
            return unpack_blob(raw)
        except PoolCorruption:
            return None

    def read(self) -> Optional[Tuple[bytes, int]]:
        """Newest committed ``(payload, generation)``, or None if empty."""
        best: Optional[Tuple[bytes, int]] = None
        for index in (0, 1):
            slot = self._read_slot(index)
            if slot is not None and (best is None or slot[1] > best[1]):
                best = slot
        return best

    def slot_states(self) -> Tuple[object, object]:
        """Per-slot health, for integrity tooling (fsck).

        Each slot reports ``("valid", generation)``, ``"empty"`` (all
        zero bytes — a slot no write ever reached, normal for young
        records), or ``"torn"`` (unreadable but not blank — a write that
        power loss cut short).
        """
        states = []
        for index in (0, 1):
            slot = self._read_slot(index)
            if slot is not None:
                states.append(("valid", slot[1]))
                continue
            try:
                raw = self.allocation.read_bytes(self._slot_offset(index),
                                                 self.slot_size)
            except ValueError:
                states.append("torn")  # torn-content materialization
                continue
            states.append("empty" if not any(raw) else "torn")
        return tuple(states)

    def write(self, payload: bytes) -> int:
        """Commit *payload* crash-atomically; returns the new generation."""
        if len(payload) > self.max_payload():
            raise PmemError(
                f"payload of {len(payload)} bytes exceeds slot capacity "
                f"{self.max_payload()}")
        hook = self.allocation.device.crash_hook
        if hook is not None:
            # Crash point: power loss before the slot write begins.
            hook("record.write", self.allocation.tag)
        current = self.read()
        if current is None:
            generation, target = 1, 0
        else:
            generation = current[1] + 1
            # Overwrite the slot that does NOT hold the newest value.
            newest_slot = None
            for index in (0, 1):
                slot = self._read_slot(index)
                if slot is not None and slot[1] == current[1]:
                    newest_slot = index
                    break
            target = 1 - (newest_slot if newest_slot is not None else 0)
        frame = pack_blob(payload, generation)
        slot_offset = self._slot_offset(target)
        self.allocation.write(slot_offset, ByteContent(frame))
        if hook is not None:
            # Crash point: the frame sits in the store buffer, unflushed
            # — power loss here loses or tears exactly this slot.
            hook("record.persist", self.allocation.tag)
        self.allocation.persist(slot_offset, len(frame))
        return generation

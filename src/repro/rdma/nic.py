"""The RNIC model: DMA engines, MR table, and datapath composition.

An :class:`Rnic` owns a fabric port and two host-side DMA channels (what
its PCIe slot can sustain when reading/writing host DRAM).  When the DMA
target is GPU memory, the path instead crosses the GPU's own PCIe channels
— including the BAR-read cap the paper measures at 5.8 GB/s (Fig. 10),
because BAR-mapped reads cannot be prefetched.  Writes to GPU memory are
posted writes and are not BAR-limited.

The MR table maps rkeys to registered regions; every one-sided operation
arriving at this NIC is validated against it, exactly like a real HCA's
protection checks.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, TYPE_CHECKING

from repro.errors import MemoryRegionError, RkeyViolation
from repro.hw.device import Allocation, MemoryDevice
from repro.hw.devices import GpuMemory
from repro.net.fabric import Fabric, Port
from repro.sim import Environment, SharedChannel
from repro.units import gbytes, usecs

if TYPE_CHECKING:
    from repro.rdma.verbs import MemoryRegion


class Rnic:
    """One RDMA-capable NIC attached to a node and a fabric."""

    def __init__(self, env: Environment, node, fabric: Fabric,
                 name: Optional[str] = None,
                 dma_read_bw_bps: float = gbytes(8.3),
                 dma_write_bw_bps: float = gbytes(9.0),
                 read_latency_ns: int = usecs(2.5),
                 write_latency_ns: int = usecs(1.9),
                 send_latency_ns: int = usecs(1.5),
                 mr_register_latency_ns: int = usecs(40),
                 mr_pin_ns_per_byte: float = 0.25) -> None:
        self.env = env
        self.node = node
        self.fabric = fabric
        self.name = name or f"{node.name}.rnic"
        self.port: Port = fabric.attach(self.name)
        self.dma_read = SharedChannel(env, dma_read_bw_bps,
                                      f"{self.name}.dma.read")
        self.dma_write = SharedChannel(env, dma_write_bw_bps,
                                       f"{self.name}.dma.write")
        self.read_latency_ns = read_latency_ns
        self.write_latency_ns = write_latency_ns
        self.send_latency_ns = send_latency_ns
        self.mr_register_latency_ns = mr_register_latency_ns
        self.mr_pin_ns_per_byte = mr_pin_ns_per_byte
        self._mr_table: Dict[int, "MemoryRegion"] = {}
        self._peer_devices: set = set()
        self._next_key = 0x1000
        #: Every QueuePair created on this NIC (fault injection surface).
        self.qps: List = []
        #: Optional fault-injection hook consulted at WR post time:
        #: ``hook(kind, label, length)`` returns None (healthy), an
        #: exception instance (the WR completes with that error), or the
        #: string ``"hang"`` (the WR never completes — a wedged QP).
        self.fault_hook = None
        #: Per-WR accounting (one-sided verbs posted through this NIC's
        #: QPs).  The transfer engine's credit flow rides the completion
        #: events; these counters are the observable trace of it, and
        #: ``wrs_inflight`` is what a test asserts against a QP depth.
        self.wrs_posted = 0
        self.wrs_completed = 0
        self.wrs_failed = 0
        #: Optional completion callback ``hook(kind, label, length, ok)``
        #: fired as each one-sided WR retires (CQ polling stand-in).
        self.completion_hook = None
        node.nic = self

    @property
    def wrs_inflight(self) -> int:
        """One-sided WRs posted but not yet retired."""
        return self.wrs_posted - self.wrs_completed - self.wrs_failed

    def _wr_posted(self) -> None:
        self.wrs_posted += 1

    def _wr_retired(self, kind: str, label: str, length: int,
                    ok: bool) -> None:
        if ok:
            self.wrs_completed += 1
        else:
            self.wrs_failed += 1
        if self.completion_hook is not None:
            self.completion_hook(kind, label, length, ok)

    # -- memory registration -----------------------------------------------------

    def register_mr(self, allocation: Allocation) -> Generator:
        """Process: pin *allocation* and install it in the MR table.

        GPU allocations require peer memory to have been enabled for the
        owning device (see :func:`repro.rdma.enable_peer_memory`), exactly
        as ibv_reg_mr on a CUDA pointer requires nv_peer_mem.

        Cost scales with the pinned size (page pinning + IOMMU mapping,
        ~250 ms/GiB) — the reason Portus registers regions once per job
        and never per checkpoint (§III-D2).
        """
        from repro.rdma.verbs import MemoryRegion

        device = allocation.device
        if isinstance(device, GpuMemory) and device not in self._peer_devices:
            raise MemoryRegionError(
                f"{self.name}: peer memory not enabled for {device.name}; "
                "call enable_peer_memory(nic, gpu) first")
        yield self.env.timeout(
            self.mr_register_latency_ns
            + int(allocation.size * self.mr_pin_ns_per_byte))
        self._next_key += 2
        mr = MemoryRegion(nic=self, allocation=allocation,
                          lkey=self._next_key, rkey=self._next_key + 1)
        self._mr_table[mr.rkey] = mr
        return mr

    def deregister_mr(self, mr: "MemoryRegion") -> None:
        """Invalidate *mr*; later one-sided access raises RkeyViolation."""
        if self._mr_table.pop(mr.rkey, None) is None:
            raise MemoryRegionError(
                f"{self.name}: rkey {mr.rkey:#x} is not registered")
        mr.valid = False

    def lookup_mr(self, rkey: int, addr: int, length: int) -> "MemoryRegion":
        """Validate a one-sided access against the MR table."""
        mr = self._mr_table.get(rkey)
        if mr is None or not mr.valid:
            raise RkeyViolation(f"{self.name}: stale or unknown rkey "
                                f"{rkey:#x}")
        if addr < mr.addr or addr + length > mr.addr + mr.length:
            raise RkeyViolation(
                f"{self.name}: access [{addr:#x}, {addr + length:#x}) "
                f"outside MR [{mr.addr:#x}, {mr.addr + mr.length:#x})")
        return mr

    @property
    def registered_mrs(self) -> int:
        return len(self._mr_table)

    # -- datapath composition -------------------------------------------------------

    def egress_channels(self, device: MemoryDevice) -> List[SharedChannel]:
        """Channels data crosses leaving *device* toward this NIC's port."""
        if isinstance(device, GpuMemory):
            # Peer-to-peer PCIe: BAR-mapped reads, no host DRAM involved.
            return [device.read_channel, device.pcie_read]
        return [device.read_channel, self.dma_read]

    def ingress_channels(self, device: MemoryDevice) -> List[SharedChannel]:
        """Channels data crosses arriving from the port into *device*."""
        if isinstance(device, GpuMemory):
            return [device.pcie_write, device.write_channel]
        return [self.dma_write, device.write_channel]

    def __repr__(self) -> str:
        return f"<Rnic {self.name}>"

"""RDMA substrate: verbs (MRs, QPs, one-sided READ/WRITE, SEND/RECV),
the RNIC model with its DMA paths (including the GPU BAR read penalty),
NVIDIA-PeerMem-style GPU registration, and RPC-over-RDMA for the BeeGFS
baseline.
"""

from repro.rdma.nic import Rnic
from repro.rdma.peer_mem import enable_peer_memory
from repro.rdma.rpc import RpcClient, RpcServer
from repro.rdma.verbs import MemoryRegion, QueuePair, connect

__all__ = [
    "MemoryRegion",
    "QueuePair",
    "Rnic",
    "RpcClient",
    "RpcServer",
    "connect",
    "enable_peer_memory",
]

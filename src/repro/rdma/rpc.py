"""RPC-over-RDMA: the two-sided protocol used by the BeeGFS baseline.

The paper attributes part of BeeGFS's checkpoint cost to its two-sided
RPCoRDMA transport: every chunk of data is a SEND that the *server CPU*
must receive, stage, and acknowledge, unlike Portus's one-sided reads.
This module models exactly that: bulk payloads are cut into chunks, each
chunk pays the two-sided wire cost plus a per-chunk server CPU handling
cost, and the caller waits for the final acknowledgement.

The resulting effective bandwidth — chunk_size / (wire_time + cpu_time +
ack) — is what Table I measures as the 30 % "Transmission (RDMA)" share,
about 3 GB/s with default calibration.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator

from repro.errors import ProtocolError, ReproError
from repro.hw.node import CpuSet
from repro.rdma.verbs import QueuePair
from repro.sim import Environment, Event, Resource
from repro.units import kib, usecs

#: BeeGFS-style streaming chunk (its wire protocol moves 512 KiB buffers).
DEFAULT_CHUNK_BYTES = kib(512)
#: Per-chunk server-side cost: recv completion, staging copy into the
#: daemon's buffer pool, work-queue hop, ack post.  Calibrated (with the
#: client staging copy and the wire) so the two-sided streaming rate lands
#: where Table I's 30 % "Transmission (RDMA)" share puts it; see
#: repro.harness.calibration for the derivation.
DEFAULT_CHUNK_CPU_NS = usecs(89)
#: Fixed per-call server cost: request parse, dispatch, response build.
DEFAULT_CALL_CPU_NS = usecs(8)

Handler = Callable[[Any], Generator]


class RpcServer:
    """Serves RPCs arriving on registered queue pairs."""

    def __init__(self, env: Environment, cpus: CpuSet,
                 chunk_bytes: int = DEFAULT_CHUNK_BYTES,
                 chunk_cpu_ns: int = DEFAULT_CHUNK_CPU_NS,
                 call_cpu_ns: int = DEFAULT_CALL_CPU_NS) -> None:
        self.env = env
        self.cpus = cpus
        self.chunk_bytes = chunk_bytes
        self.chunk_cpu_ns = chunk_cpu_ns
        self.call_cpu_ns = call_cpu_ns
        self._handlers: Dict[str, Handler] = {}
        self.calls_served = 0

    def register(self, op: str, handler: Handler) -> None:
        """Install *handler* for operation *op*.

        A handler is a generator function taking the request payload and
        returning ``(result, response_size_bytes)``.
        """
        self._handlers[op] = handler

    def serve(self, qp: QueuePair) -> Generator:
        """Process: serve requests on *qp* forever (run via env.process)."""
        while True:
            request = yield from qp.recv()
            # Each request is handled by its own worker so a slow handler
            # does not head-of-line block the connection.
            self.env.process(self._handle(qp, request),
                             name=f"rpc-{request.get('op')}")

    def _handle(self, qp: QueuePair, request: Dict[str, Any]) -> Generator:
        op = request.get("op")
        handler = self._handlers.get(op)
        if handler is None:
            raise ProtocolError(f"no RPC handler for op {op!r}")
        yield from self.cpus.execute(self.call_cpu_ns)
        payload_size = int(request.get("payload_size", 0))
        if payload_size:
            # Two-sided bulk: the server CPU touches every chunk.
            chunks = -(-payload_size // self.chunk_bytes)
            yield from self.cpus.execute(chunks * self.chunk_cpu_ns)
        try:
            result, response_size = yield from handler(request.get("args"))
        except ReproError as exc:
            # Application errors travel back to the caller; only transport
            # or programming errors may crash the daemon.
            self.calls_served += 1
            yield qp.send({"op": op, "error": exc}, size=128,
                          label=f"rpc-err-{op}")
            return
        self.calls_served += 1
        yield qp.send({"op": op, "result": result},
                      size=max(64, response_size), label=f"rpc-resp-{op}")


class RpcClient:
    """Issues RPCs over one queue pair, one outstanding call at a time.

    BeeGFS clients multiplex many connections for parallelism; callers that
    need concurrency open several clients (the striping layer does).
    """

    def __init__(self, env: Environment, qp: QueuePair) -> None:
        self.env = env
        self.qp = qp
        self._lock = Resource(env, capacity=1)

    def call(self, op: str, args: Any = None, payload_size: int = 0,
             request_size: int = 256) -> Generator:
        """Process: send a request (with optional bulk payload) and await
        the response.  Returns the handler's result.

        Calls from concurrent processes serialize on this connection —
        the kernel-client behaviour that makes all ranks of one node share
        a single bulk stream to the storage server.
        """
        lock = self._lock.request()
        yield lock
        try:
            wire_size = request_size + payload_size
            yield self.qp.send({"op": op, "args": args,
                                "payload_size": payload_size},
                               size=wire_size, label=f"rpc-{op}")
            response = yield from self.qp.recv()
        finally:
            self._lock.release(lock)
        if response.get("op") != op:
            raise ProtocolError(
                f"out-of-order RPC response: sent {op!r}, "
                f"got {response.get('op')!r}")
        error = response.get("error")
        if error is not None:
            raise error
        return response.get("result")

"""RDMA verbs: memory regions, queue pairs, one-sided and two-sided ops.

One-sided READ/WRITE move content between registered regions with *zero*
involvement of the remote CPU: the operation composes a channel path
(source device egress → wire → destination device ingress) and performs
the actual content copy when the simulated transfer completes.

Torn-snapshot detection: the source allocation's version is recorded when
the data starts flowing; if it changed by completion (someone wrote the
region mid-flight) the destination receives
:class:`~repro.hw.content.TornContent`.  This is how the async-checkpoint
invariant ("the pull must finish before the optimizer updates parameters")
becomes *testable* rather than assumed.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.errors import QpStateError, WorkRequestError
from repro.hw.content import TornContent
from repro.rdma.nic import Rnic
from repro.sim import Environment, Event, Store, Transfer
from repro.units import usecs

#: Time to create and transition a QP pair to RTS (driver + CM exchange).
QP_CONNECT_LATENCY_NS = usecs(120)


class MemoryRegion:
    """A registered, pinned region of device memory."""

    def __init__(self, nic: Rnic, allocation, lkey: int, rkey: int) -> None:
        self.nic = nic
        self.allocation = allocation
        self.lkey = lkey
        self.rkey = rkey
        self.valid = True

    @property
    def device(self):
        return self.allocation.device

    @property
    def addr(self) -> int:
        return self.allocation.addr

    @property
    def length(self) -> int:
        return self.allocation.size

    def __repr__(self) -> str:
        return f"<MemoryRegion rkey={self.rkey:#x} " \
               f"{self.device.name}@{self.addr:#x}+{self.length} " \
               f"{'valid' if self.valid else 'invalid'}>"


class QueuePair:
    """One end of a connected (RC) queue pair."""

    def __init__(self, env: Environment, nic: Rnic) -> None:
        self.env = env
        self.nic = nic
        self.remote: Optional["QueuePair"] = None
        self._recv_queue: Store = Store(env)
        self.connected = False
        #: Non-None once the QP transitioned to the error state.
        self.error: Optional[str] = None
        #: Flush generation: bumped by :meth:`flush`; outstanding WRs
        #: posted under an older generation complete with WR_FLUSH_ERR.
        self.epoch = 0
        self._flush_waiters: list = []
        nic.qps.append(self)

    def _bind(self, remote: "QueuePair") -> None:
        self.remote = remote
        self.connected = True

    def _require_connected(self) -> None:
        if self.error is not None:
            raise QpStateError(f"queue pair is in error state: {self.error}")
        if not self.connected or self.remote is None:
            raise QpStateError("queue pair is not in RTS state")

    def flush(self) -> None:
        """Invalidate every outstanding WR (their completions fail with
        :class:`WorkRequestError` and their data is discarded) — what a
        modify-to-ERR + drain does on a real QP."""
        self.epoch += 1
        waiters, self._flush_waiters = self._flush_waiters, []
        for parked in waiters:
            parked.succeed(None)

    def transition_to_error(self, reason: str = "QP error") -> None:
        """Move the QP to the error state: new posts are refused and
        outstanding WRs are flushed."""
        self.error = reason
        self.flush()

    # -- one-sided verbs -----------------------------------------------------------

    def read(self, local_mr: MemoryRegion, local_offset: int,
             rkey: int, remote_addr: int, length: int,
             label: str = "rdma-read") -> Event:
        """Post a one-sided READ: remote[addr..] -> local_mr[offset..].

        Returns the completion event (fires when the last byte lands and
        the copy has been applied).  Validation errors fail the event.
        """
        self._require_connected()
        completion = self.env.event()
        self.env.process(
            self._one_sided(completion, "read", local_mr, local_offset,
                            rkey, remote_addr, length, label),
            name=label)
        return completion

    def write(self, local_mr: MemoryRegion, local_offset: int,
              rkey: int, remote_addr: int, length: int,
              label: str = "rdma-write") -> Event:
        """Post a one-sided WRITE: local_mr[offset..] -> remote[addr..]."""
        self._require_connected()
        completion = self.env.event()
        self.env.process(
            self._one_sided(completion, "write", local_mr, local_offset,
                            rkey, remote_addr, length, label),
            name=label)
        return completion

    def _one_sided(self, completion: Event, kind: str,
                   local_mr: MemoryRegion, local_offset: int, rkey: int,
                   remote_addr: int, length: int,
                   label: str) -> Generator:
        posted_epoch = self.epoch
        self.nic._wr_posted()
        try:
            hook = self.nic.fault_hook
            if hook is not None:
                injected = hook(kind, label, length)
                if injected == "hang":
                    # The WR never completes (lost completion / wedged
                    # QP) unless a flush retires it.
                    yield from self._hang(label)
                elif injected is not None:
                    yield self.env.timeout(
                        self.nic.read_latency_ns if kind == "read"
                        else self.nic.write_latency_ns)
                    raise injected
            remote_nic = self.remote.nic
            fabric = self.nic.fabric
            if not local_mr.valid:
                raise QpStateError(f"local MR {local_mr!r} is invalid")
            if local_offset < 0 or local_offset + length > local_mr.length:
                raise QpStateError(
                    f"local access [{local_offset}, {local_offset + length})"
                    f" outside MR of length {local_mr.length}")
            remote_mr = remote_nic.lookup_mr(rkey, remote_addr, length)

            if kind == "read":
                src_mr, src_off = remote_mr, remote_addr - remote_mr.addr
                dst_mr, dst_off = local_mr, local_offset
                src_channels = remote_nic.egress_channels(remote_mr.device)
                dst_channels = self.nic.ingress_channels(local_mr.device)
                wire, wire_latency = fabric.path(remote_nic.port,
                                                 self.nic.port)
                base_latency = self.nic.read_latency_ns + 2 * wire_latency
            else:
                src_mr, src_off = local_mr, local_offset
                dst_mr, dst_off = remote_mr, remote_addr - remote_mr.addr
                src_channels = self.nic.egress_channels(local_mr.device)
                dst_channels = remote_nic.ingress_channels(remote_mr.device)
                wire, wire_latency = fabric.path(self.nic.port,
                                                 remote_nic.port)
                base_latency = self.nic.write_latency_ns + wire_latency

            version_before = src_mr.allocation.version
            content = src_mr.allocation.read(src_off, length)
            transfer = Transfer(
                self.env, src_channels + wire + dst_channels, length,
                latency_ns=base_latency, label=label)
            yield transfer
            if self.epoch != posted_epoch:
                # The QP was flushed mid-flight (abort / error
                # transition): the landed bytes are discarded and the
                # completion reports a flush error.
                raise WorkRequestError(f"{label}: WR flushed")
            if src_mr.allocation.version != version_before:
                content = TornContent(
                    length, note=f"{label}: source mutated mid-flight")
            dst_mr.allocation.write(dst_off, content)
        except BaseException as exc:  # noqa: BLE001 - surfaced via the event
            self.nic._wr_retired(kind, label, length, ok=False)
            completion.fail(exc)
            return
        self.nic._wr_retired(kind, label, length, ok=True)
        completion.succeed(length)

    def _hang(self, label: str) -> Generator:
        """Park until a flush retires the lost WR, then fail it."""
        parked = self.env.event()
        self._flush_waiters.append(parked)
        yield parked
        raise WorkRequestError(f"{label}: WR flushed after hang")

    # -- two-sided verbs ----------------------------------------------------------

    def send(self, payload: Any, size: int,
             label: str = "rdma-send") -> Event:
        """Post a two-sided SEND; completes when the payload is delivered.

        The receiver must consume it with :meth:`recv`.  Payloads are
        Python objects by reference; *size* is the wire size.
        """
        self._require_connected()
        completion = self.env.event()
        self.env.process(self._send(completion, payload, size, label),
                         name=label)
        return completion

    def _send(self, completion: Event, payload: Any, size: int,
              label: str) -> Generator:
        try:
            remote_nic = self.remote.nic
            wire, wire_latency = self.nic.fabric.path(self.nic.port,
                                                      remote_nic.port)
            # Two-sided transfers stage through host DRAM on both ends:
            # the sender's NIC DMA-reads the send buffer, the receiver's
            # NIC DMA-writes the posted receive buffer.
            channels = [self.nic.dma_read] + wire + [remote_nic.dma_write]
            transfer = Transfer(
                self.env, channels, size,
                latency_ns=self.nic.send_latency_ns + wire_latency,
                label=label)
            yield transfer
            yield self.remote._recv_queue.put((payload, size))
        except BaseException as exc:  # noqa: BLE001
            completion.fail(exc)
            return
        completion.succeed(size)

    def recv(self) -> Generator:
        """Process: wait for the next SEND from the peer; returns payload."""
        self._require_connected()
        payload, _size = yield self._recv_queue.get()
        return payload

    def __repr__(self) -> str:
        state = "RTS" if self.connected else "INIT"
        return f"<QueuePair {self.nic.name} {state}>"


def connect(env: Environment, initiator: Rnic,
            target: Rnic) -> Generator:
    """Process: establish an RC connection; returns (initiator_qp, target_qp).

    In the real system the two sides exchange QP numbers out of band (the
    Portus control plane does this over TCP); the simulation returns both
    endpoints to the caller, which hands the target QP to the server side.
    """
    yield env.timeout(QP_CONNECT_LATENCY_NS)
    qp_a = QueuePair(env, initiator)
    qp_b = QueuePair(env, target)
    qp_a._bind(qp_b)
    qp_b._bind(qp_a)
    return qp_a, qp_b

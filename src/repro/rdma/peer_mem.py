"""NVIDIA PeerMem equivalent: let an RNIC register GPU memory.

On the real system, loading the ``nv_peer_mem`` kernel module lets
``ibv_reg_mr`` pin CUDA allocations so the HCA can DMA directly over PCIe
peer-to-peer.  Here it is an explicit capability grant: without it, MR
registration of a GPU allocation fails exactly like the real driver does.
"""

from __future__ import annotations

from repro.errors import MemoryRegionError
from repro.hw.devices import GpuMemory
from repro.rdma.nic import Rnic


def enable_peer_memory(nic: Rnic, gpu: GpuMemory) -> None:
    """Grant *nic* peer-to-peer DMA access to *gpu*."""
    if not isinstance(gpu, GpuMemory):
        raise MemoryRegionError(
            f"peer memory applies to GPU devices, got {gpu!r}")
    nic._peer_devices.add(gpu)


def disable_peer_memory(nic: Rnic, gpu: GpuMemory) -> None:
    """Revoke peer access (module unload); existing MRs become unusable."""
    nic._peer_devices.discard(gpu)

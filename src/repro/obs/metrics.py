"""Counters, gauges, and HDR-style percentile histograms.

A :class:`MetricsRegistry` is a flat name -> instrument map the daemon,
client, engine, limiter, repacker, and fault injector all write into.
Everything is plain Python arithmetic on the caller's thread — recording
never touches the simulation clock, so instrumented runs keep simulated
timings bit-identical to uninstrumented ones.

The :class:`Histogram` follows the HdrHistogram bucketing scheme:
power-of-two exponent buckets subdivided into ``2**sub_bits`` linear
sub-buckets, giving a bounded relative error (~1/2**sub_bits, ~3% at the
default 5 bits) at O(1) record cost over the full ns..hours range of
simulated latencies.  Percentiles report each bucket's upper bound, so
they never under-state a latency.

Snapshots (:meth:`MetricsRegistry.snapshot`) are plain JSON-able dicts
with sorted keys — deterministic, diffable, and merged as-is into the
harness experiment reports.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional


class Counter:
    """Monotonic count (events, bytes, retries)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"{self.name}: counter increment {amount} < 0")
        self.value += amount

    def snapshot(self) -> Dict[str, Any]:
        return {"type": "counter", "value": self.value}

    def __repr__(self) -> str:
        return f"<Counter {self.name}={self.value}>"


class Gauge:
    """Last-written value plus the high-water mark (queue depths)."""

    __slots__ = ("name", "value", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0
        self.max = 0

    def set(self, value: int) -> None:
        self.value = value
        if value > self.max:
            self.max = value

    def snapshot(self) -> Dict[str, Any]:
        return {"type": "gauge", "value": self.value, "max": self.max}

    def __repr__(self) -> str:
        return f"<Gauge {self.name}={self.value} max={self.max}>"


class Histogram:
    """HDR-style log-bucketed histogram of non-negative integers."""

    __slots__ = ("name", "sub_bits", "_sub", "_buckets", "count", "total",
                 "min", "max")

    #: Percentiles every snapshot reports.
    PERCENTILES = (50.0, 90.0, 99.0, 99.9)

    def __init__(self, name: str, sub_bits: int = 5) -> None:
        if sub_bits < 1:
            raise ValueError(f"sub_bits must be >= 1, got {sub_bits}")
        self.name = name
        self.sub_bits = sub_bits
        self._sub = 1 << sub_bits
        self._buckets: Dict[int, int] = {}
        self.count = 0
        self.total = 0
        self.min: Optional[int] = None
        self.max: Optional[int] = None

    def _index(self, value: int) -> int:
        if value < self._sub:
            return value
        exponent = value.bit_length() - self.sub_bits - 1
        return (exponent + 1) * self._sub + ((value >> exponent) - self._sub)

    def _upper_bound(self, index: int) -> int:
        """Largest value mapping to *index* (what percentiles report)."""
        if index < self._sub:
            return index
        exponent = index // self._sub - 1
        mantissa = index % self._sub + self._sub
        return ((mantissa + 1) << exponent) - 1

    def record(self, value: int) -> None:
        value = int(value)
        if value < 0:
            raise ValueError(f"{self.name}: negative sample {value}")
        index = self._index(value)
        self._buckets[index] = self._buckets.get(index, 0) + 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, pct: float) -> int:
        """The value at or below which *pct* percent of samples fall."""
        if not 0 < pct <= 100:
            raise ValueError(f"percentile must be in (0, 100], got {pct}")
        if not self.count:
            return 0
        rank = max(1, int(self.count * pct / 100.0 + 0.5))
        seen = 0
        for index in sorted(self._buckets):
            seen += self._buckets[index]
            if seen >= rank:
                return min(self._upper_bound(index), self.max)
        return self.max  # pragma: no cover - rank <= count always lands

    def snapshot(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"type": "histogram", "count": self.count,
                               "sum": self.total,
                               "min": self.min if self.min is not None else 0,
                               "max": self.max if self.max is not None else 0,
                               "mean": self.mean}
        for pct in self.PERCENTILES:
            key = f"p{pct:g}".replace(".", "_")
            out[key] = self.percentile(pct)
        return out

    def __repr__(self) -> str:
        return f"<Histogram {self.name} n={self.count} mean={self.mean:.0f}>"


class MetricsRegistry:
    """Flat name -> instrument map with get-or-create accessors."""

    __slots__ = ("_instruments",)

    def __init__(self) -> None:
        self._instruments: Dict[str, Any] = {}

    def _get(self, name: str, cls, **kwargs):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = cls(name, **kwargs)
            self._instruments[name] = instrument
        elif not isinstance(instrument, cls):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(instrument).__name__}, not {cls.__name__}")
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str, sub_bits: int = 5) -> Histogram:
        return self._get(name, Histogram, sub_bits=sub_bits)

    def get(self, name: str):
        """The instrument registered under *name*, or None."""
        return self._instruments.get(name)

    def value(self, name: str, default: int = 0) -> int:
        """Current value of the counter/gauge under *name* (*default*
        when absent) — the health model reads counters this way so a
        metric nobody incremented yet reads as zero, not a KeyError."""
        instrument = self._instruments.get(name)
        if instrument is None:
            return default
        return getattr(instrument, "value", default)

    def sum_counters(self, prefix: str) -> int:
        """Sum of every :class:`Counter` whose name starts with *prefix*
        (e.g. all ``daemon.errors.*`` ops folded into one fault count)."""
        return sum(instrument.value
                   for name, instrument in self._instruments.items()
                   if name.startswith(prefix)
                   and isinstance(instrument, Counter))

    def names(self):
        return sorted(self._instruments)

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        return {name: self._instruments[name].snapshot()
                for name in sorted(self._instruments)}

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry in (counters add, gauges keep maxima,
        histograms re-record bucket uppers — used when an experiment
        aggregates several clusters' registries into one report)."""
        for name in other.names():
            theirs = other._instruments[name]
            if isinstance(theirs, Counter):
                self.counter(name).inc(theirs.value)
            elif isinstance(theirs, Gauge):
                gauge = self.gauge(name)
                gauge.set(theirs.max)
                gauge.set(theirs.value)
            elif isinstance(theirs, Histogram):
                mine = self.histogram(name, sub_bits=theirs.sub_bits)
                for index, hits in sorted(theirs._buckets.items()):
                    value = min(theirs._upper_bound(index), theirs.max)
                    for _ in range(hits):
                        mine.record(value)

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def write(self, path: str, indent: Optional[int] = 2) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_json(indent=indent))

    def __repr__(self) -> str:
        return f"<MetricsRegistry {len(self._instruments)} instruments>"

"""Spans on the simulation clock, exportable to chrome://tracing.

The checkpoint path crosses four layers — client, daemon dispatch, the
transfer engine's lanes, and the PMem ingest limiter — and the paper's
Table I / Fig. 13 story is precisely *where inside that path the
nanoseconds go*.  A :class:`Span` is one named interval on the simulated
clock; a :class:`Tracer` collects them, grouped by *trace* (one trace id
per client request, propagated through the control-plane messages) and
by *track* (the ``process/thread`` pair chrome://tracing renders as
rows).

Zero-cost contract
------------------

Opening or closing a span reads ``env.now`` and appends to a Python
list — it never yields, schedules an event, or changes a wire size, so
a traced run is **bit-identical in simulated time** to an untraced one
(``tests/obs/test_zero_cost.py`` holds this line).  A disabled tracer
(`enabled=False`, the default everywhere) goes further and returns a
shared no-op span, so the fast path pays one attribute check.

Zero-*alloc* contract for hot sites: a disabled tracer must also cost
zero allocations per call, which is a caller-side discipline — the
per-WR sites in :mod:`repro.core.engine` check ``tracer.enabled`` before
building span names or keyword arguments, so an untraced fleet run pays
one attribute load per WR, not an f-string and a kwargs dict.  When
tracing *is* enabled, :class:`Span` is ``__slots__``-backed (no
per-span ``__dict__``) and stores its kwargs dict only when non-empty,
keeping traced fleet runs from being dominated by span bookkeeping.

Export
------

:meth:`Tracer.chrome_trace` renders the span list as Chrome
``trace_event`` JSON (phase-``X`` complete events plus ``M`` metadata
events naming the processes/threads), loadable in chrome://tracing or
Perfetto.  Timestamps are microseconds (the format's unit) derived from
integer simulated nanoseconds, so exports are deterministic.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional


class Span:
    """One named interval on the simulation clock (context manager)."""

    __slots__ = ("env", "name", "cat", "trace_id", "span_id", "parent_id",
                 "track", "start_ns", "end_ns", "args")

    def __init__(self, env, name: str, cat: str, trace_id: Optional[int],
                 span_id: int, parent_id: Optional[int], track: str,
                 args: Optional[Dict[str, Any]]) -> None:
        self.env = env
        self.name = name
        self.cat = cat
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.track = track
        self.start_ns = env.now
        self.end_ns: Optional[int] = None
        self.args = args

    @property
    def duration_ns(self) -> int:
        """Span length; 0 while still open."""
        if self.end_ns is None:
            return 0
        return self.end_ns - self.start_ns

    @property
    def finished(self) -> bool:
        return self.end_ns is not None

    def finish(self, **args: Any) -> None:
        """Close the span at the current simulated time (idempotent)."""
        if self.end_ns is None:
            self.end_ns = self.env.now
        if args:
            if self.args is None:
                self.args = {}
            self.args.update(args)

    def annotate(self, **args: Any) -> None:
        if self.args is None:
            self.args = {}
        self.args.update(args)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *_exc) -> None:
        self.finish()

    def __repr__(self) -> str:
        end = self.end_ns if self.end_ns is not None else "…"
        return f"<Span {self.name!r} [{self.start_ns}, {end}) " \
               f"trace={self.trace_id} track={self.track}>"


class _NullSpan:
    """Shared no-op span handed out by a disabled tracer."""

    __slots__ = ()

    duration_ns = 0
    finished = True

    def finish(self, **_args: Any) -> None:
        pass

    def annotate(self, **_args: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *_exc) -> None:
        pass


NULL_SPAN = _NullSpan()


class Tracer:
    """Collects spans; disabled by default (every call is a no-op).

    Trace ids and span ids come from plain counters — no wall clock, no
    randomness — so two runs of the same seeded simulation produce the
    same trace byte for byte.
    """

    __slots__ = ("enabled", "spans", "_next_trace", "_next_span")

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self.spans: List[Span] = []
        self._next_trace = 0
        self._next_span = 0

    # -- recording ----------------------------------------------------------------

    def new_trace(self) -> Optional[int]:
        """A fresh trace id (one per client request)."""
        if not self.enabled:
            return None
        self._next_trace += 1
        return self._next_trace

    def span(self, env, name: str, cat: str = "",
             trace_id: Optional[int] = None,
             parent: Optional[Span] = None, track: str = "main",
             **args: Any):
        """Open a span at ``env.now``; close with ``finish()`` or ``with``."""
        if not self.enabled:
            return NULL_SPAN
        self._next_span += 1
        span = Span(env, name, cat, trace_id, self._next_span,
                    parent.span_id if isinstance(parent, Span) else None,
                    track, args or None)
        self.spans.append(span)
        return span

    # -- queries ------------------------------------------------------------------

    def named(self, name: str) -> List[Span]:
        return [span for span in self.spans if span.name == name]

    def one(self, name: str) -> Span:
        spans = self.named(name)
        if len(spans) != 1:
            raise ValueError(f"expected exactly one span named {name!r}, "
                             f"found {len(spans)}")
        return spans[0]

    # -- export -------------------------------------------------------------------

    def chrome_trace(self) -> List[Dict[str, Any]]:
        """The span list as Chrome ``trace_event`` objects.

        Each span's ``track`` ("process/thread", thread optional) maps to
        a (pid, tid) pair; ``M`` metadata events carry the names so the
        viewer shows readable rows.
        """
        pids: Dict[str, int] = {}
        tids: Dict[str, int] = {}
        events: List[Dict[str, Any]] = []
        for span in self.spans:
            process, _, thread = span.track.partition("/")
            thread = thread or "main"
            if process not in pids:
                pids[process] = len(pids) + 1
                events.append({"ph": "M", "name": "process_name",
                               "pid": pids[process], "tid": 0,
                               "args": {"name": process}})
            track_key = f"{process}/{thread}"
            if track_key not in tids:
                tids[track_key] = len(tids) + 1
                events.append({"ph": "M", "name": "thread_name",
                               "pid": pids[process], "tid": tids[track_key],
                               "args": {"name": thread}})
            args: Dict[str, Any] = dict(span.args or {})
            if span.trace_id is not None:
                args["trace_id"] = span.trace_id
            if span.parent_id is not None:
                args["parent_span"] = span.parent_id
            if not span.finished:
                args["unfinished"] = True
            event = {"ph": "X", "name": span.name, "cat": span.cat or "span",
                     "ts": span.start_ns / 1000.0,
                     "dur": span.duration_ns / 1000.0,
                     "pid": pids[span.track.partition("/")[0]],
                     "tid": tids[track_key]}
            if args:
                event["args"] = args
            events.append(event)
        return events

    def chrome_trace_json(self, indent: Optional[int] = None) -> str:
        return json.dumps({"traceEvents": self.chrome_trace(),
                           "displayTimeUnit": "ns"}, indent=indent,
                          sort_keys=True)

    def write(self, path: str, indent: Optional[int] = None) -> None:
        """Write the Chrome trace JSON to a host file."""
        with open(path, "w") as handle:
            handle.write(self.chrome_trace_json(indent=indent))

"""Observability for the checkpoint/restore path: spans + metrics.

One :class:`Observability` bundle per simulated deployment (the
:class:`~repro.harness.cluster.PaperCluster` owns one and hands it to
the daemon, every client, the fault injector, and the repacker), holding

* a :class:`~repro.obs.trace.Tracer` — request-scoped spans on the
  simulation clock, exportable as Chrome ``trace_event`` JSON; disabled
  by default so the fast path pays one attribute check;
* a :class:`~repro.obs.metrics.MetricsRegistry` — counters, gauges, and
  HDR-style latency histograms, snapshotable as plain JSON.

Both sides observe only — nothing here yields, schedules simulation
events, or changes control-plane wire sizes, so instrumented runs keep
simulated timings bit-identical to uninstrumented ones (the zero-cost
contract, held by ``tests/obs/test_zero_cost.py``).
"""

from typing import Any, Dict

from repro.obs.metrics import (Counter, Gauge, Histogram,  # noqa: F401
                               MetricsRegistry)
from repro.obs.trace import NULL_SPAN, Span, Tracer  # noqa: F401


class Observability:
    """A tracer + metrics registry pair shared by one deployment."""

    def __init__(self, tracing: bool = False) -> None:
        self.tracer = Tracer(enabled=tracing)
        self.metrics = MetricsRegistry()

    @property
    def tracing(self) -> bool:
        return self.tracer.enabled

    def snapshot(self) -> Dict[str, Any]:
        """Metrics snapshot plus a span inventory summary."""
        return {"metrics": self.metrics.snapshot(),
                "spans": len(self.tracer.spans),
                "tracing": self.tracer.enabled}


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "Observability",
    "Span",
    "Tracer",
]

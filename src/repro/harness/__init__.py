"""Experiment harness: the paper's testbed, calibration constants, and
one runner per table/figure."""

from repro.harness.cluster import PaperCluster

__all__ = ["PaperCluster"]

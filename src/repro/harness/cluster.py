"""The paper's testbed, wired up (§V-A) — now fleet-capable.

* **Client-Volta**: 2x EPYC 7742 (128 cores), 1 TiB DRAM, 4x V100-32GB,
  ConnectX-5 — the single-GPU checkpoint/restore experiments.
* **Client-Ampere** x2: 2x Xeon 5318Y (64 cores), 768 GiB DRAM,
  8x A40-48GB each, ConnectX-6 — the Megatron GPT experiments.
* **Server**: the AEP box — 6x 256 GB Optane DIMMs, half in fsdax mode
  under ext4-DAX + BeeGFS, half in devdax mode owned by Portus; one
  ConnectX-5.  Everything hangs off one 100 Gbps IB switch.

``storage_nodes=N`` scales the storage side out to N independent
*shards* — each a :class:`StorageShard` with its own server node, TCP
stack, PMem pool, and daemon (DESIGN.md §13).  ``storage_nodes=1`` is
the degenerate case and is wired in exactly the seed order, so every
single-daemon experiment stays bit-identical.  ``cluster.daemon`` /
``cluster.portus_pool`` / ``cluster.server`` remain as views of shard
0 for all existing call sites.

The cluster also owns the storage stacks (Portus daemon + pool, BeeGFS
server, local ext4 on each client's NVMe) and exposes process helpers so
experiments read like the paper's method sections.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Tuple, Union

from repro.core.client import PortusClient
from repro.core.daemon import PortusDaemon
from repro.dnn.models import ModelSpec
from repro.dnn.zoo import build_zoo_model as build_model
from repro.dnn.tensor import ModelInstance
from repro.fleet.admission import AdmissionController
from repro.fleet.tenants import TenantRegistry
from repro.fs.beegfs import BeegfsClient, BeegfsServer
from repro.fs.dax import DaxFilesystem
from repro.fs.ext4 import LocalExtFilesystem
from repro.hw.node import ComputeNode, StorageNode
from repro.net.fabric import Fabric
from repro.net.tcp import TcpStack
from repro.obs import Observability
from repro.pmem.pool import PmemPool
from repro.rdma.nic import Rnic
from repro.rdma.peer_mem import enable_peer_memory
from repro.sim import Environment, RandomStreams
from repro.units import gib


class StorageShard:
    """One storage server: node + TCP stack + PMem pool + daemon."""

    def __init__(self, index: int, node: StorageNode, tcp: TcpStack,
                 pool: PmemPool, daemon: PortusDaemon) -> None:
        self.index = index
        self.node = node
        self.tcp = tcp
        self.pool = pool
        self.daemon = daemon

    @property
    def name(self) -> str:
        return self.node.name

    def __repr__(self) -> str:
        return (f"<StorageShard {self.index} {self.name!r} "
                f"daemon={'up' if not self.daemon.stopped else 'down'}>")


class PaperCluster:
    """One fully-wired instance of the evaluation testbed."""

    def __init__(self, seed: int = 0, ampere_nodes: int = 2,
                 start_daemon: bool = True,
                 daemon_kwargs: Optional[Dict] = None,
                 client_retry=None, client_num_qps: int = 1,
                 tracing: bool = False,
                 obs: Optional[Observability] = None,
                 storage_nodes: int = 1,
                 admission: Optional[Dict] = None) -> None:
        if storage_nodes < 1:
            raise ValueError(
                f"storage_nodes must be >= 1, got {storage_nodes}")
        env = Environment()
        self.env = env
        self.rand = RandomStreams(seed)
        self.fabric = Fabric(env)
        #: One observability bundle for the whole deployment — every
        #: daemon (and its successors across restarts), every client,
        #: and the fault injector all share it.
        self.obs = obs if obs is not None else Observability(tracing=tracing)
        #: Fleet-wide tenant quotas/budgets, shared by all shards and
        #: surviving daemon restarts.
        self.tenants = TenantRegistry(obs=self.obs)
        self._admission_kwargs = dict(admission) if admission else None

        # Storage server (AEP) — shard 0, wired in the seed order.
        server = StorageNode(env, "server", cores=72,
                             dram_capacity=gib(192))
        Rnic(env, server, self.fabric, name="server")
        server_tcp = TcpStack(env, self.fabric, server.nic.port, "server")

        # Client-Volta.
        self.volta = ComputeNode(env, "volta", cores=128,
                                 dram_capacity=gib(1024), gpu_count=4,
                                 gpu_memory=gib(32))
        Rnic(env, self.volta, self.fabric, name="volta")
        self.volta_tcp = TcpStack(env, self.fabric, self.volta.nic.port,
                                  "volta")

        # Client-Ampere nodes.
        self.amperes: List[ComputeNode] = []
        self._tcp: Dict[str, TcpStack] = {"server": server_tcp,
                                          "volta": self.volta_tcp}
        for i in range(ampere_nodes):
            node = ComputeNode(env, f"ampere{i}", cores=128,
                               dram_capacity=gib(768), gpu_count=8,
                               gpu_memory=gib(48))
            Rnic(env, node, self.fabric, name=f"ampere{i}")
            self._tcp[node.name] = TcpStack(env, self.fabric, node.nic.port,
                                            node.name)
            self.amperes.append(node)

        # PeerMem on every GPU of every client.
        for node in [self.volta] + self.amperes:
            for gpu in node.gpus:
                enable_peer_memory(node.nic, gpu)

        # Storage stacks — shard 0 first, in the seed creation order.
        pool0 = PmemPool.format(server.pmem_devdax, max_extents=65536)
        self._daemon_kwargs = dict(daemon_kwargs or {})
        self.client_retry = client_retry
        self.client_num_qps = client_num_qps
        daemon0 = self._make_daemon(server, pool0, server_tcp)
        if start_daemon:
            daemon0.start()
        self.shards: List[StorageShard] = [
            StorageShard(0, server, server_tcp, pool0, daemon0)]
        self.beegfs_backing = DaxFilesystem(env, server.pmem_fsdax)
        self.beegfs_server = BeegfsServer(env, server, self.beegfs_backing)
        self._beegfs_mounts: Dict[str, BeegfsClient] = {}
        self.volta_ext4 = LocalExtFilesystem(env, self.volta.nvme)

        # Extra shards (server1..serverN-1) come after the seed wiring
        # so the storage_nodes=1 event/RNG order is untouched.
        for i in range(1, storage_nodes):
            node = StorageNode(env, f"server{i}", cores=72,
                               dram_capacity=gib(192))
            Rnic(env, node, self.fabric, name=node.name)
            tcp = TcpStack(env, self.fabric, node.nic.port, node.name)
            self._tcp[node.name] = tcp
            pool = PmemPool.format(node.pmem_devdax, max_extents=65536)
            daemon = self._make_daemon(node, pool, tcp)
            if start_daemon:
                daemon.start()
            self.shards.append(StorageShard(i, node, tcp, pool, daemon))

        self._portus_clients: Dict[Tuple[str, int], PortusClient] = {}
        self._model_counter = 0
        #: The self-healing loop, once :meth:`enable_operator` runs.
        self.operator = None

    def _make_daemon(self, node: StorageNode, pool: PmemPool,
                     tcp: TcpStack, port: Optional[int] = None
                     ) -> PortusDaemon:
        kwargs = dict(self._daemon_kwargs)
        if port is not None:
            kwargs["port"] = port
        if self._admission_kwargs is not None:
            kwargs["admission"] = AdmissionController(
                obs=self.obs, shard=node.name, **self._admission_kwargs)
        return PortusDaemon(self.env, node, pool, tcp, obs=self.obs,
                            tenants=self.tenants, **kwargs)

    # -- shard-0 views (the seed single-daemon API) -----------------------

    @property
    def server(self) -> StorageNode:
        return self.shards[0].node

    @property
    def server_tcp(self) -> TcpStack:
        return self.shards[0].tcp

    @property
    def portus_pool(self) -> PmemPool:
        return self.shards[0].pool

    @property
    def daemon(self) -> PortusDaemon:
        return self.shards[0].daemon

    @property
    def storage_nodes(self) -> int:
        return len(self.shards)

    def shard_named(self, name: str) -> StorageShard:
        for shard in self.shards:
            if shard.name == name:
                return shard
        raise KeyError(f"no storage shard named {name!r}")

    # -- process helpers -------------------------------------------------------------

    def run(self, scenario, until: Optional[int] = None):
        """Run a scenario generator function (taking env) to completion."""
        return self.env.run_process(self.env.process(scenario(self.env)),
                                    until=until)

    def tcp_of(self, node: ComputeNode) -> TcpStack:
        return self._tcp[node.name]

    def beegfs_mount(self, node: Optional[ComputeNode] = None) -> Generator:
        """Process: mount (or reuse) BeeGFS on *node* (default Volta)."""
        node = node or self.volta
        mount = self._beegfs_mounts.get(node.name)
        if mount is None:
            mount = yield from BeegfsClient.mount(self.env, node,
                                                  self.beegfs_server)
            self._beegfs_mounts[node.name] = mount
        return mount

    def portus_client(self, node: Optional[ComputeNode] = None,
                      shard: int = 0) -> PortusClient:
        """The (cached) client on *node* talking to storage shard *shard*."""
        node = node or self.volta
        key = (node.name, shard)
        client = self._portus_clients.get(key)
        if client is None:
            client = PortusClient(self.env, node, self.tcp_of(node),
                                  self.shards[shard].daemon,
                                  retry=self.client_retry,
                                  num_qps=self.client_num_qps,
                                  obs=self.obs)
            client.shard_index = shard
            self._portus_clients[key] = client
        return client

    def materialize(self, model: Union[str, ModelSpec],
                    node: Optional[ComputeNode] = None, gpu: int = 0,
                    seed: Optional[int] = None,
                    instance_name: Optional[str] = None) -> ModelInstance:
        """Put a model's tensors on a GPU (step-0 weights)."""
        node = node or self.volta
        spec = build_model(model) if isinstance(model, str) else model
        if seed is None:
            self._model_counter += 1
            seed = self._model_counter
        return ModelInstance.materialize(instance_name or spec.name,
                                         spec.tensors, node.gpus[gpu],
                                         model_seed=seed)

    def portus_register(self, model: Union[str, ModelSpec, ModelInstance],
                        node: Optional[ComputeNode] = None,
                        gpu: int = 0, dedup: bool = False,
                        chunk_bytes: Optional[int] = None,
                        shard: int = 0,
                        tenant: Optional[str] = None) -> Generator:
        """Process: materialize (if needed) and register with the daemon.

        ``dedup=True`` opts the model into the deduplicated layout
        (content-hash chunk manifests over the pool-wide refcounted
        chunk store); *chunk_bytes* overrides the default chunk size.
        *shard*/*tenant* route and account the registration in a fleet
        topology (see :class:`repro.fleet.client.FleetClient` for the
        ring-driven version).
        """
        node = node or self.volta
        if isinstance(model, ModelInstance):
            instance = model
        else:
            instance = self.materialize(model, node=node, gpu=gpu)
        client = self.portus_client(node, shard=shard)
        session = yield from client.register(instance, dedup=dedup,
                                             chunk_bytes=chunk_bytes,
                                             tenant=tenant)
        return session

    def enable_operator(self, **kwargs):
        """Start the self-healing remediation operator for this cluster
        (detect → diagnose → remediate → verify; see
        :class:`repro.ops.operator.RemediationOperator`)."""
        from repro.ops.operator import RemediationOperator
        self.operator = RemediationOperator(self.env, self, **kwargs)
        self.operator.start()
        return self.operator

    def restart_daemon(self, port: Optional[int] = None,
                       shard: int = 0) -> None:
        """Kill and restart shard *shard*'s daemon process: the old
        instance's networking tears down, the pool is re-opened, and the
        index recovered from PMem (ModelMap rebuilt).  The successor
        binds the *same* port by default, so clients that survived the
        daemon can reconnect without rediscovery."""
        entry = self.shards[shard]
        old_port = entry.daemon.port
        if not entry.daemon.stopped:
            entry.daemon.crash()
        pool = PmemPool.open(entry.node.pmem_devdax)
        entry.pool = pool
        entry.daemon = self._make_daemon(
            entry.node, pool, entry.tcp,
            port=old_port if port is None else port)
        entry.daemon.start()
        for (_, shard_idx), client in self._portus_clients.items():
            if shard_idx == shard:
                client.daemon = entry.daemon

    def kill_daemon(self, shard: int = 0) -> None:
        """The daemon process dies (SIGKILL): networking gone, QPs
        flushed, pool closed un-synced — but no power loss, so persisted
        bytes survive for :meth:`restart_daemon` to recover."""
        self.shards[shard].daemon.crash()

    def crash_server(self, shard: int = 0) -> None:
        """Power-fail a storage server: the PMem pool loses unflushed
        data (lost or torn) and the daemon process dies with the
        machine."""
        entry = self.shards[shard]
        stream = "crash" if shard == 0 else f"crash.{shard}"
        entry.pool.crash(self.rand.stream(stream))
        entry.daemon.crash()

"""The paper's testbed, wired up (§V-A).

* **Client-Volta**: 2x EPYC 7742 (128 cores), 1 TiB DRAM, 4x V100-32GB,
  ConnectX-5 — the single-GPU checkpoint/restore experiments.
* **Client-Ampere** x2: 2x Xeon 5318Y (64 cores), 768 GiB DRAM,
  8x A40-48GB each, ConnectX-6 — the Megatron GPT experiments.
* **Server**: the AEP box — 6x 256 GB Optane DIMMs, half in fsdax mode
  under ext4-DAX + BeeGFS, half in devdax mode owned by Portus; one
  ConnectX-5.  Everything hangs off one 100 Gbps IB switch.

The cluster also owns the storage stacks (Portus daemon + pool, BeeGFS
server, local ext4 on each client's NVMe) and exposes process helpers so
experiments read like the paper's method sections.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Union

from repro.core.client import PortusClient
from repro.core.daemon import PortusDaemon
from repro.dnn.models import ModelSpec
from repro.dnn.zoo import build_zoo_model as build_model
from repro.dnn.tensor import ModelInstance
from repro.fs.beegfs import BeegfsClient, BeegfsServer
from repro.fs.dax import DaxFilesystem
from repro.fs.ext4 import LocalExtFilesystem
from repro.hw.node import ComputeNode, StorageNode
from repro.net.fabric import Fabric
from repro.net.tcp import TcpStack
from repro.obs import Observability
from repro.pmem.pool import PmemPool
from repro.rdma.nic import Rnic
from repro.rdma.peer_mem import enable_peer_memory
from repro.sim import Environment, RandomStreams
from repro.units import gib


class PaperCluster:
    """One fully-wired instance of the evaluation testbed."""

    def __init__(self, seed: int = 0, ampere_nodes: int = 2,
                 start_daemon: bool = True,
                 daemon_kwargs: Optional[Dict] = None,
                 client_retry=None, client_num_qps: int = 1,
                 tracing: bool = False,
                 obs: Optional[Observability] = None) -> None:
        env = Environment()
        self.env = env
        self.rand = RandomStreams(seed)
        self.fabric = Fabric(env)
        #: One observability bundle for the whole deployment — the
        #: daemon (and its successors across restarts), every client,
        #: and the fault injector all share it.
        self.obs = obs if obs is not None else Observability(tracing=tracing)

        # Storage server (AEP).
        self.server = StorageNode(env, "server", cores=72,
                                  dram_capacity=gib(192))
        Rnic(env, self.server, self.fabric, name="server")
        self.server_tcp = TcpStack(env, self.fabric, self.server.nic.port,
                                   "server")

        # Client-Volta.
        self.volta = ComputeNode(env, "volta", cores=128,
                                 dram_capacity=gib(1024), gpu_count=4,
                                 gpu_memory=gib(32))
        Rnic(env, self.volta, self.fabric, name="volta")
        self.volta_tcp = TcpStack(env, self.fabric, self.volta.nic.port,
                                  "volta")

        # Client-Ampere nodes.
        self.amperes: List[ComputeNode] = []
        self._tcp: Dict[str, TcpStack] = {"server": self.server_tcp,
                                          "volta": self.volta_tcp}
        for i in range(ampere_nodes):
            node = ComputeNode(env, f"ampere{i}", cores=128,
                               dram_capacity=gib(768), gpu_count=8,
                               gpu_memory=gib(48))
            Rnic(env, node, self.fabric, name=f"ampere{i}")
            self._tcp[node.name] = TcpStack(env, self.fabric, node.nic.port,
                                            node.name)
            self.amperes.append(node)

        # PeerMem on every GPU of every client.
        for node in [self.volta] + self.amperes:
            for gpu in node.gpus:
                enable_peer_memory(node.nic, gpu)

        # Storage stacks.
        self.portus_pool = PmemPool.format(self.server.pmem_devdax,
                                           max_extents=65536)
        self._daemon_kwargs = dict(daemon_kwargs or {})
        self.client_retry = client_retry
        self.client_num_qps = client_num_qps
        self.daemon = PortusDaemon(env, self.server, self.portus_pool,
                                   self.server_tcp, obs=self.obs,
                                   **self._daemon_kwargs)
        if start_daemon:
            self.daemon.start()
        self.beegfs_backing = DaxFilesystem(env, self.server.pmem_fsdax)
        self.beegfs_server = BeegfsServer(env, self.server,
                                          self.beegfs_backing)
        self._beegfs_mounts: Dict[str, BeegfsClient] = {}
        self.volta_ext4 = LocalExtFilesystem(env, self.volta.nvme)

        self._portus_clients: Dict[str, PortusClient] = {}
        self._model_counter = 0
        #: The self-healing loop, once :meth:`enable_operator` runs.
        self.operator = None

    # -- process helpers -------------------------------------------------------------

    def run(self, scenario, until: Optional[int] = None):
        """Run a scenario generator function (taking env) to completion."""
        return self.env.run_process(self.env.process(scenario(self.env)),
                                    until=until)

    def tcp_of(self, node: ComputeNode) -> TcpStack:
        return self._tcp[node.name]

    def beegfs_mount(self, node: Optional[ComputeNode] = None) -> Generator:
        """Process: mount (or reuse) BeeGFS on *node* (default Volta)."""
        node = node or self.volta
        mount = self._beegfs_mounts.get(node.name)
        if mount is None:
            mount = yield from BeegfsClient.mount(self.env, node,
                                                  self.beegfs_server)
            self._beegfs_mounts[node.name] = mount
        return mount

    def portus_client(self, node: Optional[ComputeNode] = None) -> PortusClient:
        node = node or self.volta
        client = self._portus_clients.get(node.name)
        if client is None:
            client = PortusClient(self.env, node, self.tcp_of(node),
                                  self.daemon, retry=self.client_retry,
                                  num_qps=self.client_num_qps,
                                  obs=self.obs)
            self._portus_clients[node.name] = client
        return client

    def materialize(self, model: Union[str, ModelSpec],
                    node: Optional[ComputeNode] = None, gpu: int = 0,
                    seed: Optional[int] = None,
                    instance_name: Optional[str] = None) -> ModelInstance:
        """Put a model's tensors on a GPU (step-0 weights)."""
        node = node or self.volta
        spec = build_model(model) if isinstance(model, str) else model
        if seed is None:
            self._model_counter += 1
            seed = self._model_counter
        return ModelInstance.materialize(instance_name or spec.name,
                                         spec.tensors, node.gpus[gpu],
                                         model_seed=seed)

    def portus_register(self, model: Union[str, ModelSpec, ModelInstance],
                        node: Optional[ComputeNode] = None,
                        gpu: int = 0, dedup: bool = False,
                        chunk_bytes: Optional[int] = None) -> Generator:
        """Process: materialize (if needed) and register with the daemon.

        ``dedup=True`` opts the model into the deduplicated layout
        (content-hash chunk manifests over the pool-wide refcounted
        chunk store); *chunk_bytes* overrides the default chunk size.
        """
        node = node or self.volta
        if isinstance(model, ModelInstance):
            instance = model
        else:
            instance = self.materialize(model, node=node, gpu=gpu)
        client = self.portus_client(node)
        session = yield from client.register(instance, dedup=dedup,
                                             chunk_bytes=chunk_bytes)
        return session

    def enable_operator(self, **kwargs):
        """Start the self-healing remediation operator for this cluster
        (detect → diagnose → remediate → verify; see
        :class:`repro.ops.operator.RemediationOperator`)."""
        from repro.ops.operator import RemediationOperator
        self.operator = RemediationOperator(self.env, self, **kwargs)
        self.operator.start()
        return self.operator

    def restart_daemon(self, port: Optional[int] = None) -> None:
        """Kill and restart the daemon process: the old instance's
        networking tears down, the pool is re-opened, and the index
        recovered from PMem (ModelMap rebuilt).  The successor binds the
        *same* port by default, so clients that survived the daemon can
        reconnect without rediscovery."""
        old_port = self.daemon.port
        if not self.daemon.stopped:
            self.daemon.crash()
        pool = PmemPool.open(self.server.pmem_devdax)
        self.portus_pool = pool
        self.daemon = PortusDaemon(self.env, self.server, pool,
                                   self.server_tcp,
                                   port=old_port if port is None else port,
                                   obs=self.obs, **self._daemon_kwargs)
        self.daemon.start()
        for client in self._portus_clients.values():
            client.daemon = self.daemon

    def kill_daemon(self) -> None:
        """The daemon process dies (SIGKILL): networking gone, QPs
        flushed, pool closed un-synced — but no power loss, so persisted
        bytes survive for :meth:`restart_daemon` to recover."""
        self.daemon.crash()

    def crash_server(self) -> None:
        """Power-fail the server: the PMem pool loses unflushed data
        (lost or torn) and the daemon process dies with the machine."""
        self.portus_pool.crash(self.rand.stream("crash"))
        self.daemon.crash()

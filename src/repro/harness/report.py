"""Paper-style text rendering of experiment results.

Every benchmark prints the same rows/series the paper's table or figure
shows, via these helpers, so `pytest benchmarks/ --benchmark-only -s`
reads like the evaluation section.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.units import fmt_bandwidth, fmt_time


def render_table(title: str, headers: Sequence[str],
                 rows: Sequence[Sequence[str]]) -> str:
    """A fixed-width table with a title rule."""
    columns = len(headers)
    widths = [len(h) for h in headers]
    for row in rows:
        for i in range(columns):
            widths[i] = max(widths[i], len(str(row[i])))
    lines = ["", f"== {title} =="]
    lines.append("  ".join(str(h).ljust(widths[i])
                           for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(columns)))
    for row in rows:
        lines.append("  ".join(str(cell).ljust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)


def render_breakdown(title: str, fractions: Dict[str, float],
                     paper: Dict[str, float] = None) -> str:
    """Phase-share table, optionally against the paper's numbers."""
    headers = ["phase", "measured"]
    if paper:
        headers.append("paper")
    rows = []
    for phase, fraction in fractions.items():
        row = [phase, f"{fraction * 100:5.1f}%"]
        if paper:
            row.append(f"{paper.get(phase, 0) * 100:5.1f}%"
                       if phase in paper else "-")
        rows.append(row)
    return render_table(title, headers, rows)


def render_series(title: str, x_label: str, series: Dict[str, List],
                  x_values: List, fmt=str) -> str:
    """Multi-line series (one column per named line), Fig.-10 style."""
    headers = [x_label] + list(series)
    rows = []
    for i, x in enumerate(x_values):
        rows.append([x] + [fmt(series[name][i]) for name in series])
    return render_table(title, headers, rows)


def render_metrics(title: str, snapshot: Dict[str, Dict]) -> str:
    """A metrics-registry snapshot as a table (one row per instrument).

    Counters show their value, gauges value/max, histograms
    count/mean/p50/p99 — enough to read a run's health at a glance; the
    full snapshot stays available as JSON for machines.
    """
    rows = []
    for name in sorted(snapshot):
        data = dict(snapshot[name])
        kind = data.pop("type", "?")
        if kind == "counter":
            detail = f"value={data['value']}"
        elif kind == "gauge":
            detail = f"value={data['value']} max={data['max']}"
        elif kind == "histogram":
            detail = (f"count={data['count']} mean={data['mean']:.0f} "
                      f"p50={data['p50']} p99={data['p99']}")
        else:
            detail = repr(data)
        rows.append([name, kind, detail])
    return render_table(title, ["metric", "type", "detail"], rows)


def fmt_speedup(value: float) -> str:
    return f"{value:.2f}x"


def fmt_seconds(ns: int) -> str:
    return fmt_time(ns)


def fmt_gbps(bps: float) -> str:
    return fmt_bandwidth(bps)

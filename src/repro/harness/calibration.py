"""Every calibrated constant in one place, with provenance.

The reproduction targets the paper's *shapes* — who wins, by what factor,
where curves saturate — so the timing model is anchored to numbers the
paper itself reports, plus public hardware specs.  Derivation:

**Anchors taken verbatim from the paper**

* GPU BAR read peak: 5.8 GB/s; "30 % less than DRAM" ⇒ DRAM RDMA-read
  peak ≈ 8.3 GB/s (Fig. 10 and §V-B).
* BAR does not affect writes (Fig. 10d) ⇒ GPU PCIe write ≈ 9.0 GB/s.
* RDMA saturates above 512 KiB messages (§V-B) ⇒ one-sided op latency of
  a few microseconds.
* NVMe max sequential write 2.7 GB/s (the Samsung datacenter SSD cited).
* Table I fixes the *ratios* of the traditional datapath:
  GPU→MM 15.5 %, serialization 41.7 %, transmission 30.0 %, DAX 12.8 %.

**Solving Table I**

Percentages only fix ratios; one absolute anchor scales everything.  We
pin serialization at 1.73 GB/s (single-core pickle over large float
buffers, consistent with CheckFreq's measurements), giving per-byte costs

=====================  ==========  ===================================
phase                  ns/byte     implied rate
=====================  ==========  ===================================
GPU → main memory      0.2149      4.65 GB/s pageable cuMemcpyDtoH
serialization          0.5780      1.73 GB/s single-core pickle
transmission           0.4159      2.40 GB/s two-sided RPCoRDMA stream
server DAX write       0.1774      5.64 GB/s kernel nt-store copy
total                  1.3862      0.72 GB/s end-to-end torch.save
=====================  ==========  ===================================

Transmission decomposes into client staging (8.0 GB/s), wire (8.3 GB/s
effective DMA-read), and per-512 KiB-chunk server CPU (89 µs).  Against
Portus's pull at the 5.8 GB/s BAR limit (0.1724 ns/B), the baseline's
1.3862 ns/B predicts an ~8.0x checkpoint speedup before per-operation
overheads — matching the paper's 8.49x average and 9.23x small-file
maximum (Fig. 11).

**Training-side anchors**

GPT iteration time: Fig. 2 puts the 22.4 B model's checkpoint share at
41 % with one checkpoint per 100 iterations and a ~120 s checkpoint
(Fig. 14) ⇒ ~1.78 s/iteration ⇒ 79.5 ms per billion parameters.  ViT's
24.9 % at one checkpoint per 83 iterations ⇒ ~62 ms/iteration.

**Datapath engine constants**

The transfer engine (repro.core.engine) segments tensors at
``ENGINE_CHUNK_BYTES`` = 4 MiB: large enough that per-WR overhead is
negligible (a 4 MiB READ at the 5.8 GB/s BAR rate runs ~690 µs against
~3 µs of post+latency, <0.5 %), small enough that a 1 GiB GPT shard
becomes ~256 schedulable pieces — the same order of magnitude
FastPersist and ByteCheckpoint use for parallel checkpoint I/O.

``PMEM_INGEST_STREAMS`` = 4 is the Optane congestion threshold: each
DIMM sustains ~2.8 GB/s of sequential writes but drops to ~2.0 GB/s
once more concurrent streams interleave on the 256 B XPLine than its
write-combining buffer can absorb (see repro.hw.devices.PmemDimm,
threshold 4).  Capping daemon-wide in-flight pull WRs at 4 keeps the
3-DIMM namespace at its uncongested 8.4 GB/s aggregate instead of the
6.0 GB/s the 512-flow free-for-all measures — the entire headroom a
scheduler can recover on the Fig. 14 dump, since 8.4/6.0 = 2.8/2.0 =
1.4x is the media's own ratio.

This module re-exports the constants from their owning modules so tests
and docs have one authoritative view; change them there, not here.
"""

from __future__ import annotations

from typing import Dict

from repro.baselines.torch_save import CUDA_D2H_PAGEABLE_BPS, CUDA_H2D_BPS
from repro.dnn.serialize import (DESERIALIZATION_BPS, PER_TENSOR_NS,
                                 SERIALIZATION_BPS)
from repro.fs.beegfs.client import STAGING_COPY_BPS
from repro.fs.dax import DAX_COPY_BPS, DAX_READ_BPS
from repro.fs.ext4 import BLOCK_REQUEST_BYTES, PAGE_CACHE_COPY_BPS
from repro.core.engine import ENGINE_CHUNK_BYTES
from repro.rdma.rpc import DEFAULT_CHUNK_BYTES, DEFAULT_CHUNK_CPU_NS
from repro.units import SECOND, gbytes

#: Daemon-wide cap on concurrent PMem-ingest WRs that keeps the Optane
#: write channel below its congestion cliff (= PmemDimm's
#: congestion_threshold; see the module docstring for the derivation).
PMEM_INGEST_STREAMS = 4

#: Fig. 10 anchors (see repro.hw.devices / repro.rdma.nic defaults).
GPU_BAR_READ_BPS = gbytes(5.8)
GPU_PCIE_WRITE_BPS = gbytes(9.0)
NIC_DMA_READ_BPS = gbytes(8.3)
NIC_DMA_WRITE_BPS = gbytes(9.0)
WIRE_EFFECTIVE_BPS = gbytes(11.75)
NVME_WRITE_BPS = gbytes(2.7)

#: Paper Table I, reproduced by bench_table1.
TABLE1_PAPER = {
    "gpu_to_dram": 0.155,
    "serialization": 0.417,
    "transmission": 0.300,
    "dax_write": 0.128,
}


def expected_table1_fractions() -> Dict[str, float]:
    """Table I as *predicted* by the calibration constants.

    The measured breakdown (bench_table1) should land on these, and these
    should land on the paper's percentages — the test suite checks both
    links of that chain.
    """
    per_byte = {
        "gpu_to_dram": 1 / CUDA_D2H_PAGEABLE_BPS,
        "serialization": 1 / SERIALIZATION_BPS,
        "transmission": (1 / STAGING_COPY_BPS + 1 / NIC_DMA_READ_BPS
                         + DEFAULT_CHUNK_CPU_NS / DEFAULT_CHUNK_BYTES
                         / SECOND),
        "dax_write": 1 / DAX_COPY_BPS,
    }
    total = sum(per_byte.values())
    return {phase: cost / total for phase, cost in per_byte.items()}


def baseline_checkpoint_ns_per_byte() -> float:
    """End-to-end torch.save -> BeeGFS-PMem cost per byte (large files)."""
    return sum((1 / CUDA_D2H_PAGEABLE_BPS, 1 / SERIALIZATION_BPS,
                1 / STAGING_COPY_BPS, 1 / NIC_DMA_READ_BPS,
                DEFAULT_CHUNK_CPU_NS / DEFAULT_CHUNK_BYTES / SECOND,
                1 / DAX_COPY_BPS)) * SECOND


def portus_checkpoint_ns_per_byte() -> float:
    """Portus pull cost per byte: the BAR read bound."""
    return SECOND / GPU_BAR_READ_BPS


def predicted_checkpoint_speedup() -> float:
    """The large-model asymptotic speedup the calibration implies."""
    return baseline_checkpoint_ns_per_byte() / portus_checkpoint_ns_per_byte()


__all__ = [
    "BLOCK_REQUEST_BYTES",
    "CUDA_D2H_PAGEABLE_BPS",
    "CUDA_H2D_BPS",
    "DAX_COPY_BPS",
    "DAX_READ_BPS",
    "DEFAULT_CHUNK_BYTES",
    "DEFAULT_CHUNK_CPU_NS",
    "DESERIALIZATION_BPS",
    "ENGINE_CHUNK_BYTES",
    "GPU_BAR_READ_BPS",
    "GPU_PCIE_WRITE_BPS",
    "NIC_DMA_READ_BPS",
    "NIC_DMA_WRITE_BPS",
    "NVME_WRITE_BPS",
    "PAGE_CACHE_COPY_BPS",
    "PER_TENSOR_NS",
    "PMEM_INGEST_STREAMS",
    "SERIALIZATION_BPS",
    "STAGING_COPY_BPS",
    "TABLE1_PAPER",
    "WIRE_EFFECTIVE_BPS",
    "baseline_checkpoint_ns_per_byte",
    "expected_table1_fractions",
    "portus_checkpoint_ns_per_byte",
    "predicted_checkpoint_speedup",
]

"""Training-time projections (the paper's §V-E back-of-envelope claims).

The paper extrapolates its Fig. 14 result: checkpointing every half hour
for 24 hours, Portus saves >1.5 hours of wall clock versus torch.save;
for a week- or month-long run the savings grow to tens of hours.  These
helpers compute those projections from measured per-checkpoint times so
the bench can print the same table.
"""

from __future__ import annotations

from typing import Dict

from repro.units import HOUR, MINUTE


def checkpoints_in(run_duration_ns: int, interval_ns: int) -> int:
    """How many checkpoints a run of this length takes at this cadence."""
    if interval_ns <= 0:
        raise ValueError(f"interval must be positive, got {interval_ns}")
    return max(0, run_duration_ns // interval_ns)


def time_saved_ns(run_duration_ns: int, interval_ns: int,
                  baseline_checkpoint_ns: int,
                  portus_checkpoint_ns: int) -> int:
    """Wall clock recovered by switching the checkpointer."""
    per_checkpoint = baseline_checkpoint_ns - portus_checkpoint_ns
    return checkpoints_in(run_duration_ns, interval_ns) * per_checkpoint


def paper_projection_table(baseline_checkpoint_ns: int,
                           portus_checkpoint_ns: int,
                           interval_ns: int = 30 * MINUTE
                           ) -> Dict[str, float]:
    """Hours saved for the paper's three horizons (24 h / 1 week / 1 month)
    at a checkpoint every *interval_ns* (default: half an hour)."""
    horizons = {"24h": 24 * HOUR, "1 week": 7 * 24 * HOUR,
                "1 month": 30 * 24 * HOUR}
    return {
        label: time_saved_ns(duration, interval_ns,
                             baseline_checkpoint_ns,
                             portus_checkpoint_ns) / HOUR
        for label, duration in horizons.items()
    }

"""One runner per table/figure of the paper's evaluation.

Each function builds a fresh :class:`~repro.harness.cluster.PaperCluster`,
runs the experiment, and returns a plain-dict result the benchmarks both
assert on (shape checks) and print (paper-style rows).  See DESIGN.md §4
for the experiment index and EXPERIMENTS.md for paper-vs-measured.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.baselines.checkfreq import CheckFreqPolicy
from repro.baselines.policies import SyncCheckpointPolicy
from repro.baselines.torch_save import TorchSaveCheckpointer
from repro.core.async_ckpt import PortusAsyncPolicy, PortusSyncPolicy
from repro.core.engine import ENGINE_CHUNK_BYTES
from repro.dnn.gpt import GPT_CONFIGS, GptConfig, shard_gpt
from repro.dnn.models import build_model
from repro.dnn.tensor import ModelInstance
from repro.dnn.training import TrainingJob
from repro.harness.cluster import PaperCluster
from repro.hw.content import PatternContent
from repro.metrics import aggregate_utilization
from repro.rdma.verbs import connect
from repro.sim import AllOf
from repro.units import kib, mib, secs, to_seconds

SEVEN_MODELS = ["alexnet", "convnext_base", "resnet50", "swin_b",
                "vgg19_bn", "vit_l_32", "bert_large"]


# --- Table I: traditional checkpoint breakdown --------------------------------------


def table1_breakdown(model_name: str = "bert_large") -> Dict[str, float]:
    """BERT checkpoint via torch.save -> BeeGFS-PMem, phase shares."""
    cluster = PaperCluster(seed=100)
    holder: Dict[str, float] = {}

    def scenario(env):
        mount = yield from cluster.beegfs_mount()
        checkpointer = TorchSaveCheckpointer(env, mount,
                                             cluster.volta.cpus)
        model = cluster.materialize(model_name)
        model.update_step(1)
        dax_before = cluster.beegfs_backing.ledger.get("dax_write")
        yield from checkpointer.checkpoint(model)
        dax = cluster.beegfs_backing.ledger.get("dax_write") - dax_before
        ledger = checkpointer.ledger
        holder.update(
            gpu_to_dram=ledger.get("gpu_to_dram"),
            serialization=ledger.get("serialization"),
            transmission=ledger.get("fs_write") - dax,
            dax_write=dax,
        )

    cluster.run(scenario)
    total = sum(holder.values())
    return {phase: ns / total for phase, ns in holder.items()}


# --- Fig. 2: checkpoint share of training time ----------------------------------------


def fig2_overhead() -> Dict[str, float]:
    """Checkpoint stall share at CheckFreq-paper frequencies."""
    results = {}
    # ViT on a single V100, one checkpoint per 83 iterations.
    results["vit_l_32"] = _sync_overhead_single("vit_l_32", frequency=83,
                                                periods=2)
    # GPT-10B / GPT-22.4B on 16 A40s, one checkpoint per 100 iterations.
    for config_name in ("gpt-10.4b", "gpt-22.4b"):
        results[config_name] = _gpt_sync_overhead(config_name,
                                                  frequency=100)
    return results


def _sync_overhead_single(model_name: str, frequency: int,
                          periods: int) -> float:
    cluster = PaperCluster(seed=101)
    holder = {}

    def scenario(env):
        mount = yield from cluster.beegfs_mount()
        checkpointer = TorchSaveCheckpointer(env, mount,
                                             cluster.volta.cpus)
        model = cluster.materialize(model_name)
        policy = SyncCheckpointPolicy(env, checkpointer, frequency)
        spec = build_model(model_name)
        job = TrainingJob(env, [model], iteration_ns=spec.iteration_ns,
                          hook=policy)
        yield from job.run(frequency * periods)
        holder["fraction"] = policy.stall_ns / job.elapsed_ns

    cluster.run(scenario)
    return holder["fraction"]


def _gpt_sync_overhead(config_name: str, frequency: int) -> float:
    """One checkpoint period, analytically extended: stall/(stall+compute).

    Running 100 full Megatron iterations is pure waiting in simulated
    time, so we measure one checkpoint's wall time and one iteration's,
    then form the share the paper plots.
    """
    config = GPT_CONFIGS[config_name]
    dump_ns = fig14_gpt_dump(configs=[config_name])["torch_save"][0]
    compute_ns = frequency * config.iteration_ns()
    return dump_ns / (dump_ns + compute_ns)


# --- Fig. 10: datapath bandwidth / latency sweeps ---------------------------------------


FIG10_PATHS = ["dram->dram", "gpu->dram", "dram->pmem", "gpu->pmem"]
FIG10_WRITE_PATHS = ["dram->dram", "dram->gpu", "pmem->dram", "pmem->gpu"]


def fig10_datapath(sizes: Optional[List[int]] = None) -> Dict:
    """Raw one-sided READ/WRITE sweeps over the four device pairs.

    Reads: the server pulls from client DRAM or client GPU into server
    DRAM or PMem.  Writes: the server pushes outward.  Returns bandwidth
    (B/s) and latency (ns) per path per size.
    """
    if sizes is None:
        sizes = [kib(4), kib(64), kib(512), mib(4), mib(32), mib(256)]
    cluster = PaperCluster(seed=102)
    env = cluster.env
    gpu = cluster.volta.gpus[0]
    results = {"sizes": sizes,
               "read_bw": {path: [] for path in FIG10_PATHS},
               "read_latency": {path: [] for path in FIG10_PATHS},
               "write_bw": {path: [] for path in FIG10_WRITE_PATHS},
               "write_latency": {path: [] for path in FIG10_WRITE_PATHS}}

    def scenario(env):
        biggest = max(sizes)
        client_dram = cluster.volta.dram.alloc(biggest)
        client_gpu = gpu.alloc(biggest)
        server_dram = cluster.server.dram.alloc(biggest)
        server_pmem = cluster.server.pmem_devdax.alloc(biggest)
        client_dram.write(0, PatternContent(1, biggest))
        client_gpu.write(0, PatternContent(2, biggest))
        server_dram.write(0, PatternContent(3, biggest))
        server_pmem.write(0, PatternContent(4, biggest))
        client_nic, server_nic = cluster.volta.nic, cluster.server.nic
        mrs = {}
        for key, allocation, nic in (
                ("client_dram", client_dram, client_nic),
                ("client_gpu", client_gpu, client_nic),
                ("server_dram", server_dram, server_nic),
                ("server_pmem", server_pmem, server_nic)):
            mrs[key] = yield from nic.register_mr(allocation)
        server_qp, _client_qp = yield from connect(env, server_nic,
                                                   client_nic)
        read_pairs = {"dram->dram": ("client_dram", "server_dram"),
                      "gpu->dram": ("client_gpu", "server_dram"),
                      "dram->pmem": ("client_dram", "server_pmem"),
                      "gpu->pmem": ("client_gpu", "server_pmem")}
        for path, (src, dst) in read_pairs.items():
            for size in sizes:
                start = env.now
                yield server_qp.read(mrs[dst], 0, mrs[src].rkey,
                                     mrs[src].addr, size)
                elapsed = env.now - start
                results["read_bw"][path].append(size / to_seconds(elapsed))
                results["read_latency"][path].append(elapsed)
        write_pairs = {"dram->dram": ("server_dram", "client_dram"),
                       "dram->gpu": ("server_dram", "client_gpu"),
                       "pmem->dram": ("server_pmem", "client_dram"),
                       "pmem->gpu": ("server_pmem", "client_gpu")}
        for path, (src, dst) in write_pairs.items():
            for size in sizes:
                start = env.now
                yield server_qp.write(mrs[src], 0, mrs[dst].rkey,
                                      mrs[dst].addr, size)
                elapsed = env.now - start
                results["write_bw"][path].append(size / to_seconds(elapsed))
                results["write_latency"][path].append(elapsed)

    cluster.run(scenario)
    return results


# --- Fig. 11 / Fig. 12: per-model checkpoint and restore times ---------------------------


def fig11_fig12_times(models: Optional[List[str]] = None) -> Dict:
    """Checkpoint and restore times per model per storage option."""
    models = models or SEVEN_MODELS
    results = {"models": models,
               "checkpoint": {"portus": [], "beegfs_pmem": [],
                              "ext4_nvme": []},
               "restore": {"portus": [], "beegfs_pmem": [],
                           "ext4_nvme": []}}
    for model_name in models:
        portus_ckpt, portus_restore = _portus_times(model_name)
        results["checkpoint"]["portus"].append(portus_ckpt)
        results["restore"]["portus"].append(portus_restore)
        for option, make_fs in (("beegfs_pmem", "beegfs"),
                                ("ext4_nvme", "ext4")):
            ckpt, restore = _torch_save_times(model_name, make_fs)
            results["checkpoint"][option].append(ckpt)
            results["restore"][option].append(restore)
    return results


def _portus_times(model_name: str) -> Tuple[int, int]:
    cluster = PaperCluster(seed=103)
    holder = {}

    def scenario(env):
        session = yield from cluster.portus_register(model_name)
        session.model.update_step(1)
        start = env.now
        yield from session.checkpoint(1)
        holder["ckpt"] = env.now - start
        start = env.now
        yield from session.restore()
        holder["restore"] = env.now - start

    cluster.run(scenario)
    return holder["ckpt"], holder["restore"]


def _torch_save_times(model_name: str, fs_kind: str) -> Tuple[int, int]:
    cluster = PaperCluster(seed=104)
    holder = {}

    def scenario(env):
        if fs_kind == "beegfs":
            fs = yield from cluster.beegfs_mount()
        else:
            fs = cluster.volta_ext4
        checkpointer = TorchSaveCheckpointer(env, fs, cluster.volta.cpus)
        model = cluster.materialize(model_name)
        model.update_step(1)
        start = env.now
        yield from checkpointer.checkpoint(model)
        holder["ckpt"] = env.now - start
        start = env.now
        yield from checkpointer.restore(model)
        holder["restore"] = env.now - start

    cluster.run(scenario)
    return holder["ckpt"], holder["restore"]


def speedups(times: Dict, kind: str) -> Dict[str, List[float]]:
    """Per-model Portus speedups vs both baselines."""
    portus = times[kind]["portus"]
    return {
        "vs_beegfs": [b / p for b, p in zip(times[kind]["beegfs_pmem"],
                                            portus)],
        "vs_ext4": [b / p for b, p in zip(times[kind]["ext4_nvme"],
                                          portus)],
    }


# --- Fig. 13: BERT checkpoint breakdown per storage option -------------------------------


def fig13_bert_breakdown() -> Dict[str, Dict[str, float]]:
    """Stacked phase shares for ext4-NVMe, BeeGFS-PMem, and Portus."""
    results: Dict[str, Dict[str, float]] = {}

    # Baselines: reuse the Table I instrumentation.
    for option, fs_kind in (("ext4_nvme", "ext4"),
                            ("beegfs_pmem", "beegfs")):
        cluster = PaperCluster(seed=105)
        holder: Dict[str, int] = {}

        def scenario(env, fs_kind=fs_kind, holder=holder,
                     cluster=cluster):
            if fs_kind == "beegfs":
                fs = yield from cluster.beegfs_mount()
            else:
                fs = cluster.volta_ext4
            checkpointer = TorchSaveCheckpointer(env, fs,
                                                 cluster.volta.cpus)
            model = cluster.materialize("bert_large")
            model.update_step(1)
            yield from checkpointer.checkpoint(model)
            holder.update(checkpointer.ledger.asdict())
            holder.update(fs.ledger.asdict())

        cluster.run(scenario)
        serial_and_copy = holder.get("serialization", 0) + holder.get(
            "gpu_to_dram", 0)
        if fs_kind == "ext4":
            io = holder.get("block_io", 0) + holder.get("page_cache", 0)
            rest = holder.get("fs_write", 0) - io
            breakdown = {"serialization+cuMemcpy": serial_and_copy,
                         "block_io_kernel": io, "other": max(rest, 0)}
        else:
            breakdown = {"serialization+cuMemcpy": serial_and_copy,
                         "rdma_rpc": holder.get("fs_write", 0)}
        total = sum(breakdown.values())
        results[option] = {k: v / total for k, v in breakdown.items()}
        results[f"{option}_total_ns"] = total

    # Portus: the pull *is* the checkpoint.
    cluster = PaperCluster(seed=106)
    holder = {}

    def portus_scenario(env):
        session = yield from cluster.portus_register("bert_large")
        session.model.update_step(1)
        start = env.now
        yield from session.checkpoint(1)
        holder["total"] = env.now - start

    cluster.run(portus_scenario)
    results["portus"] = {"rdma_pull": 1.0}
    results["portus_total_ns"] = holder["total"]
    return results


def fig13_portus_traced(trace_out: Optional[str] = None,
                        metrics_out: Optional[str] = None) -> Dict:
    """Fig. 13-style Portus breakdown from the observability layer.

    Runs the same single-model checkpoint twice — tracing off, then on —
    asserts the simulated timings are bit-identical (the zero-cost
    contract: observability must never perturb what it measures), and
    derives the phase breakdown from the daemon's spans instead of the
    wall-clock subtraction the baseline breakdowns need.  Optionally
    writes the Chrome trace and the metrics snapshot to host files.
    """
    def run(tracing: bool):
        cluster = PaperCluster(seed=106, tracing=tracing)
        holder: Dict[str, int] = {}

        def scenario(env):
            session = yield from cluster.portus_register("bert_large")
            session.model.update_step(1)
            start = env.now
            yield from session.checkpoint(1)
            holder["total"] = env.now - start
            holder["end"] = env.now

        cluster.run(scenario)
        holder["ledger"] = dict(cluster.daemon.ledger.asdict())
        return cluster, holder

    _base_cluster, base = run(tracing=False)
    cluster, traced = run(tracing=True)
    identical = (base["total"] == traced["total"]
                 and base["end"] == traced["end"]
                 and base["ledger"] == traced["ledger"])
    if not identical:
        raise AssertionError(
            f"tracing perturbed simulated time: untraced {base}, "
            f"traced {traced}")

    tracer = cluster.obs.tracer
    client_span = tracer.one("client.DO_CHECKPOINT")
    daemon_span = tracer.one("daemon.DO_CHECKPOINT")
    pull_span = tracer.one("engine.read")
    begin_span = tracer.one("ckpt.begin")
    commit_span = tracer.one("ckpt.persist_commit")
    total = client_span.duration_ns
    phases_ns = {
        "begin": begin_span.duration_ns,
        "rdma_pull": pull_span.duration_ns,
        "persist_commit": commit_span.duration_ns,
        "daemon_dispatch": (daemon_span.duration_ns
                            - begin_span.duration_ns
                            - pull_span.duration_ns
                            - commit_span.duration_ns),
        "control_plane": total - daemon_span.duration_ns,
    }
    if trace_out is not None:
        tracer.write(trace_out)
    if metrics_out is not None:
        cluster.obs.metrics.write(metrics_out)
    return {
        "total_ns": total,
        "phases_ns": phases_ns,
        "shares": {phase: ns / total for phase, ns in phases_ns.items()},
        "bit_identical": identical,
        "span_count": len(tracer.spans),
        "chrome_trace_json": tracer.chrome_trace_json(),
        "metrics": cluster.obs.metrics.snapshot(),
    }


# --- Fig. 14: GPT checkpoint dump, torch.save vs Portus -----------------------------------


GPT_SWEEP = ["gpt-1.5b", "gpt-4.2b", "gpt-8.3b", "gpt-12.9b", "gpt-22.4b"]


def _gpt_shards_on_cluster(cluster: PaperCluster,
                           config: GptConfig) -> List[ModelInstance]:
    """Materialize the 16 Megatron shards across the two Ampere nodes."""
    shards = shard_gpt(config, tensor_parallel=8, pipeline_parallel=2)
    instances = []
    for index, shard in enumerate(shards):
        node = cluster.amperes[index // 8]
        gpu = index % 8
        instances.append(ModelInstance.materialize(
            shard.name, shard.tensors, node.gpus[gpu],
            model_seed=1000 + index))
    return instances


def fig14_gpt_dump(configs: Optional[List[str]] = None) -> Dict:
    """One checkpoint dump of each GPT size: torch.save vs Portus."""
    configs = configs or GPT_SWEEP
    results = {"configs": configs, "params_b": [], "bytes": [],
               "torch_save": [], "portus": []}
    for name in configs:
        config = GPT_CONFIGS[name]
        results["params_b"].append(config.param_count() / 1e9)
        results["torch_save"].append(_gpt_torch_save_dump(config))
        portus_ns, total_bytes = _gpt_portus_dump(config)
        results["portus"].append(portus_ns)
        results["bytes"].append(total_bytes)
    return results


#: The seed's datapath, expressed as engine options: barrier windows of
#: whole-tensor WRs posted in registration order on a single QP.
ENGINE_SEED_DATAPATH = dict(pipelined=False, chunk_bytes=None,
                            largest_first=False)
#: Stripe width and ingest cap of the tuned datapath (see
#: repro.harness.calibration.PMEM_INGEST_STREAMS for the cap's origin).
ENGINE_STRIPED_QPS = 4
ENGINE_STRIPED_OPTS = dict(max_pmem_streams=4)


def engine_datapath_ablation(config_name: str = "gpt-22.4b") -> Dict:
    """The Fig. 14 dump under the three datapaths (engine ablation).

    * ``barrier`` — the seed: one QP, whole-tensor WRs, full barrier
      between QP_DEPTH-sized windows;
    * ``sliding`` — the engine's default: one QP, 4 MiB segmentation,
      largest-first, credit-based sliding window;
    * ``striped`` — 4 QPs per model plus the daemon-wide PMem ingest
      limiter, which keeps the concurrent-checkpoint dump under the
      Optane congestion cliff (the entire recoverable headroom:
      8.4/6.0 = 1.40x; see DESIGN.md §7).
    """
    config = GPT_CONFIGS[config_name]
    barrier_ns, total_bytes = _gpt_portus_dump(
        config, daemon_kwargs={"engine": dict(ENGINE_SEED_DATAPATH)})
    sliding_ns, _ = _gpt_portus_dump(config)
    striped_ns, _ = _gpt_portus_dump(
        config, daemon_kwargs={"engine": dict(ENGINE_STRIPED_OPTS)},
        num_qps=ENGINE_STRIPED_QPS)
    return {"config": config_name, "bytes": total_bytes,
            "chunk_bytes": ENGINE_CHUNK_BYTES,
            "striped_qps": ENGINE_STRIPED_QPS,
            "barrier_ns": barrier_ns, "sliding_ns": sliding_ns,
            "striped_ns": striped_ns}


def _gpt_torch_save_dump(config: GptConfig) -> int:
    """Megatron save_checkpoint: ranks write their shard files to the
    shared filesystem in rank order (serialized, as Megatron's
    checkpoint barrier enforces)."""
    cluster = PaperCluster(seed=107)
    holder = {}

    def scenario(env):
        instances = _gpt_shards_on_cluster(cluster, config)
        mounts = []
        for node in cluster.amperes:
            mount = yield from cluster.beegfs_mount(node)
            mounts.append(mount)
        checkpointers = [
            TorchSaveCheckpointer(env, mount, node.cpus)
            for mount, node in zip(mounts, cluster.amperes)
        ]
        for instance in instances:
            instance.update_step(1)
        start = env.now
        for index, instance in enumerate(instances):
            yield from checkpointers[index // 8].checkpoint(instance)
        holder["elapsed"] = env.now - start

    cluster.run(scenario)
    return holder["elapsed"]


def _gpt_portus_dump(config: GptConfig,
                     daemon_kwargs: Optional[Dict] = None,
                     num_qps: int = 1) -> Tuple[int, int]:
    """All 16 shards checkpoint concurrently through the daemon.

    *daemon_kwargs* / *num_qps* parameterize the datapath (engine policy
    and stripe width) for the engine-ablation benchmarks; the defaults
    are the paper-faithful configuration.
    """
    cluster = PaperCluster(seed=108, daemon_kwargs=daemon_kwargs,
                           client_num_qps=num_qps)
    holder = {}

    def scenario(env):
        instances = _gpt_shards_on_cluster(cluster, config)
        sessions = []
        for index, instance in enumerate(instances):
            node = cluster.amperes[index // 8]
            session = yield from cluster.portus_register(instance,
                                                         node=node)
            sessions.append(session)
        for instance in instances:
            instance.update_step(1)
        start = env.now
        pulls = [env.process(session.checkpoint(1))
                 for session in sessions]
        yield AllOf(env, pulls)
        holder["elapsed"] = env.now - start
        holder["bytes"] = sum(i.total_bytes for i in instances)

    cluster.run(scenario)
    return holder["elapsed"], holder["bytes"]


# --- Fig. 15 / Fig. 16: GPT-22.4B training throughput and GPU utilization ------------------


def fig15_fig16_training(config_name: str = "gpt-22.4b",
                         checkpoint_every: int = 20,
                         window_s: int = 500) -> Dict:
    """Train GPT under fine-grained checkpointing: CheckFreq vs Portus.

    Returns per-system iterations completed in the window, the mean GPU
    utilization, a binned utilization trace (Fig. 16), and the projected
    extra iterations over 24 h (the paper's 14,400 figure).
    """
    config = GPT_CONFIGS[config_name]
    results = {"config": config_name, "window_s": window_s,
               "checkpoint_every": checkpoint_every}
    for system in ("checkfreq", "portus"):
        cluster = PaperCluster(seed=109)
        holder = {}

        def scenario(env, system=system, cluster=cluster, holder=holder):
            instances = _gpt_shards_on_cluster(cluster, config)
            if system == "checkfreq":
                mount = yield from cluster.beegfs_mount(cluster.amperes[0])
                checkpointer = TorchSaveCheckpointer(
                    env, mount, cluster.amperes[0].cpus)
                policy = CheckFreqPolicy(env, checkpointer,
                                         frequency=checkpoint_every)
            else:
                sessions = []
                for index, instance in enumerate(instances):
                    node = cluster.amperes[index // 8]
                    session = yield from cluster.portus_register(
                        instance, node=node)
                    sessions.append(session)
                policy = PortusAsyncPolicy(env, sessions,
                                           frequency=checkpoint_every)
            job = TrainingJob(env, instances,
                              iteration_ns=config.iteration_ns(),
                              hook=policy)
            holder["job"] = job
            yield from job.run_for(secs(window_s))

        cluster.run(scenario)
        job = holder["job"]
        window_ns = job.finished_at - job.started_at
        utilization = aggregate_utilization(job.recorders, job.started_at,
                                            job.started_at + secs(window_s))
        trace = job.recorders[0].trace(job.started_at,
                                       job.started_at + secs(window_s),
                                       secs(10))
        iters_per_day = job.iterations_done * (24 * 3600) / to_seconds(
            window_ns)
        results[system] = {
            "iterations": job.iterations_done,
            "utilization": utilization,
            "trace": trace,
            "iters_per_day": iters_per_day,
        }
    results["throughput_ratio"] = (results["portus"]["iters_per_day"]
                                   / results["checkfreq"]["iters_per_day"])
    results["extra_iters_per_day"] = (results["portus"]["iters_per_day"]
                                      - results["checkfreq"]["iters_per_day"])
    return results


# --- Fig. 9: training timeline comparison ---------------------------------------------------


def fig9_timeline(model_name: str = "resnet50", iterations: int = 10) -> Dict:
    """Four policies on one model: total time and stall share each."""
    spec = build_model(model_name)
    results = {"model": model_name, "iterations": iterations,
               "compute_ns": iterations * spec.iteration_ns}

    def measure(policy_factory) -> Dict:
        cluster = PaperCluster(seed=110)
        holder = {}

        def scenario(env):
            model = cluster.materialize(model_name)
            policy = yield from policy_factory(env, cluster, model)
            job = TrainingJob(env, [model],
                              iteration_ns=spec.iteration_ns, hook=policy)
            holder["job"] = job
            holder["policy"] = policy
            yield from job.run(iterations)

        cluster.run(scenario)
        job = holder["job"]
        return {"total_ns": job.elapsed_ns,
                "stall_ns": getattr(holder["policy"], "stall_ns", 0)}

    def pytorch_sync(env, cluster, model):
        mount = yield from cluster.beegfs_mount()
        checkpointer = TorchSaveCheckpointer(env, mount,
                                             cluster.volta.cpus)
        return SyncCheckpointPolicy(env, checkpointer, frequency=1)

    def checkfreq(env, cluster, model):
        mount = yield from cluster.beegfs_mount()
        checkpointer = TorchSaveCheckpointer(env, mount,
                                             cluster.volta.cpus)
        return CheckFreqPolicy(env, checkpointer, frequency=1)

    def portus_sync(env, cluster, model):
        session = yield from cluster.portus_client().register(model)
        return PortusSyncPolicy(env, [session], frequency=1)

    def portus_async(env, cluster, model):
        session = yield from cluster.portus_client().register(model)
        return PortusAsyncPolicy(env, [session], frequency=1)

    results["pytorch_sync"] = measure(pytorch_sync)
    results["checkfreq"] = measure(checkfreq)
    results["portus_sync"] = measure(portus_sync)
    results["portus_async"] = measure(portus_async)
    return results


# --- Self-healing ops: adaptive interval vs fixed CheckFreq tuning ------------------


def ops_policy_lost_work(horizon_s: int = 1800, seed: int = 7,
                         iteration_ns: Optional[int] = None,
                         checkpoint_cost_ns: Optional[int] = None) -> Dict:
    """Expected lost work: adaptive Young/Daly interval vs CheckFreq.

    CheckFreq's tuner picks the checkpoint frequency once, from a
    profiling pass (stall cost vs an overhead budget) — it never looks
    at how often the deployment actually fails.  The operator's
    :class:`~repro.ops.policy.AdaptiveIntervalController` re-derives the
    Young/Daly optimum from the *measured* MTBF after every failure.

    Both policies replay the identical seeded failure trace — a calm
    phase, a crash storm (the interesting regime: a flaky NIC, a
    crash-looping daemon), and a second calm phase — and are charged
    the same two wastes: work lost to each failure (time since the last
    durable checkpoint) and checkpoint stall (count x cost).  Returns
    per-policy totals and the adaptive/fixed waste ratio (< 1.0 means
    the controller pays for itself).
    """
    import random as _random

    from repro.baselines.checkfreq import recommend_frequency
    from repro.ops.policy import AdaptiveIntervalController
    from repro.units import msecs

    iteration_ns = iteration_ns or msecs(500)
    # The blocking stall per checkpoint (CheckFreq's snapshot phase;
    # Portus' sync pull) — what both policies are charged per save.
    cost_ns = checkpoint_cost_ns or msecs(200)

    # Ground-truth failure process: calm / crash-storm / calm.  The
    # storm MTBF (20 s) is an order of magnitude below the calm one.
    phases = [(secs(horizon_s * 2 // 5), secs(300)),
              (secs(horizon_s // 5), secs(20)),
              (secs(horizon_s * 2 // 5), secs(300))]
    rng = _random.Random(seed)
    failures: List[int] = []
    phase_start = 0
    for duration_ns, mtbf_ns in phases:
        at = phase_start
        while True:
            at += max(1, int(rng.expovariate(1.0 / mtbf_ns)))
            if at >= phase_start + duration_ns:
                break
            failures.append(at)
        phase_start += duration_ns
    horizon_ns = phase_start

    def walk(interval_fn, on_failure=None, on_checkpoint=None) -> Dict:
        lost = overhead = checkpoints = 0
        now = last_durable = 0
        pending = list(failures)
        while now < horizon_ns:
            next_ckpt = now + max(1, interval_fn(now))
            if pending and pending[0] < min(next_ckpt, horizon_ns):
                failure_at = pending.pop(0)
                lost += failure_at - last_durable
                now = last_durable = failure_at
                if on_failure:
                    on_failure(failure_at)
            elif next_ckpt < horizon_ns:
                now = last_durable = next_ckpt
                overhead += cost_ns
                checkpoints += 1
                if on_checkpoint:
                    on_checkpoint(cost_ns)
            else:
                now = horizon_ns
        return {"lost_work_s": to_seconds(lost),
                "overhead_s": to_seconds(overhead),
                "waste_s": to_seconds(lost + overhead),
                "checkpoints": checkpoints,
                "failures": len(failures)}

    # CheckFreq: profile-derived, failure-blind, fixed for the run.
    k = recommend_frequency(iteration_ns, snapshot_ns=cost_ns,
                            persist_ns=4 * cost_ns,
                            overhead_budget=0.01)
    fixed_interval = k * iteration_ns
    fixed = walk(lambda now: fixed_interval)
    fixed["interval_s"] = to_seconds(fixed_interval)

    controller = AdaptiveIntervalController(prior_mtbf_ns=secs(300),
                                            prior_cost_ns=cost_ns,
                                            max_interval_ns=secs(120))
    controller.observe_start(0)
    adaptive = walk(controller.interval_ns,
                    on_failure=controller.observe_failure,
                    on_checkpoint=controller.observe_checkpoint_cost)
    adaptive["final_interval_s"] = to_seconds(controller.interval_ns(
        horizon_ns))

    return {"fixed": fixed, "adaptive": adaptive,
            "waste_ratio": adaptive["waste_s"] / fixed["waste_s"],
            "lost_work_ratio": (adaptive["lost_work_s"]
                                / max(fixed["lost_work_s"], 1e-9))}

"""Control-plane messages between Portus Client and Portus Daemon.

Everything rides the TCP/IPoIB socket; data never does.  Each constructor
returns ``(message_dict, wire_size_bytes)`` so the sender charges a
realistic wire size — the registration packet grows with the tensor
count (it carries per-layer metadata and rkeys, §III-B), while the
operational messages are tiny ("the word DO_CHECKPOINT", §III-C).
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

OP_REGISTER = "REGISTER"
OP_REGISTERED = "REGISTERED"
OP_DO_CHECKPOINT = "DO_CHECKPOINT"
OP_CHECKPOINT_DONE = "CHECKPOINT_DONE"
OP_DO_RESTORE = "DO_RESTORE"
OP_RESTORE_DONE = "RESTORE_DONE"
OP_UNREGISTER = "UNREGISTER"
OP_UNREGISTERED = "UNREGISTERED"
OP_LIST = "LIST"
OP_LIST_REPLY = "LIST_REPLY"
OP_HEARTBEAT = "HEARTBEAT"
OP_HEARTBEAT_ACK = "HEARTBEAT_ACK"
OP_GROUP_REGISTER = "GROUP_REGISTER"
OP_GROUP_REGISTERED = "GROUP_REGISTERED"
OP_GROUP_COMMIT = "GROUP_COMMIT"
OP_GROUP_COMMITTED = "GROUP_COMMITTED"
OP_GROUP_QUERY = "GROUP_QUERY"
OP_GROUP_INFO = "GROUP_INFO"
OP_ERROR = "ERROR"

_BASE_SIZE = 96
_PER_TENSOR_SIZE = 128  # name, dtype, shape, size, rkey, addr
_PER_QP_SIZE = 16  # QP number + starting PSN per extra stripe lane

#: Message key carrying the observability trace id end-to-end.  Real
#: deployments tuck the id into reserved header bytes (W3C traceparent
#: rides existing padding), so stamping it does NOT change any wire
#: size — which is also what keeps tracing zero-cost in simulated time.
TRACE_KEY = "trace"


def stamp_trace(message: Dict[str, Any], trace_id) -> Dict[str, Any]:
    """Attach *trace_id* to an outgoing message (no-op when None)."""
    if trace_id is not None:
        message[TRACE_KEY] = trace_id
    return message


def trace_of(message: Dict[str, Any]):
    """The trace id a message carries, or None."""
    return message.get(TRACE_KEY)


#: Wire bytes one chunk digest adds to a dedup checkpoint request.
_PER_CHUNK_SIZE = 24


def register(model_name: str, tensors: List[Dict[str, Any]],
             server_qp, dedup: Dict[str, Any] = None,
             tenant: str = None) -> Tuple[Dict[str, Any], int]:
    """The model description packet: one entry per tensor, plus the QP(s)
    the daemon will pull through (standing in for the out-of-band QP
    number exchange of the real system).  *server_qp* may be a single QP
    or a list — the stripe set the client negotiated (``num_qps``); the
    daemon stripes each transfer across all of them.  *dedup* (e.g.
    ``{"chunk_bytes": N}``) opts the model into the deduplicated layout:
    checkpoints then carry chunk manifests and the daemon stores the
    bytes in the pool-wide refcounted chunk store.  *tenant* names the
    owning tenant for fleet quota/bandwidth accounting (None = legacy
    unaccounted session).
    """
    qps = list(server_qp) if isinstance(server_qp, (list, tuple)) \
        else [server_qp]
    message = {"op": OP_REGISTER, "model": model_name, "tensors": tensors,
               "qp": qps[0], "qps": qps}
    size = (_BASE_SIZE + _PER_TENSOR_SIZE * len(tensors)
            + _PER_QP_SIZE * (len(qps) - 1))
    if dedup is not None:
        message["dedup"] = dict(dedup)
        size += 16
    if tenant is not None:
        message["tenant"] = tenant
        size += 24
    return message, size


def do_checkpoint(model_name: str, step: int,
                  dirty: List[str] = None,
                  manifest: List[bytes] = None
                  ) -> Tuple[Dict[str, Any], int]:
    """*dirty* (optional) lists the tensors that changed since the last
    checkpoint — the incremental mode (Check-N-Run-style); the daemon
    completes the new version with local copies for the rest.

    *manifest* (dedup models) carries the content digest of every chunk
    of the would-be region; the daemon pulls only the chunks absent from
    its store and bumps refcounts for the rest."""
    message = {"op": OP_DO_CHECKPOINT, "model": model_name, "step": step}
    size = 64
    if dirty is not None:
        message["dirty"] = list(dirty)
        size += 40 * len(dirty)
    if manifest is not None:
        message["manifest"] = list(manifest)
        size += _PER_CHUNK_SIZE * len(manifest)
    return message, size


def do_restore(model_name: str,
               step: int = None) -> Tuple[Dict[str, Any], int]:
    """*step* pins the restore to an exact committed step (group
    restores use this so every member returns the same step); ``None``
    keeps the legacy newest-DONE behaviour."""
    message = {"op": OP_DO_RESTORE, "model": model_name}
    if step is not None:
        message["step"] = step
    return message, 64


def group_register(group_name: str, layout_blob: bytes
                   ) -> Tuple[Dict[str, Any], int]:
    """Bind the already-registered member models into one named group.

    *layout_blob* is the packed :class:`~repro.dnn.layout.ShardedLayout`
    (degrees, member list, per-tensor partition specs) the daemon
    persists in the group-commit record — the wire size scales with it,
    like REGISTER scales with the tensor count."""
    message = {"op": OP_GROUP_REGISTER, "group": group_name,
               "layout": layout_blob}
    return message, 64 + len(layout_blob)


def group_commit(group_name: str, step: int) -> Tuple[Dict[str, Any], int]:
    """Phase two of a group dump: every member pull is DONE at *step*;
    make the step visible atomically (or not at all)."""
    return {"op": OP_GROUP_COMMIT, "group": group_name, "step": step}, 64


def group_query(group_name: str) -> Tuple[Dict[str, Any], int]:
    """The group's committed step and persisted layout."""
    return {"op": OP_GROUP_QUERY, "group": group_name}, 64


def unregister(model_name: str) -> Tuple[Dict[str, Any], int]:
    return {"op": OP_UNREGISTER, "model": model_name}, 64


def list_models() -> Tuple[Dict[str, Any], int]:
    return {"op": OP_LIST}, 64


def heartbeat(model_name: str) -> Tuple[Dict[str, Any], int]:
    """Lease renewal for an attached session (any request renews the
    lease too; explicit heartbeats cover long idle stretches)."""
    return {"op": OP_HEARTBEAT, "model": model_name}, 64


#: Wire bytes the health block adds to a heartbeat reply: pool
#: utilization, inflight/lease counts, and the fault counters — the
#: operator's raw detect signal (a handful of packed u64s).
_HEALTH_SIZE = 160


def heartbeat_ack(model_name: str, attached: bool,
                  health: Dict[str, Any] = None) -> Tuple[Dict[str, Any], int]:
    """Heartbeat reply, optionally carrying the daemon health block."""
    message = {"op": OP_HEARTBEAT_ACK, "model": model_name,
               "attached": attached}
    size = 64
    if health is not None:
        message["health"] = health
        size += _HEALTH_SIZE
    return message, size


def reply(op: str, **fields: Any) -> Tuple[Dict[str, Any], int]:
    message = {"op": op}
    message.update(fields)
    return message, 64


def error_reply(exc: BaseException) -> Tuple[Dict[str, Any], int]:
    return {"op": OP_ERROR, "error": exc}, 128

"""The three-level index on PMem: ModelTable -> MIndex -> TensorData.

Level 1 — :class:`ModelTable`: a persistent sorted array mapping model
names to the PMem offset of their metadata region (``info_offset`` in the
paper), stored as one crash-atomic committed record.

Level 2 — :class:`ModelMeta` / :class:`MIndex`: per model, a metadata
region holding (a) the *version flags* record — two checkpoint slots with
EMPTY/ACTIVE/DONE states and step stamps, the paper's double-mapping
mechanism — and (b) the MIndex record: per-tensor name, dtype, shape,
size, and the PMem address of its bytes in each version.

Level 3 — TensorData: two contiguous data extents per model (one per
checkpoint version), inside which every tensor has a fixed 64-byte-
aligned offset.  Contiguity is what lets the daemon register a single
RDMA MR per version and pull every tensor with one-sided reads into its
final resting place — the zero-copy, serialization-free property.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Optional, Tuple

from repro.dnn.tensor import TensorSpec
from repro.dnn.dtypes import DType
from repro.errors import ModelNotFound, PmemError, PortusError
from repro.hw.device import Allocation
from repro.pmem.layout import CommittedRecord, blob_capacity
from repro.pmem.pool import PmemPool

FLAG_EMPTY = 0
FLAG_ACTIVE = 1
FLAG_DONE = 2

FLAG_NAMES = {FLAG_EMPTY: "EMPTY", FLAG_ACTIVE: "ACTIVE", FLAG_DONE: "DONE"}

_ALIGN = 64

_FLAGS = struct.Struct("<BBQQ")  # v0_state, v1_state, v0_step, v1_step
_FLAGS_SLOT = blob_capacity(_FLAGS.size) + 32  # headroom inside the slot

# The write-once geometry header at the front of every metadata region:
# magic, layout version, flags slot size, MIndex slot size.  Recovery
# derives every record offset from these persisted values instead of
# re-deriving them from the allocation size — which can legitimately be
# rounded up by the pool — so a reader never probes the B slot at the
# wrong offset.  The header is persisted before the model becomes
# reachable from the ModelTable, so it is crash-atomic by construction.
#
# Layout version 1 is the contiguous-TensorData layout (two data extents
# per model).  Version 2 is the deduplicated layout: no data extents —
# each version slot instead carries a *chunk manifest* record listing
# the content digests that reassemble the region from the pool-wide
# refcounted chunk store (:mod:`repro.pmem.chunks`).  The v2 header
# extends v1 with the manifest slot size and the chunk size; v1 regions
# keep their exact byte layout.
_META_HEADER = struct.Struct("<IIII")  # magic, version, flags_slot, mindex_slot
_META_HEADER_V2 = struct.Struct("<IIIIIQ")  # ... + manifest_slot, chunk_bytes
_META_MAGIC = 0x4D455441  # "META"
_META_LAYOUT_VERSION = 1
_META_LAYOUT_VERSION_DEDUP = 2
_META_HEADER_SIZE = 64  # header struct, padded to the data alignment

_MANIFEST_COUNT = struct.Struct("<I")
_DIGEST_BYTES = 20

_MINDEX_HEADER = struct.Struct("<64sIQQQ")  # name, count, v0, v1, total
_TENSOR_ENTRY = struct.Struct("<64s16sB8QQQ")  # name, dtype, ndim, dims, size, offset

MAX_DIMS = 8
NAME_BYTES = 64
META_TAG = "portus-meta"
DATA_TAG = "portus-data"
TABLE_TAG = "portus-modeltable"


def _pack_name(name: str, width: int = NAME_BYTES) -> bytes:
    raw = name.encode("utf-8")
    if len(raw) > width:
        raise PortusError(f"name too long for index: {name!r}")
    return raw


def _unpack_name(raw: bytes) -> str:
    return raw.rstrip(b"\x00").decode("utf-8")


class TensorDescriptor:
    """One MIndex entry: everything needed to address a tensor's bytes."""

    def __init__(self, name: str, dtype_name: str, shape: Tuple[int, ...],
                 size: int, offset: int) -> None:
        if len(shape) > MAX_DIMS:
            raise PortusError(f"{name}: more than {MAX_DIMS} dims")
        self.name = name
        self.dtype_name = dtype_name
        self.shape = tuple(shape)
        self.size = size
        self.offset = offset

    @classmethod
    def from_spec(cls, spec: TensorSpec, offset: int) -> "TensorDescriptor":
        return cls(spec.name, spec.dtype.name, spec.shape, spec.size_bytes,
                   offset)

    def to_spec(self) -> TensorSpec:
        return TensorSpec(self.name, self.shape, DType.by_name(self.dtype_name))

    def pack(self) -> bytes:
        dims = list(self.shape) + [0] * (MAX_DIMS - len(self.shape))
        return _TENSOR_ENTRY.pack(_pack_name(self.name),
                                  _pack_name(self.dtype_name, 16),
                                  len(self.shape), *dims, self.size,
                                  self.offset)

    @classmethod
    def unpack(cls, data: bytes, offset: int) -> "TensorDescriptor":
        fields = _TENSOR_ENTRY.unpack_from(data, offset)
        name, dtype_raw, ndim = fields[0], fields[1], fields[2]
        dims = fields[3:3 + ndim]
        size, tensor_offset = fields[11], fields[12]
        return cls(_unpack_name(name), _unpack_name(dtype_raw), tuple(dims),
                   size, tensor_offset)

    def __repr__(self) -> str:
        return f"<TensorDescriptor {self.name} {self.shape} " \
               f"{self.dtype_name} @+{self.offset}>"


def layout_tensors(specs: List[TensorSpec]) -> Tuple[List[TensorDescriptor],
                                                     int]:
    """Assign aligned offsets inside a TensorData region; returns
    (descriptors, region size)."""
    descriptors = []
    cursor = 0
    for spec in specs:
        descriptors.append(TensorDescriptor.from_spec(spec, cursor))
        cursor += (spec.size_bytes + _ALIGN - 1) // _ALIGN * _ALIGN
    return descriptors, max(cursor, _ALIGN)


def region_extent(descriptors: List[TensorDescriptor]) -> int:
    """The TensorData region size a descriptor list occupies (the same
    value :func:`layout_tensors` returned when the offsets were assigned)."""
    cursor = 0
    for descriptor in descriptors:
        end = descriptor.offset + descriptor.size
        cursor = max(cursor, (end + _ALIGN - 1) // _ALIGN * _ALIGN)
    return max(cursor, _ALIGN)


class MIndex:
    """The level-2 record: tensor table + the two TensorData addresses."""

    def __init__(self, model_name: str,
                 descriptors: List[TensorDescriptor],
                 version_addrs: Tuple[int, int], total_bytes: int) -> None:
        self.model_name = model_name
        self.descriptors = descriptors
        self.version_addrs = version_addrs
        self.total_bytes = total_bytes

    @property
    def layer_count(self) -> int:
        return len(self.descriptors)

    def descriptor(self, tensor_name: str) -> TensorDescriptor:
        for descriptor in self.descriptors:
            if descriptor.name == tensor_name:
                return descriptor
        raise PortusError(
            f"{self.model_name}: no tensor named {tensor_name!r}")

    def paddr(self, descriptor: TensorDescriptor, version: int) -> int:
        """The persistent address of a tensor's bytes in *version*."""
        return self.version_addrs[version] + descriptor.offset

    def pack(self) -> bytes:
        header = _MINDEX_HEADER.pack(_pack_name(self.model_name),
                                     len(self.descriptors),
                                     self.version_addrs[0],
                                     self.version_addrs[1],
                                     self.total_bytes)
        return header + b"".join(d.pack() for d in self.descriptors)

    @classmethod
    def unpack(cls, data: bytes) -> "MIndex":
        name, count, v0, v1, total = _MINDEX_HEADER.unpack_from(data)
        descriptors = [
            TensorDescriptor.unpack(
                data, _MINDEX_HEADER.size + i * _TENSOR_ENTRY.size)
            for i in range(count)
        ]
        return cls(_unpack_name(name), descriptors, (v0, v1), total)

    @staticmethod
    def slot_size(tensor_count: int) -> int:
        return blob_capacity(_MINDEX_HEADER.size
                             + tensor_count * _TENSOR_ENTRY.size) + 32


class VersionFlags:
    """The double-mapping state: per-version flag + step stamp."""

    def __init__(self, states: Tuple[int, int] = (FLAG_EMPTY, FLAG_EMPTY),
                 steps: Tuple[int, int] = (0, 0)) -> None:
        self.states = list(states)
        self.steps = list(steps)

    def pack(self) -> bytes:
        return _FLAGS.pack(self.states[0], self.states[1], self.steps[0],
                           self.steps[1])

    @classmethod
    def unpack(cls, data: bytes) -> "VersionFlags":
        s0, s1, t0, t1 = _FLAGS.unpack_from(data)
        return cls((s0, s1), (t0, t1))

    def newest_done(self) -> Optional[int]:
        """Version index holding the newest completed checkpoint."""
        done = [i for i in (0, 1) if self.states[i] == FLAG_DONE]
        if not done:
            return None
        return max(done, key=lambda i: self.steps[i])

    def checkpoint_target(self) -> int:
        """Where the next checkpoint goes: never the newest DONE slot."""
        newest = self.newest_done()
        if newest is None:
            return 0
        return 1 - newest

    def __repr__(self) -> str:
        parts = [f"v{i}={FLAG_NAMES[self.states[i]]}@{self.steps[i]}"
                 for i in (0, 1)]
        return f"<VersionFlags {' '.join(parts)}>"


class ModelMeta:
    """A model's metadata region plus its two TensorData extents."""

    def __init__(self, pool: PmemPool, meta: Allocation,
                 mindex: MIndex, data_regions: Tuple[Allocation,
                                                     Allocation],
                 flags_slot: int = _FLAGS_SLOT,
                 mindex_slot: Optional[int] = None,
                 manifest_slot: int = 0,
                 chunk_bytes: int = 0) -> None:
        self.pool = pool
        self.meta = meta
        self.mindex = mindex
        self.data_regions = data_regions
        self.flags_slot = flags_slot
        self.mindex_slot = (mindex_slot if mindex_slot is not None
                            else MIndex.slot_size(mindex.layer_count))
        #: Nonzero only in the deduplicated (layout v2) format.
        self.manifest_slot = manifest_slot
        self.chunk_bytes = chunk_bytes
        self._flags_record = CommittedRecord(meta, _META_HEADER_SIZE,
                                             self.flags_slot)
        self._mindex_record = CommittedRecord(
            meta, _META_HEADER_SIZE + 2 * self.flags_slot, self.mindex_slot)
        self._manifest_records: Tuple[Optional[CommittedRecord],
                                      Optional[CommittedRecord]]
        if manifest_slot > 0:
            base = (_META_HEADER_SIZE + 2 * self.flags_slot
                    + 2 * self.mindex_slot)
            self._manifest_records = (
                CommittedRecord(meta, base, manifest_slot),
                CommittedRecord(meta, base + 2 * manifest_slot,
                                manifest_slot))
        else:
            self._manifest_records = (None, None)

    @property
    def dedup(self) -> bool:
        """True for the deduplicated (chunk-manifest) layout."""
        return self.manifest_slot > 0

    # -- creation / recovery --------------------------------------------------------

    @staticmethod
    def meta_region_size(tensor_count: int) -> int:
        """Bytes the metadata region needs for *tensor_count* tensors."""
        return (_META_HEADER_SIZE + 2 * _FLAGS_SLOT
                + 2 * MIndex.slot_size(tensor_count))

    @classmethod
    def create(cls, pool: PmemPool, model_name: str,
               specs: List[TensorSpec]) -> "ModelMeta":
        """Allocate the metadata region and both TensorData versions."""
        descriptors, region_size = layout_tensors(specs)
        meta = pool.alloc(cls.meta_region_size(len(descriptors)),
                          tag=f"{META_TAG}/{_short(model_name)}")
        data0 = pool.alloc(region_size,
                           tag=f"{DATA_TAG}/{_short(model_name)}/v0")
        data1 = pool.alloc(region_size,
                           tag=f"{DATA_TAG}/{_short(model_name)}/v1")
        mindex = MIndex(model_name, descriptors, (data0.addr, data1.addr),
                        sum(d.size for d in descriptors))
        instance = cls(pool, meta, mindex, (data0, data1))
        meta.write_bytes(0, _META_HEADER.pack(
            _META_MAGIC, _META_LAYOUT_VERSION, instance.flags_slot,
            instance.mindex_slot))
        meta.persist(0, _META_HEADER.size)
        instance._mindex_record.write(mindex.pack())
        instance.write_flags(VersionFlags())
        return instance

    @staticmethod
    def manifest_slot_size(region_size: int, chunk_bytes: int) -> int:
        """Slot bytes for one version's chunk-manifest record."""
        max_chunks = (region_size + chunk_bytes - 1) // chunk_bytes
        return blob_capacity(_MANIFEST_COUNT.size
                             + max_chunks * _DIGEST_BYTES) + 32

    @staticmethod
    def meta_region_size_dedup(tensor_count: int, region_size: int,
                               chunk_bytes: int) -> int:
        """Metadata-region bytes for a dedup model (no data extents —
        instead two manifest records, one per version slot)."""
        return (_META_HEADER_SIZE + 2 * _FLAGS_SLOT
                + 2 * MIndex.slot_size(tensor_count)
                + 4 * ModelMeta.manifest_slot_size(region_size, chunk_bytes))

    @classmethod
    def create_dedup(cls, pool: PmemPool, model_name: str,
                     specs: List[TensorSpec],
                     chunk_bytes: int) -> "ModelMeta":
        """Allocate a dedup (layout v2) model: metadata region only.

        Version data lives in the pool-wide chunk store; each version
        slot's manifest record lists the digests that reassemble it.
        """
        if chunk_bytes <= 0:
            raise PmemError(f"bad chunk size {chunk_bytes}")
        descriptors, region_size = layout_tensors(specs)
        manifest_slot = cls.manifest_slot_size(region_size, chunk_bytes)
        meta = pool.alloc(
            cls.meta_region_size_dedup(len(descriptors), region_size,
                                       chunk_bytes),
            tag=f"{META_TAG}/{_short(model_name)}")
        mindex = MIndex(model_name, descriptors, (0, 0),
                        sum(d.size for d in descriptors))
        instance = cls(pool, meta, mindex, (None, None),
                       manifest_slot=manifest_slot, chunk_bytes=chunk_bytes)
        meta.write_bytes(0, _META_HEADER_V2.pack(
            _META_MAGIC, _META_LAYOUT_VERSION_DEDUP, instance.flags_slot,
            instance.mindex_slot, manifest_slot, chunk_bytes))
        meta.persist(0, _META_HEADER_V2.size)
        instance._mindex_record.write(mindex.pack())
        instance.write_flags(VersionFlags())
        return instance

    @staticmethod
    def read_geometry(meta: Allocation) -> Tuple[int, int, int, int]:
        """The persisted record geometry of a meta region.

        Returns ``(flags_slot, mindex_slot, manifest_slot, chunk_bytes)``
        — the last two are 0 for the v1 (contiguous TensorData) layout.
        Raises :class:`PmemError` when the header is torn or was never
        written — the region is not (or no longer) a model's metadata.
        """
        try:
            raw = meta.read_bytes(0, _META_HEADER_V2.size)
        except ValueError as exc:
            raise PmemError(
                f"meta header unreadable at {meta.addr:#x}") from exc
        magic, version, flags_slot, mindex_slot = _META_HEADER.unpack_from(raw)
        if magic != _META_MAGIC:
            raise PmemError(
                f"bad meta header magic {magic:#x} at {meta.addr:#x}")
        if version == _META_LAYOUT_VERSION:
            manifest_slot, chunk_bytes = 0, 0
        elif version == _META_LAYOUT_VERSION_DEDUP:
            (_magic, _version, flags_slot, mindex_slot, manifest_slot,
             chunk_bytes) = _META_HEADER_V2.unpack(raw)
            if manifest_slot <= 0 or chunk_bytes <= 0:
                raise PmemError(
                    f"bad dedup meta geometry at {meta.addr:#x}: "
                    f"manifest_slot={manifest_slot} "
                    f"chunk_bytes={chunk_bytes}")
        else:
            raise PmemError(
                f"unsupported meta layout version {version} "
                f"at {meta.addr:#x}")
        if flags_slot <= 0 or mindex_slot <= 0 or \
                _META_HEADER_SIZE + 2 * flags_slot + 2 * mindex_slot \
                + 4 * manifest_slot > meta.size:
            raise PmemError(
                f"meta geometry out of bounds at {meta.addr:#x}: "
                f"flags_slot={flags_slot} mindex_slot={mindex_slot} "
                f"manifest_slot={manifest_slot} region={meta.size}")
        return flags_slot, mindex_slot, manifest_slot, chunk_bytes

    @classmethod
    def open(cls, pool: PmemPool, meta_addr: int,
             lenient: bool = False) -> "ModelMeta":
        """Rebuild from PMem after a daemon restart or crash.

        Record geometry comes from the persisted header — never from the
        allocation size, which the pool may have rounded up — so the B
        slot is always probed where the writer put it.  A version address
        of 0 marks a slot the repacking tool reclaimed; its region handle
        is None until :meth:`ensure_regions` re-creates it on the next
        attach.

        With *lenient* (fsck), a nonzero version address that no device
        allocation backs maps to a None region instead of raising, so
        the verifier can inspect the rest of the model and demote just
        the broken slot.
        """
        meta = pool.device.allocation_at(meta_addr)
        flags_slot, mindex_slot, manifest_slot, chunk_bytes = \
            cls.read_geometry(meta)
        record = CommittedRecord(meta, _META_HEADER_SIZE + 2 * flags_slot,
                                 mindex_slot)
        committed = record.read()
        if committed is None:
            raise PmemError(f"MIndex record unreadable at {meta_addr:#x}")
        mindex = MIndex.unpack(committed[0])

        def resolve(addr: int) -> Optional[Allocation]:
            if not addr:
                return None
            try:
                return pool.device.allocation_at(addr)
            except Exception:
                if lenient:
                    return None
                raise

        data_regions = tuple(resolve(addr)
                             for addr in mindex.version_addrs)
        return cls(pool, meta, mindex, data_regions,
                   flags_slot=flags_slot, mindex_slot=mindex_slot,
                   manifest_slot=manifest_slot, chunk_bytes=chunk_bytes)

    def ensure_regions(self) -> None:
        """Re-allocate any version slot the repacking tool reclaimed."""
        if self.dedup:
            # Dedup models have no per-version data extents: version
            # bytes live in the shared chunk store.
            return
        regions = list(self.data_regions)
        changed = False
        for version in (0, 1):
            if regions[version] is None:
                _descriptors, region_size = layout_tensors(
                    [d.to_spec() for d in self.mindex.descriptors])
                regions[version] = self.pool.alloc(
                    region_size,
                    tag=f"{DATA_TAG}/{_short(self.mindex.model_name)}"
                        f"/v{version}")
                changed = True
        if changed:
            self.data_regions = tuple(regions)
            self.mindex.version_addrs = tuple(
                region.addr for region in self.data_regions)
            self._mindex_record.write(self.mindex.pack())

    def drop_version(self, version: int) -> int:
        """Free one version's TensorData; returns the bytes reclaimed.

        Crash-safe ordering: demote the flag first (a crash after leaves
        an EMPTY slot whose data is merely still allocated), then commit
        the MIndex with address 0 (a crash after leaves the extent
        committed but unreferenced — a leak fsck reclaims), and free the
        extent last (the allocator's own leak-only window).  At no point
        can a DONE flag coexist with a zero or freed version address —
        the ordering bug that used to crash restore-after-restart.

        Dedup models follow the same demote-before-unlink-before-unref
        ordering with the manifest in place of the data extent: demote
        the flag, commit an empty manifest, then drop the chunk
        references (the store frees extents whose count reaches zero).
        References are dropped only when the slot was DONE before the
        demote — a non-DONE slot's references were never certainly
        counted, so they are left for fsck's leak pass rather than
        risking an over-free.
        """
        if self.dedup:
            return self._drop_version_dedup(version)
        region = self.data_regions[version]
        if region is None:
            return 0
        reclaimed = region.size
        flags = self.read_flags()
        flags.states[version] = FLAG_EMPTY
        flags.steps[version] = 0
        self.write_flags(flags)
        regions = list(self.data_regions)
        regions[version] = None
        self.data_regions = tuple(regions)
        addrs = list(self.mindex.version_addrs)
        addrs[version] = 0
        self.mindex.version_addrs = tuple(addrs)
        self._mindex_record.write(self.mindex.pack())
        self.pool.free(region)
        return reclaimed

    def _drop_version_dedup(self, version: int) -> int:
        from repro.pmem.chunks import ChunkStore

        digests = self.read_manifest(version)
        flags = self.read_flags()
        was_done = flags.states[version] == FLAG_DONE
        if not digests and flags.states[version] == FLAG_EMPTY:
            return 0
        flags.states[version] = FLAG_EMPTY
        flags.steps[version] = 0
        self.write_flags(flags)
        self.write_manifest(version, [])
        if not was_done or not digests:
            return 0
        store = ChunkStore.attach(self.pool)
        if store is None:
            return 0
        freed = store.unref(digests)
        return sum(allocation.size for allocation in freed)

    # -- manifests (dedup layout) ----------------------------------------------------

    def read_manifest(self, version: int) -> List[bytes]:
        """The chunk digests reassembling *version* (dedup models only)."""
        record = self._manifest_records[version]
        if record is None:
            return []
        committed = record.read()
        if committed is None:
            return []
        payload = committed[0]
        (count,) = _MANIFEST_COUNT.unpack_from(payload)
        base = _MANIFEST_COUNT.size
        return [payload[base + i * _DIGEST_BYTES:
                        base + (i + 1) * _DIGEST_BYTES]
                for i in range(count)]

    def write_manifest(self, version: int, digests: List[bytes]) -> None:
        record = self._manifest_records[version]
        if record is None:
            raise PmemError(
                f"{self.mindex.model_name}: not a dedup model")
        payload = _MANIFEST_COUNT.pack(len(digests)) + b"".join(digests)
        record.write(payload)

    def manifest_record(self, version: int) -> Optional[CommittedRecord]:
        """The raw manifest record (integrity tooling)."""
        return self._manifest_records[version]

    # -- flags ------------------------------------------------------------------------

    def read_flags(self) -> VersionFlags:
        committed = self._flags_record.read()
        if committed is None:
            return VersionFlags()
        return VersionFlags.unpack(committed[0])

    def write_flags(self, flags: VersionFlags) -> None:
        self._flags_record.write(flags.pack())

    # -- tensor data access ---------------------------------------------------------

    def data_region(self, version: int) -> Allocation:
        return self.data_regions[version]

    def read_tensor(self, descriptor: TensorDescriptor, version: int):
        if self.dedup:
            return self._read_tensor_dedup(descriptor, version)
        return self.data_regions[version].read(descriptor.offset,
                                               descriptor.size)

    def _read_tensor_dedup(self, descriptor: TensorDescriptor, version: int):
        from repro.hw.content import concat
        from repro.pmem.chunks import ChunkStore

        store = ChunkStore.attach(self.pool)
        if store is None:
            raise PmemError(
                f"{self.mindex.model_name}: dedup model but the pool "
                f"has no chunk store")
        digests = self.read_manifest(version)
        if not digests:
            raise PmemError(
                f"{self.mindex.model_name}: version {version} has no "
                f"manifest")
        parts = []
        start = descriptor.offset
        end = descriptor.offset + descriptor.size
        first = start // self.chunk_bytes
        last = (end - 1) // self.chunk_bytes
        for index in range(first, last + 1):
            if index >= len(digests):
                raise PmemError(
                    f"{self.mindex.model_name}: manifest too short for "
                    f"tensor {descriptor.name!r}")
            entry = store.lookup(digests[index])
            if entry is None:
                raise PmemError(
                    f"{self.mindex.model_name}: chunk "
                    f"{digests[index].hex()[:12]} missing from the store")
            chunk_start = index * self.chunk_bytes
            lo = max(start, chunk_start)
            hi = min(end, chunk_start + entry.size)
            allocation = store.allocation_of(entry)
            parts.append(allocation.read(lo - chunk_start, hi - lo))
        return concat(parts)

    def free(self) -> None:
        """Release every extent (unregister / repack).

        Dedup models drop their DONE versions' chunk references first
        (:meth:`drop_version` ordering), then free the metadata region —
        their bytes live in the shared store, never in private extents.
        """
        if self.dedup:
            flags = self.read_flags()
            for version in (0, 1):
                if flags.states[version] != FLAG_EMPTY:
                    self.drop_version(version)
            self.pool.free(self.meta)
            return
        for region in self.data_regions:
            if region is not None:
                self.pool.free(region)
        self.pool.free(self.meta)


def _short(name: str) -> str:
    """Fit model names into AllocTable tags."""
    return name[-40:]


class ModelTable:
    """Level 1: the persistent sorted name -> meta_addr array.

    The table's geometry (``max_models``, which fixes the slot size) is
    persisted: in the record payload header, and implicitly in the size
    of the region ``create`` allocated.  ``open`` derives the slot size
    from the region instead of trusting its caller, so a daemon started
    with a different ``max_models`` than the one that formatted the pool
    can never silently misread the B slot — a mismatch is rejected
    loudly.
    """

    _ENTRY = struct.Struct("<64sQ")
    _HEADER = struct.Struct("<II")  # max_models, count
    #: AllocTable tag of the table's region — subclasses (the group
    #: table) override it to coexist on the same pool.
    TAG = TABLE_TAG

    def __init__(self, record: CommittedRecord, max_models: int) -> None:
        self._record = record
        self.max_models = max_models
        self._entries: Dict[str, int] = {}

    @staticmethod
    def slot_size(max_models: int) -> int:
        return blob_capacity(ModelTable._HEADER.size
                             + max_models * ModelTable._ENTRY.size) + 32

    @classmethod
    def create(cls, pool: PmemPool, max_models: int = 512) -> "ModelTable":
        region = pool.alloc(2 * cls.slot_size(max_models), tag=cls.TAG)
        table = cls(CommittedRecord(region, 0, cls.slot_size(max_models)),
                    max_models)
        table._commit()
        return table

    @classmethod
    def open(cls, pool: PmemPool,
             max_models: Optional[int] = None) -> "ModelTable":
        """Open the table with its *persisted* geometry.

        *max_models*, when given, is validated against the stored value
        (a mismatch raises :class:`PmemError`); by default the stored
        geometry is simply used.
        """
        regions = pool.find_by_tag(cls.TAG)
        if not regions:
            raise PmemError(f"no Portus {cls.__name__} on this pool")
        slot = regions[0].size // 2
        record = CommittedRecord(regions[0], 0, slot)
        committed = record.read()
        if committed is None:
            raise PmemError(
                f"{cls.__name__} record unreadable at {regions[0].addr:#x}")
        payload = committed[0]
        stored_max, count = cls._HEADER.unpack_from(payload)
        if cls.slot_size(stored_max) != slot:
            raise PmemError(
                f"{cls.__name__} geometry mismatch: region slot is {slot} "
                f"bytes but stored max_models={stored_max} implies "
                f"{cls.slot_size(stored_max)}")
        if max_models is not None and max_models != stored_max:
            raise PmemError(
                f"{cls.__name__} was created with max_models={stored_max}, "
                f"refusing to open with max_models={max_models}")
        table = cls(record, stored_max)
        for i in range(count):
            raw_name, addr = cls._ENTRY.unpack_from(
                payload, cls._HEADER.size + i * cls._ENTRY.size)
            table._entries[_unpack_name(raw_name)] = addr
        return table

    def _commit(self) -> None:
        names = sorted(self._entries)
        payload = self._HEADER.pack(self.max_models, len(names)) + b"".join(
            self._ENTRY.pack(_pack_name(name), self._entries[name])
            for name in names)
        self._record.write(payload)

    def insert(self, name: str, meta_addr: int) -> None:
        if len(self._entries) >= self.max_models and \
                name not in self._entries:
            raise PmemError(
                f"{type(self).__name__} full ({self.max_models} entries)")
        self._entries[name] = meta_addr
        self._commit()

    def remove(self, name: str) -> int:
        try:
            addr = self._entries.pop(name)
        except KeyError:
            raise ModelNotFound(name) from None
        self._commit()
        return addr

    def lookup(self, name: str) -> int:
        try:
            return self._entries[name]
        except KeyError:
            raise ModelNotFound(name) from None

    def names(self) -> List[str]:
        return sorted(self._entries)

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __len__(self) -> int:
        return len(self._entries)

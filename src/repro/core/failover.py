"""Graceful degradation: fall back to the local DRAM path when Portus
is unreachable, resume when it heals.

The paper's §IV-a baseline snapshots GPU state to host DRAM over PCIe.
That path needs no network and no storage server, so it is the natural
degraded mode: after ``failure_threshold`` *consecutive* Portus failures
the :class:`FailoverCheckpointer` stops burning retry budget on every
step and snapshots locally instead, probing Portus again (by simply
attempting the real checkpoint) on a capped exponential backoff with
seeded jitter — the first probe after ``probe_interval_ns``, each
failed probe doubling the wait up to ``max_probe_interval_ns``, so a
fleet of degraded clients does not hammer a daemon the moment it
restarts.  The first success flips back to the remote path.

The remediation operator (:mod:`repro.ops.operator`) can also drive the
switch directly: :meth:`force_degrade` parks the checkpointer on the
local path without burning any probes (the operator *knows* the daemon
is down), and :meth:`drain_back` releases the hold once the daemon
verifies healthy, scheduling an immediate probe.

Local snapshots are double-buffered in two DRAM slots — the same
two-version discipline as the PMem index, so a crash mid-snapshot never
destroys the previous good one.  They are *volatile*: a power loss on
the client loses them, which is exactly the durability gap the paper
builds Portus to close — the fallback trades durability for
availability and the caller can see which path every step took.

:meth:`restore` prefers Portus and falls back to the newest local
snapshot only when the remote path is unreachable or empty.
"""

from __future__ import annotations

import random
from typing import Any, Dict, Generator, Optional

from repro.core.client import ModelSession
from repro.core.retry import RETRYABLE_FAULTS
from repro.errors import NoValidCheckpoint, PortusError
from repro.hw.node import Node
from repro.sim import Environment, Transfer
from repro.units import msecs


class FailoverCheckpointer:
    """Wraps a :class:`ModelSession` with a local-DRAM degraded mode."""

    def __init__(self, env: Environment, session: ModelSession, node: Node,
                 failure_threshold: int = 3,
                 probe_interval_ns: int = msecs(2),
                 probe_backoff_factor: float = 2.0,
                 max_probe_interval_ns: Optional[int] = None,
                 probe_jitter: float = 0.1,
                 rng: Optional[random.Random] = None) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}")
        if probe_backoff_factor < 1.0:
            raise ValueError(f"probe_backoff_factor must be >= 1, "
                             f"got {probe_backoff_factor}")
        if not 0 <= probe_jitter < 1:
            raise ValueError(
                f"probe_jitter must be in [0, 1), got {probe_jitter}")
        self.env = env
        self.session = session
        self.node = node
        self.failure_threshold = failure_threshold
        self.probe_interval_ns = probe_interval_ns
        self.probe_backoff_factor = float(probe_backoff_factor)
        self.max_probe_interval_ns = (
            max_probe_interval_ns if max_probe_interval_ns is not None
            else 16 * probe_interval_ns)
        self.probe_jitter = float(probe_jitter)
        self.rng = rng if rng is not None else random.Random(0)
        self.degraded = False
        self.consecutive_failures = 0
        self.last_failure: Optional[BaseException] = None
        self.portus_checkpoints = 0
        self.local_checkpoints = 0
        self.resumes = 0
        self.forced_degrades = 0
        self.drains = 0
        #: Operator hold: while True the checkpointer never probes — the
        #: operator knows the daemon is down and will :meth:`drain_back`.
        self.operator_hold = False
        self._probe_failures = 0
        self._next_probe_ns: Optional[int] = None
        # Two DRAM slots, allocated lazily on first degraded checkpoint.
        self._slots = [None, None]
        self._newest_slot: Optional[int] = None

    # -- checkpoint ---------------------------------------------------------------

    def checkpoint(self, step: Optional[int] = None) -> Generator:
        """Process: checkpoint *step* via Portus or, degraded, locally.

        Returns ``{"path": "portus"|"local", "step": ...}`` so callers
        (and experiments) can account for which datapath served each
        step.
        """
        model = self.session.model
        if step is None:
            step = model.step
        now = self.env.now
        if self.degraded and (self.operator_hold
                              or not self._should_probe(now)):
            return (yield from self._local_checkpoint(step))
        try:
            reply = yield from self.session.checkpoint(step)
        except RETRYABLE_FAULTS as exc:
            self.consecutive_failures += 1
            self.last_failure = exc
            if self.consecutive_failures >= self.failure_threshold:
                self.degraded = True
            if self.degraded:
                # Each failed probe backs the next one off further, so
                # a recovering daemon faces a trickle, not a stampede.
                self._probe_failures += 1
                self._schedule_next_probe(self.env.now)
            return (yield from self._local_checkpoint(step))
        if self.degraded:
            self.degraded = False
            self.resumes += 1
        self.consecutive_failures = 0
        self._probe_failures = 0
        self._next_probe_ns = None
        self.portus_checkpoints += 1
        return {"path": "portus", "step": step, "reply": reply}

    def _should_probe(self, now: int) -> bool:
        return self._next_probe_ns is None or now >= self._next_probe_ns

    def _schedule_next_probe(self, now: int) -> None:
        """Capped exponential backoff with seeded jitter: probe number
        k+1 waits ``probe_interval * factor**k`` (capped), smeared by
        ±``probe_jitter`` so degraded clients desynchronize."""
        exponent = max(0, self._probe_failures - 1)
        backoff = min(
            self.probe_interval_ns * self.probe_backoff_factor ** exponent,
            float(self.max_probe_interval_ns))
        if self.probe_jitter:
            backoff *= 1.0 + self.probe_jitter * (2.0 * self.rng.random()
                                                  - 1.0)
        self._next_probe_ns = now + max(1, int(backoff))

    # -- operator hooks -----------------------------------------------------------

    def force_degrade(self, reason: str = "operator") -> None:
        """Operator-driven degradation: park on the local DRAM path and
        stop probing entirely until :meth:`drain_back` — the operator
        has authoritative knowledge that the daemon is down, so probes
        would only burn retry budget."""
        if not self.operator_hold:
            self.forced_degrades += 1
        self.degraded = True
        self.operator_hold = True
        self._hold_reason = reason

    def drain_back(self) -> None:
        """Operator-driven recovery: release the hold and schedule an
        immediate probe, so the next checkpoint returns to Portus (and
        thereby re-covers the local-only steps with a durable one)."""
        if not self.operator_hold:
            return
        self.operator_hold = False
        self._probe_failures = 0
        self._next_probe_ns = None
        self.drains += 1

    def _local_checkpoint(self, step: int) -> Generator:
        """Process: the §IV-a path — GPU → host DRAM over PCIe, into the
        slot *not* holding the newest good snapshot."""
        model = self.session.model
        gpu = model.tensors[0].device
        total = model.total_bytes
        yield Transfer(self.env,
                       [gpu.read_channel, gpu.pcie_read,
                        self.node.dram.write_channel],
                       total, label=f"fallback-snapshot:{model.name}")
        target = 0 if self._newest_slot != 0 else 1
        slot = self._slots[target]
        if slot is None:
            slot = {"allocation": self.node.dram.alloc(
                total, tag=f"fallback/{model.name}/{target}")}
            self._slots[target] = slot
        offset = 0
        contents = {}
        for tensor in model.tensors:
            content = tensor.content()
            slot["allocation"].write(offset, content)
            contents[tensor.name] = content
            offset += tensor.size_bytes
        slot["step"] = step
        slot["contents"] = contents
        self._newest_slot = target
        self.local_checkpoints += 1
        return {"path": "local", "step": step}

    # -- restore ------------------------------------------------------------------

    def restore(self) -> Generator:
        """Process: restore from Portus, else from the newest local
        snapshot.  Returns ``{"path": ..., "step": ...}``."""
        try:
            step = yield from self.session.restore()
            return {"path": "portus", "step": step}
        except RETRYABLE_FAULTS + (NoValidCheckpoint,) as exc:
            if self._newest_slot is None:
                raise
            self.last_failure = exc
        slot = self._slots[self._newest_slot]
        model = self.session.model
        gpu = model.tensors[0].device
        yield Transfer(self.env,
                       [self.node.dram.read_channel, gpu.pcie_write,
                        gpu.write_channel],
                       model.total_bytes,
                       label=f"fallback-restore:{model.name}")
        for tensor in model.tensors:
            content = slot["contents"].get(tensor.name)
            if content is None:
                raise PortusError(
                    f"{model.name}: local snapshot is missing tensor "
                    f"{tensor.name!r}")
            tensor.allocation.write(0, content)
            tensor.step = slot["step"]
        model.step = slot["step"]
        return {"path": "local", "step": slot["step"]}

"""Client-side retry policy: exponential backoff + jitter + deadline.

The Portus control plane has exactly one failure-recovery primitive on
the client: tear the session's transport down, re-attach (new QP, new
TCP connection, re-sent REGISTER against the persisted index), and
re-issue the request.  This module decides *when* that is worth doing:

* **transport faults** (connection drops, link flaps, QP errors, WR
  completion errors, reply timeouts, a daemon that answers "I am
  restarting") are retried after an exponentially growing, jittered
  backoff until the attempt budget or the deadline runs out;
* **contention** (``CheckpointInProgress`` — e.g. the daemon is still
  finishing the pull of an attempt whose reply was lost) is retried
  without tearing the session down;
* everything else (``ModelNotFound``, ``NoValidCheckpoint``, spec
  mismatches, protocol errors) is permanent and surfaces immediately.

Jitter draws from a named :class:`~repro.sim.RandomStreams` stream so a
retried run is replayable from the master seed.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.errors import (AdmissionReject, CheckpointInProgress,
                          ConnectionClosed, DaemonUnavailable, NetworkError,
                          NotAttached, QpStateError, RequestTimeout,
                          WorkRequestError)
from repro.units import msecs, usecs

#: Faults that invalidate the session transport: retry after re-attach.
TRANSPORT_FAULTS = (ConnectionClosed, NetworkError, QpStateError,
                    WorkRequestError, RequestTimeout, DaemonUnavailable,
                    NotAttached)
#: Faults retried on the existing transport (daemon-side contention /
#: admission backpressure — the daemon is healthy, just busy).
CONTENTION_FAULTS = (CheckpointInProgress, AdmissionReject)
#: Everything a retry attempt may absorb.
RETRYABLE_FAULTS = TRANSPORT_FAULTS + CONTENTION_FAULTS


class RetryPolicy:
    """Backoff schedule and give-up rules for one client session."""

    def __init__(self, rng: Optional[random.Random] = None,
                 max_attempts: int = 16,
                 initial_backoff_ns: int = usecs(200),
                 backoff_factor: float = 2.0,
                 max_backoff_ns: int = msecs(20),
                 jitter: float = 0.25,
                 deadline_ns: Optional[int] = msecs(500),
                 reply_timeout_ns: Optional[int] = msecs(50)) -> None:
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        if not 0 <= jitter < 1:
            raise ValueError(f"jitter must be in [0, 1), got {jitter}")
        self.rng = rng if rng is not None else random.Random(0)
        self.max_attempts = max_attempts
        self.initial_backoff_ns = int(initial_backoff_ns)
        self.backoff_factor = float(backoff_factor)
        self.max_backoff_ns = int(max_backoff_ns)
        self.jitter = float(jitter)
        self.deadline_ns = deadline_ns
        self.reply_timeout_ns = reply_timeout_ns

    def is_transport_fault(self, exc: BaseException) -> bool:
        return isinstance(exc, TRANSPORT_FAULTS)

    def is_retryable(self, exc: BaseException) -> bool:
        return isinstance(exc, RETRYABLE_FAULTS)

    def backoff_ns(self, attempt: int) -> int:
        """Backoff before retry number *attempt* (1-based), jittered."""
        base = min(
            self.initial_backoff_ns * self.backoff_factor ** (attempt - 1),
            float(self.max_backoff_ns))
        if self.jitter:
            base *= 1.0 + self.jitter * (2.0 * self.rng.random() - 1.0)
        return max(1, int(base))

    def exhausted(self, attempt: int, elapsed_ns: int) -> bool:
        """True once retry number *attempt* is no longer allowed."""
        if attempt >= self.max_attempts:
            return True
        if self.deadline_ns is not None and elapsed_ns >= self.deadline_ns:
            return True
        return False

    def __repr__(self) -> str:
        return (f"<RetryPolicy attempts<={self.max_attempts} "
                f"deadline={self.deadline_ns} "
                f"reply_timeout={self.reply_timeout_ns}>")

"""The transfer engine: pipelined, multi-QP posting for the datapath.

The daemon's original datapath posted one-sided WRs in fixed windows of
``QP_DEPTH`` with a full barrier between windows, on a single QP per
model.  This module replaces that inner loop for checkpoint pulls,
restore pushes, and repacking's local moves:

* **Credit-based sliding window** — each QP ("lane") keeps up to *depth*
  WRs in flight; the moment a completion returns a credit the next WR is
  posted.  No barrier: a straggler tensor no longer idles the other
  slots of its window.
* **Multi-QP striping** — the tensor list is sharded across the QPs the
  client registered (``num_qps`` is negotiated at REGISTER time), and
  tensors larger than ``chunk_bytes`` are segmented so one huge GPT
  tensor parallelizes across lanes instead of serializing on one WR.
* **Largest-first scheduling** — items are posted in decreasing size
  (LPT order) and striped onto the least-loaded lane, so the long tail
  of a skewed tensor-size distribution cannot become the straggler.
* **Bounded PMem ingest** — Optane's aggregate write bandwidth degrades
  when more concurrent streams interleave on the 256 B XPLine than the
  buffer can absorb (see :class:`repro.hw.devices.PmemDimm`).  With
  ``stream_limit`` the engine holds a token per in-flight WR, capping
  the concurrent writers the media sees; the limiter is shared
  daemon-wide so sixteen GPT shards together stay under the cliff.

Abort semantics (the PR-1 fault-tolerance contract): the first WR error
aborts the whole stripe set — every lane stops posting and **every QP is
flushed**, so in-flight and hung WRs on sibling lanes retire instead of
depositing stale bytes later.  If the caller is interrupted mid-engine
(request timeout, lease reaping, daemon crash), the engine defuses its
gate, flushes all QPs, and re-raises — lanes are "safe" processes that
never fail the simulation, so a late completion cannot crash the run.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, Generator, List, Optional, Sequence

from repro.errors import ReproError
from repro.obs import NULL_SPAN, Observability
from repro.sim import AllOf, AnyOf, Environment, Event, Transfer
from repro.units import mib

#: Segmentation threshold/chunk size for striped transfers.  4 MiB keeps
#: per-WR overhead negligible (≥ 1000x the per-op latency at wire rate)
#: while giving the scheduler enough pieces to balance lanes; FastPersist
#: and ByteCheckpoint use the same order of magnitude for parallel
#: checkpoint I/O.  See repro.harness.calibration for provenance.
ENGINE_CHUNK_BYTES = mib(4)


class WorkItem:
    """One WR to post: a whole tensor or a segment of one.

    *mr* optionally overrides the operation-wide local MR: the dedup
    datapath pulls each missing chunk into its own extent's MR while
    sibling items target other extents, all within one stripe set.
    """

    __slots__ = ("name", "local_offset", "remote_addr", "rkey", "size",
                 "mr")

    def __init__(self, name: str, local_offset: int, remote_addr: int,
                 rkey: int, size: int, mr=None) -> None:
        self.name = name
        self.local_offset = local_offset
        self.remote_addr = remote_addr
        self.rkey = rkey
        self.size = size
        self.mr = mr

    def __repr__(self) -> str:
        return f"<WorkItem {self.name} +{self.local_offset} " \
               f"{self.size}B>"


def build_items(pairs, chunk_bytes: Optional[int]) -> List[WorkItem]:
    """Expand (descriptor, client) pairs into WR-sized work items.

    Tensors larger than *chunk_bytes* are segmented; ``None`` disables
    segmentation (one WR per tensor, the seed behaviour).
    """
    items = []
    for descriptor, client in pairs:
        size = descriptor.size
        if chunk_bytes is None or size <= chunk_bytes:
            items.append(WorkItem(descriptor.name, descriptor.offset,
                                  client["addr"], client["rkey"], size))
            continue
        done = 0
        part = 0
        while done < size:
            length = min(chunk_bytes, size - done)
            items.append(WorkItem(f"{descriptor.name}#{part}",
                                  descriptor.offset + done,
                                  client["addr"] + done,
                                  client["rkey"], length))
            done += length
            part += 1
    return items


def stripe_items(items: List[WorkItem], lanes: int,
                 largest_first: bool = True) -> List[List[WorkItem]]:
    """Assign items to *lanes* queues, byte-balanced.

    Largest-first greedy (LPT): sort by decreasing size, always give the
    next item to the least-loaded lane.  The sort is stable, so equal
    sizes keep registration order and runs stay deterministic.
    """
    ordered = sorted(items, key=lambda item: -item.size) \
        if largest_first else list(items)
    queues: List[List[WorkItem]] = [[] for _ in range(lanes)]
    loads = [0] * lanes
    for item in ordered:
        lane = loads.index(min(loads))
        queues[lane].append(item)
        loads[lane] += item.size
    return queues


class _StreamToken(Event):
    """A pending claim on an :class:`IngestLimiter` slot."""

    __slots__ = ("limiter", "owner")

    def __init__(self, limiter: "IngestLimiter", owner) -> None:
        super().__init__(limiter.env)
        self.limiter = limiter
        self.owner = owner

    def cancel(self) -> None:
        """Withdraw the claim (granted or still queued)."""
        self.limiter._cancel(self)


class IngestLimiter:
    """Counting limiter whose grants fair-share across owners.

    Bounds the concurrent PMem write streams daemon-wide (the Optane
    congestion cliff, see :class:`repro.hw.devices.PmemDimm`).  A plain
    FIFO resource would hand all slots to consecutive lanes of one
    stripe set — four streams on one GPU, bottlenecked by its BAR read
    rate instead of spreading over the PMem's full uncongested
    bandwidth.  This limiter grants a freed slot to the waiter whose
    *owner* (one TransferEngine, i.e. one operation) currently holds the
    fewest slots, FIFO among ties, so concurrent checkpoints interleave
    one stream each before any operation gets a second.
    """

    def __init__(self, env: Environment, capacity: int,
                 metrics=None) -> None:
        if capacity < 1:
            raise ReproError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._holders: set = set()
        self._waiters: List[_StreamToken] = []
        self._held_by: Dict = {}
        self.metrics = metrics

    def _note_queue(self) -> None:
        if self.metrics is not None:
            self.metrics.gauge("limiter.queue_depth").set(len(self._waiters))

    @property
    def in_use(self) -> int:
        return len(self._holders)

    def request(self, owner=None) -> _StreamToken:
        token = _StreamToken(self, owner)
        if len(self._holders) < self.capacity:
            self._grant(token)
        else:
            self._waiters.append(token)
            if self.metrics is not None:
                self.metrics.counter("limiter.waits").inc()
            self._note_queue()
        return token

    def release(self, token: _StreamToken) -> None:
        if token not in self._holders:
            raise ReproError("release() of a token that is not held")
        self._holders.remove(token)
        self._held_by[token.owner] -= 1
        self._grant_next()

    def _grant(self, token: _StreamToken) -> None:
        self._holders.add(token)
        self._held_by[token.owner] = self._held_by.get(token.owner, 0) + 1
        token.succeed(token)

    def _grant_next(self) -> None:
        while self._waiters and len(self._holders) < self.capacity:
            best = min(self._waiters,
                       key=lambda t: self._held_by.get(t.owner, 0))
            self._waiters.remove(best)
            self._grant(best)
        self._note_queue()

    def _cancel(self, token: _StreamToken) -> None:
        if token in self._holders:
            self.release(token)
        elif token in self._waiters:
            self._waiters.remove(token)
            self._note_queue()


class TransferEngine:
    """Drives one pull or push across a stripe set of QPs.

    One instance per operation: construct, call :meth:`pull` or
    :meth:`push` (process generators), read the counters.  ``depth`` is
    the per-QP credit count; ``pipelined=False`` reproduces the seed's
    barrier-window posting (kept for the engine ablation benchmarks).
    ``stream_limit`` is a shared :class:`repro.sim.Resource` bounding
    total in-flight WRs across every concurrent operation (the PMem
    ingest cap); ``wqe_cost`` is charged once per posted WR (a generator
    function — the daemon passes its worker CpuSet).
    """

    def __init__(self, env: Environment, qps: Sequence, depth: int,
                 chunk_bytes: Optional[int] = ENGINE_CHUNK_BYTES,
                 pipelined: bool = True, largest_first: bool = True,
                 stream_limit=None,
                 wqe_cost: Optional[Callable[[], Generator]] = None,
                 obs: Optional[Observability] = None,
                 trace_id: Optional[int] = None) -> None:
        if not qps:
            raise ReproError("transfer engine needs at least one QP")
        if depth < 1:
            raise ReproError(f"QP depth must be >= 1, got {depth}")
        self.env = env
        self.qps = list(qps)
        self.depth = depth
        self.chunk_bytes = chunk_bytes
        self.pipelined = pipelined
        self.largest_first = largest_first
        self.stream_limit = stream_limit
        self.wqe_cost = wqe_cost
        self.obs = obs if obs is not None else Observability()
        self.trace_id = trace_id
        #: WRs actually posted (the per-WR CPU charge is exact).
        self.posted_wrs = 0
        #: Peak concurrently-in-flight WRs across all lanes.
        self.peak_inflight = 0
        self.bytes_moved = 0
        #: Bytes whose content actually landed in the target region —
        #: includes WRs that completed OK while the lane was already
        #: draining (the one-sided verbs deposit content at completion
        #: time), which ``bytes_moved`` never sees.  This is the
        #: "did the pull dirty the slot" signal for abort_checkpoint.
        self.bytes_landed = 0
        self._inflight_now = 0
        self._aborted = False
        self._first_error: Optional[BaseException] = None

    # -- public operations -------------------------------------------------------

    def pull(self, region_mr, pairs, label_prefix: str) -> Generator:
        """Process: RDMA-READ every (descriptor, client) pair into
        *region_mr*; returns the bytes pulled."""
        return (yield from self._run("read", region_mr, pairs,
                                     label_prefix))

    def push(self, region_mr, pairs, label_prefix: str) -> Generator:
        """Process: RDMA-WRITE every pair from *region_mr* to the
        client; returns the bytes pushed."""
        return (yield from self._run("write", region_mr, pairs,
                                     label_prefix))

    def pull_items(self, items: List[WorkItem],
                   label_prefix: str) -> Generator:
        """Process: RDMA-READ pre-built work items (each carrying its
        own local MR); returns the bytes pulled."""
        return (yield from self._run("read", None, None, label_prefix,
                                     items=items))

    def push_items(self, items: List[WorkItem],
                   label_prefix: str) -> Generator:
        """Process: RDMA-WRITE pre-built work items (each carrying its
        own local MR); returns the bytes pushed."""
        return (yield from self._run("write", None, None, label_prefix,
                                     items=items))

    def abort(self) -> None:
        """Stop posting and flush every QP of the stripe set.

        Idempotent; safe to call from outside (the daemon's abort paths)
        or from a lane observing the first WR error.
        """
        if self._aborted:
            return
        self._aborted = True
        for qp in self.qps:
            qp.flush()

    # -- core --------------------------------------------------------------------

    def _run(self, kind: str, region_mr, pairs, label_prefix: str,
             items: Optional[List[WorkItem]] = None) -> Generator:
        if items is None:
            items = build_items(pairs, self.chunk_bytes)
        if not items:
            return 0
        queues = stripe_items(items, len(self.qps), self.largest_first)
        lane_fn = self._lane if self.pipelined else self._lane_barrier
        span = self.obs.tracer.span(
            self.env, f"engine.{kind}", cat="engine",
            trace_id=self.trace_id, track="engine",
            items=len(items), lanes=sum(1 for q in queues if q),
            op=label_prefix)
        lanes = [
            self.env.process(lane_fn(kind, qp, deque(queue), region_mr,
                                     label_prefix, index, span),
                             name=f"engine-{kind}-lane{index}")
            for index, (qp, queue) in enumerate(zip(self.qps, queues))
            if queue
        ]
        gate = AllOf(self.env, lanes)
        try:
            yield gate
        except BaseException:
            # Interrupted mid-transfer (request timeout, lease reap,
            # daemon crash): retire the WRs in flight on *every* lane so
            # late completions cannot land stale bytes, and mark the
            # gate handled — the safe lanes still referenced by it wind
            # down on their own.
            gate.defuse()
            self.abort()
            span.finish(aborted=True, bytes_moved=self.bytes_moved)
            raise
        span.finish(aborted=self._aborted, bytes_moved=self.bytes_moved)
        if self._first_error is not None:
            raise self._first_error
        return self.bytes_moved

    def _post(self, kind: str, qp, item: WorkItem, region_mr,
              label_prefix: str):
        verb = qp.read if kind == "read" else qp.write
        self.posted_wrs += 1
        local_mr = item.mr if item.mr is not None else region_mr
        event = verb(local_mr, item.local_offset, item.rkey,
                     item.remote_addr, item.size,
                     label=f"{label_prefix}:{item.name}")
        # The lane may yield (stream token, per-WR CPU) between posting
        # and subscribing its wait condition, so a fast failure could
        # fire with no waiter attached; the lane accounts for every
        # outcome itself (_retire/_drain), so mark completions handled.
        event.defuse()
        return event

    def _lane(self, kind: str, qp, queue, region_mr,
              label_prefix: str, index: int = 0,
              parent=None) -> Generator:
        """Safe process: sliding-window posting on one QP.

        Never fails — the first WR error is recorded, the stripe set
        aborted, and the lane drains; the engine re-raises the error
        after the gate so the daemon's abort path runs exactly once.

        A pending stream token must *race* the completion events, never
        be waited on alone: the lane's own in-flight WRs hold tokens it
        can only release by retiring completions, so blocking on the
        token while holding others would deadlock the shared limiter.
        """
        inflight: Dict = {}
        pending_token = None
        # Per-WR tracing is the hottest span site in a traced fleet run;
        # hoist the tracer check and the per-lane strings so a disabled
        # tracer allocates nothing per WR (no f-strings, no kwargs dict).
        tracer = self.obs.tracer
        if tracer.enabled:
            lane_track = f"engine/qp{index}"
            wr_name = f"wr.{kind}"
            lane_span = tracer.span(
                self.env, f"lane.{kind}", cat="engine",
                trace_id=self.trace_id, parent=parent,
                track=lane_track, qp=index)
        else:
            lane_span = NULL_SPAN
        posted = 0
        try:
            while (queue or inflight) and not self._aborted:
                while queue and len(inflight) < self.depth \
                        and not self._aborted:
                    token = None
                    if self.stream_limit is not None:
                        if pending_token is None:
                            pending_token = self.stream_limit.request(self)
                        if not pending_token.triggered:
                            break  # wait below, racing completions
                        token, pending_token = pending_token, None
                    if self.wqe_cost is not None:
                        yield from self.wqe_cost()
                    if self._aborted:
                        if token is not None:
                            self.stream_limit.release(token)
                        break
                    item = queue.popleft()
                    event = self._post(kind, qp, item, region_mr,
                                       label_prefix)
                    wr_span = tracer.span(
                        self.env, wr_name, cat="wr",
                        trace_id=self.trace_id, parent=lane_span,
                        track=lane_track, item=item.name,
                        bytes=item.size) if tracer.enabled else NULL_SPAN
                    posted += 1
                    inflight[event] = (item, token, wr_span)
                    self._inflight_now += 1
                    self.peak_inflight = max(self.peak_inflight,
                                             self._inflight_now)
                if self._aborted:
                    break
                if queue and len(inflight) >= self.depth:
                    # Out of QP credits with work still queued: the
                    # stall the sliding window exists to minimise.
                    self.obs.metrics.counter("engine.credit_stalls").inc()
                waits = list(inflight)
                if pending_token is not None:
                    waits.append(pending_token)
                if not waits:
                    continue
                condition = AnyOf(self.env, waits)
                try:
                    yield condition
                except BaseException as exc:  # noqa: BLE001 - recorded
                    condition.defuse()
                    self._record_error(exc)
                self._retire(inflight)
        finally:
            if pending_token is not None:
                pending_token.cancel()
            self._drain(inflight)
            lane_span.finish(posted=posted, aborted=self._aborted)

    def _lane_barrier(self, kind: str, qp, queue, region_mr,
                      label_prefix: str, index: int = 0,
                      parent=None) -> Generator:
        """Safe process: the seed's barrier-window posting on one QP.

        Completions are retired mid-window only to recycle stream
        credits; no WR of window N+1 is posted before all of window N
        has completed (the barrier the engine ablation measures).
        """
        inflight: Dict = {}
        pending_token = None
        tracer = self.obs.tracer
        if tracer.enabled:
            lane_track = f"engine/qp{index}"
            wr_name = f"wr.{kind}"
            lane_span = tracer.span(
                self.env, f"lane.{kind}", cat="engine",
                trace_id=self.trace_id, parent=parent,
                track=lane_track, qp=index, barrier=True)
        else:
            lane_span = NULL_SPAN
        try:
            while queue and not self._aborted:
                window = deque()
                while queue and len(window) < self.depth:
                    window.append(queue.popleft())
                while window and not self._aborted:
                    token = None
                    if self.stream_limit is not None:
                        if pending_token is None:
                            pending_token = self.stream_limit.request(self)
                        if not pending_token.triggered:
                            condition = AnyOf(self.env,
                                              list(inflight)
                                              + [pending_token])
                            try:
                                yield condition
                            except BaseException as exc:  # noqa: BLE001
                                condition.defuse()
                                self._record_error(exc)
                            self._retire(inflight)
                            continue
                        token, pending_token = pending_token, None
                    if self.wqe_cost is not None:
                        yield from self.wqe_cost()
                    if self._aborted:
                        if token is not None:
                            self.stream_limit.release(token)
                        break
                    item = window.popleft()
                    event = self._post(kind, qp, item, region_mr,
                                       label_prefix)
                    wr_span = tracer.span(
                        self.env, wr_name, cat="wr",
                        trace_id=self.trace_id, parent=lane_span,
                        track=lane_track, item=item.name,
                        bytes=item.size) if tracer.enabled else NULL_SPAN
                    inflight[event] = (item, token, wr_span)
                    self._inflight_now += 1
                    self.peak_inflight = max(self.peak_inflight,
                                             self._inflight_now)
                while inflight and not self._aborted:
                    pending = AllOf(self.env, list(inflight))
                    try:
                        yield pending
                    except BaseException as exc:  # noqa: BLE001 - recorded
                        pending.defuse()
                        self._record_error(exc)
                    self._retire(inflight)
        finally:
            if pending_token is not None:
                pending_token.cancel()
            self._drain(inflight)
            lane_span.finish(aborted=self._aborted)

    # -- completion bookkeeping --------------------------------------------------

    def _record_error(self, exc: BaseException) -> None:
        if self._first_error is None:
            self._first_error = exc
        # First error aborts the whole stripe set: stop posting and
        # flush every QP so sibling lanes' in-flight WRs retire too.
        self.abort()

    def _retire(self, inflight: Dict) -> None:
        """Return credits (and stream tokens) for every settled WR."""
        for event in [event for event in inflight if event.triggered]:
            item, token, span = inflight.pop(event)
            self._inflight_now -= 1
            if token is not None:
                self.stream_limit.release(token)
            if event.ok:
                self.bytes_moved += item.size
                self.bytes_landed += item.size
                if span is not NULL_SPAN:
                    span.finish(ok=True)
            else:
                if span is not NULL_SPAN:
                    span.finish(ok=False)
                if self._first_error is None:
                    self._record_error(event.value)

    def _drain(self, inflight: Dict) -> None:
        """Abort path: release tokens and defuse still-pending WRs.

        The flushed WRs fail at their natural completion time; defusing
        here keeps those late failures from crashing the run (the lane
        is no longer waiting on them).  A WR that completed OK before
        the drain has already deposited its content (one-sided verbs
        land bytes at completion), so it still counts into
        ``bytes_landed`` even though the operation never retired it.
        """
        for event, (item, token, span) in inflight.items():
            self._inflight_now -= 1
            if token is not None:
                self.stream_limit.release(token)
            if event.triggered and event.ok:
                self.bytes_landed += item.size
                if span is not NULL_SPAN:
                    span.finish(ok=True, drained=True)
            else:
                event.defuse()
                if span is not NULL_SPAN:
                    span.finish(ok=False, drained=True)
        inflight.clear()


class LocalCopyEngine:
    """Chunked device-local moves (incremental fill, repacking).

    Times the byte movement through the device's own read/write channels
    with up to *streams* chunk flows in flight; the content relocation
    itself is applied by the caller after the move (exactly like the
    one-sided verbs, content follows the simulated transfer).  The
    default single stream is timing-identical to one large transfer, so
    the incremental datapath keeps the seed's behaviour while sharing
    the engine's chunking/pipelining machinery.
    """

    def __init__(self, env: Environment, device,
                 chunk_bytes: Optional[int] = ENGINE_CHUNK_BYTES,
                 streams: int = 1) -> None:
        if streams < 1:
            raise ReproError(f"need at least one stream, got {streams}")
        self.env = env
        self.device = device
        self.chunk_bytes = chunk_bytes
        self.streams = streams
        self.chunks_moved = 0

    def move(self, total_bytes: int, label: str = "local-copy") -> Generator:
        """Process: move *total_bytes* across the device channels."""
        if total_bytes <= 0:
            return
        chunk = self.chunk_bytes or total_bytes
        sizes = deque()
        done = 0
        while done < total_bytes:
            length = min(chunk, total_bytes - done)
            sizes.append(length)
            done += length
        channels = [self.device.read_channel, self.device.write_channel]
        inflight: List[Transfer] = []
        while sizes or inflight:
            while sizes and len(inflight) < self.streams:
                inflight.append(Transfer(self.env, channels,
                                         sizes.popleft(), label=label))
            condition = AnyOf(self.env, list(inflight))
            try:
                yield condition
            except BaseException:
                condition.defuse()
                for transfer in inflight:
                    if not transfer.triggered or not transfer.ok:
                        transfer.defuse()
                raise
            settled = [t for t in inflight if t.triggered]
            inflight = [t for t in inflight if not t.triggered]
            self.chunks_moved += len(settled)

"""The repacking tool (paper §III-D2, Fig. 7).

Double mapping costs one extra checkpoint's worth of PMem per model.
When a job finishes (only the newest version will ever be restored) or
crashes mid-checkpoint (the ACTIVE slot holds incomplete data), the
repacking tool reclaims the slack:

* a model with at least one DONE version keeps exactly its newest DONE
  slot; the stale/incomplete slot's TensorData is freed;
* a model with *no* DONE version has nothing restorable — the whole model
  is dropped (optional, on by default for crashed-first-checkpoint jobs);
* allocator-level leakage from crash windows was already reclaimed at
  pool open; freeing extents coalesces holes in the device free list,
  which is the "aggregate valid checkpoints" effect of Fig. 7.

The tool runs offline against the pool (as Portusctl does) or online
against an idle daemon; the paper notes it is rarely needed because PMem
capacity dwarfs checkpoint sizes.
"""

from __future__ import annotations

from typing import Generator, List, Optional

from repro.core.consistency import (abort_checkpoint, begin_checkpoint,
                                    commit_checkpoint, valid_checkpoint)
from repro.core.engine import LocalCopyEngine
from repro.core.index import ModelMeta, ModelTable
from repro.errors import (DedupMigrationUnsupported, ModelAlreadyRegistered,
                          ModelNotFound, PortusError)
from repro.obs import Observability
from repro.pmem.pool import PmemPool
from repro.rdma.verbs import connect
from repro.sim import Environment


class RepackReport:
    """What a repack pass did."""

    def __init__(self) -> None:
        self.models_compacted: List[str] = []
        self.models_dropped: List[str] = []
        #: Models whose surviving version was migrated to a fresh extent
        #: (the online :func:`repack_live` compaction pass only).
        self.models_migrated: List[str] = []
        self.bytes_reclaimed = 0
        self.bytes_moved = 0

    def __repr__(self) -> str:
        return f"<RepackReport compacted={len(self.models_compacted)} " \
               f"dropped={len(self.models_dropped)} " \
               f"migrated={len(self.models_migrated)} " \
               f"reclaimed={self.bytes_reclaimed}B>"


def repack(pool: PmemPool, table: Optional[ModelTable] = None,
           drop_invalid: bool = True,
           skip: Optional[List[str]] = None) -> RepackReport:
    """Reclaim stale checkpoint versions; returns a report.

    *skip* names models to leave untouched (e.g. jobs still running when
    repacking online).
    """
    if table is None:
        table = ModelTable.open(pool)
    skip_set = set(skip or ())
    report = RepackReport()
    for name in table.names():
        if name in skip_set:
            continue
        meta = ModelMeta.open(pool, table.lookup(name))
        flags = meta.read_flags()
        newest = flags.newest_done()
        if newest is None:
            if drop_invalid:
                reclaimed = sum(region.size
                                for region in meta.data_regions
                                if region is not None) + meta.meta.size
                meta.free()
                table.remove(name)
                report.models_dropped.append(name)
                report.bytes_reclaimed += reclaimed
            continue
        # The slot that is not the newest DONE version is, by definition,
        # either older, incomplete (ACTIVE at crash), or empty: reclaim it.
        stale = 1 - newest
        reclaimed = meta.drop_version(stale)
        if reclaimed:
            report.models_compacted.append(name)
            report.bytes_reclaimed += reclaimed
    return report


def repack_live(env: Environment, pool: PmemPool,
                table: Optional[ModelTable] = None,
                drop_invalid: bool = True,
                skip: Optional[List[str]] = None,
                compact: bool = True,
                chunk_bytes: Optional[int] = None,
                streams: int = 1,
                obs: Optional[Observability] = None) -> Generator:
    """Process: online repack — reclamation plus timed compaction.

    Runs the same reclamation as :func:`repack`, then (with *compact*)
    migrates each survivor's newest DONE TensorData into a freshly
    allocated extent.  First-fit allocation places the copy in the
    lowest hole — including the ones reclamation just opened — so the
    live data packs toward the front of the device and the free list
    coalesces into large holes (the Fig. 7 "aggregate valid
    checkpoints" effect, now with the move's PMem read+write bandwidth
    actually charged through the :class:`LocalCopyEngine`).

    Crash-safe ordering per model: allocate the new extent, copy,
    persist, commit the MIndex record, then free the old extent.  A
    crash mid-move leaves the MIndex pointing at the intact old region;
    the orphaned new extent is allocator-level leakage, reclaimed at
    the next pool open like any crash-window allocation.  The simulated
    move and the content relocation are guarded together: an interrupt
    or a pool death inside the move window commits nothing — the
    content write, persist, and MIndex update only run once the move
    finished on a still-open pool.
    """
    if table is None:
        table = ModelTable.open(pool)
    obs = obs if obs is not None else Observability()
    report = repack(pool, table=table, drop_invalid=drop_invalid, skip=skip)
    obs.metrics.counter("repack.models_dropped").inc(
        len(report.models_dropped))
    obs.metrics.counter("repack.bytes_reclaimed").inc(
        report.bytes_reclaimed)
    if not compact:
        return report
    copier = LocalCopyEngine(env, pool.device, chunk_bytes=chunk_bytes,
                             streams=streams)
    skip_set = set(skip or ())
    pass_span = obs.tracer.span(env, "repack.compact", cat="repack",
                                track="repack")
    for name in table.names():
        if name in skip_set:
            continue
        meta = ModelMeta.open(pool, table.lookup(name))
        newest = meta.read_flags().newest_done()
        if newest is None:
            continue
        if meta.dedup:
            # Dedup models own no per-version extents to migrate; their
            # bytes live in the shared chunk store.
            continue
        old = meta.data_regions[newest]
        fresh = pool.alloc(old.size, tag=old.tag)
        if fresh.addr > old.addr:
            # The region already sits below every usable hole; moving it
            # upward would fragment, not compact.
            pool.free(fresh)
            continue
        span = obs.tracer.span(env, "repack.migrate", cat="repack",
                               track="repack", model=name, bytes=old.size)
        try:
            yield from copier.move(old.size, label=f"repack:{name}")
        except BaseException:
            # Interrupted mid-move (daemon crash, power loss, a kill):
            # nothing was committed, the MIndex still points at the
            # intact old region.  Hand the fresh extent back while the
            # pool is usable; on a closed pool it is crash-window
            # leakage the next open reclaims.
            if not pool.closed:
                pool.free(fresh)
            span.finish(aborted=True)
            pass_span.finish(aborted=True)
            obs.metrics.counter("repack.aborted").inc()
            raise
        if pool.closed:
            # The pool died under us without interrupting this process
            # (server power loss while repacking ran on another node's
            # clock): the copy never landed and the old region stays
            # committed — stop before touching dead media.
            span.finish(aborted=True)
            pass_span.finish(aborted=True)
            obs.metrics.counter("repack.aborted").inc()
            return report
        fresh.write(0, old.read(0, old.size))
        fresh.persist()
        regions = list(meta.data_regions)
        regions[newest] = fresh
        meta.data_regions = tuple(regions)
        meta.mindex.version_addrs = tuple(
            region.addr if region is not None else 0 for region in regions)
        meta._mindex_record.write(meta.mindex.pack())
        pool.free(old)
        report.models_migrated.append(name)
        report.bytes_moved += old.size
        span.finish(ok=True)
        obs.metrics.counter("repack.models_migrated").inc()
        obs.metrics.counter("repack.bytes_moved").inc(old.size)
    pass_span.finish(migrated=len(report.models_migrated))
    return report


def migrate_model(env: Environment, src_daemon, dst_daemon, name: str,
                  obs: Optional[Observability] = None) -> Generator:
    """Process: copy *name*'s newest DONE checkpoint between daemons.

    The live repacker generalized across pools: the destination daemon
    pulls the source's committed version slot through the transfer
    engine (one-sided RDMA READ, server-to-server over the fabric) into
    a freshly created index of its own, then commits it DONE at the
    same step.  Crash-safe commit ordering (DESIGN.md §13) — every
    window is leak-only:

    1. the source entry's CAS guard is claimed, so no checkpoint can
       flip its slots mid-copy;
    2. destination index + both version slots are created (a crash here
       leaks dst extents; the source is untouched);
    3. the copy lands in the dst target slot, persists, and commits
       DONE — only now does the dst ModelTable learn the name;
    4. the caller flips the placement-ring pin, then evicts the source
       copy (:func:`evict_model`) — a crash between 3 and 4 leaves two
       committed copies, never zero.

    Returns ``(step, bytes_moved)``.  Dedup models are refused with
    :class:`~repro.errors.DedupMigrationUnsupported`: their bytes live
    in the pool-local chunk store, and migrating one means re-chunking
    against the destination's store (future work).  Callers that place
    groups must check *every* member up front — the same typed error,
    before any member has moved.
    """
    from repro.core.daemon import (FLUSH_BARRIER_NS, ModelEntry,
                                   QP_DEPTH)
    from repro.core.engine import TransferEngine

    obs = obs if obs is not None else Observability()
    entry = src_daemon.model_map.get(name)
    if entry is None:
        raise ModelNotFound(name)
    if entry.meta.dedup:
        raise DedupMigrationUnsupported(
            f"{name}: dedup models cannot migrate (chunk store is "
            f"pool-local)")
    if dst_daemon.model_map.get(name) is not None:
        raise ModelAlreadyRegistered(
            f"{name}: destination daemon already holds this model")
    src_daemon._claim(entry)
    span = obs.tracer.span(env, "fleet.migrate", cat="fleet",
                           track="fleet", model=name)
    src_mr = None
    src_mr_owned = False
    dst_mr = None
    qps = []
    try:
        version, step = valid_checkpoint(entry.meta)
        src_region = entry.meta.data_region(version)
        src_mr = entry.version_mrs[version]
        if src_mr is None or not src_mr.valid:
            src_mr = yield from src_daemon.node.nic.register_mr(src_region)
            src_mr_owned = True
        descriptors = entry.meta.mindex.descriptors
        specs = [d.to_spec() for d in descriptors]
        meta_dst = ModelMeta.create(dst_daemon.pool, name, specs)
        target = None
        try:
            target = begin_checkpoint(meta_dst)
            dst_mr = yield from dst_daemon.node.nic.register_mr(
                meta_dst.data_region(target))
            dst_qp, src_qp = yield from connect(
                env, dst_daemon.node.nic, src_daemon.node.nic)
            qps = [dst_qp, src_qp]
            # Same layout on both pools, so each descriptor's offset is
            # valid in either region; the "client" side of each pair is
            # the source server's MR.
            pairs = [(d, {"addr": src_mr.addr + d.offset,
                          "rkey": src_mr.rkey}) for d in descriptors]
            engine = TransferEngine(
                env, [dst_qp], depth=QP_DEPTH,
                chunk_bytes=dst_daemon.engine_chunk_bytes,
                pipelined=dst_daemon.engine_pipelined,
                largest_first=dst_daemon.engine_largest_first,
                stream_limit=dst_daemon._pmem_streams,
                obs=obs)
            try:
                moved = yield from engine.pull(dst_mr, pairs,
                                               f"migrate:{name}")
            except BaseException:
                engine.abort()
                raise
            if dst_daemon.pool.closed or src_daemon.pool.closed:
                raise PortusError(
                    f"{name}: a pool died during migration")
            meta_dst.data_region(target).persist()
            yield env.timeout(FLUSH_BARRIER_NS)
            commit_checkpoint(meta_dst, target, step)
        except BaseException:
            # Nothing was published on the destination; unwind it all
            # (on a live pool) so the only cost of a failed migration
            # is the source staying where it was.
            if not dst_daemon.pool.closed:
                if target is not None:
                    abort_checkpoint(meta_dst, target, data_dirty=True)
                meta_dst.free()
            raise
        dst_entry = ModelEntry(meta_dst)
        dst_daemon.model_map.insert(name, dst_entry)
        dst_daemon.table.insert(name, meta_dst.meta.addr)
    finally:
        for qp in qps:
            if qp.error is None:
                qp.transition_to_error("migration transport done")
        if dst_mr is not None and dst_mr.valid:
            dst_daemon.node.nic.deregister_mr(dst_mr)
        if src_mr_owned and src_mr is not None and src_mr.valid:
            src_daemon.node.nic.deregister_mr(src_mr)
        src_daemon._release(entry)
        span.finish()
    obs.metrics.counter("fleet.migrations").inc()
    obs.metrics.counter("fleet.migrated_bytes").inc(moved)
    return step, moved


def evict_model(src_daemon, name: str) -> None:
    """Drop *name* from the source daemon after a migration committed.

    Mirrors UNREGISTER's recovery ordering: deregister the version MRs,
    remove the (committed) ModelTable entry, then free the extents —
    a crash mid-evict leaks GC-able extents instead of dangling a table
    entry at freed metadata.  The tenant's byte charge is *not*
    released: the model still exists, just on another shard.
    """
    entry = src_daemon.model_map.get(name)
    if entry is None:
        raise ModelNotFound(name)
    src_daemon._claim(entry)
    try:
        for version in (0, 1):
            mr = entry.version_mrs[version]
            if mr is not None and mr.valid:
                src_daemon.node.nic.deregister_mr(mr)
            entry.version_mrs[version] = None
        src_daemon.table.remove(name)
        entry.meta.free()
        src_daemon.model_map.delete(name)
    finally:
        src_daemon._release(entry)

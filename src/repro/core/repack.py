"""The repacking tool (paper §III-D2, Fig. 7).

Double mapping costs one extra checkpoint's worth of PMem per model.
When a job finishes (only the newest version will ever be restored) or
crashes mid-checkpoint (the ACTIVE slot holds incomplete data), the
repacking tool reclaims the slack:

* a model with at least one DONE version keeps exactly its newest DONE
  slot; the stale/incomplete slot's TensorData is freed;
* a model with *no* DONE version has nothing restorable — the whole model
  is dropped (optional, on by default for crashed-first-checkpoint jobs);
* allocator-level leakage from crash windows was already reclaimed at
  pool open; freeing extents coalesces holes in the device free list,
  which is the "aggregate valid checkpoints" effect of Fig. 7.

The tool runs offline against the pool (as Portusctl does) or online
against an idle daemon; the paper notes it is rarely needed because PMem
capacity dwarfs checkpoint sizes.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.index import ModelMeta, ModelTable
from repro.pmem.pool import PmemPool


class RepackReport:
    """What a repack pass did."""

    def __init__(self) -> None:
        self.models_compacted: List[str] = []
        self.models_dropped: List[str] = []
        self.bytes_reclaimed = 0

    def __repr__(self) -> str:
        return f"<RepackReport compacted={len(self.models_compacted)} " \
               f"dropped={len(self.models_dropped)} " \
               f"reclaimed={self.bytes_reclaimed}B>"


def repack(pool: PmemPool, table: Optional[ModelTable] = None,
           drop_invalid: bool = True,
           skip: Optional[List[str]] = None) -> RepackReport:
    """Reclaim stale checkpoint versions; returns a report.

    *skip* names models to leave untouched (e.g. jobs still running when
    repacking online).
    """
    if table is None:
        table = ModelTable.open(pool)
    skip_set = set(skip or ())
    report = RepackReport()
    for name in table.names():
        if name in skip_set:
            continue
        meta = ModelMeta.open(pool, table.lookup(name))
        flags = meta.read_flags()
        newest = flags.newest_done()
        if newest is None:
            if drop_invalid:
                reclaimed = sum(region.size
                                for region in meta.data_regions
                                if region is not None) + meta.meta.size
                meta.free()
                table.remove(name)
                report.models_dropped.append(name)
                report.bytes_reclaimed += reclaimed
            continue
        # The slot that is not the newest DONE version is, by definition,
        # either older, incomplete (ACTIVE at crash), or empty: reclaim it.
        stale = 1 - newest
        reclaimed = meta.drop_version(stale)
        if reclaimed:
            report.models_compacted.append(name)
            report.bytes_reclaimed += reclaimed
    return report

"""Portus Daemon: the user-space storage-server process.

Listens on TCP/IPoIB, keeps the three-level index (persistent ModelTable +
DRAM ModelMap of :class:`ModelEntry`), and serves four operations:

* REGISTER — build (or re-attach to) a model's index: allocate both
  TensorData versions, write the MIndex, register the server-side MRs,
  record the client's per-tensor rkeys.
* DO_CHECKPOINT — stamp the target version ACTIVE, post one one-sided
  RDMA READ per tensor (concurrently — all tensors of a model pull in
  parallel), flush, stamp DONE.  Zero serialization, zero staging copies,
  zero kernel crossings on either side.
* DO_RESTORE — pick the newest DONE version and push every tensor back
  with one-sided RDMA WRITEs.
* UNREGISTER — drop the model and free its extents.

Each connection is served by its own process and each request by its own
worker; a per-entry compare-and-swap guard (``busy``) keeps concurrent
checkpoints of the *same* model exclusive while different models proceed
fully in parallel — the paper's lock-free multi-tenant claim.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional

from repro.core import protocol
from repro.core.consistency import (abort_checkpoint, begin_checkpoint,
                                    commit_checkpoint, valid_checkpoint)
from repro.core.index import ModelMeta, ModelTable
from repro.core.modelmap import ModelMap
from repro.dnn.tensor import TensorSpec
from repro.dnn.dtypes import DType
from repro.errors import (CheckpointInProgress, ModelNotFound, PortusError,
                          ProtocolError, ReproError)
from repro.hw.node import CpuSet, StorageNode
from repro.metrics import CostLedger
from repro.net.tcp import TcpStack
from repro.pmem.pool import PmemPool
from repro.sim import AllOf, Environment
from repro.units import usecs

DEFAULT_PORT = 9900
#: Handler dispatch cost per request.
PER_REQUEST_CPU_NS = usecs(5)
#: Posting one RDMA work request (WQE build + doorbell amortized).
PER_WQE_CPU_NS = usecs(0.3)
#: Final persistence barrier after a pull (flushes ride along with the
#: incoming DMA; only the fence is serialized at the end).
FLUSH_BARRIER_NS = usecs(10)
#: QP send-queue depth: at most this many one-sided WRs in flight per
#: operation (real RC QPs bound outstanding reads the same way).
QP_DEPTH = 32


def _windows(items, size):
    """Slice *items* into posting windows of at most *size*."""
    for start in range(0, len(items), size):
        yield items[start:start + size]


class ModelEntry:
    """DRAM state for one registered model."""

    def __init__(self, meta: ModelMeta) -> None:
        self.meta = meta
        self.qp = None
        self.client_tensors: Optional[List[Dict]] = None
        self.version_mrs: List = [None, None]
        self.busy = False  # the compare-and-swap guard

    @property
    def attached(self) -> bool:
        return self.qp is not None and self.client_tensors is not None


class PortusDaemon:
    """The storage-server daemon over one devdax PMem pool."""

    def __init__(self, env: Environment, node: StorageNode, pool: PmemPool,
                 tcp: TcpStack, port: int = DEFAULT_PORT,
                 workers: int = 16) -> None:
        if node.nic is None:
            raise PortusError(f"{node.name} has no RNIC")
        self.env = env
        self.node = node
        self.pool = pool
        self.tcp = tcp
        self.port = port
        self.workers = CpuSet(env, workers, name=f"{node.name}.portus")
        self.model_map = ModelMap()
        self.table = self._open_or_create_table()
        self.ledger = CostLedger()
        self.checkpoints_completed = 0
        self.restores_completed = 0
        self.bytes_pulled = 0
        self.bytes_pushed = 0
        self._started = False

    # -- bootstrap / recovery ----------------------------------------------------

    def _open_or_create_table(self) -> ModelTable:
        from repro.core.index import TABLE_TAG

        if self.pool.find_by_tag(TABLE_TAG):
            table = ModelTable.open(self.pool)
            self._recover(table)
            return table
        return ModelTable.create(self.pool)

    def _recover(self, table: ModelTable) -> None:
        """Rebuild the DRAM ModelMap from the persistent index."""
        for name in table.names():
            meta = ModelMeta.open(self.pool, table.lookup(name))
            self.model_map.insert(name, ModelEntry(meta))

    def start(self) -> None:
        """Bind the control port and start accepting (non-blocking)."""
        if self._started:
            return
        listener = self.tcp.listen(self.port)
        self.env.process(self._accept_loop(listener), name="portus-accept")
        self._started = True

    def _accept_loop(self, listener) -> Generator:
        while True:
            conn = yield from listener.accept()
            self.env.process(self._serve(conn), name="portus-conn")

    def _serve(self, conn) -> Generator:
        from repro.errors import ConnectionClosed

        while True:
            try:
                message = yield from conn.recv()
            except ConnectionClosed:
                return
            self.env.process(self._dispatch(conn, message),
                             name=f"portus-{message.get('op')}")

    def _dispatch(self, conn, message: Dict) -> Generator:
        op = message.get("op")
        handlers = {
            protocol.OP_REGISTER: self._handle_register,
            protocol.OP_DO_CHECKPOINT: self._handle_checkpoint,
            protocol.OP_DO_RESTORE: self._handle_restore,
            protocol.OP_UNREGISTER: self._handle_unregister,
            protocol.OP_LIST: self._handle_list,
        }
        handler = handlers.get(op)
        try:
            if handler is None:
                raise ProtocolError(f"unknown op {op!r}")
            yield from self.workers.execute(PER_REQUEST_CPU_NS)
            reply, size = yield from handler(message)
        except ReproError as exc:
            reply, size = protocol.error_reply(exc)
        yield from conn.send(reply, wire_size=size)

    # -- entry helpers ----------------------------------------------------------------

    def _entry(self, model_name: str) -> ModelEntry:
        entry = self.model_map.get(model_name)
        if entry is None:
            raise ModelNotFound(model_name)
        return entry

    def _claim(self, entry: ModelEntry) -> None:
        """The CAS: atomically take exclusive use of this entry."""
        if entry.busy:
            raise CheckpointInProgress(
                f"{entry.meta.mindex.model_name}: operation already "
                "in flight")
        entry.busy = True

    # -- REGISTER ------------------------------------------------------------------------

    def _handle_register(self, message: Dict) -> Generator:
        name = message["model"]
        tensors = message["tensors"]
        qp = message["qp"]
        specs = [
            TensorSpec(t["name"], tuple(t["shape"]),
                       DType.by_name(t["dtype"])) for t in tensors
        ]
        entry = self.model_map.get(name)
        if entry is None:
            meta = ModelMeta.create(self.pool, name, specs)
            entry = ModelEntry(meta)
            self.model_map.insert(name, entry)
            self.table.insert(name, meta.meta.addr)
        else:
            self._validate_attach(entry, specs)
            # A repacked model may be missing a version slot; rebuild it.
            entry.meta.ensure_regions()
        # (Re-)register the server-side MRs over both TensorData versions.
        for version in (0, 1):
            if entry.version_mrs[version] is None:
                entry.version_mrs[version] = yield from \
                    self.node.nic.register_mr(entry.meta.data_region(version))
        entry.qp = qp
        entry.client_tensors = tensors
        return protocol.reply(protocol.OP_REGISTERED, model=name,
                              layers=len(tensors))

    def _validate_attach(self, entry: ModelEntry,
                         specs: List[TensorSpec]) -> None:
        index = entry.meta.mindex
        if len(specs) != index.layer_count:
            raise PortusError(
                f"{index.model_name}: attach with {len(specs)} tensors, "
                f"index has {index.layer_count}")
        for spec, descriptor in zip(specs, index.descriptors):
            if (spec.name != descriptor.name
                    or spec.size_bytes != descriptor.size):
                raise PortusError(
                    f"{index.model_name}: tensor {spec.name!r} does not "
                    f"match the persisted index entry {descriptor.name!r}")

    # -- DO_CHECKPOINT --------------------------------------------------------------------

    def _handle_checkpoint(self, message: Dict) -> Generator:
        name = message["model"]
        step = message["step"]
        dirty = message.get("dirty")
        entry = self._entry(name)
        if not entry.attached:
            raise PortusError(f"{name}: no attached client to pull from")
        self._claim(entry)
        started = self.env.now
        try:
            flags_before = entry.meta.read_flags()
            previous = flags_before.newest_done()
            target = begin_checkpoint(entry.meta)
            region_mr = entry.version_mrs[target]
            yield from self.workers.execute(
                PER_WQE_CPU_NS * entry.meta.mindex.layer_count)
            pairs = list(zip(entry.meta.mindex.descriptors,
                             entry.client_tensors))
            if dirty is not None and previous is not None:
                dirty_set = set(dirty)
                clean = [d for d, _c in pairs if d.name not in dirty_set]
                pairs = [(d, c) for d, c in pairs if d.name in dirty_set]
                yield from self._copy_clean_tensors(entry, previous,
                                                    target, clean)
            try:
                for window in _windows(pairs, QP_DEPTH):
                    reads = [entry.qp.read(
                        region_mr, descriptor.offset, client["rkey"],
                        client["addr"], descriptor.size,
                        label=f"pull:{name}:{descriptor.name}")
                        for descriptor, client in window]
                    yield AllOf(self.env, reads)
            except ReproError:
                if not self.pool.closed:
                    abort_checkpoint(entry.meta, target)
                raise
            if self.pool.closed:
                # The server lost power mid-pull: this daemon instance is
                # gone; the target slot stays ACTIVE on the (recovered)
                # pool and will never be trusted by a restore.
                raise PortusError(
                    f"{name}: server crashed during checkpoint")
            entry.meta.data_region(target).persist()
            yield self.env.timeout(FLUSH_BARRIER_NS)
            commit_checkpoint(entry.meta, target, step)
        finally:
            entry.busy = False
        duration = self.env.now - started
        self.ledger.add("rdma_pull", duration)
        self.checkpoints_completed += 1
        self.bytes_pulled += sum(descriptor.size
                                 for descriptor, _client in pairs)
        return protocol.reply(protocol.OP_CHECKPOINT_DONE, model=name,
                              step=step, version=target,
                              duration_ns=duration)

    def _copy_clean_tensors(self, entry: ModelEntry, source: int,
                            target: int, descriptors) -> Generator:
        """Incremental mode: complete the new version by copying the
        unchanged tensors from the previous DONE version — a local
        PMem-to-PMem move, no network involved."""
        from repro.sim import Transfer

        total = sum(d.size for d in descriptors)
        if total == 0:
            return
        device = self.pool.device
        transfer = Transfer(self.env,
                            [device.read_channel, device.write_channel],
                            total, label="incremental-local-copy")
        yield transfer
        source_region = entry.meta.data_region(source)
        target_region = entry.meta.data_region(target)
        for descriptor in descriptors:
            content = source_region.read(descriptor.offset,
                                         descriptor.size)
            target_region.write(descriptor.offset, content)

    # -- DO_RESTORE -----------------------------------------------------------------------

    def _handle_restore(self, message: Dict) -> Generator:
        name = message["model"]
        entry = self._entry(name)
        if not entry.attached:
            raise PortusError(f"{name}: no attached client to push to")
        self._claim(entry)
        started = self.env.now
        try:
            version, step = valid_checkpoint(entry.meta)
            region_mr = entry.version_mrs[version]
            yield from self.workers.execute(
                PER_WQE_CPU_NS * entry.meta.mindex.layer_count)
            pairs = list(zip(entry.meta.mindex.descriptors,
                             entry.client_tensors))
            for window in _windows(pairs, QP_DEPTH):
                writes = [entry.qp.write(
                    region_mr, descriptor.offset, client["rkey"],
                    client["addr"], descriptor.size,
                    label=f"push:{name}:{descriptor.name}")
                    for descriptor, client in window]
                yield AllOf(self.env, writes)
        finally:
            entry.busy = False
        duration = self.env.now - started
        self.ledger.add("rdma_push", duration)
        self.restores_completed += 1
        self.bytes_pushed += entry.meta.mindex.total_bytes
        return protocol.reply(protocol.OP_RESTORE_DONE, model=name,
                              step=step, version=version,
                              duration_ns=duration)

    # -- UNREGISTER ------------------------------------------------------------------------

    def _handle_unregister(self, message: Dict) -> Generator:
        name = message["model"]
        entry = self._entry(name)
        self._claim(entry)
        try:
            for version in (0, 1):
                mr = entry.version_mrs[version]
                if mr is not None:
                    self.node.nic.deregister_mr(mr)
            entry.meta.free()
            self.table.remove(name)
            self.model_map.delete(name)
        finally:
            entry.busy = False
        return protocol.reply(protocol.OP_UNREGISTERED, model=name)
        yield  # pragma: no cover - keeps this a generator

    # -- LIST ------------------------------------------------------------------------------

    def _handle_list(self, message: Dict) -> Generator:
        """Network-facing inventory (what portusctl shows offline)."""
        from repro.core.index import FLAG_NAMES

        rows = []
        for name, entry in self.model_map.items():
            flags = entry.meta.read_flags()
            rows.append({
                "model": name,
                "layers": entry.meta.mindex.layer_count,
                "bytes": entry.meta.mindex.total_bytes,
                "attached": entry.attached,
                "versions": [
                    {"state": FLAG_NAMES[flags.states[i]],
                     "step": flags.steps[i]} for i in (0, 1)
                ],
            })
        return protocol.reply(protocol.OP_LIST_REPLY, models=rows)
        yield  # pragma: no cover - generator protocol

    # -- introspection ----------------------------------------------------------------------

    def models(self) -> List[str]:
        return self.model_map.keys()

"""Portus Daemon: the user-space storage-server process.

Listens on TCP/IPoIB, keeps the three-level index (persistent ModelTable +
DRAM ModelMap of :class:`ModelEntry`), and serves four operations:

* REGISTER — build (or re-attach to) a model's index: allocate both
  TensorData versions, write the MIndex, register the server-side MRs,
  record the client's per-tensor rkeys.
* DO_CHECKPOINT — stamp the target version ACTIVE, post one one-sided
  RDMA READ per tensor (concurrently — all tensors of a model pull in
  parallel), flush, stamp DONE.  Zero serialization, zero staging copies,
  zero kernel crossings on either side.
* DO_RESTORE — pick the newest DONE version and push every tensor back
  with one-sided RDMA WRITEs.
* UNREGISTER — drop the model and free its extents.

Each connection is served by its own process and each request by its own
worker; a per-entry compare-and-swap guard (``busy``) keeps concurrent
checkpoints of the *same* model exclusive while different models proceed
fully in parallel — the paper's lock-free multi-tenant claim.  Replies
carry the request id of the request they answer, so a client with several
requests outstanding on one connection can match them (workers complete
in any order).

Fault tolerance:

* every reply send is guarded — a client that died mid-request costs the
  daemon nothing but a dropped-reply counter;
* an optional per-request timeout (``request_timeout_ns``) bounds how
  long a wedged datapath can hold an entry's CAS guard: the worker is
  interrupted, the pull aborted, and the client told to retry;
* an optional lease (``lease_ns`` + ``reaper_interval_ns``) detects
  vanished clients: any request or HEARTBEAT renews the lease, and the
  reaper detaches expired sessions — interrupting their in-flight pull
  (which aborts the ACTIVE version) and flushing their QP so late WR
  completions cannot deposit stale bytes;
* :meth:`stop` / :meth:`crash` model the daemon process exiting or
  dying: the port unbinds, connections drop, QPs flush, in-flight
  handlers are killed, and (on crash) the pool closes un-synced — the
  successor re-opens the pool and re-runs recovery.

All three knobs default to off, leaving the fast path byte-identical to
the non-hardened daemon.
"""

from __future__ import annotations

import logging

from typing import Dict, Generator, List, Optional

from repro.core import protocol
from repro.core.consistency import (abort_checkpoint, begin_checkpoint,
                                    checkpoint_at_step, commit_checkpoint,
                                    valid_checkpoint)
from repro.core.dedup import chunk_spans
from repro.core.engine import (ENGINE_CHUNK_BYTES, IngestLimiter,
                               LocalCopyEngine, TransferEngine, WorkItem)
from repro.core.group import GroupStore
from repro.core.index import (FLAG_DONE, ModelMeta, ModelTable,
                              region_extent)
from repro.core.modelmap import ModelMap
from repro.dnn.layout import ShardedLayout
from repro.dnn.tensor import TensorSpec
from repro.dnn.dtypes import DType
from repro.errors import (CheckpointInProgress, ConnectionClosed,
                          GroupCommitRefused, ModelNotFound,
                          NoValidCheckpoint, NotAttached, PortusError,
                          ProcessInterrupted, ProtocolError, ReproError,
                          RequestTimeout)
from repro.hw.node import CpuSet, StorageNode
from repro.metrics import CostLedger
from repro.obs import Observability
from repro.net.tcp import TcpStack
from repro.pmem.pool import PmemPool
from repro.sim import AnyOf, Environment
from repro.units import usecs

DEFAULT_PORT = 9900
#: Handler dispatch cost per request.
PER_REQUEST_CPU_NS = usecs(5)
#: Posting one RDMA work request (WQE build + doorbell amortized).
PER_WQE_CPU_NS = usecs(0.3)
#: Final persistence barrier after a pull (flushes ride along with the
#: incoming DMA; only the fence is serialized at the end).
FLUSH_BARRIER_NS = usecs(10)
#: QP send-queue depth: at most this many one-sided WRs in flight per
#: QP (real RC QPs bound outstanding reads the same way).  The transfer
#: engine reads this at posting time, so the QP-depth ablation can sweep
#: it per run.
QP_DEPTH = 32


class ModelEntry:
    """DRAM state for one registered model."""

    def __init__(self, meta: ModelMeta) -> None:
        self.meta = meta
        #: The stripe set: every QP the client registered for this model
        #: (``num_qps`` is negotiated at REGISTER time).
        self.qps: List = []
        self.client_tensors: Optional[List[Dict]] = None
        self.version_mrs: List = [None, None]
        #: Owning tenant (fleet accounting); None for legacy sessions.
        #: Re-learned at attach time after a daemon restart.
        self.tenant: Optional[str] = None
        self.busy = False  # the compare-and-swap guard
        #: Dedup models: the region's chunk spans (derived once from the
        #: persisted MIndex — the same cut the client hashes over).
        self.chunk_spans = None
        self.last_seen_ns = 0
        #: The worker process currently holding the CAS guard, if any —
        #: the interrupt target for lease expiry and daemon death.
        self.inflight = None
        #: When the CAS guard was taken — the health model's wedge
        #: detector reads the oldest in-flight age from it.
        self.inflight_since_ns: Optional[int] = None

    @property
    def qp(self):
        """The primary QP (compatibility view of the stripe set)."""
        return self.qps[0] if self.qps else None

    @property
    def attached(self) -> bool:
        return bool(self.qps) and self.client_tensors is not None


class PortusDaemon:
    """The storage-server daemon over one devdax PMem pool."""

    def __init__(self, env: Environment, node: StorageNode, pool: PmemPool,
                 tcp: TcpStack, port: int = DEFAULT_PORT,
                 workers: int = 16,
                 request_timeout_ns: Optional[int] = None,
                 lease_ns: Optional[int] = None,
                 reaper_interval_ns: Optional[int] = None,
                 engine: Optional[Dict] = None,
                 obs: Optional[Observability] = None,
                 slow_request_ns: Optional[int] = None,
                 admission=None, tenants=None) -> None:
        if node.nic is None:
            raise PortusError(f"{node.name} has no RNIC")
        self.env = env
        self.node = node
        self.pool = pool
        self.tcp = tcp
        self.port = port
        self.workers = CpuSet(env, workers, name=f"{node.name}.portus")
        self.request_timeout_ns = request_timeout_ns
        self.lease_ns = lease_ns
        self.reaper_interval_ns = reaper_interval_ns
        # Datapath engine policy (see repro.core.engine): pipelined
        # sliding-window posting with 4 MiB segmentation by default;
        # ``pipelined=False`` restores the seed's barrier windows and
        # ``max_pmem_streams`` bounds total in-flight pull WRs so the
        # PMem ingest stays under the Optane congestion cliff.
        engine_opts = dict(engine or {})
        self.engine_pipelined = engine_opts.pop("pipelined", True)
        self.engine_chunk_bytes = engine_opts.pop("chunk_bytes",
                                                  ENGINE_CHUNK_BYTES)
        self.engine_largest_first = engine_opts.pop("largest_first", True)
        max_pmem_streams = engine_opts.pop("max_pmem_streams", None)
        if engine_opts:
            raise PortusError(
                f"unknown engine options: {sorted(engine_opts)}")
        self.obs = obs if obs is not None else Observability()
        #: Per-daemon admission controller (fleet backpressure) — a
        #: :class:`repro.fleet.admission.AdmissionController`, or None
        #: for the unbounded legacy daemon.
        self.admission = admission
        #: Fleet-wide :class:`repro.fleet.tenants.TenantRegistry`
        #: (shared across shards and daemon restarts), or None.
        self.tenants = tenants
        #: Counter scope for this shard's health-relevant counters —
        #: N daemons share one metrics registry, so the health model
        #: reads ``daemon.<node>.*`` to see only its shard's faults.
        self._scope = f"daemon.{node.name}."
        #: Requests slower than this (simulated ns) are logged and kept
        #: in :attr:`slow_requests`; None disables the check.
        self.slow_request_ns = slow_request_ns
        self.slow_requests: List[Dict] = []
        self._log = logging.getLogger("repro.portus.daemon")
        self._pmem_streams = (
            IngestLimiter(env, capacity=max_pmem_streams,
                          metrics=self.obs.metrics)
            if max_pmem_streams is not None else None)
        self.model_map = ModelMap()
        self.table = self._open_or_create_table()
        #: Parallel-group registry (group-commit records on this pool).
        self.groups = GroupStore.open_or_create(self.pool)
        self.ledger = CostLedger()
        self.checkpoints_completed = 0
        self.restores_completed = 0
        self.bytes_pulled = 0
        #: Bytes the completed checkpoints *represent* — for dedup models
        #: the full region per checkpoint, however few chunk bytes
        #: actually moved.  ``bytes_pulled / bytes_logical`` is the
        #: dedup transfer ratio.
        self.bytes_logical = 0
        self.bytes_pushed = 0
        self.dropped_replies = 0
        self.reaped_sessions = 0
        self.stopped = False
        self._started = False
        self._listener = None
        self._conns: List = []

    # -- bootstrap / recovery ----------------------------------------------------

    def _open_or_create_table(self) -> ModelTable:
        from repro.core.index import TABLE_TAG

        if self.pool.find_by_tag(TABLE_TAG):
            table = ModelTable.open(self.pool)
            self._recover(table)
            return table
        return ModelTable.create(self.pool)

    def _recover(self, table: ModelTable) -> None:
        """Rebuild the DRAM ModelMap from the persistent index."""
        for name in table.names():
            meta = ModelMeta.open(self.pool, table.lookup(name))
            self.model_map.insert(name, ModelEntry(meta))

    def start(self) -> None:
        """Bind the control port and start accepting (non-blocking)."""
        if self._started:
            return
        self._listener = self.tcp.listen(self.port)
        self.env.process(self._accept_loop(self._listener),
                         name="portus-accept")
        if self.lease_ns is not None and self.reaper_interval_ns is not None:
            self.env.process(self._reaper_loop(), name="portus-reaper")
        self._started = True

    # -- lifecycle ----------------------------------------------------------------

    def stop(self) -> None:
        """Stop serving: unbind the port and sever every connection.

        The pool stays open and in-flight handlers run to completion —
        their replies go nowhere (the connections are gone), but PMem
        state ends consistent.  A successor daemon can bind the same
        port immediately.
        """
        if self.stopped:
            return
        self.stopped = True
        if self._listener is not None:
            self._listener.close()
        for conn in list(self._conns):
            conn.drop()
        self._conns.clear()

    def crash(self) -> None:
        """The daemon process dies abruptly.

        Networking tears down as in :meth:`stop`, every attached QP is
        flushed to the error state (in-flight WR data is discarded —
        the DMA target mapping is gone), in-flight handlers are killed,
        and the pool closes un-synced.  PMem keeps whatever was
        persisted; the successor must :meth:`PmemPool.open` and recover.
        Callers simulating *power loss* should :meth:`PmemPool.crash`
        the pool before calling this.
        """
        self.stop()
        if not self.pool.closed:
            self.pool.close()
        for _name, entry in self.model_map.items():
            for qp in entry.qps:
                if qp.error is None:
                    qp.transition_to_error("daemon crashed")
            if entry.inflight is not None and entry.inflight.is_alive:
                entry.inflight.interrupt("daemon crashed")

    # -- serving -------------------------------------------------------------------

    def _accept_loop(self, listener) -> Generator:
        while True:
            try:
                conn = yield from listener.accept()
            except ConnectionClosed:
                return
            self._conns.append(conn)
            self.env.process(self._serve(conn), name="portus-conn")

    def _serve(self, conn) -> Generator:
        try:
            while True:
                try:
                    message = yield from conn.recv()
                except ConnectionClosed:
                    return
                self.env.process(self._dispatch(conn, message),
                                 name=f"portus-{message.get('op')}")
        finally:
            if conn in self._conns:
                self._conns.remove(conn)

    def _count(self, suffix: str, n: int = 1) -> None:
        """Bump a health-relevant counter both fleet-wide and per-shard.

        The global ``daemon.<suffix>`` name keeps every existing stats
        consumer working; the scoped ``daemon.<node>.<suffix>`` twin is
        what :meth:`health_snapshot` reads, so one shard's fault burst
        never degrades another shard's health classification.
        """
        self.obs.metrics.counter(f"daemon.{suffix}").inc(n)
        self.obs.metrics.counter(f"{self._scope}{suffix}").inc(n)

    def _dispatch(self, conn, message: Dict) -> Generator:
        op = message.get("op")
        rid = message.get("rid")
        handlers = {
            protocol.OP_REGISTER: self._handle_register,
            protocol.OP_DO_CHECKPOINT: self._handle_checkpoint,
            protocol.OP_DO_RESTORE: self._handle_restore,
            protocol.OP_UNREGISTER: self._handle_unregister,
            protocol.OP_LIST: self._handle_list,
            protocol.OP_HEARTBEAT: self._handle_heartbeat,
            protocol.OP_GROUP_REGISTER: self._handle_group_register,
            protocol.OP_GROUP_COMMIT: self._handle_group_commit,
            protocol.OP_GROUP_QUERY: self._handle_group_query,
        }
        handler = handlers.get(op)
        trace_id = protocol.trace_of(message)
        span = self.obs.tracer.span(self.env, f"daemon.{op}", cat="rpc",
                                    trace_id=trace_id, track="daemon",
                                    model=message.get("model"))
        self._count(f"requests.{op}")
        started = self.env.now
        failed = False
        try:
            if handler is None:
                raise ProtocolError(f"unknown op {op!r}")
            self._touch_lease(message)
            yield from self.workers.execute(PER_REQUEST_CPU_NS)
            if self.request_timeout_ns is None:
                reply, size = yield from handler(message)
            else:
                reply, size = yield from self._run_with_timeout(op, handler,
                                                                message)
            # Stamp at completion too: a request that legitimately runs
            # longer than the lease must not leave a stale stamp for the
            # reaper to trip over before the client's next request.
            self._touch_lease(message)
        except ReproError as exc:
            failed = True
            self._count(f"errors.{op}")
            reply, size = protocol.error_reply(exc)
        span.finish(error=failed)
        self._note_slow(op, message, started, failed)
        protocol.stamp_trace(reply, trace_id)
        if rid is not None:
            reply["rid"] = rid
        try:
            yield from conn.send(reply, wire_size=size)
        except ReproError:
            # The client died or the connection dropped mid-reply; the
            # work is done (or aborted) either way — drop the reply.
            self.dropped_replies += 1
            self._count("dropped_replies")

    def _note_slow(self, op: str, message: Dict, started: int,
                   failed: bool) -> None:
        """Record (and log) any request over the slow threshold."""
        if self.slow_request_ns is None:
            return
        duration = self.env.now - started
        if duration <= self.slow_request_ns:
            return
        record = {"op": op, "model": message.get("model"),
                  "started_ns": started, "duration_ns": duration,
                  "error": failed}
        self.slow_requests.append(record)
        self._count("slow_requests")
        self._log.warning(
            "slow request: %s model=%s took %d ns (threshold %d ns)%s",
            op, message.get("model"), duration, self.slow_request_ns,
            " [failed]" if failed else "")

    def _run_with_timeout(self, op: str, handler, message: Dict) -> Generator:
        """Process: run *handler* but bound its wall time.

        On expiry the worker is interrupted — its own cleanup aborts any
        ACTIVE version and releases the CAS guard — and the client gets a
        retryable :class:`RequestTimeout`.
        """
        worker = self.env.process(self._guarded(handler, message),
                                  name=f"portus-{op}-worker")
        yield AnyOf(self.env,
                    [worker, self.env.timeout(self.request_timeout_ns)])
        if not worker.triggered:
            worker.interrupt("request timeout")
            yield worker  # let the interrupt unwind the handler
            raise RequestTimeout(
                f"{op}: request exceeded {self.request_timeout_ns} ns")
        kind, value = worker.value
        if kind == "err":
            raise value
        return value

    def _guarded(self, handler, message: Dict) -> Generator:
        """Process: handler wrapper that never fails (outcome is tagged)."""
        try:
            result = yield from handler(message)
        except ProcessInterrupted as exc:
            # The reaper (or a crash) tore this session down mid-request.
            # The raw interruption is a simulator artifact; what the
            # client must see is a retryable "your attach is gone".
            return ("err", NotAttached(str(exc)))
        except ReproError as exc:
            return ("err", exc)
        return ("ok", result)

    # -- lease bookkeeping -------------------------------------------------------

    def _touch_lease(self, message: Dict) -> None:
        """Any request from a session renews its model's lease."""
        if self.lease_ns is None:
            return
        name = message.get("model")
        entry = self.model_map.get(name) if name else None
        if entry is not None:
            entry.last_seen_ns = self.env.now

    def _reaper_loop(self) -> Generator:
        while not self.stopped:
            yield self.env.timeout(self.reaper_interval_ns)
            if self.stopped:
                return
            self._reap_expired()

    def _reap_expired(self) -> None:
        """Detach every session whose lease ran out.

        An in-flight pull for a vanished client is interrupted (its
        cleanup aborts the ACTIVE version and releases the CAS guard) and
        the session QP is flushed so late completions cannot deposit
        stale bytes into a slot a future checkpoint may claim.  The
        persistent index is untouched — the model's committed versions
        survive for the client's successor to re-attach to.
        """
        deadline = self.env.now - self.lease_ns
        for name, entry in list(self.model_map.items()):
            if not entry.attached or entry.last_seen_ns > deadline:
                continue
            if (self.request_timeout_ns is not None
                    and entry.inflight is not None
                    and entry.inflight.is_alive):
                # A live request is proof of liveness: a healthy pull can
                # legitimately outlast a short lease, and a wedged one is
                # the request timeout's job to kill.  Only a daemon with
                # no request timeout reaps in-flight work (last resort).
                continue
            self.reaped_sessions += 1
            self._count("reaped_sessions")
            qps = entry.qps
            entry.qps = []
            entry.client_tensors = None
            if entry.inflight is not None and entry.inflight.is_alive:
                entry.inflight.interrupt(f"{name}: session lease expired")
            for qp in qps:
                if qp.error is None:
                    qp.transition_to_error(
                        f"{name}: session lease expired")

    # -- entry helpers ----------------------------------------------------------------

    def _entry(self, model_name: str) -> ModelEntry:
        entry = self.model_map.get(model_name)
        if entry is None:
            raise ModelNotFound(model_name)
        return entry

    def _claim(self, entry: ModelEntry) -> None:
        """The CAS: atomically take exclusive use of this entry."""
        if entry.busy:
            raise CheckpointInProgress(
                f"{entry.meta.mindex.model_name}: operation already "
                "in flight")
        entry.busy = True
        entry.inflight = self.env.active_process
        entry.inflight_since_ns = self.env.now

    def _release(self, entry: ModelEntry) -> None:
        entry.busy = False
        entry.inflight = None
        entry.inflight_since_ns = None

    # -- REGISTER ------------------------------------------------------------------------

    def _handle_register(self, message: Dict) -> Generator:
        if self.admission is None:
            return (yield from self._register_inner(message))
        self.admission.enter("register")
        try:
            return (yield from self._register_inner(message))
        finally:
            self.admission.exit("register")

    def _register_inner(self, message: Dict) -> Generator:
        name = message["model"]
        tensors = message["tensors"]
        dedup = message.get("dedup")
        tenant = message.get("tenant")
        # Multi-QP REGISTER: the client may bring a whole stripe set; a
        # legacy single-QP packet is a stripe set of one.
        qps = message.get("qps") or [message["qp"]]
        specs = [
            TensorSpec(t["name"], tuple(t["shape"]),
                       DType.by_name(t["dtype"])) for t in tensors
        ]
        entry = self.model_map.get(name)
        if entry is None:
            if tenant is not None and self.tenants is not None:
                # Charge the persistent footprint (two version slots)
                # against the tenant's byte quota BEFORE any pool
                # allocation — a quota reject must leave no state.
                self.tenants.charge_bytes(
                    tenant, name,
                    2 * sum(spec.size_bytes for spec in specs))
            try:
                if dedup is not None:
                    from repro.pmem.chunks import ChunkStore

                    chunk_bytes = int(dedup["chunk_bytes"])
                    # The chunk store is pool-wide; first dedup model
                    # formats it and later ones must agree on the chunk
                    # size.
                    ChunkStore.ensure(self.pool, chunk_bytes=chunk_bytes)
                    meta = ModelMeta.create_dedup(self.pool, name, specs,
                                                  chunk_bytes)
                else:
                    meta = ModelMeta.create(self.pool, name, specs)
            except ReproError:
                if tenant is not None and self.tenants is not None:
                    self.tenants.release_bytes(tenant, name)
                raise
            entry = ModelEntry(meta)
            self.model_map.insert(name, entry)
            self.table.insert(name, meta.meta.addr)
        else:
            self._validate_attach(entry, specs)
            self._validate_dedup_attach(entry, dedup)
            # A repacked model may be missing a version slot; rebuild it.
            entry.meta.ensure_regions()
        # (Re-)register the server-side MRs over both TensorData versions
        # (dedup models have none: their bytes live in per-chunk extents
        # whose MRs are registered per operation).
        if not entry.meta.dedup:
            for version in (0, 1):
                if entry.version_mrs[version] is None:
                    entry.version_mrs[version] = yield from \
                        self.node.nic.register_mr(
                            entry.meta.data_region(version))
        entry.qps = list(qps)
        entry.client_tensors = tensors
        if tenant is not None:
            entry.tenant = tenant
        entry.last_seen_ns = self.env.now
        return protocol.reply(protocol.OP_REGISTERED, model=name,
                              layers=len(tensors), num_qps=len(entry.qps))

    def _validate_attach(self, entry: ModelEntry,
                         specs: List[TensorSpec]) -> None:
        index = entry.meta.mindex
        if len(specs) != index.layer_count:
            raise PortusError(
                f"{index.model_name}: attach with {len(specs)} tensors, "
                f"index has {index.layer_count}")
        for spec, descriptor in zip(specs, index.descriptors):
            if (spec.name != descriptor.name
                    or spec.size_bytes != descriptor.size):
                raise PortusError(
                    f"{index.model_name}: tensor {spec.name!r} does not "
                    f"match the persisted index entry {descriptor.name!r}")

    @staticmethod
    def _validate_dedup_attach(entry: ModelEntry,
                               dedup: Optional[Dict]) -> None:
        name = entry.meta.mindex.model_name
        if entry.meta.dedup != (dedup is not None):
            have = "dedup" if entry.meta.dedup else "contiguous"
            want = "dedup" if dedup is not None else "contiguous"
            raise PortusError(
                f"{name}: attach requests the {want} layout but the "
                f"persisted model uses the {have} layout")
        if dedup is not None and \
                int(dedup["chunk_bytes"]) != entry.meta.chunk_bytes:
            raise PortusError(
                f"{name}: attach with chunk_bytes="
                f"{int(dedup['chunk_bytes'])}, persisted model uses "
                f"{entry.meta.chunk_bytes}")

    def _dedup_spans(self, entry: ModelEntry):
        """The region's chunk spans (cached per entry; the MIndex is
        immutable for the life of the model)."""
        if entry.chunk_spans is None:
            descriptors = entry.meta.mindex.descriptors
            entry.chunk_spans = chunk_spans(descriptors,
                                            region_extent(descriptors),
                                            entry.meta.chunk_bytes)
        return entry.chunk_spans

    # -- the datapath engine -------------------------------------------------------

    def _engine(self, qps: List, ingest: bool,
                trace_id: Optional[int] = None) -> TransferEngine:
        """One transfer engine per operation over the pinned stripe set.

        ``QP_DEPTH`` is read here (not at daemon construction) so the
        QP-depth ablation's per-run sweep still bites.  The PMem ingest
        limiter only applies to pulls — restores read PMem, and Optane
        reads do not congest.
        """
        return TransferEngine(
            self.env, qps, depth=QP_DEPTH,
            chunk_bytes=self.engine_chunk_bytes,
            pipelined=self.engine_pipelined,
            largest_first=self.engine_largest_first,
            stream_limit=self._pmem_streams if ingest else None,
            wqe_cost=lambda: self.workers.execute(PER_WQE_CPU_NS),
            obs=self.obs, trace_id=trace_id)

    # -- DO_CHECKPOINT --------------------------------------------------------------------

    def _handle_checkpoint(self, message: Dict) -> Generator:
        entry = self._entry(message["model"])
        if self.tenants is not None and entry.tenant is not None:
            # Token-bucket bandwidth budget: debit the logical size (the
            # bytes this dump *represents*); over-budget tenants get a
            # typed reject with an exact deterministic retry-after.
            self.tenants.reserve_bandwidth(
                entry.tenant, entry.meta.mindex.total_bytes, self.env.now)
        if self.admission is None:
            return (yield from self._checkpoint_gated(message, entry))
        self.admission.enter("ingest")
        try:
            return (yield from self._checkpoint_gated(message, entry))
        finally:
            self.admission.exit("ingest")

    def _checkpoint_gated(self, message: Dict,
                          entry: ModelEntry) -> Generator:
        name = message["model"]
        step = message["step"]
        dirty = message.get("dirty")
        if entry.meta.dedup:
            return (yield from self._handle_checkpoint_dedup(message, entry))
        if not entry.attached:
            raise NotAttached(f"{name}: no attached client to pull from")
        self._claim(entry)
        # Pin the stripe set: a re-attach mid-pull must not redirect us.
        qps = list(entry.qps)
        trace_id = protocol.trace_of(message)
        started = self.env.now
        try:
            flags_before = entry.meta.read_flags()
            previous = flags_before.newest_done()
            with self.obs.tracer.span(self.env, "ckpt.begin", cat="ckpt",
                                      trace_id=trace_id, track="daemon",
                                      model=name):
                target = begin_checkpoint(entry.meta)
            region_mr = entry.version_mrs[target]
            pairs = list(zip(entry.meta.mindex.descriptors,
                             entry.client_tensors))
            prefilled = 0
            if dirty is not None and previous is not None:
                dirty_set = set(dirty)
                clean = [d for d, _c in pairs if d.name not in dirty_set]
                pairs = [(d, c) for d, c in pairs if d.name in dirty_set]
                with self.obs.tracer.span(self.env, "ckpt.local_copy",
                                          cat="ckpt", trace_id=trace_id,
                                          track="daemon", model=name,
                                          tensors=len(clean)):
                    prefilled = yield from self._copy_clean_tensors(
                        entry, previous, target, clean)
            # The engine charges PER_WQE_CPU_NS per WR actually posted —
            # an incremental pull pays for its dirty subset (and its
            # segmentation), not the whole layer count.
            engine = self._engine(qps, ingest=True, trace_id=trace_id)
            try:
                pulled = yield from engine.pull(region_mr, pairs,
                                                f"pull:{name}")
            except ReproError:
                # The engine aborted the stripe set (every QP flushed —
                # in-flight reads must not land their now-stale bytes in
                # a slot the next checkpoint may claim); abort() again
                # is a no-op, kept for the non-engine error paths.
                engine.abort()
                self._count("checkpoints_aborted")
                if not self.pool.closed:
                    # Any byte already landed in the target slot — the
                    # incremental prefill or a completed pull WR — makes
                    # the slot torn at its old step: invalidate it
                    # rather than roll back to DONE (the torn-slot bug).
                    data_dirty = (prefilled > 0
                                  or engine.bytes_landed > 0)
                    if data_dirty:
                        self.obs.metrics.counter(
                            "daemon.checkpoints_aborted_dirty").inc()
                    abort_checkpoint(entry.meta, target,
                                     data_dirty=data_dirty)
                raise
            if self.pool.closed:
                # The server lost power mid-pull: this daemon instance is
                # gone; the target slot stays ACTIVE on the (recovered)
                # pool and will never be trusted by a restore.
                raise PortusError(
                    f"{name}: server crashed during checkpoint")
            with self.obs.tracer.span(self.env, "ckpt.persist_commit",
                                      cat="ckpt", trace_id=trace_id,
                                      track="daemon", model=name):
                entry.meta.data_region(target).persist()
                yield self.env.timeout(FLUSH_BARRIER_NS)
                commit_checkpoint(entry.meta, target, step)
        finally:
            self._release(entry)
        duration = self.env.now - started
        self.ledger.add("rdma_pull", duration)
        self.checkpoints_completed += 1
        self.bytes_pulled += pulled
        self._count("checkpoints_completed")
        self.obs.metrics.counter("daemon.bytes_pulled").inc(pulled)
        self.obs.metrics.histogram(
            "daemon.checkpoint_latency_ns").record(duration)
        return protocol.reply(protocol.OP_CHECKPOINT_DONE, model=name,
                              step=step, version=target,
                              duration_ns=duration, bytes_pulled=pulled)

    def _handle_checkpoint_dedup(self, message: Dict,
                                 entry: ModelEntry) -> Generator:
        """Dedup checkpoint: pull only the chunks absent from the store.

        Crash-safe ordering (every window leak-only, verified by the
        crash-point sweep):

        1. begin_checkpoint stamps the target slot ACTIVE;
        2. missing chunks are pulled into freshly reserved extents and
           persisted — committed-but-unindexed extents, reclaimed by
           fsck's leak scan on a crash;
        3. ``ChunkStore.apply`` commits the whole reference delta (new
           entries + shared-chunk increments) in ONE record write;
        4. the target manifest record is written, the slot committed
           DONE;
        5. only then is the overwritten version's old manifest
           unreferenced — and only if the slot was DONE *before* the
           begin (a non-DONE slot's references were never certainly
           counted; dropping them could over-free a shared chunk).
        """
        from repro.pmem.chunks import ChunkStore

        name = message["model"]
        step = message["step"]
        manifest = message.get("manifest")
        if manifest is None:
            raise ProtocolError(
                f"{name}: dedup model checkpoints need a chunk manifest")
        if not entry.attached:
            raise NotAttached(f"{name}: no attached client to pull from")
        self._claim(entry)
        qps = list(entry.qps)
        trace_id = protocol.trace_of(message)
        started = self.env.now
        new_extents = []  # (digest, extent, mr) reserved this checkpoint
        applied = False
        try:
            store = ChunkStore.ensure(self.pool,
                                      chunk_bytes=entry.meta.chunk_bytes)
            spans = self._dedup_spans(entry)
            if len(manifest) != len(spans):
                raise ProtocolError(
                    f"{name}: manifest carries {len(manifest)} digests, "
                    f"the region has {len(spans)} chunks")
            clients = {c["name"]: c for c in entry.client_tensors}
            flags_before = entry.meta.read_flags()
            was_done = None
            target = None
            try:
                with self.obs.tracer.span(self.env, "ckpt.begin",
                                          cat="ckpt", trace_id=trace_id,
                                          track="daemon", model=name):
                    target = begin_checkpoint(entry.meta)
                was_done = flags_before.states[target] == FLAG_DONE
                old_manifest = (entry.meta.read_manifest(target)
                                if was_done else [])
                counts: Dict[bytes, int] = {}
                for digest in manifest:
                    counts[digest] = counts.get(digest, 0) + 1
                missing = []  # (digest, span), region order, unique
                seen = set()
                for digest, span in zip(manifest, spans):
                    if digest in seen:
                        continue
                    seen.add(digest)
                    if store.lookup(digest) is None:
                        missing.append((digest, span))
                new_set = {digest for digest, _span in missing}
                items = []
                for digest, span in missing:
                    extent = store.alloc_chunk(digest, span.size)
                    mr = yield from self.node.nic.register_mr(extent)
                    new_extents.append((digest, extent, mr))
                    label = digest.hex()[:8]
                    for piece in span.pieces:
                        client = clients[piece.tensor]
                        done = 0
                        while done < piece.length:
                            length = piece.length - done
                            if self.engine_chunk_bytes is not None:
                                length = min(length, self.engine_chunk_bytes)
                            items.append(WorkItem(
                                f"{label}:{piece.tensor}",
                                piece.span_offset + done,
                                client["addr"] + piece.tensor_offset + done,
                                client["rkey"], length, mr=mr))
                            done += length
                pulled = 0
                if items:
                    engine = self._engine(qps, ingest=True,
                                          trace_id=trace_id)
                    try:
                        pulled = yield from engine.pull_items(
                            items, f"pull:{name}")
                    except ReproError:
                        engine.abort()
                        raise
                if self.pool.closed:
                    raise PortusError(
                        f"{name}: server crashed during checkpoint")
                with self.obs.tracer.span(self.env, "ckpt.persist_commit",
                                          cat="ckpt", trace_id=trace_id,
                                          track="daemon", model=name):
                    for _digest, extent, _mr in new_extents:
                        extent.persist()
                    yield self.env.timeout(FLUSH_BARRIER_NS)
                    store.apply(
                        [(digest, extent, counts[digest])
                         for digest, extent, _mr in new_extents],
                        {digest: count for digest, count in counts.items()
                         if digest not in new_set})
                    applied = True
                    entry.meta.write_manifest(target, manifest)
                    commit_checkpoint(entry.meta, target, step)
                if was_done and old_manifest:
                    store.unref(old_manifest)
            except ReproError:
                self._count("checkpoints_aborted")
                if not self.pool.closed and target is not None \
                        and not applied:
                    # The target slot's manifest is untouched and the new
                    # chunks are still private (no ChunkTable entry), so
                    # the slot rolls back clean and the reserved extents
                    # are simply released.
                    abort_checkpoint(entry.meta, target, data_dirty=False)
                    for _digest, extent, mr in new_extents:
                        if mr.valid:
                            self.node.nic.deregister_mr(mr)
                        self.pool.free(extent)
                    new_extents = []
                raise
        finally:
            for _digest, _extent, mr in new_extents:
                if mr.valid:
                    self.node.nic.deregister_mr(mr)
            self._release(entry)
        duration = self.env.now - started
        self.ledger.add("rdma_pull", duration)
        logical = entry.meta.mindex.total_bytes
        chunks_new = len(new_extents)
        chunks_shared = len(manifest) - sum(
            counts[digest] for digest, _e, _m in new_extents)
        self.checkpoints_completed += 1
        self.bytes_pulled += pulled
        self.bytes_logical += logical
        self._count("checkpoints_completed")
        self.obs.metrics.counter("daemon.bytes_pulled").inc(pulled)
        self.obs.metrics.counter("daemon.bytes_logical").inc(logical)
        self.obs.metrics.counter("daemon.chunks_new").inc(chunks_new)
        self.obs.metrics.counter("daemon.chunks_shared").inc(chunks_shared)
        self.obs.metrics.histogram(
            "daemon.checkpoint_latency_ns").record(duration)
        return protocol.reply(protocol.OP_CHECKPOINT_DONE, model=name,
                              step=step, version=target,
                              duration_ns=duration, bytes_pulled=pulled,
                              bytes_logical=logical, chunks_new=chunks_new,
                              chunks_shared=chunks_shared)

    def _copy_clean_tensors(self, entry: ModelEntry, source: int,
                            target: int, descriptors) -> Generator:
        """Incremental mode: complete the new version by copying the
        unchanged tensors from the previous DONE version — a local
        PMem-to-PMem move, no network involved.  Returns the bytes
        actually written into the target region (the abort path's
        data-dirty signal: an interrupt during the simulated move lands
        nothing, so the slot is still clean)."""
        total = sum(d.size for d in descriptors)
        if total == 0:
            return 0
        copier = LocalCopyEngine(self.env, self.pool.device,
                                 chunk_bytes=self.engine_chunk_bytes)
        yield from copier.move(total, label="incremental-local-copy")
        source_region = entry.meta.data_region(source)
        target_region = entry.meta.data_region(target)
        for descriptor in descriptors:
            content = source_region.read(descriptor.offset,
                                         descriptor.size)
            target_region.write(descriptor.offset, content)
        return total

    # -- DO_RESTORE -----------------------------------------------------------------------

    @staticmethod
    def _restore_version(entry: ModelEntry, message: Dict):
        """The version a restore should push: newest DONE by default, or
        the DONE slot at the exact pinned ``step`` (group restores pin
        every member to the committed group step)."""
        pinned = message.get("step")
        if pinned is None:
            return valid_checkpoint(entry.meta)
        return checkpoint_at_step(entry.meta, pinned), pinned

    def _handle_restore(self, message: Dict) -> Generator:
        name = message["model"]
        entry = self._entry(name)
        if entry.meta.dedup:
            return (yield from self._handle_restore_dedup(message, entry))
        if not entry.attached:
            raise NotAttached(f"{name}: no attached client to push to")
        self._claim(entry)
        qps = list(entry.qps)
        trace_id = protocol.trace_of(message)
        started = self.env.now
        try:
            version, step = self._restore_version(entry, message)
            region_mr = entry.version_mrs[version]
            pairs = list(zip(entry.meta.mindex.descriptors,
                             entry.client_tensors))
            engine = self._engine(qps, ingest=False, trace_id=trace_id)
            try:
                pushed = yield from engine.push(region_mr, pairs,
                                                f"push:{name}")
            except ReproError:
                # A restore mutates nothing on PMem; the engine already
                # retired the in-flight WRs on every QP of the stripe
                # set so they cannot write stale bytes into the client
                # after it re-attaches and retries.
                engine.abort()
                self._count("restores_aborted")
                raise
            if self.pool.closed:
                raise PortusError(f"{name}: server crashed during restore")
        finally:
            self._release(entry)
        duration = self.env.now - started
        self.ledger.add("rdma_push", duration)
        self.restores_completed += 1
        self.bytes_pushed += pushed
        self._count("restores_completed")
        self.obs.metrics.counter("daemon.bytes_pushed").inc(pushed)
        self.obs.metrics.histogram(
            "daemon.restore_latency_ns").record(duration)
        return protocol.reply(protocol.OP_RESTORE_DONE, model=name,
                              step=step, version=version,
                              duration_ns=duration, bytes_pushed=pushed)

    def _handle_restore_dedup(self, message: Dict,
                              entry: ModelEntry) -> Generator:
        """Dedup restore: reassemble the newest DONE version from the
        chunk store and push it back — bit-exact, straight from the
        shared extents (ephemeral per-chunk MRs, one stripe set)."""
        from repro.pmem.chunks import ChunkStore

        name = message["model"]
        if not entry.attached:
            raise NotAttached(f"{name}: no attached client to push to")
        self._claim(entry)
        qps = list(entry.qps)
        trace_id = protocol.trace_of(message)
        started = self.env.now
        mrs = []
        try:
            store = ChunkStore.attach(self.pool)
            if store is None:
                raise PortusError(
                    f"{name}: dedup model but the pool has no chunk store")
            version, step = self._restore_version(entry, message)
            manifest = entry.meta.read_manifest(version)
            spans = self._dedup_spans(entry)
            if len(manifest) != len(spans):
                raise PortusError(
                    f"{name}: version {version} manifest carries "
                    f"{len(manifest)} digests, the region has "
                    f"{len(spans)} chunks")
            clients = {c["name"]: c for c in entry.client_tensors}
            mr_by_digest: Dict[bytes, object] = {}
            items = []
            for digest, span in zip(manifest, spans):
                if not span.pieces:
                    continue
                mr = mr_by_digest.get(digest)
                if mr is None:
                    chunk_entry = store.lookup(digest)
                    if chunk_entry is None:
                        raise PortusError(
                            f"{name}: chunk {digest.hex()[:12]} missing "
                            f"from the store")
                    allocation = store.allocation_of(chunk_entry)
                    mr = yield from self.node.nic.register_mr(allocation)
                    mr_by_digest[digest] = mr
                    mrs.append(mr)
                label = digest.hex()[:8]
                for piece in span.pieces:
                    client = clients[piece.tensor]
                    done = 0
                    while done < piece.length:
                        length = piece.length - done
                        if self.engine_chunk_bytes is not None:
                            length = min(length, self.engine_chunk_bytes)
                        items.append(WorkItem(
                            f"{label}:{piece.tensor}",
                            piece.span_offset + done,
                            client["addr"] + piece.tensor_offset + done,
                            client["rkey"], length, mr=mr))
                        done += length
            engine = self._engine(qps, ingest=False, trace_id=trace_id)
            try:
                pushed = yield from engine.push_items(items, f"push:{name}")
            except ReproError:
                # A restore mutates nothing on PMem; flush the stripe set
                # so late WRs cannot land stale bytes post-reattach.
                engine.abort()
                self._count("restores_aborted")
                raise
            if self.pool.closed:
                raise PortusError(f"{name}: server crashed during restore")
        finally:
            for mr in mrs:
                if mr.valid:
                    self.node.nic.deregister_mr(mr)
            self._release(entry)
        duration = self.env.now - started
        self.ledger.add("rdma_push", duration)
        self.restores_completed += 1
        self.bytes_pushed += pushed
        self._count("restores_completed")
        self.obs.metrics.counter("daemon.bytes_pushed").inc(pushed)
        self.obs.metrics.histogram(
            "daemon.restore_latency_ns").record(duration)
        return protocol.reply(protocol.OP_RESTORE_DONE, model=name,
                              step=step, version=version,
                              duration_ns=duration, bytes_pushed=pushed)

    # -- UNREGISTER ------------------------------------------------------------------------

    def _handle_unregister(self, message: Dict) -> Generator:
        name = message["model"]
        entry = self._entry(name)
        self._claim(entry)
        try:
            for version in (0, 1):
                mr = entry.version_mrs[version]
                if mr is not None:
                    self.node.nic.deregister_mr(mr)
            # Remove the ModelTable entry (committed) BEFORE releasing
            # the extents: a crash mid-unregister then only leaks
            # GC-able extents, instead of leaving a table entry that
            # points at freed metadata and wedges the next recovery.
            self.table.remove(name)
            entry.meta.free()
            self.model_map.delete(name)
            if self.tenants is not None and entry.tenant is not None:
                self.tenants.release_bytes(entry.tenant, name)
        finally:
            self._release(entry)
        return protocol.reply(protocol.OP_UNREGISTERED, model=name)
        yield  # pragma: no cover - keeps this a generator

    # -- GROUPS ------------------------------------------------------------------------------

    def _handle_group_register(self, message: Dict) -> Generator:
        """Bind registered member models into one named group.

        The layout is validated (every member must already exist in the
        index) and persisted in the group's commit record at committed
        step 0; re-registering with the identical layout attaches (the
        restart path), a different layout is refused.
        """
        name = message["group"]
        blob = bytes(message["layout"])
        layout = ShardedLayout.unpack(blob)
        for member in layout.members:
            if self.model_map.get(member) is None:
                raise ModelNotFound(
                    f"group {name!r} member {member!r} is not registered")
        record = self.groups.register(name, blob)
        self._count("group_registers")
        return protocol.reply(protocol.OP_GROUP_REGISTERED, group=name,
                              step=record.committed_step,
                              members=len(layout.members))
        yield  # pragma: no cover - generator protocol

    def _handle_group_commit(self, message: Dict) -> Generator:
        """Phase two of a group dump: make *step* visible atomically.

        Refused (typed, nothing written) unless EVERY member holds a
        DONE slot at exactly *step* — the record must never name a step
        a pinned restore cannot serve.  The commit itself is one A/B
        record write; the explicit ``group.ack`` crash hook after it
        covers the persisted-but-unacked window in the crash sweep.
        """
        name = message["group"]
        step = message["step"]
        record = self.groups.lookup(name)
        for member in record.layout().members:
            entry = self.model_map.get(member)
            if entry is None:
                raise GroupCommitRefused(
                    f"group {name!r}: member {member!r} vanished from "
                    f"the index")
            try:
                checkpoint_at_step(entry.meta, step)
            except NoValidCheckpoint:
                raise GroupCommitRefused(
                    f"group {name!r}: member {member!r} has no DONE "
                    f"checkpoint at step {step}") from None
        if step < record.committed_step:
            raise GroupCommitRefused(
                f"group {name!r}: commit of step {step} behind committed "
                f"step {record.committed_step}")
        if step > record.committed_step:
            record.commit(step)
            hook = self.pool.device.crash_hook
            if hook is not None:
                # Crash point: the commit record persisted but the ack
                # never reached the client.
                hook("group.ack", record.allocation.tag)
        self._count("group_commits")
        return protocol.reply(protocol.OP_GROUP_COMMITTED, group=name,
                              step=record.committed_step)
        yield  # pragma: no cover - generator protocol

    def _handle_group_query(self, message: Dict) -> Generator:
        """The group's committed step + persisted layout blob (sized
        like the registration packet: the blob rides the reply)."""
        name = message["group"]
        record = self.groups.lookup(name)
        reply = {"op": protocol.OP_GROUP_INFO, "group": name,
                 "step": record.committed_step,
                 "layout": record.layout_blob}
        return reply, 64 + len(record.layout_blob)
        yield  # pragma: no cover - generator protocol

    # -- HEARTBEAT ---------------------------------------------------------------------------

    def _handle_heartbeat(self, message: Dict) -> Generator:
        """Lease renewal (the touch already happened in dispatch; this
        also validates that the model is still known).  The ack carries
        the daemon health block — pool utilization, inflight/lease
        counts, fault counters — so every heartbeating client (and the
        remediation operator) samples health for free."""
        name = message["model"]
        entry = self._entry(name)
        entry.last_seen_ns = self.env.now
        return protocol.heartbeat_ack(name, entry.attached,
                                      health=self.health_snapshot())
        yield  # pragma: no cover - generator protocol

    # -- health ------------------------------------------------------------------------

    def health_snapshot(self) -> Dict:
        """One machine-readable health sample (what heartbeat acks carry).

        Pure observation: reads DRAM state and monotonic counters, never
        touches the simulation clock, so sampling health is zero-cost in
        simulated time.  The :mod:`repro.ops.health` classifier turns a
        pair of these (current + previous) into a health state.
        """
        inflight_ages = [
            self.env.now - entry.inflight_since_ns
            for _name, entry in self.model_map.items()
            if entry.busy and entry.inflight_since_ns is not None
        ]
        attached = sum(1 for _name, entry in self.model_map.items()
                       if entry.attached)
        if self.pool.closed:
            used = capacity = 0
        else:
            used = self.pool.used_bytes
            capacity = used + self.pool.free_bytes
        metrics = self.obs.metrics
        scope = self._scope
        sample = {
            "time_ns": self.env.now,
            "up": self._started and not self.stopped,
            "port": self.port,
            "shard": self.node.name,
            "models": len(self.model_map.keys()),
            "attached": attached,
            "inflight": len(inflight_ages),
            "oldest_inflight_age_ns": max(inflight_ages, default=0),
            "pool": {
                "closed": self.pool.closed,
                "used_bytes": used,
                "capacity_bytes": capacity,
                "utilization": used / capacity if capacity else 0.0,
            },
            # Monotonic *per-shard* counters (the shared obs registry
            # survives daemon restarts, so deltas stay meaningful across
            # a crash/restart boundary; the ``daemon.<node>.`` scope
            # keeps sibling shards' faults out of this shard's deltas).
            "counters": {
                "requests": metrics.sum_counters(f"{scope}requests."),
                "errors": metrics.sum_counters(f"{scope}errors."),
                "slow_requests": metrics.value(f"{scope}slow_requests"),
                "checkpoints_completed": metrics.value(
                    f"{scope}checkpoints_completed"),
                "checkpoints_aborted": metrics.value(
                    f"{scope}checkpoints_aborted"),
                "restores_completed": metrics.value(
                    f"{scope}restores_completed"),
                "restores_aborted": metrics.value(
                    f"{scope}restores_aborted"),
                "dropped_replies": metrics.value(
                    f"{scope}dropped_replies"),
                "reaped_sessions": metrics.value(
                    f"{scope}reaped_sessions"),
            },
        }
        if self.admission is not None:
            sample["admission"] = self.admission.snapshot()
        return sample

    # -- LIST ------------------------------------------------------------------------------

    def _handle_list(self, message: Dict) -> Generator:
        """Network-facing inventory (what portusctl shows offline)."""
        from repro.core.index import FLAG_NAMES

        rows = []
        for name, entry in self.model_map.items():
            flags = entry.meta.read_flags()
            rows.append({
                "model": name,
                "layers": entry.meta.mindex.layer_count,
                "bytes": entry.meta.mindex.total_bytes,
                "attached": entry.attached,
                "versions": [
                    {"state": FLAG_NAMES[flags.states[i]],
                     "step": flags.steps[i]} for i in (0, 1)
                ],
            })
        return protocol.reply(protocol.OP_LIST_REPLY, models=rows)
        yield  # pragma: no cover - generator protocol

    # -- introspection ----------------------------------------------------------------------

    def models(self) -> List[str]:
        return self.model_map.keys()

"""Content-hash chunking shared by client and daemon.

A dedup model's TensorData region is cut into fixed-size *chunks*
(the last one short).  A chunk's bytes are the region bytes it covers:
tensor slices where tensors overlap it, zeros in the alignment gaps
between tensors.  Both sides derive the same spans from the same
descriptor list (:func:`~repro.core.index.layout_tensors` output), so a
digest computed by the client over its GPU-resident tensor contents
identifies exactly the bytes the daemon would land in the chunk extent.

The digest is a SHA-1 over the chunk content's canonical
:meth:`~repro.hw.content.Content.fingerprint` — exact content identity
without materializing multi-GB tensors (the same property
``PatternContent`` gives equality checks).  Canonicalization
(:func:`repro.hw.content.concat`) guarantees two identical byte strings
built from different slice lists fingerprint identically.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List

from repro.hw.content import Content, ZeroContent, concat


class ChunkPiece:
    """One tensor's overlap with a chunk."""

    __slots__ = ("tensor", "tensor_offset", "span_offset", "length")

    def __init__(self, tensor: str, tensor_offset: int, span_offset: int,
                 length: int) -> None:
        self.tensor = tensor
        self.tensor_offset = tensor_offset
        self.span_offset = span_offset
        self.length = length

    def __repr__(self) -> str:
        return f"<ChunkPiece {self.tensor}+{self.tensor_offset} " \
               f"-> +{self.span_offset} len={self.length}>"


class ChunkSpan:
    """One chunk of the region: its extent and the tensor pieces in it."""

    __slots__ = ("index", "start", "size", "pieces")

    def __init__(self, index: int, start: int, size: int,
                 pieces: List[ChunkPiece]) -> None:
        self.index = index
        self.start = start
        self.size = size
        self.pieces = pieces

    def __repr__(self) -> str:
        return f"<ChunkSpan #{self.index} [{self.start}, " \
               f"{self.start + self.size}) pieces={len(self.pieces)}>"


def chunk_spans(descriptors, region_size: int,
                chunk_bytes: int) -> List[ChunkSpan]:
    """Cut a laid-out region into chunk spans with tensor overlaps."""
    if chunk_bytes <= 0:
        raise ValueError(f"bad chunk size {chunk_bytes}")
    spans: List[ChunkSpan] = []
    count = (region_size + chunk_bytes - 1) // chunk_bytes
    for index in range(count):
        start = index * chunk_bytes
        size = min(chunk_bytes, region_size - start)
        spans.append(ChunkSpan(index, start, size, []))
    for descriptor in descriptors:
        t_start = descriptor.offset
        t_end = descriptor.offset + descriptor.size
        if descriptor.size == 0:
            continue
        for index in range(t_start // chunk_bytes,
                           (t_end - 1) // chunk_bytes + 1):
            span = spans[index]
            lo = max(t_start, span.start)
            hi = min(t_end, span.start + span.size)
            span.pieces.append(ChunkPiece(
                descriptor.name, lo - t_start, lo - span.start, hi - lo))
    return spans


def chunk_content(span: ChunkSpan,
                  contents: Dict[str, Content]) -> Content:
    """The canonical bytes of *span*: tensor slices plus zero gaps."""
    parts: List[Content] = []
    cursor = 0
    for piece in span.pieces:
        if piece.span_offset > cursor:
            parts.append(ZeroContent(piece.span_offset - cursor))
        parts.append(contents[piece.tensor].slice(piece.tensor_offset,
                                                  piece.length))
        cursor = piece.span_offset + piece.length
    if cursor < span.size:
        parts.append(ZeroContent(span.size - cursor))
    return concat(parts)


def chunk_digest(content: Content) -> bytes:
    """20-byte identity of a chunk's canonical content."""
    return hashlib.sha1(repr(content.fingerprint()).encode()).digest()


def manifest_digests(spans: List[ChunkSpan],
                     contents: Dict[str, Content]) -> List[bytes]:
    """One digest per chunk, in region order — the checkpoint manifest."""
    return [chunk_digest(chunk_content(span, contents)) for span in spans]

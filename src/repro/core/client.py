"""Portus Client: the framework-extension side (what the PyTorch plugin
does in the real system).

For each model (or model shard) the client:

1. registers every tensor's GPU memory as an RDMA MR through PeerMem
   (tensor addresses are fixed for the life of the job, §III-C);
2. connects a QP to the daemon and ships the model-description packet —
   per-layer name/dtype/shape/size plus rkey and GPU address — over TCP;
3. thereafter checkpoints by sending the word DO_CHECKPOINT and waiting
   for the daemon's completion notification, and restores by sending
   DO_RESTORE into a freshly constructed "empty" model.

The returned :class:`ModelSession` is the user-facing handle; one session
per shard, many sessions per client (multi-tenant / multi-GPU).
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional

from repro.core import protocol
from repro.core.daemon import PortusDaemon
from repro.dnn.tensor import ModelInstance
from repro.errors import PortusError, ProtocolError
from repro.hw.node import Node
from repro.net.tcp import TcpStack
from repro.rdma.verbs import connect
from repro.sim import Environment


class ModelSession:
    """A registered model's handle: checkpoint / restore / unregister."""

    def __init__(self, client: "PortusClient", model: ModelInstance,
                 conn, qp, mrs: List) -> None:
        self.client = client
        self.model = model
        self.conn = conn
        self.qp = qp
        self.mrs = mrs
        self.checkpoints = 0
        self.last_checkpoint_ns: Optional[int] = None

    def checkpoint(self, step: Optional[int] = None,
                   dirty: Optional[List[str]] = None) -> Generator:
        """Process: one checkpoint; returns the daemon's reply.

        With *dirty* (a list of tensor names) only those tensors are
        pulled over RDMA; the daemon fills the rest of the new version by
        copying from the previous one locally on PMem — incremental
        checkpointing for fine-tuning-style workloads where most
        parameters are frozen.
        """
        if step is None:
            step = self.model.step
        message, size = protocol.do_checkpoint(self.model.name, step,
                                               dirty=dirty)
        yield from self.conn.send(message, wire_size=size)
        reply = yield from self.conn.recv()
        self._check(reply, protocol.OP_CHECKPOINT_DONE)
        self.checkpoints += 1
        self.last_checkpoint_ns = reply["duration_ns"]
        return reply

    def restore(self) -> Generator:
        """Process: pull the newest valid checkpoint into the model.

        Returns the restored step; the model's tensors now physically
        hold the checkpointed bytes (the daemon RDMA-wrote them).
        """
        message, size = protocol.do_restore(self.model.name)
        yield from self.conn.send(message, wire_size=size)
        reply = yield from self.conn.recv()
        self._check(reply, protocol.OP_RESTORE_DONE)
        step = reply["step"]
        self.model.step = step
        for tensor in self.model.tensors:
            tensor.step = step
        return step

    def unregister(self) -> Generator:
        """Process: drop the model from the daemon and free its PMem."""
        message, size = protocol.unregister(self.model.name)
        yield from self.conn.send(message, wire_size=size)
        reply = yield from self.conn.recv()
        self._check(reply, protocol.OP_UNREGISTERED)
        self.conn.close()

    @staticmethod
    def _check(reply: Dict, expected_op: str) -> None:
        if reply.get("op") == protocol.OP_ERROR:
            raise reply["error"]
        if reply.get("op") != expected_op:
            raise ProtocolError(
                f"expected {expected_op}, got {reply.get('op')!r}")


class PortusClient:
    """Per-node client; opens one session per registered model."""

    def __init__(self, env: Environment, node: Node, tcp: TcpStack,
                 daemon: PortusDaemon) -> None:
        if node.nic is None:
            raise PortusError(f"{node.name} has no RNIC")
        self.env = env
        self.node = node
        self.tcp = tcp
        self.daemon = daemon
        self.sessions: List[ModelSession] = []

    def register(self, model: ModelInstance) -> Generator:
        """Process: register *model* (or attach to its persisted index).

        Registers one MR per tensor (PeerMem must be enabled for the GPU
        by the cluster setup), connects a dedicated QP, and sends the
        description packet.
        """
        mrs = []
        tensor_infos = []
        for tensor in model.tensors:
            mr = yield from self.node.nic.register_mr(tensor.allocation)
            mrs.append(mr)
            tensor_infos.append({
                "name": tensor.spec.name,
                "dtype": tensor.spec.dtype.name,
                "shape": list(tensor.spec.shape),
                "size": tensor.size_bytes,
                "rkey": mr.rkey,
                "addr": mr.addr,
            })
        client_qp, server_qp = yield from connect(
            self.env, self.node.nic, self.daemon.node.nic)
        conn = yield from self.tcp.connect(self.daemon.tcp.hostname,
                                           self.daemon.port)
        message, size = protocol.register(model.name, tensor_infos,
                                          server_qp)
        yield from conn.send(message, wire_size=size)
        reply = yield from conn.recv()
        ModelSession._check(reply, protocol.OP_REGISTERED)
        session = ModelSession(self, model, conn, client_qp, mrs)
        self.sessions.append(session)
        return session

    def list_models(self) -> Generator:
        """Process: ask the daemon for its model inventory."""
        conn = yield from self.tcp.connect(self.daemon.tcp.hostname,
                                           self.daemon.port)
        message, size = protocol.list_models()
        yield from conn.send(message, wire_size=size)
        reply = yield from conn.recv()
        ModelSession._check(reply, protocol.OP_LIST_REPLY)
        conn.close()
        return reply["models"]

"""Portus Client: the framework-extension side (what the PyTorch plugin
does in the real system).

For each model (or model shard) the client:

1. registers every tensor's GPU memory as an RDMA MR through PeerMem
   (tensor addresses are fixed for the life of the job, §III-C);
2. connects a QP to the daemon and ships the model-description packet —
   per-layer name/dtype/shape/size plus rkey and GPU address — over TCP;
3. thereafter checkpoints by sending the word DO_CHECKPOINT and waiting
   for the daemon's completion notification, and restores by sending
   DO_RESTORE into a freshly constructed "empty" model.

The returned :class:`ModelSession` is the user-facing handle; one session
per shard, many sessions per client (multi-tenant / multi-GPU).

Fault tolerance: every request is stamped with a request id and the
reply matched against it (replies can arrive out of order — the daemon
dispatches each request on its own worker).  When the client carries a
:class:`~repro.core.retry.RetryPolicy`, transport faults (connection
drops, link flaps, QP/WR errors, reply timeouts, a restarting daemon)
tear the session transport down and transparently re-attach — new QP,
new TCP connection, re-sent REGISTER against the persisted index; the
GPU-side MRs are registered once per job and reused across re-attaches,
exactly as the fixed tensor addresses of §III-C allow.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

from repro.core import protocol
from repro.core.daemon import PortusDaemon
from repro.core.retry import RETRYABLE_FAULTS, RetryPolicy
from repro.dnn.tensor import ModelInstance
from repro.errors import (PortusError, ProtocolError, ReproError,
                          RequestTimeout)
from repro.hw.node import Node
from repro.net.tcp import TcpStack
from repro.obs import Observability
from repro.rdma.verbs import connect
from repro.sim import AnyOf, Environment

MessageFactory = Callable[[], Tuple[Dict[str, Any], int]]


class ModelSession:
    """A registered model's handle: checkpoint / restore / unregister."""

    def __init__(self, client: "PortusClient", model: ModelInstance,
                 conn, qp, mrs: List,
                 tensor_infos: Optional[List[Dict[str, Any]]] = None,
                 retry: Optional[RetryPolicy] = None,
                 num_qps: int = 1,
                 dedup_chunk_bytes: Optional[int] = None,
                 tenant: Optional[str] = None) -> None:
        if num_qps < 1:
            raise PortusError(f"num_qps must be >= 1, got {num_qps}")
        self.client = client
        self.model = model
        #: Owning tenant (fleet accounting), re-sent on every attach so
        #: a restarted daemon re-learns the model's owner.
        self.tenant = tenant
        self.conn = conn
        #: The stripe set: ``num_qps`` QPs are (re)connected per attach
        #: and the daemon stripes each checkpoint/restore across them.
        self.num_qps = num_qps
        self.qps: List = [qp] if qp is not None else []
        self.mrs = mrs
        self.tensor_infos = tensor_infos
        self.retry = retry
        #: Dedup mode: checkpoints carry a chunk manifest computed over
        #: this fixed chunk size; None = the classic contiguous layout.
        self.dedup_chunk_bytes = dedup_chunk_bytes
        self._chunk_spans = None
        self._manifest_cache: Optional[List[bytes]] = None
        self.checkpoints = 0
        self.last_checkpoint_ns: Optional[int] = None
        self.retries = 0
        self.reattaches = 0
        self._rid = 0
        self._pending: Dict[int, Dict] = {}
        # Reply-pump state: one process drains the connection at a time;
        # the others wait to be woken when their rid lands in _pending.
        self._pump_busy = False
        self._waiters: List = []
        self._reattach_gate = None

    @property
    def qp(self):
        """The primary QP (compatibility view of the stripe set)."""
        return self.qps[0] if self.qps else None

    # -- request/reply plumbing ---------------------------------------------------

    def _rpc(self, message: Dict, size: int) -> Generator:
        """Process: send one request and wait for its matching reply.

        Replies are matched by request id, so a stale reply (from an
        attempt whose timeout already fired) can never be mistaken for
        the current one.  With a retry policy, waiting is bounded by the
        policy's reply timeout.
        """
        self._rid += 1
        rid = self._rid
        message["rid"] = rid
        conn = self.conn
        yield from conn.send(message, wire_size=size)
        timeout_ns = self.retry.reply_timeout_ns if self.retry else None
        if timeout_ns is None:
            return (yield from self._recv_rid(conn, rid))
        env = self.client.env
        receiver = env.process(self._recv_outcome(conn, rid),
                               name=f"recv:{self.model.name}:{rid}")
        yield AnyOf(env, [receiver, env.timeout(timeout_ns)])
        if not receiver.triggered:
            receiver.interrupt("reply timeout")
            yield receiver  # let the interrupt land; outcome is ("err", ...)
            raise RequestTimeout(
                f"{self.model.name}: no reply to rid {rid} "
                f"within {timeout_ns} ns")
        kind, value = receiver.value
        if kind == "err":
            raise value
        return value

    def _recv_outcome(self, conn, rid: int) -> Generator:
        """Process: recv that never fails (outcome returned as a tag)."""
        try:
            reply = yield from self._recv_rid(conn, rid)
        except ReproError as exc:
            return ("err", exc)
        return ("ok", reply)

    def _recv_rid(self, conn, rid: int) -> Generator:
        """Process: wait for the reply carrying *rid*.

        Replies for other rids are stashed in ``_pending`` and their
        waiters woken — several requests (e.g. a checkpoint and a
        heartbeat) can be outstanding on one connection, and their
        replies arrive in completion order, not issue order.
        """
        env = self.client.env
        while True:
            if rid in self._pending:
                return self._pending.pop(rid)
            if self._pump_busy:
                # Someone else is draining the connection; wait for a
                # wake-up and re-check the stash.
                waiter = env.event()
                self._waiters.append(waiter)
                yield waiter
                continue
            self._pump_busy = True
            try:
                reply = yield from conn.recv()
            except BaseException:
                # Connection failure (or an interrupt): release the pump
                # so every waiter observes the failure for itself.
                self._pump_busy = False
                self._wake_waiters()
                raise
            self._pump_busy = False
            got = reply.get("rid")
            if got is None or got == rid:
                self._wake_waiters()
                return reply
            self._pending[got] = reply
            self._wake_waiters()

    def _wake_waiters(self) -> None:
        waiters, self._waiters = self._waiters, []
        for waiter in waiters:
            waiter.succeed(None)

    def _call(self, make_message: MessageFactory,
              expected_op: str) -> Generator:
        """Process: one request with the session's retry policy applied.

        Every call gets a fresh trace id (the root of the request's span
        tree) stamped onto each attempt's message, so daemon and engine
        child spans across retries group under one trace.
        """
        policy = self.retry
        env = self.client.env
        obs = self.client.obs
        trace_id = obs.tracer.new_trace()
        start = env.now
        track = f"client/{self.model.name}"
        probe, _ = make_message()
        op = probe.get("op")
        obs.metrics.counter(f"client.requests.{op}").inc()
        span = obs.tracer.span(env, f"client.{op}", cat="client",
                               trace_id=trace_id, track=track)
        attempt = 0
        failed = True
        try:
            if policy is None:
                message, size = make_message()
                protocol.stamp_trace(message, trace_id)
                reply = yield from self._rpc(message, size)
                self._check(reply, expected_op)
                failed = False
                return reply
            while True:
                try:
                    yield from self._ensure_attached()
                    message, size = make_message()
                    protocol.stamp_trace(message, trace_id)
                    reply = yield from self._rpc(message, size)
                    self._check(reply, expected_op)
                    failed = False
                    return reply
                except RETRYABLE_FAULTS as exc:
                    attempt += 1
                    self.retries += 1
                    obs.metrics.counter("client.retries").inc()
                    obs.metrics.counter(
                        f"client.faults_absorbed.{type(exc).__name__}").inc()
                    if policy.is_transport_fault(exc):
                        self._teardown_transport()
                    if policy.exhausted(attempt, env.now - start):
                        raise
                    # Admission rejects carry the daemon's deterministic
                    # retry-after hint; honor it over our own backoff.
                    retry_after = getattr(exc, "retry_after_ns", None)
                    yield env.timeout(retry_after if retry_after
                                      else policy.backoff_ns(attempt))
        finally:
            span.finish(error=failed, attempts=attempt + 1)
            if not failed:
                obs.metrics.histogram(
                    f"client.e2e.{op}_ns").record(env.now - start)

    # -- transport lifecycle ------------------------------------------------------

    def _teardown_transport(self) -> None:
        """Forget the (broken) QP + connection; next attempt re-attaches."""
        if self.conn is not None and not self.conn.closed:
            self.conn.close()
        self.conn = None
        for qp in self.qps:
            if qp.error is None:
                qp.transition_to_error("client tore the session down")
        self.qps = []
        self._pending.clear()
        self._wake_waiters()

    def _ensure_attached(self) -> Generator:
        """Process: re-attach if needed, once — concurrent callers (a
        checkpoint and a heartbeat both hitting the same dead transport)
        serialize on a gate instead of racing duplicate REGISTERs."""
        while self.conn is None or self.conn.closed:
            if self._reattach_gate is not None:
                yield self._reattach_gate
                continue
            self._reattach_gate = self.client.env.event()
            try:
                yield from self._reattach()
            finally:
                gate, self._reattach_gate = self._reattach_gate, None
                gate.succeed(None)

    def _reattach(self) -> Generator:
        """Process: rebuild the transport and re-send REGISTER.

        The daemon side validates the attach against the persisted index
        and re-arms the entry with the new QP; the client-side tensor MRs
        (registered once per job) are reused as-is.
        """
        client = self.client
        obs = client.obs
        with obs.tracer.span(client.env, "client.reattach", cat="client",
                             track=f"client/{self.model.name}"):
            client_qps = []
            server_qps = []
            for _lane in range(self.num_qps):
                client_qp, server_qp = yield from connect(
                    client.env, client.node.nic, client.daemon.node.nic)
                client_qps.append(client_qp)
                server_qps.append(server_qp)
            conn = yield from client.tcp.connect(client.daemon.tcp.hostname,
                                                 client.daemon.port)
            self.conn = conn
            self.qps = client_qps
            self._pending.clear()
            dedup = None
            if self.dedup_chunk_bytes is not None:
                dedup = {"chunk_bytes": self.dedup_chunk_bytes}
            message, size = protocol.register(self.model.name,
                                              self.tensor_infos, server_qps,
                                              dedup=dedup,
                                              tenant=self.tenant)
            reply = yield from self._rpc(message, size)
            self._check(reply, protocol.OP_REGISTERED)
        self.reattaches += 1
        obs.metrics.counter("client.reattaches").inc()

    # -- dedup manifest -----------------------------------------------------------

    def _spans(self):
        """Chunk spans over the model's laid-out region (computed once:
        tensor addresses and shapes are fixed for the life of the job)."""
        if self._chunk_spans is None:
            from repro.core.dedup import chunk_spans
            from repro.core.index import layout_tensors

            descriptors, region_size = layout_tensors(
                [tensor.spec for tensor in self.model.tensors])
            self._chunk_spans = chunk_spans(descriptors, region_size,
                                            self.dedup_chunk_bytes)
        return self._chunk_spans

    def compute_manifest(self) -> List[bytes]:
        """The chunk-digest manifest of the model's current bytes.

        Per-tensor dirty tracking bounds the hashing work: only chunks
        overlapping a tensor written since the last acked checkpoint are
        re-digested; the rest come from the cached previous manifest.
        """
        from repro.core.dedup import (chunk_content, chunk_digest,
                                      manifest_digests)

        spans = self._spans()
        contents = {tensor.name: tensor.content()
                    for tensor in self.model.tensors}
        if self._manifest_cache is None:
            return manifest_digests(spans, contents)
        manifest = list(self._manifest_cache)
        dirty = {tensor.name for tensor in self.model.tensors
                 if tensor.dirty}
        for span in spans:
            if any(piece.tensor in dirty for piece in span.pieces):
                manifest[span.index] = chunk_digest(
                    chunk_content(span, contents))
        return manifest

    # -- operations ---------------------------------------------------------------

    def checkpoint(self, step: Optional[int] = None,
                   dirty: Optional[List[str]] = None) -> Generator:
        """Process: one checkpoint; returns the daemon's reply.

        With *dirty* (a list of tensor names) only those tensors are
        pulled over RDMA; the daemon fills the rest of the new version by
        copying from the previous one locally on PMem — incremental
        checkpointing for fine-tuning-style workloads where most
        parameters are frozen.

        Dedup sessions instead ship a chunk manifest (digests over the
        whole region, recomputed only where the dirty flags say bytes
        changed); the daemon pulls just the chunks its store is missing.
        """
        if step is None:
            step = self.model.step
        manifest = None
        if self.dedup_chunk_bytes is not None:
            manifest = self.compute_manifest()
        reply = yield from self._call(
            lambda: protocol.do_checkpoint(self.model.name, step,
                                           dirty=dirty, manifest=manifest),
            protocol.OP_CHECKPOINT_DONE)
        self.checkpoints += 1
        self.last_checkpoint_ns = reply["duration_ns"]
        if manifest is not None:
            # Acked: the daemon holds these exact bytes, so the manifest
            # is now the valid delta baseline.
            self._manifest_cache = manifest
            self.model.clear_dirty()
        return reply

    def restore(self, step: Optional[int] = None) -> Generator:
        """Process: pull the newest valid checkpoint into the model.

        With *step* the restore is pinned to that exact committed step
        (group restores pin every member to the group's committed step,
        which is what keeps a torn dump from surfacing as a mixed-step
        model); ``None`` keeps the newest-DONE behaviour.

        Returns the restored step; the model's tensors now physically
        hold the checkpointed bytes (the daemon RDMA-wrote them).
        """
        reply = yield from self._call(
            lambda: protocol.do_restore(self.model.name, step=step),
            protocol.OP_RESTORE_DONE)
        step = reply["step"]
        self.model.step = step
        for tensor in self.model.tensors:
            tensor.step = step
        return step

    def heartbeat(self) -> Generator:
        """Process: renew the daemon-side lease for this session."""
        return (yield from self._call(
            lambda: protocol.heartbeat(self.model.name),
            protocol.OP_HEARTBEAT_ACK))

    def unregister(self) -> Generator:
        """Process: drop the model from the daemon and free its PMem.

        Also releases the client-side resources: the per-tensor MRs are
        deregistered and the session is removed from the client's session
        list, so register/unregister churn (multi-tenant jobs) does not
        leak MR table entries or handles.
        """
        yield from self._call(
            lambda: protocol.unregister(self.model.name),
            protocol.OP_UNREGISTERED)
        if self.conn is not None:
            self.conn.close()
        for mr in self.mrs:
            if mr.valid:
                self.client.node.nic.deregister_mr(mr)
        self.mrs = []
        if self in self.client.sessions:
            self.client.sessions.remove(self)

    @staticmethod
    def _check(reply: Dict, expected_op: str) -> None:
        if reply.get("op") == protocol.OP_ERROR:
            raise reply["error"]
        if reply.get("op") != expected_op:
            raise ProtocolError(
                f"expected {expected_op}, got {reply.get('op')!r}")


class PortusClient:
    """Per-node client; opens one session per registered model."""

    def __init__(self, env: Environment, node: Node, tcp: TcpStack,
                 daemon: PortusDaemon,
                 retry: Optional[RetryPolicy] = None,
                 num_qps: int = 1,
                 obs: Optional[Observability] = None) -> None:
        if node.nic is None:
            raise PortusError(f"{node.name} has no RNIC")
        self.env = env
        self.node = node
        self.tcp = tcp
        self.daemon = daemon
        self.retry = retry
        self.num_qps = num_qps
        # Share the daemon's bundle by default so one registry/trace
        # covers the whole deployment end to end.
        self.obs = obs if obs is not None else daemon.obs
        self.sessions: List[ModelSession] = []

    def register(self, model: ModelInstance, dedup: bool = False,
                 chunk_bytes: Optional[int] = None,
                 tenant: Optional[str] = None) -> Generator:
        """Process: register *model* (or attach to its persisted index).

        Registers one MR per tensor (PeerMem must be enabled for the GPU
        by the cluster setup), connects a dedicated QP, and sends the
        description packet.  With a retry policy the attach itself rides
        the same backoff loop as every other request (the daemon may be
        restarting at registration time).

        With ``dedup=True`` the model uses the deduplicated layout:
        checkpoints ship content-hash chunk manifests and the daemon
        stores bytes once in the pool-wide refcounted chunk store
        (*chunk_bytes* overrides the default chunk size).
        """
        dedup_chunk_bytes = None
        if dedup:
            if chunk_bytes is None:
                from repro.pmem.chunks import DEFAULT_CHUNK_BYTES
                chunk_bytes = DEFAULT_CHUNK_BYTES
            dedup_chunk_bytes = int(chunk_bytes)
        elif chunk_bytes is not None:
            raise PortusError("chunk_bytes requires dedup=True")
        mrs = []
        tensor_infos = []
        for tensor in model.tensors:
            mr = yield from self.node.nic.register_mr(tensor.allocation)
            mrs.append(mr)
            tensor_infos.append({
                "name": tensor.spec.name,
                "dtype": tensor.spec.dtype.name,
                "shape": list(tensor.spec.shape),
                "size": tensor.size_bytes,
                "rkey": mr.rkey,
                "addr": mr.addr,
            })
        session = ModelSession(self, model, None, None, mrs,
                               tensor_infos=tensor_infos, retry=self.retry,
                               num_qps=self.num_qps,
                               dedup_chunk_bytes=dedup_chunk_bytes,
                               tenant=tenant)
        policy = self.retry
        start = self.env.now
        attempt = 0
        while True:
            try:
                yield from session._reattach()
                break
            except RETRYABLE_FAULTS as exc:
                attempt += 1
                session.retries += 1
                session._teardown_transport()
                if policy is None or policy.exhausted(
                        attempt, self.env.now - start):
                    raise
                retry_after = getattr(exc, "retry_after_ns", None)
                yield self.env.timeout(retry_after if retry_after
                                       else policy.backoff_ns(attempt))
        session.reattaches = 0  # the first attach is not a re-attach
        self.sessions.append(session)
        return session

    def list_models(self) -> Generator:
        """Process: ask the daemon for its model inventory."""
        conn = yield from self.tcp.connect(self.daemon.tcp.hostname,
                                           self.daemon.port)
        message, size = protocol.list_models()
        yield from conn.send(message, wire_size=size)
        reply = yield from conn.recv()
        ModelSession._check(reply, protocol.OP_LIST_REPLY)
        conn.close()
        return reply["models"]

"""ModelMap: the daemon's in-DRAM red-black tree over model names.

The paper keeps the persistent ModelTable as a sorted array on PMem and
mirrors it into a red-black tree in main memory for O(log n) lookups
(Fig. 4).  This is a textbook left-leaning-free CLRS red-black tree with
insert, delete, exact lookup, and sorted iteration; values are opaque
(the daemon stores its per-model entry objects).
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Tuple

RED = True
BLACK = False


class _Node:
    __slots__ = ("key", "value", "color", "left", "right", "parent")

    def __init__(self, key: str, value: Any, color: bool,
                 nil: "_Node") -> None:
        self.key = key
        self.value = value
        self.color = color
        self.left = nil
        self.right = nil
        self.parent = nil


class ModelMap:
    """Ordered map: model name -> daemon entry."""

    def __init__(self) -> None:
        self._nil = _Node("", None, BLACK, None)  # type: ignore[arg-type]
        self._nil.left = self._nil.right = self._nil.parent = self._nil
        self._root = self._nil
        self._count = 0

    def __len__(self) -> int:
        return self._count

    def __contains__(self, key: str) -> bool:
        return self._find(key) is not None

    # -- lookup -----------------------------------------------------------------

    def _find(self, key: str) -> Optional[_Node]:
        node = self._root
        while node is not self._nil:
            if key == node.key:
                return node
            node = node.left if key < node.key else node.right
        return None

    def get(self, key: str, default: Any = None) -> Any:
        node = self._find(key)
        return default if node is None else node.value

    def __getitem__(self, key: str) -> Any:
        node = self._find(key)
        if node is None:
            raise KeyError(key)
        return node.value

    # -- insert ------------------------------------------------------------------

    def insert(self, key: str, value: Any) -> None:
        """Insert or replace."""
        parent = self._nil
        node = self._root
        while node is not self._nil:
            parent = node
            if key == node.key:
                node.value = value
                return
            node = node.left if key < node.key else node.right
        fresh = _Node(key, value, RED, self._nil)
        fresh.parent = parent
        if parent is self._nil:
            self._root = fresh
        elif key < parent.key:
            parent.left = fresh
        else:
            parent.right = fresh
        self._count += 1
        self._insert_fixup(fresh)

    def _rotate_left(self, x: _Node) -> None:
        y = x.right
        x.right = y.left
        if y.left is not self._nil:
            y.left.parent = x
        y.parent = x.parent
        if x.parent is self._nil:
            self._root = y
        elif x is x.parent.left:
            x.parent.left = y
        else:
            x.parent.right = y
        y.left = x
        x.parent = y

    def _rotate_right(self, x: _Node) -> None:
        y = x.left
        x.left = y.right
        if y.right is not self._nil:
            y.right.parent = x
        y.parent = x.parent
        if x.parent is self._nil:
            self._root = y
        elif x is x.parent.right:
            x.parent.right = y
        else:
            x.parent.left = y
        y.right = x
        x.parent = y

    def _insert_fixup(self, z: _Node) -> None:
        while z.parent.color is RED:
            grand = z.parent.parent
            if z.parent is grand.left:
                uncle = grand.right
                if uncle.color is RED:
                    z.parent.color = BLACK
                    uncle.color = BLACK
                    grand.color = RED
                    z = grand
                else:
                    if z is z.parent.right:
                        z = z.parent
                        self._rotate_left(z)
                    z.parent.color = BLACK
                    z.parent.parent.color = RED
                    self._rotate_right(z.parent.parent)
            else:
                uncle = grand.left
                if uncle.color is RED:
                    z.parent.color = BLACK
                    uncle.color = BLACK
                    grand.color = RED
                    z = grand
                else:
                    if z is z.parent.left:
                        z = z.parent
                        self._rotate_right(z)
                    z.parent.color = BLACK
                    z.parent.parent.color = RED
                    self._rotate_left(z.parent.parent)
        self._root.color = BLACK

    # -- delete --------------------------------------------------------------------

    def delete(self, key: str) -> Any:
        """Remove and return the value; KeyError if absent."""
        z = self._find(key)
        if z is None:
            raise KeyError(key)
        value = z.value
        self._count -= 1
        y = z
        y_color = y.color
        if z.left is self._nil:
            x = z.right
            self._transplant(z, z.right)
        elif z.right is self._nil:
            x = z.left
            self._transplant(z, z.left)
        else:
            y = self._minimum(z.right)
            y_color = y.color
            x = y.right
            if y.parent is z:
                x.parent = y
            else:
                self._transplant(y, y.right)
                y.right = z.right
                y.right.parent = y
            self._transplant(z, y)
            y.left = z.left
            y.left.parent = y
            y.color = z.color
        if y_color is BLACK:
            self._delete_fixup(x)
        return value

    def _transplant(self, u: _Node, v: _Node) -> None:
        if u.parent is self._nil:
            self._root = v
        elif u is u.parent.left:
            u.parent.left = v
        else:
            u.parent.right = v
        v.parent = u.parent

    def _minimum(self, node: _Node) -> _Node:
        while node.left is not self._nil:
            node = node.left
        return node

    def _delete_fixup(self, x: _Node) -> None:
        while x is not self._root and x.color is BLACK:
            if x is x.parent.left:
                w = x.parent.right
                if w.color is RED:
                    w.color = BLACK
                    x.parent.color = RED
                    self._rotate_left(x.parent)
                    w = x.parent.right
                if w.left.color is BLACK and w.right.color is BLACK:
                    w.color = RED
                    x = x.parent
                else:
                    if w.right.color is BLACK:
                        w.left.color = BLACK
                        w.color = RED
                        self._rotate_right(w)
                        w = x.parent.right
                    w.color = x.parent.color
                    x.parent.color = BLACK
                    w.right.color = BLACK
                    self._rotate_left(x.parent)
                    x = self._root
            else:
                w = x.parent.left
                if w.color is RED:
                    w.color = BLACK
                    x.parent.color = RED
                    self._rotate_right(x.parent)
                    w = x.parent.left
                if w.right.color is BLACK and w.left.color is BLACK:
                    w.color = RED
                    x = x.parent
                else:
                    if w.left.color is BLACK:
                        w.right.color = BLACK
                        w.color = RED
                        self._rotate_left(w)
                        w = x.parent.left
                    w.color = x.parent.color
                    x.parent.color = BLACK
                    w.left.color = BLACK
                    self._rotate_right(x.parent)
                    x = self._root
        x.color = BLACK

    # -- iteration --------------------------------------------------------------------

    def items(self) -> Iterator[Tuple[str, Any]]:
        """In-order (sorted by model name)."""
        stack: List[_Node] = []
        node = self._root
        while stack or node is not self._nil:
            while node is not self._nil:
                stack.append(node)
                node = node.left
            node = stack.pop()
            yield node.key, node.value
            node = node.right

    def keys(self) -> List[str]:
        return [key for key, _value in self.items()]

    # -- invariant checking (used by property tests) -------------------------------------

    def check_invariants(self) -> None:
        """Raise AssertionError if any red-black property is violated."""
        assert self._root.color is BLACK, "root must be black"

        def walk(node: _Node) -> int:
            if node is self._nil:
                return 1
            if node.color is RED:
                assert node.left.color is BLACK, "red node with red child"
                assert node.right.color is BLACK, "red node with red child"
            if node.left is not self._nil:
                assert node.left.key < node.key, "BST order violated"
            if node.right is not self._nil:
                assert node.right.key > node.key, "BST order violated"
            left_black = walk(node.left)
            right_black = walk(node.right)
            assert left_black == right_black, "black heights differ"
            return left_black + (0 if node.color is RED else 1)

        walk(self._root)

"""Double-mapping crash consistency (paper §III-D2, Fig. 6).

Every model owns two identically-structured checkpoint versions.  A
checkpoint writes the slot that does *not* hold the newest DONE data:

1. ``begin_checkpoint`` stamps the target slot ACTIVE (persisted) —
   restores will never trust it from this point on;
2. the daemon pulls tensor data into the target TensorData region;
3. ``commit_checkpoint`` stamps it DONE with the step number (persisted).

A crash anywhere in between leaves the target ACTIVE and the other slot's
last DONE state intact, so ``valid_checkpoint`` always finds the newest
complete version (or reports none for a never-checkpointed model).  No
space is allocated and no RDMA connection is re-created per checkpoint —
the whole point of the scheme versus write-new-file-and-rename.
"""

from __future__ import annotations

from typing import Tuple

from repro.core.index import (FLAG_ACTIVE, FLAG_DONE, FLAG_EMPTY,
                              ModelMeta, VersionFlags)
from repro.errors import CheckpointInProgress, NoValidCheckpoint


def begin_checkpoint(meta: ModelMeta) -> int:
    """Stamp the target slot ACTIVE; returns the target version index."""
    flags = meta.read_flags()
    target = flags.checkpoint_target()
    flags.states[target] = FLAG_ACTIVE
    meta.write_flags(flags)
    return target


def commit_checkpoint(meta: ModelMeta, version: int, step: int) -> None:
    """Stamp *version* DONE at *step*; the checkpoint becomes restorable."""
    flags = meta.read_flags()
    if flags.states[version] != FLAG_ACTIVE:
        raise CheckpointInProgress(
            f"commit of version {version} which is not ACTIVE "
            f"(flags: {flags!r})")
    flags.states[version] = FLAG_DONE
    flags.steps[version] = step
    meta.write_flags(flags)


def abort_checkpoint(meta: ModelMeta, version: int,
                     data_dirty: bool = False) -> None:
    """Roll the target slot back after a failed pull (client vanished).

    *data_dirty* says whether any bytes already landed in the slot's
    TensorData region (an engine pull, or the incremental path's
    clean-tensor prefill).  A dirty slot can no longer be trusted at its
    old step — part of its bytes belong to the aborted checkpoint — so
    it is invalidated (EMPTY, step 0) rather than rolled back to DONE;
    the sibling slot's last DONE version keeps the model restorable.
    Only an untouched slot may return to DONE at its old step.
    """
    flags = meta.read_flags()
    if flags.states[version] == FLAG_ACTIVE:
        if data_dirty:
            flags.states[version] = FLAG_EMPTY
            flags.steps[version] = 0
        else:
            flags.states[version] = (FLAG_DONE if flags.steps[version] > 0
                                     else FLAG_EMPTY)
        meta.write_flags(flags)


def valid_checkpoint(meta: ModelMeta) -> Tuple[int, int]:
    """The newest restorable version as ``(version, step)``.

    Raises :class:`NoValidCheckpoint` when neither slot is DONE — e.g.
    after a crash during the very first checkpoint.
    """
    flags = meta.read_flags()
    newest = flags.newest_done()
    if newest is None:
        raise NoValidCheckpoint(
            f"{meta.mindex.model_name}: no completed checkpoint "
            f"(flags: {flags!r})")
    return newest, flags.steps[newest]


def checkpoint_at_step(meta: ModelMeta, step: int) -> int:
    """The version index holding a DONE checkpoint at exactly *step*.

    Group restores pin every member to the group's committed step; the
    double-slot target rule (never overwrite the newest DONE slot)
    guarantees each member still holds that step as long as no later
    group commit landed.  Raises :class:`NoValidCheckpoint` when neither
    slot is DONE at *step*.
    """
    flags = meta.read_flags()
    best = None
    for version in range(len(flags.states)):
        if (flags.states[version] == FLAG_DONE
                and flags.steps[version] == step):
            best = version
    if best is None:
        raise NoValidCheckpoint(
            f"{meta.mindex.model_name}: no completed checkpoint at step "
            f"{step} (flags: {flags!r})")
    return best


def checkpoint_states(meta: ModelMeta) -> VersionFlags:
    """Raw flags, for Portusctl's view and the repacking tool."""
    return meta.read_flags()

"""Portus: the paper's contribution.

A client library (PyTorch-extension equivalent) and a storage-side daemon
implementing zero-copy DNN checkpointing: a three-level index on PMem
(ModelTable -> MIndex -> TensorData), one-sided RDMA pulls straight from
GPU memory, double-mapped checkpoint versions for crash consistency, an
asynchronous checkpoint policy that hides persistence inside the
forward/backward phases, a repacking GC, and the Portusctl tool.
"""

from repro.core.async_ckpt import PortusAsyncPolicy, PortusSyncPolicy
from repro.core.client import PortusClient
from repro.core.daemon import PortusDaemon
from repro.core.modelmap import ModelMap
from repro.core.repack import repack

__all__ = [
    "ModelMap",
    "PortusAsyncPolicy",
    "PortusClient",
    "PortusDaemon",
    "PortusSyncPolicy",
    "repack",
]

"""Portus checkpoint policies: synchronous and asynchronous (Fig. 9c/d).

The synchronous policy blocks the training loop for the (already fast)
pull.  The asynchronous policy exploits the F/B/U structure: a checkpoint
triggered after iteration *i*'s update runs while iteration *i+1*
computes its forward and backward passes — parameters are immutable until
the next update — and the loop only stalls at the ``after_backward``
barrier if the pull has not finished by then.  For CV-scale models the
pull fits inside F+B and the overhead vanishes; for GPT-22.4B the residual
barrier wait is what keeps Portus's Fig. 16 utilization at ~76 % rather
than ~100 %.

The barrier is not optional: skipping it would let the optimizer update
race the one-sided reads, and the RDMA layer would deliver torn content
(tests assert exactly that).

Instead of a fixed *frequency*, the async policy can be driven by an
:class:`~repro.ops.policy.AdaptiveIntervalController`: each iteration it
asks the controller for the current Young/Daly-optimal frequency (so
operator-reported failures shorten the interval mid-run), and it feeds
every measured barrier stall back as the checkpoint-cost input.
"""

from __future__ import annotations

from typing import Generator, List, Optional, Tuple

from repro.core.client import ModelSession
from repro.dnn.training import CheckpointHook, TrainingJob
from repro.sim import AllOf, Environment


class PortusSyncPolicy(CheckpointHook):
    """Blocking Portus checkpoint every *frequency* iterations."""

    def __init__(self, env: Environment, sessions: List[ModelSession],
                 frequency: int) -> None:
        if frequency < 1:
            raise ValueError(f"frequency must be >= 1, got {frequency}")
        self.env = env
        self.sessions = sessions
        self.frequency = frequency
        self.checkpoints_taken = 0
        self.stall_ns = 0

    def after_update(self, job: TrainingJob, iteration: int) -> Generator:
        if iteration % self.frequency:
            return
        start = self.env.now
        # All shards checkpoint concurrently (one request per session).
        pulls = [self.env.process(session.checkpoint(iteration),
                                  name=f"portus-sync-{session.model.name}")
                 for session in self.sessions]
        yield AllOf(self.env, pulls)
        self.stall_ns += self.env.now - start
        self.checkpoints_taken += 1


class PortusAsyncPolicy(CheckpointHook):
    """Asynchronous Portus checkpointing overlapped with F+B.

    Pass either a fixed *frequency* or an adaptive *controller*
    (:class:`~repro.ops.policy.AdaptiveIntervalController`).  With a
    controller the effective frequency is re-evaluated every iteration
    — a failure the operator reports mid-run shortens the interval for
    the very next decision — and each checkpoint's measured barrier
    stall is fed back as the Young cost input (a fully hidden
    checkpoint reports cost 0, which correctly pushes the interval
    toward its lower clamp).
    """

    def __init__(self, env: Environment, sessions: List[ModelSession],
                 frequency: Optional[int] = None,
                 controller=None) -> None:
        if (frequency is None) == (controller is None):
            raise ValueError(
                "need exactly one of frequency / controller")
        if frequency is not None and frequency < 1:
            raise ValueError(f"frequency must be >= 1, got {frequency}")
        self.env = env
        self.sessions = sessions
        self.frequency = frequency
        self.controller = controller
        self._outstanding: List = []
        self._last_fired = 0
        self.checkpoints_taken = 0
        self.stall_ns = 0
        self.barrier_waits = 0
        #: Controller-driven decisions: (iteration, effective frequency).
        self.frequencies_used: List[Tuple[int, int]] = []

    def current_frequency(self, job: TrainingJob) -> int:
        if self.controller is None:
            return self.frequency
        return self.controller.frequency(job.iteration_ns, self.env.now)

    def after_update(self, job: TrainingJob, iteration: int) -> Generator:
        frequency = self.current_frequency(job)
        if self.controller is not None:
            self.frequencies_used.append((iteration, frequency))
        if iteration - self._last_fired < frequency:
            return
        self._last_fired = iteration
        # Fire and continue: the pull overlaps the next F+B window.
        self._outstanding = [
            self.env.process(session.checkpoint(iteration),
                             name=f"portus-async-{session.model.name}")
            for session in self.sessions
        ]
        self.checkpoints_taken += 1
        return
        yield  # pragma: no cover - generator protocol

    def after_backward(self, job: TrainingJob, iteration: int) -> Generator:
        """The consistency barrier: the pull must finish before U."""
        if not self._outstanding:
            return
        pending = [p for p in self._outstanding if not p.triggered]
        stall = 0
        if pending:
            start = self.env.now
            yield AllOf(self.env, pending)
            stall = self.env.now - start
            self.stall_ns += stall
            self.barrier_waits += 1
        if self.controller is not None:
            self.controller.observe_checkpoint_cost(stall)
        self._outstanding = []

    def on_job_end(self, job: TrainingJob) -> Generator:
        pending = [p for p in self._outstanding if not p.triggered]
        if pending:
            yield AllOf(self.env, pending)
        self._outstanding = []

"""Portus checkpoint policies: synchronous and asynchronous (Fig. 9c/d).

The synchronous policy blocks the training loop for the (already fast)
pull.  The asynchronous policy exploits the F/B/U structure: a checkpoint
triggered after iteration *i*'s update runs while iteration *i+1*
computes its forward and backward passes — parameters are immutable until
the next update — and the loop only stalls at the ``after_backward``
barrier if the pull has not finished by then.  For CV-scale models the
pull fits inside F+B and the overhead vanishes; for GPT-22.4B the residual
barrier wait is what keeps Portus's Fig. 16 utilization at ~76 % rather
than ~100 %.

The barrier is not optional: skipping it would let the optimizer update
race the one-sided reads, and the RDMA layer would deliver torn content
(tests assert exactly that).
"""

from __future__ import annotations

from typing import Generator, List

from repro.core.client import ModelSession
from repro.dnn.training import CheckpointHook, TrainingJob
from repro.sim import AllOf, Environment


class PortusSyncPolicy(CheckpointHook):
    """Blocking Portus checkpoint every *frequency* iterations."""

    def __init__(self, env: Environment, sessions: List[ModelSession],
                 frequency: int) -> None:
        if frequency < 1:
            raise ValueError(f"frequency must be >= 1, got {frequency}")
        self.env = env
        self.sessions = sessions
        self.frequency = frequency
        self.checkpoints_taken = 0
        self.stall_ns = 0

    def after_update(self, job: TrainingJob, iteration: int) -> Generator:
        if iteration % self.frequency:
            return
        start = self.env.now
        # All shards checkpoint concurrently (one request per session).
        pulls = [self.env.process(session.checkpoint(iteration),
                                  name=f"portus-sync-{session.model.name}")
                 for session in self.sessions]
        yield AllOf(self.env, pulls)
        self.stall_ns += self.env.now - start
        self.checkpoints_taken += 1


class PortusAsyncPolicy(CheckpointHook):
    """Asynchronous Portus checkpointing overlapped with F+B."""

    def __init__(self, env: Environment, sessions: List[ModelSession],
                 frequency: int) -> None:
        if frequency < 1:
            raise ValueError(f"frequency must be >= 1, got {frequency}")
        self.env = env
        self.sessions = sessions
        self.frequency = frequency
        self._outstanding: List = []
        self.checkpoints_taken = 0
        self.stall_ns = 0
        self.barrier_waits = 0

    def after_update(self, job: TrainingJob, iteration: int) -> Generator:
        if iteration % self.frequency:
            return
        # Fire and continue: the pull overlaps the next F+B window.
        self._outstanding = [
            self.env.process(session.checkpoint(iteration),
                             name=f"portus-async-{session.model.name}")
            for session in self.sessions
        ]
        self.checkpoints_taken += 1
        return
        yield  # pragma: no cover - generator protocol

    def after_backward(self, job: TrainingJob, iteration: int) -> Generator:
        """The consistency barrier: the pull must finish before U."""
        if not self._outstanding:
            return
        pending = [p for p in self._outstanding if not p.triggered]
        if pending:
            start = self.env.now
            yield AllOf(self.env, pending)
            self.stall_ns += self.env.now - start
            self.barrier_waits += 1
        self._outstanding = []

    def on_job_end(self, job: TrainingJob) -> Generator:
        pending = [p for p in self._outstanding if not p.triggered]
        if pending:
            yield AllOf(self.env, pending)
        self._outstanding = []

"""Parallel-group checkpointing: the cross-model atomicity domain.

A distributed training job registers each TP×PP shard as its own model
(its own MIndex, its own double-mapped versions) — which is exactly how
``examples/distributed_gpt.py`` tore itself: a power failure mid-dump
left some shards DONE at step 20 and others at step 10, and per-model
restore silently reassembled a model that never existed.

This module makes a *set* of shard models atomic as one named group
(DESIGN.md §14):

* **Registration** binds the member sessions to a group and persists a
  :class:`~repro.dnn.layout.ShardedLayout` (degrees + per-tensor
  partition specs) inside the group's commit record.
* **Dumps** run every member pull concurrently through the existing
  engine, then make the step visible with a single two-phase commit:
  all members DONE at *step* → the :class:`GroupRecord` (an A/B
  :class:`~repro.pmem.layout.CommittedRecord`) persists *step* → ack.
  Leak-only: a crash anywhere leaves the record at the previous
  committed step, which every member still retains because the
  double-slot target rule never overwrites the newest DONE version and
  the group client never starts dump N+1 before commit N is acked.
* **Restore** pins every member to the group's committed step, so a
  torn dump can never surface as a mixed-step model; with a different
  target topology, :func:`restore_resharded` reassembles the global
  tensors from the persisted partition specs and re-slices them
  bit-exactly (ByteCheckpoint-style automatic resharding).
"""

from __future__ import annotations

import struct
from typing import Dict, Generator, List, Optional

from repro.core import protocol
from repro.core.index import ModelTable, _short
from repro.dnn.layout import ShardedLayout, reshard
from repro.dnn.tensor import ModelInstance
from repro.errors import (GroupNotFound, NoValidGroupCheckpoint, PmemError,
                          PortusError, ProtocolError, ReproError)
from repro.hw.device import Allocation
from repro.pmem.layout import CommittedRecord, blob_capacity
from repro.pmem.pool import PmemPool
from repro.sim import AllOf

GROUP_TABLE_TAG = "portus-grouptable"
GROUP_TAG = "portus-group"

GROUP_MAGIC = 0x47525550  # "GRUP"
GROUP_RECORD_VERSION = 1

_GROUP_HEADER = struct.Struct("<IHHQ")  # magic, version, pad, committed step

#: Groups are rare (one per training job), so the table is small.
MAX_GROUPS = 64


def group_tag(name: str) -> str:
    """AllocTable tag of a group's commit-record region."""
    return f"{GROUP_TAG}/{_short(name)}"


class GroupTable(ModelTable):
    """Level-1 index for groups: persistent sorted name -> record addr.

    Same crash-atomic sorted-array machinery as the ModelTable, under
    its own AllocTable tag so both tables coexist on one pool.
    """

    TAG = GROUP_TABLE_TAG


class GroupRecord:
    """One group's persisted state: the layout blob + committed step.

    Stored as an A/B :class:`CommittedRecord`, so a commit is atomic
    with respect to power failure and the previous committed step
    survives any tear.  The layout blob is immutable for the life of
    the group; only the step changes, but the whole payload is
    rewritten each commit (the record is small next to the shards).
    """

    def __init__(self, allocation: Allocation, layout_blob: bytes,
                 committed_step: int) -> None:
        self.allocation = allocation
        self.record = CommittedRecord(allocation, 0, allocation.size // 2)
        self.layout_blob = layout_blob
        self.committed_step = committed_step

    @staticmethod
    def slot_size(blob_len: int) -> int:
        return blob_capacity(_GROUP_HEADER.size + blob_len) + 32

    @classmethod
    def create(cls, pool: PmemPool, name: str,
               layout_blob: bytes) -> "GroupRecord":
        region = pool.alloc(2 * cls.slot_size(len(layout_blob)),
                            tag=group_tag(name))
        record = cls(region, layout_blob, 0)
        record._write(0)
        return record

    @classmethod
    def open(cls, allocation: Allocation) -> "GroupRecord":
        record = CommittedRecord(allocation, 0, allocation.size // 2)
        committed = record.read()
        if committed is None:
            raise PmemError(
                f"group record unreadable at {allocation.addr:#x}")
        payload = committed[0]
        magic, version, _pad, step = _GROUP_HEADER.unpack_from(payload)
        if magic != GROUP_MAGIC:
            raise PmemError(f"bad group record magic {magic:#x}")
        if version != GROUP_RECORD_VERSION:
            raise PmemError(f"unsupported group record version {version}")
        return cls(allocation, bytes(payload[_GROUP_HEADER.size:]), step)

    def _write(self, step: int) -> None:
        payload = _GROUP_HEADER.pack(GROUP_MAGIC, GROUP_RECORD_VERSION, 0,
                                     step) + self.layout_blob
        self.record.write(payload)

    def commit(self, step: int) -> None:
        """Persist *step* as the group's committed step (crash-atomic)."""
        self._write(step)
        self.committed_step = step

    def layout(self) -> ShardedLayout:
        return ShardedLayout.unpack(self.layout_blob)


class GroupStore:
    """Daemon-side group registry: the GroupTable plus open records.

    The table region is created lazily on the first group registration,
    so pools that never use groups keep their exact pre-group layout.
    Recovery is lenient about individual groups: a record that cannot
    be opened (torn creation the fsck has not repaired yet) is skipped
    — the daemon must come up, and fsck owns the repair.
    """

    def __init__(self, pool: PmemPool,
                 table: Optional[GroupTable]) -> None:
        self.pool = pool
        self.table = table
        self.records: Dict[str, GroupRecord] = {}

    @classmethod
    def open_or_create(cls, pool: PmemPool) -> "GroupStore":
        if not pool.find_by_tag(GROUP_TABLE_TAG):
            return cls(pool, None)
        table = GroupTable.open(pool)
        store = cls(pool, table)
        for name in table.names():
            try:
                allocation = pool.device.allocation_at(table.lookup(name))
                store.records[name] = GroupRecord.open(allocation)
            except ReproError:
                continue  # dangling or torn — fsck's to repair
        return store

    def register(self, name: str, layout_blob: bytes) -> GroupRecord:
        """Create the group (or attach to it, if the layout matches).

        Leak-only ordering: record region allocated and written first,
        table entry second — a crash in between leaks an unreferenced
        region that fsck reclaims, never a table entry pointing at
        garbage.  Re-registering over a skipped (torn) record replaces
        it the same way, freeing the old region last.
        """
        ShardedLayout.unpack(layout_blob)  # validate before persisting
        existing = self.records.get(name)
        if existing is not None:
            if existing.layout_blob != layout_blob:
                raise PortusError(
                    f"group {name!r} already exists with a different "
                    f"layout")
            return existing
        if self.table is None:
            self.table = GroupTable.create(self.pool,
                                           max_models=MAX_GROUPS)
        old_addr = None
        if name in self.table:
            old_addr = self.table.lookup(name)
        record = GroupRecord.create(self.pool, name, layout_blob)
        self.table.insert(name, record.allocation.addr)
        if old_addr is not None:
            try:
                self.pool.free(self.pool.device.allocation_at(old_addr))
            except ReproError:
                pass  # already gone; nothing to reclaim
        self.records[name] = record
        return record

    def lookup(self, name: str) -> GroupRecord:
        try:
            return self.records[name]
        except KeyError:
            raise GroupNotFound(name) from None

    def remove(self, name: str) -> None:
        """Drop the group (unlink before free, like model unregister)."""
        record = self.lookup(name)
        self.table.remove(name)
        self.pool.free(record.allocation)
        del self.records[name]

    def names(self) -> List[str]:
        return sorted(self.records)


# -- client side ----------------------------------------------------------


class GroupSession:
    """The user-facing group handle: dump / commit / restore as one unit.

    Wraps the member :class:`~repro.core.client.ModelSession` handles;
    every RPC a group needs beyond the members' own checkpoints rides
    the lead member's connection (and its retry policy).
    """

    def __init__(self, client, name: str, layout: ShardedLayout,
                 sessions: Dict[str, "ModelSession"]) -> None:
        self.client = client
        self.name = name
        self.layout = layout
        self.sessions = sessions
        self.committed_step = 0
        #: A commit sent but not yet acked.  Re-driven at the next dump:
        #: the members are DONE at that step (their pulls acked), so
        #: retrying the commit first preserves the invariant that no
        #: member ever overwrites the slot a committed step lives in.
        self._pending_commit: Optional[int] = None

    @property
    def _lead(self):
        return self.sessions[self.layout.members[0]]

    @property
    def members(self) -> List[str]:
        return list(self.layout.members)

    # -- operations -------------------------------------------------------

    def dump(self, step: int) -> Generator:
        """Process: one parallel group dump; returns the committed step.

        Phase one pulls every member concurrently (the engine stripes
        each over its own QPs); phase two persists the group-commit
        record.  Any member failure aborts before the commit, leaving
        the group at its previous committed step.
        """
        env = self.client.env
        if self._pending_commit is not None:
            yield from self._commit(self._pending_commit)
        outcomes = [env.process(self._member_checkpoint(member, step),
                                name=f"groupdump:{member}:{step}")
                    for member in self.layout.members]
        yield AllOf(env, outcomes)
        failures = [value for process in outcomes
                    for kind, value in (process.value,) if kind == "err"]
        if failures:
            raise failures[0]
        self._pending_commit = step
        yield from self._commit(step)
        return step

    def _member_checkpoint(self, member: str, step: int) -> Generator:
        try:
            reply = yield from self.sessions[member].checkpoint(step)
        except ReproError as exc:
            return ("err", exc)
        return ("ok", reply)

    def _commit(self, step: int) -> Generator:
        reply = yield from self._lead._call(
            lambda: protocol.group_commit(self.name, step),
            protocol.OP_GROUP_COMMITTED)
        self._pending_commit = None
        self.committed_step = reply["step"]
        return reply

    def query(self) -> Generator:
        """Process: the daemon's view — committed step + layout blob."""
        reply = yield from self._lead._call(
            lambda: protocol.group_query(self.name),
            protocol.OP_GROUP_INFO)
        self.committed_step = reply["step"]
        return reply

    def restore(self) -> Generator:
        """Process: restore every member to the committed group step.

        Every member restore is pinned to the same step, so the result
        can never mix steps — the whole point of the group commit.
        """
        reply = yield from self.query()
        step = reply["step"]
        if step <= 0:
            raise NoValidGroupCheckpoint(
                f"group {self.name!r} has no committed step")
        env = self.client.env
        outcomes = [env.process(self._member_restore(member, step),
                                name=f"grouprestore:{member}")
                    for member in self.layout.members]
        yield AllOf(env, outcomes)
        failures = [value for process in outcomes
                    for kind, value in (process.value,) if kind == "err"]
        if failures:
            raise failures[0]
        return step

    def _member_restore(self, member: str, step: int) -> Generator:
        try:
            restored = yield from self.sessions[member].restore(step=step)
        except ReproError as exc:
            return ("err", exc)
        return ("ok", restored)


def register_group(client, name: str, layout: ShardedLayout,
                   sessions) -> Generator:
    """Process: bind already-registered member *sessions* into a group.

    The session list must cover exactly the layout's members; the
    daemon validates every member against its index and persists the
    layout in the group's commit record.
    """
    by_name = {session.model.name: session for session in sessions}
    if set(by_name) != set(layout.members):
        missing = sorted(set(layout.members) - set(by_name))
        extra = sorted(set(by_name) - set(layout.members))
        raise PortusError(
            f"group {name!r}: sessions do not match layout members "
            f"(missing {missing[:4]}, extra {extra[:4]})")
    group = GroupSession(client, name, layout, by_name)
    blob = layout.pack()
    reply = yield from group._lead._call(
        lambda: protocol.group_register(name, blob),
        protocol.OP_GROUP_REGISTERED)
    group.committed_step = reply["step"]
    return group


def query_group(client, name: str) -> Generator:
    """Process: one-shot GROUP_QUERY without any member session.

    Used by resharding restores, which start from a bare client (the
    new topology's sessions do not exist yet).
    """
    conn = yield from client.tcp.connect(client.daemon.tcp.hostname,
                                         client.daemon.port)
    message, size = protocol.group_query(name)
    yield from conn.send(message, wire_size=size)
    reply = yield from conn.recv()
    conn.close()
    if reply.get("op") == protocol.OP_ERROR:
        raise reply["error"]
    if reply.get("op") != protocol.OP_GROUP_INFO:
        raise ProtocolError(
            f"expected {protocol.OP_GROUP_INFO}, got {reply.get('op')!r}")
    return reply


def restore_resharded(client, name: str, target_layout: ShardedLayout,
                      target_instances: Dict[str, ModelInstance],
                      stage_device=None) -> Generator:
    """Process: restore a group checkpoint into a *different* topology.

    Reads the committed step and source layout from the group record,
    stages every source member on *stage_device* (default: the device
    backing the first target instance), restores them pinned to the
    committed step, reassembles each global tensor from its partition
    specs, and re-slices for *target_layout* — bit-exact both ways.
    Writes the resulting bytes into *target_instances* and returns the
    restored step.

    The staging sessions attach to the persisted members, so the call
    expects a daemon that does not still hold the old topology's live
    attachments (the restart-after-crash case this exists for).
    """
    if set(target_instances) != set(target_layout.members):
        raise PortusError(
            f"group {name!r}: target instances do not match the target "
            f"layout's members")
    reply = yield from query_group(client, name)
    step = reply["step"]
    if step <= 0:
        raise NoValidGroupCheckpoint(
            f"group {name!r} has no committed step")
    source_layout = ShardedLayout.unpack(reply["layout"])
    if stage_device is None:
        first = target_instances[target_layout.members[0]]
        stage_device = first.tensors[0].allocation.device
    contents = {}
    for member in source_layout.members:
        staged = ModelInstance.materialize(
            member, source_layout.member_specs(member), stage_device,
            model_seed=0)
        session = yield from client.register(staged)
        restored = yield from session.restore(step=step)
        if restored != step:
            raise NoValidGroupCheckpoint(
                f"{member}: restored step {restored} != committed "
                f"{step}")
        contents[member] = {tensor.name: tensor.content()
                            for tensor in staged.tensors}
    resharded = reshard(source_layout, contents, target_layout)
    for member in target_layout.members:
        instance = target_instances[member]
        member_contents = resharded[member]
        for tensor in instance.tensors:
            tensor.allocation.write(0, member_contents[tensor.name])
            tensor.step = step
        instance.step = step
    return step

"""Portusctl: inspect and export checkpoints stored on a PMem device.

Mirrors the paper's command-line tool (§IV-b): ``view`` lists every model
on a device with its versions and flags; ``dump`` exports a model's
newest valid checkpoint out of the index into the generic torch.save-like
file format, so checkpoints taken through the zero-copy path remain
shareable with ordinary framework users; ``fsck`` / ``repair`` run the
structural verifier (:mod:`repro.pmem.fsck`) over the whole index and —
for ``repair`` — apply every safe fix until the device verifies clean;
``stats`` prints the observability snapshot (metrics JSON, optionally a
Chrome trace) of the demo deployment's checkpoint run; ``health``
heartbeats the daemon and prints the aggregated health classification
(:mod:`repro.ops.health`) from the reply's health block.

``fsck`` and ``repair`` take ``--json`` for machine-readable reports
with a distinct exit-code contract: 0 = clean (nothing found / nothing
to do), 1 = dirty (findings remain), 2 = repaired (repair fixed
findings and the device now verifies clean).

The library functions (:func:`view`, :func:`dump`, :func:`dump_to_file`)
operate on a :class:`~repro.pmem.pool.PmemPool`; the installed ``portusctl``
console script drives them against a small self-contained simulation (the
library has no access to physical Optane hardware) and can write the
dumped checkpoint to a real host file.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, Generator, List, Optional

from repro.core.consistency import checkpoint_states
from repro.core.index import FLAG_NAMES, ModelMeta, ModelTable
from repro.core.repack import repack
from repro.dnn.serialize import serialize_entries
from repro.errors import NoValidCheckpoint, ReproError
from repro.hw.content import Content
from repro.pmem.fsck import EXIT_CLEAN, EXIT_DIRTY, fsck, repair
from repro.pmem.pool import PmemPool
from repro.units import fmt_bytes


def view(pool: PmemPool) -> List[Dict]:
    """One row per model: name, layers, bytes, per-version states."""
    table = ModelTable.open(pool)
    rows = []
    for name in table.names():
        meta = ModelMeta.open(pool, table.lookup(name))
        flags = checkpoint_states(meta)
        rows.append({
            "model": name,
            "layers": meta.mindex.layer_count,
            "bytes": meta.mindex.total_bytes,
            "versions": [
                {"state": FLAG_NAMES[flags.states[i]],
                 "step": flags.steps[i]} for i in (0, 1)
            ],
        })
    return rows


def dump(pool: PmemPool, model_name: str) -> Content:
    """Export the newest valid checkpoint as a generic file image."""
    from repro.core.consistency import valid_checkpoint

    table = ModelTable.open(pool)
    meta = ModelMeta.open(pool, table.lookup(model_name))
    version, _step = valid_checkpoint(meta)
    if not meta.dedup and meta.data_regions[version] is None:
        raise NoValidCheckpoint(
            f"{model_name}: version {version} was repacked away")
    entries = [(descriptor.to_spec(),
                meta.read_tensor(descriptor, version))
               for descriptor in meta.mindex.descriptors]
    return serialize_entries(entries)


def dump_to_file(pool: PmemPool, model_name: str, fs,
                 path: str) -> Generator:
    """Process: dump straight onto a (simulated) filesystem."""
    image = dump(pool, model_name)
    yield from fs.write_file(path, image)
    return image.size


def format_view(rows: List[Dict]) -> str:
    """The ``portusctl view`` table as text."""
    lines = [f"{'MODEL':40} {'LAYERS':>7} {'SIZE':>10}  VERSIONS"]
    for row in rows:
        versions = "  ".join(
            f"v{i}:{v['state']}@{v['step']}"
            for i, v in enumerate(row["versions"]))
        lines.append(f"{row['model']:40} {row['layers']:>7} "
                     f"{fmt_bytes(row['bytes']):>10}  {versions}")
    return "\n".join(lines)


# --- console entry point --------------------------------------------------------


#: Demo fleet: one model pinned per shard so every daemon serves bytes.
_DEMO_MODELS = ("resnet50", "alexnet", "swin_t", "resnet18",
                "convnext_tiny", "resnet34")


def _demo_pool(tracing: bool = False, daemons: int = 1):
    """A self-contained deployment with checkpointed models on it.

    ``daemons=1`` (the default) is the classic two-model single-pool
    demo; larger fleets get one pinned model per shard through the
    placement ring.
    """
    from repro.harness.cluster import PaperCluster

    cluster = PaperCluster(tracing=tracing, storage_nodes=daemons)
    pool = cluster.portus_pool

    if daemons == 1:
        def scenario(env):
            session_a = yield from cluster.portus_register("resnet50",
                                                           gpu=0)
            session_b = yield from cluster.portus_register("alexnet",
                                                           gpu=1)
            session_a.model.update_step(100)
            session_b.model.update_step(40)
            yield from session_a.checkpoint(100)
            yield from session_b.checkpoint(40)

        cluster.run(scenario)
        return cluster, pool

    from repro.fleet import FleetClient

    fleet = FleetClient(cluster)

    def scenario(env):
        for index, shard in enumerate(cluster.shards):
            model = _DEMO_MODELS[index % len(_DEMO_MODELS)]
            tenant = f"demo{index}"
            name = f"{tenant}.{model}"
            fleet.ring.assign(tenant, name, shard.name)
            instance = cluster.materialize(model, gpu=index % 4,
                                           seed=index + 1,
                                           instance_name=name)
            session = yield from fleet.register(tenant, instance)
            session.model.update_step(10 * (index + 1))
            yield from session.checkpoint(10 * (index + 1))

    cluster.run(scenario)
    return cluster, pool


def poll_health(cluster, shard: int = 0) -> Dict:
    """Heartbeat one shard's daemon through a live session and return
    the health block its ack carries (the same sample the remediation
    operator classifies).  A shard with no attached session is sampled
    directly (same block, no wire trip)."""
    result: Dict = {}

    def scenario(env):
        for client in cluster._portus_clients.values():
            if getattr(client, "shard_index", 0) != shard:
                continue
            if client.sessions:
                reply = yield from client.sessions[0].heartbeat()
                result.update(reply.get("health") or {})
                return
        result.update(cluster.shards[shard].daemon.health_snapshot())

    cluster.run(scenario)
    return result


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="portusctl",
        description="Inspect and export Portus checkpoints on a PMem "
                    "device (demo simulation).")
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("view", help="list models stored on the device")
    dump_parser = sub.add_parser(
        "dump", help="export a checkpoint to a generic file")
    dump_parser.add_argument("model")
    dump_parser.add_argument("filename",
                             help="host path for the exported checkpoint")
    sub.add_parser("repack", help="reclaim stale checkpoint versions")
    fsck_parser = sub.add_parser(
        "fsck", help="verify the on-device index (read-only); exits "
                     "0 clean, 1 dirty")
    fsck_parser.add_argument("--json", action="store_true",
                             help="machine-readable report")
    fsck_parser.add_argument(
        "--daemons", type=int, default=1, metavar="N",
        help="size of the demo fleet: verify every shard's pool and "
             "print a per-shard + rollup report (default 1)")
    repair_parser = sub.add_parser(
        "repair", help="run fsck and apply every safe repair until the "
                       "device verifies clean; exits 0 nothing-to-do, "
                       "1 still dirty, 2 repaired")
    repair_parser.add_argument("--json", action="store_true",
                               help="machine-readable report")
    health_parser = sub.add_parser(
        "health", help="heartbeat the daemon(s) and print the "
                       "aggregated health classification; exits 0 "
                       "healthy")
    health_parser.add_argument("--json", action="store_true",
                               help="machine-readable snapshot")
    health_parser.add_argument(
        "--daemons", type=int, default=1, metavar="N",
        help="size of the demo fleet: heartbeat every shard and print "
             "per-shard states + the worst-state rollup (default 1)")
    stats_parser = sub.add_parser(
        "stats", help="print the demo deployment's metrics snapshot")
    stats_parser.add_argument(
        "--trace-out", metavar="PATH", default=None,
        help="also write a Chrome trace_event JSON of the demo run")
    stats_parser.add_argument(
        "--daemons", type=int, default=1, metavar="N",
        help="size of the demo fleet: include a per-shard work "
             "summary alongside the fleet-wide metrics (default 1)")
    args = parser.parse_args(argv)

    daemons = max(1, getattr(args, "daemons", 1))
    try:
        kwargs = {"tracing": getattr(args, "trace_out", None) is not None}
        if daemons > 1:
            kwargs["daemons"] = daemons
        cluster, pool = _demo_pool(**kwargs)
        if args.command == "view":
            print(format_view(view(pool)))
        elif args.command == "dump":
            image = dump(pool, args.model)
            with open(args.filename, "wb") as handle:
                for chunk in image.iter_chunks():
                    handle.write(chunk)
            print(f"dumped {args.model} ({fmt_bytes(image.size)}) "
                  f"to {args.filename}")
        elif args.command == "repack":
            report = repack(pool)
            print(f"reclaimed {fmt_bytes(report.bytes_reclaimed)} "
                  f"(compacted {len(report.models_compacted)}, "
                  f"dropped {len(report.models_dropped)})")
        elif args.command == "fsck":
            if daemons == 1:
                report = fsck(pool, obs=cluster.obs)
                print(json.dumps(report.to_dict(), indent=2)
                      if args.json else report.describe())
                return EXIT_CLEAN if report.clean else EXIT_DIRTY
            reports = {shard.name: fsck(shard.pool, obs=cluster.obs)
                       for shard in cluster.shards}
            all_clean = all(r.clean for r in reports.values())
            if args.json:
                dicts = {name: r.to_dict() for name, r in reports.items()}
                checked: Dict[str, int] = {}
                for entry in dicts.values():
                    for key, count in entry["checked"].items():
                        checked[key] = checked.get(key, 0) + count
                print(json.dumps({
                    "clean": all_clean,
                    "checked": checked,
                    "shards": dicts,
                }, indent=2))
            else:
                for name, report in reports.items():
                    print(f"== {name} ==")
                    print(report.describe())
                clean = sum(r.clean for r in reports.values())
                print(f"fleet: {'clean' if all_clean else 'DIRTY'} "
                      f"({clean}/{len(reports)} shards clean)")
            return EXIT_CLEAN if all_clean else EXIT_DIRTY
        elif args.command == "repair":
            result = repair(pool, obs=cluster.obs)
            print(json.dumps(result.to_dict(), indent=2) if args.json
                  else result.describe())
            return result.exit_code
        elif args.command == "health":
            from repro.ops.health import classify, format_health, worst

            if daemons == 1:
                sample = poll_health(cluster)
                state, reasons = classify(sample or None)
                if args.json:
                    print(json.dumps({"state": state, "reasons": reasons,
                                      "sample": sample}, indent=2))
                else:
                    print(format_health(state, reasons, sample))
                return 0 if state == "healthy" else 1
            shards = {}
            for index, shard in enumerate(cluster.shards):
                sample = poll_health(cluster, shard=index)
                state, reasons = classify(sample or None)
                shards[shard.name] = {"state": state, "reasons": reasons,
                                      "sample": sample}
            rollup = worst(entry["state"] for entry in shards.values())
            if args.json:
                print(json.dumps({"state": rollup, "shards": shards},
                                 indent=2))
            else:
                for name, entry in shards.items():
                    print(f"== {name} ==")
                    print(format_health(entry["state"], entry["reasons"],
                                        entry["sample"]))
                print(f"fleet: {rollup}")
            return 0 if rollup == "healthy" else 1
        elif args.command == "stats":
            if daemons == 1:
                print(cluster.obs.metrics.to_json())
            else:
                per_shard = {
                    shard.name: {
                        "checkpoints_completed":
                            shard.daemon.checkpoints_completed,
                        "bytes_pulled": shard.daemon.bytes_pulled,
                    }
                    for shard in cluster.shards
                }
                print(json.dumps({
                    "fleet": {"daemons": daemons, "per_shard": per_shard},
                    "metrics": json.loads(cluster.obs.metrics.to_json()),
                }, indent=2))
            if args.trace_out is not None:
                cluster.obs.tracer.write(args.trace_out)
                print(f"trace written to {args.trace_out}", file=sys.stderr)
    except ReproError as exc:
        # Unknown model names, missing checkpoints, and every other
        # domain failure exit with a message, not a traceback.
        print(f"portusctl: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

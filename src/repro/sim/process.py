"""Composite wait conditions for processes: AllOf / AnyOf.

``yield AllOf(env, events)`` resumes when every event has fired and returns
an ordered dict-like result; ``yield AnyOf(env, events)`` resumes as soon as
one fires.  A failed child event fails the condition (with the child's
exception) unless the condition already triggered.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

from repro.sim.core import Environment, Event


class ConditionValue:
    """Ordered mapping of event -> value for events that fired."""

    __slots__ = ("events",)

    def __init__(self) -> None:
        self.events: List[Event] = []

    def __getitem__(self, event: Event) -> Any:
        if event not in self.events:
            raise KeyError(event)
        return event.value

    def __contains__(self, event: Event) -> bool:
        return event in self.events

    def __len__(self) -> int:
        return len(self.events)

    def values(self) -> List[Any]:
        """Values in the order the events were passed to the condition."""
        return [event.value for event in self.events]

    def todict(self) -> Dict[Event, Any]:
        return {event: event.value for event in self.events}

    def __repr__(self) -> str:
        return f"<ConditionValue {self.todict()!r}>"


class Condition(Event):
    """Waits for a quorum of *events* to trigger successfully."""

    __slots__ = ("_events", "_needed", "_fired")

    def __init__(self, env: Environment, events: Sequence[Event],
                 count: int) -> None:
        super().__init__(env)
        self._events = list(events)
        self._needed = min(count, len(self._events))
        self._fired = 0
        if any(event.env is not env for event in self._events):
            raise ValueError("all condition events must share one environment")
        if self._needed == 0:
            self.succeed(ConditionValue())
            return
        for event in self._events:
            if event._processed:
                self._on_child(event)
                if self.triggered:
                    break
            else:
                callbacks = event._callbacks
                if callbacks is None:
                    event._callbacks = [self._on_child]
                else:
                    callbacks.append(self._on_child)

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            if not event.ok:
                event.defuse()
            return
        if not event.ok:
            event.defuse()
            self.fail(event.value)
            return
        self._fired += 1
        if self._fired >= self._needed:
            result = ConditionValue()
            result.events = [e for e in self._events
                             if e.triggered and e.ok]
            self.succeed(result)


class AllOf(Condition):
    """Triggers when every event in *events* has triggered successfully."""

    __slots__ = ()

    def __init__(self, env: Environment, events: Sequence[Event]) -> None:
        super().__init__(env, events, count=len(list(events)))


class AnyOf(Condition):
    """Triggers when at least one event in *events* triggers successfully."""

    __slots__ = ()

    def __init__(self, env: Environment, events: Sequence[Event]) -> None:
        super().__init__(env, events, count=1)

"""Seeded, named random streams.

Every stochastic element of the simulation (failure injection, crash-point
selection, jitter) draws from a named stream derived from one master seed,
so adding a new consumer never perturbs the draws of existing ones and runs
are reproducible from a single integer.
"""

from __future__ import annotations

import random
import zlib
from typing import Dict


class RandomStreams:
    """A family of independent :class:`random.Random` instances."""

    def __init__(self, master_seed: int = 0) -> None:
        self.master_seed = int(master_seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for *name*, creating it deterministically."""
        if name not in self._streams:
            # Derive a per-name seed that is stable across runs and Python
            # versions (hash() is salted; crc32 is not).
            derived = zlib.crc32(name.encode("utf-8")) ^ (self.master_seed * 0x9E3779B1)
            self._streams[name] = random.Random(derived & 0xFFFFFFFFFFFF)
        return self._streams[name]

    def reseed(self, master_seed: int) -> None:
        """Reset every stream under a new master seed."""
        self.master_seed = int(master_seed)
        self._streams.clear()

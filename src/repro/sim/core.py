"""Core of the discrete-event engine: events, processes, the environment.

The design follows the classic process-interaction style:

* an :class:`Event` is a one-shot occurrence with a value and callbacks;
* a :class:`Process` wraps a generator that yields events and is resumed
  with the event's value (or has the event's exception thrown into it);
* the :class:`Environment` keeps a priority queue of scheduled events keyed
  by ``(time, priority, sequence)`` so ordering is total and deterministic.

Time is integer nanoseconds throughout; see :mod:`repro.units`.

Fast path
---------

Fleet-scale runs push hundreds of millions of events through this module,
so the event machinery is deliberately lean:

* every event class carries ``__slots__`` — no per-instance ``__dict__``;
* the callback list is allocated lazily on the first ``append`` (roughly
  half of all events — process-end events, pre-completed transfers, the
  scheduler's superseded wakeups — never register a waiter);
* :meth:`Environment.timeout` builds the dominant event kind (a plain
  delay) without the generic constructor/validation round trip.

The *semantics* are unchanged: ``event.callbacks`` still reads as a
mutable list (``None`` once processed), and event ordering is untouched.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Callable, Generator, Iterable, List, Optional

from repro.errors import ProcessInterrupted, SimulationError

# Scheduling priorities.  URGENT is used for process resumption bookkeeping
# (e.g. interrupts) and the fluid scheduler's same-tick flush, which must
# beat same-timestamp ordinary events.
PRIORITY_URGENT = 0
PRIORITY_NORMAL = 1


class Event:
    """A one-shot occurrence inside an :class:`Environment`.

    An event moves through three states: *pending* (created), *triggered*
    (scheduled with a value, waiting in the queue), and *processed* (its
    callbacks have run).  Succeeding or failing an already-triggered event
    is an error, which catches double-completion bugs early.
    """

    __slots__ = ("env", "_callbacks", "_processed", "_value", "_ok",
                 "_defused")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self._callbacks: Optional[List[Callable[["Event"], None]]] = None
        self._processed = False
        self._value: Any = None
        self._ok: Optional[bool] = None
        self._defused = False

    # -- state inspection ---------------------------------------------------

    @property
    def callbacks(self) -> Optional[List[Callable[["Event"], None]]]:
        """The callback list (lazily created), or None once processed."""
        if self._processed:
            return None
        callbacks = self._callbacks
        if callbacks is None:
            callbacks = self._callbacks = []
        return callbacks

    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled with a value."""
        return self._ok is not None

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if self._ok is None:
            raise SimulationError("event value read before trigger")
        return self._ok

    @property
    def value(self) -> Any:
        """The success value or failure exception."""
        if self._ok is None:
            raise SimulationError("event value read before trigger")
        return self._value

    # -- completion ----------------------------------------------------------

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with *value*."""
        if self._ok is not None:
            raise SimulationError("event triggered twice")
        self._ok = True
        self._value = value
        self.env._schedule(self, PRIORITY_NORMAL, 0)
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Trigger the event as failed; waiters get *exc* thrown into them."""
        if not isinstance(exc, BaseException):
            raise TypeError(f"fail() needs an exception, got {exc!r}")
        if self._ok is not None:
            raise SimulationError("event triggered twice")
        self._ok = False
        self._value = exc
        self.env._schedule(self, PRIORITY_NORMAL, 0)
        return self

    def defuse(self) -> None:
        """Mark a failed event as handled so it does not crash the run."""
        self._defused = True

    def __repr__(self) -> str:
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires after a fixed delay."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: int, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        super().__init__(env)
        self.delay = int(delay)
        self._ok = True
        self._value = value
        env._schedule(self, PRIORITY_NORMAL, self.delay)

    def __repr__(self) -> str:
        return f"<Timeout delay={self.delay}>"


class Initialize(Event):
    """Internal event that kicks a freshly created process."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process") -> None:
        super().__init__(env)
        self._callbacks = [process._resume]
        self._ok = True
        self._value = None
        env._schedule(self, PRIORITY_URGENT, 0)


class _Interruption(Event):
    """Internal urgent event that delivers an interrupt to a process."""

    __slots__ = ("process",)

    def __init__(self, process: "Process", cause: Any) -> None:
        super().__init__(process.env)
        if process.triggered:
            raise SimulationError("cannot interrupt a finished process")
        self.process = process
        self._callbacks = [self._deliver]
        self._ok = False
        self._value = ProcessInterrupted(cause)
        self._defused = True
        process.env._schedule(self, PRIORITY_URGENT, 0)

    def _deliver(self, event: "Event") -> None:
        process = self.process
        if process.triggered:
            return  # the process finished before the interrupt landed
        target = process._target
        if target is not None and not target._processed \
                and target._callbacks is not None:
            try:
                target._callbacks.remove(process._resume)
            except ValueError:
                pass
        process._resume(self)


class Process(Event):
    """A running generator coroutine.

    A process is itself an event that triggers when the generator returns
    (success, value = return value) or raises (failure).  Other processes
    can therefore ``yield`` a process to join it.
    """

    __slots__ = ("_generator", "_target", "name")

    def __init__(self, env: "Environment",
                 generator: Generator[Event, Any, Any],
                 name: Optional[str] = None) -> None:
        if not hasattr(generator, "throw"):
            raise TypeError(f"process body must be a generator, got {generator!r}")
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Event] = None
        self.name = name or getattr(generator, "__name__", "process")
        Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return self._ok is None

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`ProcessInterrupted` into the process."""
        _Interruption(self, cause)

    def _resume(self, event: Event) -> None:
        """Advance the generator with the outcome of *event*."""
        self.env._active_process = self
        while True:
            try:
                if event._ok:
                    next_event = self._generator.send(event._value)
                else:
                    event._defused = True
                    next_event = self._generator.throw(event._value)
            except StopIteration as stop:
                self._ok = True
                self._value = stop.value
                self.env._schedule(self, PRIORITY_NORMAL, 0)
                break
            except BaseException as exc:
                self._ok = False
                self._value = exc
                self.env._schedule(self, PRIORITY_NORMAL, 0)
                break

            problem: Optional[SimulationError] = None
            if not isinstance(next_event, Event):
                problem = SimulationError(
                    f"process {self.name!r} yielded {next_event!r}, "
                    "which is not an Event")
            elif next_event.env is not self.env:
                problem = SimulationError(
                    f"process {self.name!r} yielded an event from a "
                    "different environment")
            if problem is not None:
                self._ok = False
                self._value = problem
                self.env._schedule(self, PRIORITY_NORMAL, 0)
                break

            if not next_event._processed:
                # Event still pending or queued: park until it fires.
                callbacks = next_event._callbacks
                if callbacks is None:
                    next_event._callbacks = [self._resume]
                else:
                    callbacks.append(self._resume)
                self._target = next_event
                break
            # Event already processed: loop and feed its value immediately.
            event = next_event

        self.env._active_process = None

    def __repr__(self) -> str:
        return f"<Process {self.name!r} alive={self.is_alive}>"


class Environment:
    """Holds the clock and the event queue; drives the simulation."""

    def __init__(self, initial_time: int = 0) -> None:
        self._now = int(initial_time)
        self._queue: List = []
        self._seq = 0
        self._active_process: Optional[Process] = None

    @property
    def now(self) -> int:
        """Current simulated time in integer nanoseconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    # -- event construction helpers -----------------------------------------

    def event(self) -> Event:
        """Create a fresh pending event."""
        return Event(self)

    def timeout(self, delay: int, value: Any = None) -> Timeout:
        """Create an event that fires after *delay* nanoseconds.

        This is the dominant event kind, so it is built inline instead of
        through the generic ``Event.__init__`` / ``_schedule`` pair.
        """
        delay = int(delay)
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        timer = Timeout.__new__(Timeout)
        timer.env = self
        timer._callbacks = None
        timer._processed = False
        timer._defused = False
        timer.delay = delay
        timer._ok = True
        timer._value = value
        self._seq += 1
        heappush(self._queue,
                 (self._now + delay, PRIORITY_NORMAL, self._seq, timer))
        return timer

    def process(self, generator: Generator[Event, Any, Any],
                name: Optional[str] = None) -> Process:
        """Start a new process from *generator*."""
        return Process(self, generator, name=name)

    # -- scheduling ------------------------------------------------------------

    def _schedule(self, event: Event, priority: int, delay: int) -> None:
        self._seq += 1
        heappush(self._queue,
                 (self._now + delay, priority, self._seq, event))

    def peek(self) -> Optional[int]:
        """Time of the next scheduled event, or None when the queue is empty."""
        return self._queue[0][0] if self._queue else None

    def step(self) -> None:
        """Process exactly one event."""
        if not self._queue:
            raise SimulationError("step() on an empty event queue")
        when, _priority, _seq, event = heappop(self._queue)
        if when < self._now:
            raise SimulationError("event scheduled in the past")
        self._now = when
        callbacks = event._callbacks
        event._callbacks = None
        event._processed = True
        if callbacks is not None:
            for callback in callbacks:
                callback(event)
        if not event._ok and not event._defused:
            raise event._value

    def run(self, until: Optional[int] = None) -> Any:
        """Run until the queue drains or the clock reaches *until*.

        When *until* is given, the clock is advanced exactly to it even if
        no event fires at that instant, which makes back-to-back ``run``
        calls compose predictably.
        """
        if until is not None:
            until = int(until)
            if until < self._now:
                raise ValueError(
                    f"run(until={until}) is in the past (now={self._now})")
        queue = self._queue
        step = self.step
        while queue:
            if until is not None and queue[0][0] > until:
                self._now = until
                return None
            step()
        if until is not None:
            self._now = until
        return None

    def run_process(self, process: Process, until: Optional[int] = None) -> Any:
        """Run until *process* finishes and return its value.

        Raises the process's exception on failure, or
        :class:`SimulationDeadlock` if the queue drains first.
        """
        from repro.errors import SimulationDeadlock

        queue = self._queue
        step = self.step
        while process._ok is None:
            if not queue:
                raise SimulationDeadlock(
                    f"event queue drained before {process!r} finished")
            if until is not None and queue[0][0] > until:
                raise SimulationDeadlock(
                    f"clock reached {until} before {process!r} finished")
            step()
        if not process.ok:
            raise process.value
        return process.value

    def run_all(self, processes: Iterable[Process]) -> List[Any]:
        """Run until every process in *processes* finishes; return values."""
        return [self.run_process(p) for p in list(processes)]

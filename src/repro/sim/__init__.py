"""Discrete-event simulation engine.

A from-scratch engine in the style of a process-based simulator: user code
is written as generator coroutines that yield :class:`Event` objects and are
resumed when those events fire.  Simulated time is integer nanoseconds.

Public surface::

    env = Environment()
    env.process(my_generator(env))
    env.run()

plus the resource primitives :class:`Resource`, :class:`Store` and the
fluid-flow :class:`SharedChannel` used by every bandwidth model in the
hardware layer.
"""

from repro.sim.core import Environment, Event, Process, Timeout
from repro.sim.process import AllOf, AnyOf, Condition
from repro.sim.rand import RandomStreams
from repro.sim.resources import (Resource, SharedChannel, Store, Transfer,
                                 scheduler_stats, use_reference_scheduler)

__all__ = [
    "AllOf",
    "AnyOf",
    "Condition",
    "Environment",
    "Event",
    "Process",
    "RandomStreams",
    "Resource",
    "SharedChannel",
    "Store",
    "Timeout",
    "Transfer",
    "scheduler_stats",
    "use_reference_scheduler",
]

"""Resource primitives: Resource, Store, and the fluid-flow SharedChannel.

``SharedChannel`` is the workhorse of every bandwidth model in the library.
A *transfer* is a flow of N bytes across one or more channels (PCIe link,
NIC, switch port, memory device).  Concurrent flows share each channel's
capacity max-min fairly: the scheduler performs progressive filling across
all channels, freezing flows at the bottleneck rate, so that e.g. sixteen
GPU shards checkpointing through one 100 Gbps server NIC each see 1/16th of
the wire while a concurrent local NVMe write is unaffected.

Rates are recomputed only when flow membership changes, which keeps the
model exact (piecewise-constant rates) and the event count linear in the
number of transfers.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Sequence, Set

from repro.errors import SimulationError
from repro.units import SECOND
from repro.sim.core import Environment, Event

_EPSILON_BYTES = 1e-6


class Request(Event):
    """A pending claim on a :class:`Resource`."""

    def __init__(self, resource: "Resource") -> None:
        super().__init__(resource.env)
        self.resource = resource

    def cancel(self) -> None:
        """Withdraw the request (granted or queued)."""
        self.resource._cancel(self)


class Resource:
    """Counting resource with a FIFO wait queue.

    Usage from a process::

        req = resource.request()
        yield req
        try:
            ...critical section...
        finally:
            resource.release(req)
    """

    def __init__(self, env: Environment, capacity: int = 1) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._holders: Set[Request] = set()
        self._waiters: List[Request] = []

    @property
    def in_use(self) -> int:
        """Number of currently granted requests."""
        return len(self._holders)

    @property
    def queue_length(self) -> int:
        """Number of requests still waiting."""
        return len(self._waiters)

    def request(self) -> Request:
        """Claim a unit; the returned event fires when granted."""
        req = Request(self)
        if len(self._holders) < self.capacity:
            self._holders.add(req)
            req.succeed(req)
        else:
            self._waiters.append(req)
        return req

    def release(self, req: Request) -> None:
        """Return a granted unit and wake the next waiter."""
        if req not in self._holders:
            raise SimulationError("release() of a request that is not held")
        self._holders.remove(req)
        self._grant_next()

    def _cancel(self, req: Request) -> None:
        if req in self._holders:
            self.release(req)
        elif req in self._waiters:
            self._waiters.remove(req)

    def _grant_next(self) -> None:
        while self._waiters and len(self._holders) < self.capacity:
            nxt = self._waiters.pop(0)
            self._holders.add(nxt)
            nxt.succeed(nxt)


class Store:
    """FIFO store of items with blocking get/put (unbounded by default)."""

    def __init__(self, env: Environment, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._items: List[Any] = []
        self._getters: List[Event] = []
        self._putters: List = []  # (event, item) pairs

    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> List[Any]:
        """Snapshot of queued items (oldest first)."""
        return list(self._items)

    def put(self, item: Any) -> Event:
        """Queue *item*; event fires when the item is accepted."""
        event = Event(self.env)
        self._putters.append((event, item))
        self._dispatch()
        return event

    def get(self) -> Event:
        """Take the oldest item; event fires with the item as value."""
        event = Event(self.env)
        self._getters.append(event)
        self._dispatch()
        return event

    def _dispatch(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            while self._putters and (
                    self.capacity is None or len(self._items) < self.capacity):
                event, item = self._putters.pop(0)
                self._items.append(item)
                event.succeed(item)
                progressed = True
            while self._getters and self._items:
                event = self._getters.pop(0)
                event.succeed(self._items.pop(0))
                progressed = True


class SharedChannel:
    """A capacity-limited pipe that active transfers share max-min fairly.

    ``congested_capacity_bps`` models media whose aggregate throughput
    *degrades* under many concurrent streams (Optane writes are the
    canonical case: sequential streams interleave poorly on the 256 B
    XPLine): once more than ``congestion_threshold`` flows are active the
    pool shrinks to the congested capacity.
    """

    def __init__(self, env: Environment, capacity_bps: float,
                 name: str = "channel",
                 congested_capacity_bps: Optional[float] = None,
                 congestion_threshold: int = 4) -> None:
        if capacity_bps <= 0:
            raise ValueError(f"capacity must be positive, got {capacity_bps}")
        if congested_capacity_bps is not None and \
                not 0 < congested_capacity_bps <= capacity_bps:
            raise ValueError(
                f"congested capacity must be in (0, {capacity_bps}], "
                f"got {congested_capacity_bps}")
        self.env = env
        self.capacity_bps = float(capacity_bps)
        self.congested_capacity_bps = congested_capacity_bps
        self.congestion_threshold = congestion_threshold
        self.name = name
        # Insertion-ordered (dict-as-set): iteration order must not depend
        # on object ids or replay determinism breaks across processes.
        self.flows: Dict["Transfer", None] = {}
        self.bytes_carried = 0

    def capacity_for(self, flow_count: int) -> float:
        """Aggregate capacity offered to *flow_count* concurrent flows."""
        if (self.congested_capacity_bps is None
                or flow_count <= self.congestion_threshold):
            return self.capacity_bps
        return self.congested_capacity_bps

    def transfer(self, size_bytes: int, latency_ns: int = 0,
                 rate_cap_bps: Optional[float] = None,
                 label: str = "") -> "Transfer":
        """Start a transfer of *size_bytes* across just this channel."""
        return Transfer(self.env, [self], size_bytes,
                        latency_ns=latency_ns, rate_cap_bps=rate_cap_bps,
                        label=label)

    def __repr__(self) -> str:
        return f"<SharedChannel {self.name} {self.capacity_bps:.3g}B/s " \
               f"flows={len(self.flows)}>"


class Transfer(Event):
    """A flow of bytes across a sequence of :class:`SharedChannel` segments.

    The event fires when the last byte arrives.  ``latency_ns`` models the
    one-way propagation/setup delay paid once before bytes start flowing
    (RDMA post + PCIe round trip, syscall entry, ...).  ``rate_cap_bps``
    bounds this flow below the fair share (e.g. a single DMA engine).
    """

    def __init__(self, env: Environment, channels: Sequence[SharedChannel],
                 size_bytes: int, latency_ns: int = 0,
                 rate_cap_bps: Optional[float] = None,
                 label: str = "") -> None:
        if size_bytes < 0:
            raise ValueError(f"negative transfer size: {size_bytes}")
        if latency_ns < 0:
            raise ValueError(f"negative latency: {latency_ns}")
        if rate_cap_bps is not None and rate_cap_bps <= 0:
            raise ValueError(f"non-positive rate cap: {rate_cap_bps}")
        super().__init__(env)
        self.channels = list(channels)
        self.size_bytes = int(size_bytes)
        self.remaining = float(size_bytes)
        self.rate_cap_bps = rate_cap_bps
        self.label = label
        self.rate_bps = 0.0
        self.started_at = env.now
        self.finished_at: Optional[int] = None
        scheduler = _fluid_scheduler(env)
        if latency_ns > 0:
            timer = env.timeout(latency_ns)
            timer.callbacks.append(lambda _ev: scheduler.admit(self))
        else:
            scheduler.admit(self)

    @property
    def elapsed_ns(self) -> int:
        """Duration of the transfer; only valid once complete."""
        if self.finished_at is None:
            raise SimulationError("transfer not finished yet")
        return self.finished_at - self.started_at

    def __repr__(self) -> str:
        return f"<Transfer {self.label or hex(id(self))} " \
               f"{self.size_bytes}B remaining={self.remaining:.0f}>"


class _FluidScheduler:
    """Per-environment coordinator implementing progressive filling."""

    def __init__(self, env: Environment) -> None:
        self.env = env
        # Dict-as-ordered-set: with equal-rate flows (a striped stripe set)
        # several transfers finish in the same tick, and the order their
        # completions fire — and the float order rates are subtracted in —
        # must follow admission order, not id()-dependent set order.
        self.active: Dict[Transfer, None] = {}
        self._last_update = env.now
        self._wakeup: Optional[Event] = None
        self._wakeup_gen = 0

    # -- public hooks ---------------------------------------------------------

    def admit(self, transfer: Transfer) -> None:
        if transfer.size_bytes == 0:
            transfer.finished_at = self.env.now
            transfer.succeed(transfer)
            return
        self._advance()
        self.active[transfer] = None
        for channel in transfer.channels:
            channel.flows[transfer] = None
        self._reallocate()

    # -- internals -------------------------------------------------------------

    def _advance(self) -> None:
        """Account progress since the last rate change, retire finished flows."""
        now = self.env.now
        elapsed = now - self._last_update
        self._last_update = now
        if elapsed <= 0 or not self.active:
            return
        finished: List[Transfer] = []
        for flow in self.active:
            moved = flow.rate_bps * elapsed / SECOND
            flow.remaining -= moved
            for channel in flow.channels:
                channel.bytes_carried += int(moved)
            if flow.remaining <= _EPSILON_BYTES:
                flow.remaining = 0.0
                finished.append(flow)
        for flow in finished:
            self.active.pop(flow, None)
            for channel in flow.channels:
                channel.flows.pop(flow, None)
            flow.finished_at = now
            flow.succeed(flow)

    def _reallocate(self) -> None:
        """Recompute max-min fair rates and schedule the next completion."""
        self._assign_rates()
        self._wakeup_gen += 1
        if not self.active:
            return
        horizon = min(
            math.ceil(flow.remaining * SECOND / flow.rate_bps)
            for flow in self.active)
        horizon = max(1, horizon)
        gen = self._wakeup_gen
        timer = self.env.timeout(horizon)

        def _on_fire(_event: Event, gen: int = gen) -> None:
            if gen != self._wakeup_gen:
                return  # superseded by a later membership change
            self._advance()
            self._reallocate()

        timer.callbacks.append(_on_fire)

    def _assign_rates(self) -> None:
        """Progressive-filling max-min allocation across all channels."""
        unfrozen: Dict[Transfer, None] = dict.fromkeys(self.active)
        remaining_cap: Dict[SharedChannel, float] = {}
        channel_flows: Dict[SharedChannel, Dict[Transfer, None]] = {}
        for flow in self.active:
            flow.rate_bps = 0.0
            for channel in flow.channels:
                channel_flows.setdefault(channel, {})[flow] = None
        for channel, flows in channel_flows.items():
            remaining_cap[channel] = channel.capacity_for(len(flows))

        while unfrozen:
            # The next bottleneck is the smallest equal share on offer,
            # considering both channel shares and per-flow caps.
            share = math.inf
            for channel, flows in channel_flows.items():
                live = [f for f in flows if f in unfrozen]
                if live:
                    share = min(share, remaining_cap[channel] / len(live))
            capped = [f for f in unfrozen if f.rate_cap_bps is not None]
            cap_limit = min((f.rate_cap_bps for f in capped), default=math.inf)
            if cap_limit < share:
                # Freeze every flow whose own cap binds first.
                level = cap_limit
                frozen = dict.fromkeys(
                    f for f in capped if f.rate_cap_bps <= level)
            else:
                level = share
                frozen = {}
                for channel, flows in channel_flows.items():
                    live = [f for f in flows if f in unfrozen]
                    if live and remaining_cap[channel] / len(live) <= level + 1e-9:
                        frozen.update(dict.fromkeys(live))
            if not frozen or level is math.inf:
                # No binding constraint (should not happen: every flow
                # crosses at least one channel), freeze everything at share.
                frozen = dict.fromkeys(unfrozen)
                level = share
            for flow in frozen:
                rate = level if flow.rate_cap_bps is None else min(
                    level, flow.rate_cap_bps)
                flow.rate_bps = max(rate, 1e-9)
                for channel in flow.channels:
                    remaining_cap[channel] -= flow.rate_bps
                    remaining_cap[channel] = max(remaining_cap[channel], 0.0)
            for flow in frozen:
                unfrozen.pop(flow, None)


def _fluid_scheduler(env: Environment) -> _FluidScheduler:
    """Lazily attach one fluid scheduler to *env*."""
    scheduler = getattr(env, "_fluid_scheduler", None)
    if scheduler is None:
        scheduler = _FluidScheduler(env)
        env._fluid_scheduler = scheduler
    return scheduler

"""Resource primitives: Resource, Store, and the fluid-flow SharedChannel.

``SharedChannel`` is the workhorse of every bandwidth model in the library.
A *transfer* is a flow of N bytes across one or more channels (PCIe link,
NIC, switch port, memory device).  Concurrent flows share each channel's
capacity max-min fairly: the scheduler performs progressive filling,
freezing flows at the bottleneck rate, so that e.g. sixteen GPU shards
checkpointing through one 100 Gbps server NIC each see 1/16th of the wire
while a concurrent local NVMe write is unaffected.

Rates are recomputed only when flow membership changes, which keeps the
model exact (piecewise-constant rates) and the event count linear in the
number of transfers.

Incremental reallocation
------------------------

Fleet-scale runs put hundreds of concurrent flows on the scheduler, and
the seed implementation re-ran progressive filling over *every* channel
and flow on *every* admit/finish — O(flows x channels) per membership
change, the simulator's wall-clock bottleneck (see
``benchmarks/bench_sim_hotpath.py`` / ``BENCH_sim.json``).  The
:class:`_FluidScheduler` here is incremental:

* **Persistent registries.**  ``SharedChannel.flows`` (admission-ordered)
  is the live per-channel flow registry; the solver reads it directly
  instead of rebuilding a channel->flows map from the full flow list.
* **Dirty-channel component re-solve.**  A membership change marks only
  the touched channels dirty.  The solver re-runs progressive filling
  over the *connected component* of channels/flows reachable from the
  dirty set; disjoint traffic (another daemon's NIC/PMem pair, another
  rack) keeps its rates untouched.  Max-min allocations of disjoint
  components are independent, so the result is identical to the full
  recompute.
* **Same-tick coalescing.**  Admissions mark dirty state and schedule one
  *urgent flush* event at the current timestamp; a striped stripe set of
  N same-tick transfers triggers one solve, not N.  Progress accounting
  (:meth:`_advance`) still happens eagerly at each admission so
  completion ordering is bit-identical to the eager scheduler.

The seed's full-recompute solver is retained as
:class:`_ReferenceFluidScheduler` (install with
:func:`use_reference_scheduler`): the differential property suite
(``tests/sim/test_fluid_incremental.py``) holds the two bit-identical
under randomized churn, and the hot-path benchmark records the speedup
trajectory against it.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Sequence, Set

from repro.errors import SimulationError
from repro.units import SECOND
from repro.sim.core import (Environment, Event, PRIORITY_URGENT)

_EPSILON_BYTES = 1e-6


class Request(Event):
    """A pending claim on a :class:`Resource`."""

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource") -> None:
        super().__init__(resource.env)
        self.resource = resource

    def cancel(self) -> None:
        """Withdraw the request (granted or queued)."""
        self.resource._cancel(self)


class Resource:
    """Counting resource with a FIFO wait queue.

    Usage from a process::

        req = resource.request()
        yield req
        try:
            ...critical section...
        finally:
            resource.release(req)
    """

    def __init__(self, env: Environment, capacity: int = 1) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._holders: Set[Request] = set()
        self._waiters: Deque[Request] = deque()

    @property
    def in_use(self) -> int:
        """Number of currently granted requests."""
        return len(self._holders)

    @property
    def queue_length(self) -> int:
        """Number of requests still waiting."""
        return len(self._waiters)

    def request(self) -> Request:
        """Claim a unit; the returned event fires when granted."""
        req = Request(self)
        if len(self._holders) < self.capacity:
            self._holders.add(req)
            req.succeed(req)
        else:
            self._waiters.append(req)
        return req

    def release(self, req: Request) -> None:
        """Return a granted unit and wake the next waiter."""
        if req not in self._holders:
            raise SimulationError("release() of a request that is not held")
        self._holders.remove(req)
        self._grant_next()

    def _cancel(self, req: Request) -> None:
        if req in self._holders:
            self.release(req)
        elif req in self._waiters:
            self._waiters.remove(req)

    def _grant_next(self) -> None:
        while self._waiters and len(self._holders) < self.capacity:
            nxt = self._waiters.popleft()
            self._holders.add(nxt)
            nxt.succeed(nxt)


class Store:
    """FIFO store of items with blocking get/put (unbounded by default)."""

    def __init__(self, env: Environment, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque = deque()  # (event, item) pairs

    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> List[Any]:
        """Snapshot of queued items (oldest first)."""
        return list(self._items)

    def put(self, item: Any) -> Event:
        """Queue *item*; event fires when the item is accepted."""
        event = Event(self.env)
        self._putters.append((event, item))
        self._dispatch()
        return event

    def get(self) -> Event:
        """Take the oldest item; event fires with the item as value."""
        event = Event(self.env)
        self._getters.append(event)
        self._dispatch()
        return event

    def _dispatch(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            while self._putters and (
                    self.capacity is None or len(self._items) < self.capacity):
                event, item = self._putters.popleft()
                self._items.append(item)
                event.succeed(item)
                progressed = True
            while self._getters and self._items:
                event = self._getters.popleft()
                event.succeed(self._items.popleft())
                progressed = True


class SharedChannel:
    """A capacity-limited pipe that active transfers share max-min fairly.

    ``congested_capacity_bps`` models media whose aggregate throughput
    *degrades* under many concurrent streams (Optane writes are the
    canonical case: sequential streams interleave poorly on the 256 B
    XPLine): once more than ``congestion_threshold`` flows are active the
    pool shrinks to the congested capacity.
    """

    __slots__ = ("env", "capacity_bps", "congested_capacity_bps",
                 "congestion_threshold", "name", "flows", "_bytes_carried")

    def __init__(self, env: Environment, capacity_bps: float,
                 name: str = "channel",
                 congested_capacity_bps: Optional[float] = None,
                 congestion_threshold: int = 4) -> None:
        if capacity_bps <= 0:
            raise ValueError(f"capacity must be positive, got {capacity_bps}")
        if congested_capacity_bps is not None and \
                not 0 < congested_capacity_bps <= capacity_bps:
            raise ValueError(
                f"congested capacity must be in (0, {capacity_bps}], "
                f"got {congested_capacity_bps}")
        self.env = env
        self.capacity_bps = float(capacity_bps)
        self.congested_capacity_bps = congested_capacity_bps
        self.congestion_threshold = congestion_threshold
        self.name = name
        # Insertion-ordered (dict-as-set): iteration order must not depend
        # on object ids or replay determinism breaks across processes.
        # This is the scheduler's *persistent* live-flow registry: admit
        # inserts, completion deletes, the solver iterates it directly.
        self.flows: Dict["Transfer", None] = {}
        # Accumulated in float: per-tick truncation used to lose up to a
        # byte per rate change (the fractional remainder of each tick).
        self._bytes_carried = 0.0

    @property
    def bytes_carried(self) -> int:
        """Total bytes this channel has carried (rounded; exact in float
        internally so many small ticks cannot under-count)."""
        return int(round(self._bytes_carried))

    def capacity_for(self, flow_count: int) -> float:
        """Aggregate capacity offered to *flow_count* concurrent flows."""
        if (self.congested_capacity_bps is None
                or flow_count <= self.congestion_threshold):
            return self.capacity_bps
        return self.congested_capacity_bps

    def transfer(self, size_bytes: int, latency_ns: int = 0,
                 rate_cap_bps: Optional[float] = None,
                 label: str = "") -> "Transfer":
        """Start a transfer of *size_bytes* across just this channel."""
        return Transfer(self.env, [self], size_bytes,
                        latency_ns=latency_ns, rate_cap_bps=rate_cap_bps,
                        label=label)

    def __repr__(self) -> str:
        return f"<SharedChannel {self.name} {self.capacity_bps:.3g}B/s " \
               f"flows={len(self.flows)}>"


class Transfer(Event):
    """A flow of bytes across a sequence of :class:`SharedChannel` segments.

    The event fires when the last byte arrives.  ``latency_ns`` models the
    one-way propagation/setup delay paid once before bytes start flowing
    (RDMA post + PCIe round trip, syscall entry, ...).  ``rate_cap_bps``
    bounds this flow below the fair share (e.g. a single DMA engine).
    """

    __slots__ = ("channels", "size_bytes", "remaining", "rate_cap_bps",
                 "label", "rate_bps", "started_at", "finished_at", "_order")

    def __init__(self, env: Environment, channels: Sequence[SharedChannel],
                 size_bytes: int, latency_ns: int = 0,
                 rate_cap_bps: Optional[float] = None,
                 label: str = "") -> None:
        if size_bytes < 0:
            raise ValueError(f"negative transfer size: {size_bytes}")
        if latency_ns < 0:
            raise ValueError(f"negative latency: {latency_ns}")
        if rate_cap_bps is not None and rate_cap_bps <= 0:
            raise ValueError(f"non-positive rate cap: {rate_cap_bps}")
        super().__init__(env)
        self.channels = list(channels)
        self.size_bytes = int(size_bytes)
        self.remaining = float(size_bytes)
        self.rate_cap_bps = rate_cap_bps
        self.label = label
        self.rate_bps = 0.0
        self.started_at = env.now
        self.finished_at: Optional[int] = None
        self._order = 0
        scheduler = _fluid_scheduler(env)
        if latency_ns > 0:
            timer = env.timeout(latency_ns)
            timer._callbacks = [lambda _ev: scheduler.admit(self)]
        else:
            scheduler.admit(self)

    @property
    def elapsed_ns(self) -> int:
        """Duration of the transfer; only valid once complete."""
        if self.finished_at is None:
            raise SimulationError("transfer not finished yet")
        return self.finished_at - self.started_at

    def __repr__(self) -> str:
        return f"<Transfer {self.label or hex(id(self))} " \
               f"{self.size_bytes}B remaining={self.remaining:.0f}>"


class _FluidScheduler:
    """Per-environment coordinator implementing incremental progressive
    filling (see the module docstring for the three mechanisms)."""

    __slots__ = ("env", "active", "_last_update", "_wakeup_gen", "_dirty",
                 "_flush_pending", "_order", "stats")

    def __init__(self, env: Environment) -> None:
        self.env = env
        # Dict-as-ordered-set: with equal-rate flows (a striped stripe set)
        # several transfers finish in the same tick, and the order their
        # completions fire — and the float order rates are subtracted in —
        # must follow admission order, not id()-dependent set order.
        self.active: Dict[Transfer, None] = {}
        self._last_update = env.now
        self._wakeup_gen = 0
        # Channels whose membership changed since the last solve, in
        # first-touched order (order only matters for reproducibility of
        # the component walk, not for the resulting rates).
        self._dirty: Dict[SharedChannel, None] = {}
        self._flush_pending = False
        self._order = 0
        self.stats = {"solves": 0, "flows_solved": 0, "channels_solved": 0,
                      "flushes": 0, "wakeups": 0}

    # -- public hooks ---------------------------------------------------------

    def admit(self, transfer: Transfer) -> None:
        if transfer.size_bytes == 0:
            transfer.finished_at = self.env.now
            transfer.succeed(transfer)
            return
        # Advance eagerly (not in the flush): any flow that drains exactly
        # at this tick must complete *here*, in the same callback context
        # the eager scheduler completed it in, to keep event order
        # bit-identical.
        self._advance()
        self._order += 1
        transfer._order = self._order
        self.active[transfer] = None
        dirty = self._dirty
        for channel in transfer.channels:
            channel.flows[transfer] = None
            dirty[channel] = None
        if not self._flush_pending:
            self._schedule_flush()

    # -- internals -------------------------------------------------------------

    def _schedule_flush(self) -> None:
        """One urgent event per same-tick admission batch: N stripes of a
        stripe set trigger a single rate solve."""
        self._flush_pending = True
        self.stats["flushes"] += 1
        env = self.env
        flush = Event(env)
        flush._ok = True
        flush._callbacks = [self._on_flush]
        env._schedule(flush, PRIORITY_URGENT, 0)

    def _on_flush(self, _event: Event) -> None:
        self._flush_pending = False
        self._advance()  # same tick as the admissions: elapsed is 0
        self._reallocate()

    def _advance(self) -> None:
        """Account progress since the last rate change, retire finished flows."""
        now = self.env.now
        elapsed = now - self._last_update
        self._last_update = now
        if elapsed <= 0 or not self.active:
            return
        finished: Optional[List[Transfer]] = None
        for flow in self.active:
            moved = flow.rate_bps * elapsed / SECOND
            before = flow.remaining
            flow.remaining = before - moved
            if flow.remaining <= _EPSILON_BYTES:
                # Final tick: the ceil'd horizon overshoots by < 1 ns of
                # rate; the channel carried only the bytes that existed.
                flow.remaining = 0.0
                if moved > before:
                    moved = before
                if finished is None:
                    finished = []
                finished.append(flow)
            for channel in flow.channels:
                channel._bytes_carried += moved
        if finished:
            active = self.active
            dirty = self._dirty
            for flow in finished:
                del active[flow]
                for channel in flow.channels:
                    del channel.flows[flow]
                    dirty[channel] = None
                flow.finished_at = now
                flow.succeed(flow)

    def _reallocate(self) -> None:
        """Re-solve the dirty component(s) and schedule the next completion."""
        self._solve_dirty()
        self._wakeup_gen += 1
        if not self.active:
            return
        horizon = min(
            math.ceil(flow.remaining * SECOND / flow.rate_bps)
            for flow in self.active)
        horizon = max(1, horizon)
        gen = self._wakeup_gen
        timer = self.env.timeout(horizon)

        def _on_fire(_event: Event, gen: int = gen) -> None:
            if gen != self._wakeup_gen:
                return  # superseded by a later membership change
            self.stats["wakeups"] += 1
            self._advance()
            self._reallocate()

        timer._callbacks = [_on_fire]

    def _solve_dirty(self) -> None:
        """Progressive filling over the connected component(s) of the
        dirty channels; everything else keeps its rates."""
        dirty = self._dirty
        if not dirty:
            return
        self._dirty = {}
        if not self.active:
            return
        # Walk channel<->flow adjacency from the dirty channels.  Sets are
        # used for membership only; final orders come from admission
        # sequence numbers, so the walk itself need not be ordered.
        flows: List[Transfer] = []
        seen_flows: Set[Transfer] = set()
        stack: List[SharedChannel] = [ch for ch in dirty if ch.flows]
        seen_channels: Set[SharedChannel] = set(stack)
        while stack:
            channel = stack.pop()
            for flow in channel.flows:
                if flow not in seen_flows:
                    seen_flows.add(flow)
                    flows.append(flow)
                    for other in flow.channels:
                        if other not in seen_channels:
                            seen_channels.add(other)
                            stack.append(other)
        if not flows:
            return
        # Admission order — the order float rates are subtracted in, and
        # therefore load-bearing for bit-identical replays.
        flows.sort(key=_admission_order)
        channels: List[SharedChannel] = []
        first_seen: Set[SharedChannel] = set()
        for flow in flows:
            for channel in flow.channels:
                if channel not in first_seen:
                    first_seen.add(channel)
                    channels.append(channel)
        self.stats["solves"] += 1
        self.stats["flows_solved"] += len(flows)
        self.stats["channels_solved"] += len(channels)
        self._solve_component(channels, flows)

    def _solve_component(self, channels: List[SharedChannel],
                         flows: List[Transfer]) -> None:
        """Max-min progressive filling over one connected component.

        Float-for-float the same operation sequence as the reference
        solver restricted to this component: per-channel shares from live
        counts, freeze at the bottleneck level, subtract frozen rates in
        admission order.
        """
        remaining_cap: Dict[SharedChannel, float] = {}
        live_count: Dict[SharedChannel, int] = {}
        for channel in channels:
            count = len(channel.flows)
            remaining_cap[channel] = channel.capacity_for(count)
            live_count[channel] = count
        unfrozen: Dict[Transfer, None] = dict.fromkeys(flows)
        capped_any = False
        for flow in flows:
            flow.rate_bps = 0.0
            if flow.rate_cap_bps is not None:
                capped_any = True

        while unfrozen:
            # The next bottleneck is the smallest equal share on offer,
            # considering both channel shares and per-flow caps.
            share = math.inf
            for channel in channels:
                count = live_count[channel]
                if count:
                    offered = remaining_cap[channel] / count
                    if offered < share:
                        share = offered
            if capped_any:
                capped = [f for f in unfrozen if f.rate_cap_bps is not None]
                cap_limit = min((f.rate_cap_bps for f in capped),
                                default=math.inf)
            else:
                capped = []
                cap_limit = math.inf
            if cap_limit < share:
                # Freeze every flow whose own cap binds first.
                level = cap_limit
                frozen = dict.fromkeys(
                    f for f in capped if f.rate_cap_bps <= level)
            else:
                level = share
                frozen = {}
                for channel in channels:
                    count = live_count[channel]
                    if count and \
                            remaining_cap[channel] / count <= level + 1e-9:
                        for flow in channel.flows:
                            if flow in unfrozen:
                                frozen[flow] = None
            if not frozen or level is math.inf:
                # No binding constraint (should not happen: every flow
                # crosses at least one channel), freeze everything at share.
                frozen = dict.fromkeys(unfrozen)
                level = share
            for flow in frozen:
                rate = level if flow.rate_cap_bps is None else min(
                    level, flow.rate_cap_bps)
                flow.rate_bps = max(rate, 1e-9)
                for channel in flow.channels:
                    remaining_cap[channel] -= flow.rate_bps
                    remaining_cap[channel] = max(remaining_cap[channel], 0.0)
                    live_count[channel] -= 1
            for flow in frozen:
                unfrozen.pop(flow, None)


def _admission_order(flow: Transfer) -> int:
    return flow._order


class _ReferenceFluidScheduler:
    """The seed's eager full-recompute scheduler, retained verbatim.

    Every admit/finish re-runs progressive filling over *all* channels
    and flows.  It exists as the ground truth for the differential
    property suite (``tests/sim/test_fluid_incremental.py``) and as the
    "before" side of ``benchmarks/bench_sim_hotpath.py``; install it on a
    fresh environment with :func:`use_reference_scheduler`.
    """

    def __init__(self, env: Environment) -> None:
        self.env = env
        self.active: Dict[Transfer, None] = {}
        self._last_update = env.now
        self._wakeup_gen = 0
        self._order = 0
        self.stats = {"solves": 0, "flows_solved": 0, "channels_solved": 0,
                      "flushes": 0, "wakeups": 0}

    # -- public hooks ---------------------------------------------------------

    def admit(self, transfer: Transfer) -> None:
        if transfer.size_bytes == 0:
            transfer.finished_at = self.env.now
            transfer.succeed(transfer)
            return
        self._advance()
        self._order += 1
        transfer._order = self._order
        self.active[transfer] = None
        for channel in transfer.channels:
            channel.flows[transfer] = None
        self._reallocate()

    # -- internals -------------------------------------------------------------

    def _advance(self) -> None:
        now = self.env.now
        elapsed = now - self._last_update
        self._last_update = now
        if elapsed <= 0 or not self.active:
            return
        finished: List[Transfer] = []
        for flow in self.active:
            moved = flow.rate_bps * elapsed / SECOND
            before = flow.remaining
            flow.remaining = before - moved
            if flow.remaining <= _EPSILON_BYTES:
                flow.remaining = 0.0
                if moved > before:
                    moved = before
                finished.append(flow)
            for channel in flow.channels:
                channel._bytes_carried += moved
        for flow in finished:
            self.active.pop(flow, None)
            for channel in flow.channels:
                channel.flows.pop(flow, None)
            flow.finished_at = now
            flow.succeed(flow)

    def _reallocate(self) -> None:
        self._assign_rates()
        self._wakeup_gen += 1
        if not self.active:
            return
        horizon = min(
            math.ceil(flow.remaining * SECOND / flow.rate_bps)
            for flow in self.active)
        horizon = max(1, horizon)
        gen = self._wakeup_gen
        timer = self.env.timeout(horizon)

        def _on_fire(_event: Event, gen: int = gen) -> None:
            if gen != self._wakeup_gen:
                return  # superseded by a later membership change
            self.stats["wakeups"] += 1
            self._advance()
            self._reallocate()

        timer._callbacks = [_on_fire]

    def _assign_rates(self) -> None:
        """Progressive-filling max-min allocation across all channels."""
        self.stats["solves"] += 1
        self.stats["flows_solved"] += len(self.active)
        unfrozen: Dict[Transfer, None] = dict.fromkeys(self.active)
        remaining_cap: Dict[SharedChannel, float] = {}
        channel_flows: Dict[SharedChannel, Dict[Transfer, None]] = {}
        for flow in self.active:
            flow.rate_bps = 0.0
            for channel in flow.channels:
                channel_flows.setdefault(channel, {})[flow] = None
        for channel, flows in channel_flows.items():
            remaining_cap[channel] = channel.capacity_for(len(flows))
        self.stats["channels_solved"] += len(channel_flows)

        while unfrozen:
            share = math.inf
            for channel, flows in channel_flows.items():
                live = [f for f in flows if f in unfrozen]
                if live:
                    share = min(share, remaining_cap[channel] / len(live))
            capped = [f for f in unfrozen if f.rate_cap_bps is not None]
            cap_limit = min((f.rate_cap_bps for f in capped), default=math.inf)
            if cap_limit < share:
                level = cap_limit
                frozen = dict.fromkeys(
                    f for f in capped if f.rate_cap_bps <= level)
            else:
                level = share
                frozen = {}
                for channel, flows in channel_flows.items():
                    live = [f for f in flows if f in unfrozen]
                    if live and remaining_cap[channel] / len(live) <= level + 1e-9:
                        frozen.update(dict.fromkeys(live))
            if not frozen or level is math.inf:
                frozen = dict.fromkeys(unfrozen)
                level = share
            for flow in frozen:
                rate = level if flow.rate_cap_bps is None else min(
                    level, flow.rate_cap_bps)
                flow.rate_bps = max(rate, 1e-9)
                for channel in flow.channels:
                    remaining_cap[channel] -= flow.rate_bps
                    remaining_cap[channel] = max(remaining_cap[channel], 0.0)
            for flow in frozen:
                unfrozen.pop(flow, None)


def _fluid_scheduler(env: Environment):
    """Lazily attach one fluid scheduler to *env*."""
    scheduler = getattr(env, "_fluid_scheduler", None)
    if scheduler is None:
        cls = getattr(env, "_fluid_scheduler_cls", _FluidScheduler)
        scheduler = cls(env)
        env._fluid_scheduler = scheduler
    return scheduler


def use_reference_scheduler(env: Environment) -> None:
    """Make *env* use the retained full-recompute reference scheduler.

    Must be called before the first :class:`Transfer` on the environment
    (the scheduler attaches lazily and is never swapped mid-run).
    """
    if getattr(env, "_fluid_scheduler", None) is not None:
        raise SimulationError(
            "use_reference_scheduler() after transfers already started")
    env._fluid_scheduler_cls = _ReferenceFluidScheduler


def scheduler_stats(env: Environment) -> Dict[str, int]:
    """Counters from *env*'s fluid scheduler (zeros if none attached):
    solves, flows/channels touched by solves, flush events, wakeups."""
    scheduler = getattr(env, "_fluid_scheduler", None)
    if scheduler is None:
        return {"solves": 0, "flows_solved": 0, "channels_solved": 0,
                "flushes": 0, "wakeups": 0}
    return dict(scheduler.stats)

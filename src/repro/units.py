"""Shared unit helpers for the whole library.

All simulated time is carried as integer **nanoseconds** so that event
ordering is exact and runs are bit-reproducible.  All sizes are integer
**bytes**.  Bandwidth is expressed in **bytes per second** (float), which is
the only place floating point enters the timing model; conversions round up
to whole nanoseconds so a transfer never finishes "early".
"""

from __future__ import annotations

import math

# --- size units -------------------------------------------------------------

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB
TIB = 1024 * GIB

KB = 1000
MB = 1000 * KB
GB = 1000 * MB
TB = 1000 * GB


def kib(n: float) -> int:
    """Return *n* KiB as a whole number of bytes."""
    return int(n * KIB)


def mib(n: float) -> int:
    """Return *n* MiB as a whole number of bytes."""
    return int(n * MIB)


def gib(n: float) -> int:
    """Return *n* GiB as a whole number of bytes."""
    return int(n * GIB)


# --- time units (integer nanoseconds) ---------------------------------------

NS = 1
US = 1000
MS = 1000 * US
SECOND = 1000 * MS
MINUTE = 60 * SECOND
HOUR = 60 * MINUTE


def usecs(n: float) -> int:
    """Return *n* microseconds as integer nanoseconds."""
    return int(n * US)


def msecs(n: float) -> int:
    """Return *n* milliseconds as integer nanoseconds."""
    return int(n * MS)


def secs(n: float) -> int:
    """Return *n* seconds as integer nanoseconds."""
    return int(n * SECOND)


def to_seconds(ns: int) -> float:
    """Convert integer nanoseconds to float seconds (for reporting only)."""
    return ns / SECOND


def to_millis(ns: int) -> float:
    """Convert integer nanoseconds to float milliseconds (for reporting)."""
    return ns / MS


def to_micros(ns: int) -> float:
    """Convert integer nanoseconds to float microseconds (for reporting)."""
    return ns / US


# --- bandwidth --------------------------------------------------------------


def gbps(n: float) -> float:
    """Network-style gigabits per second -> bytes per second."""
    return n * 1e9 / 8


def gbytes(n: float) -> float:
    """Gigabytes (1e9) per second -> bytes per second."""
    return n * 1e9


def mbytes(n: float) -> float:
    """Megabytes (1e6) per second -> bytes per second."""
    return n * 1e6


def transfer_time_ns(size_bytes: int, bandwidth_bps: float) -> int:
    """Time to move *size_bytes* at *bandwidth_bps*, rounded up to whole ns.

    A zero-byte transfer takes zero time; bandwidth must be positive.
    """
    if size_bytes < 0:
        raise ValueError(f"negative transfer size: {size_bytes}")
    if bandwidth_bps <= 0:
        raise ValueError(f"non-positive bandwidth: {bandwidth_bps}")
    if size_bytes == 0:
        return 0
    return max(1, math.ceil(size_bytes * SECOND / bandwidth_bps))


def bandwidth_achieved(size_bytes: int, elapsed_ns: int) -> float:
    """Observed bandwidth in bytes/second for a completed transfer."""
    if elapsed_ns <= 0:
        raise ValueError(f"non-positive elapsed time: {elapsed_ns}")
    return size_bytes * SECOND / elapsed_ns


def fmt_bytes(n: int) -> str:
    """Human-readable size, binary units (matches the paper's MiB/GiB)."""
    if n < 0:
        return "-" + fmt_bytes(-n)
    for unit, width in ((TIB, "TiB"), (GIB, "GiB"), (MIB, "MiB"), (KIB, "KiB")):
        if n >= unit:
            return f"{n / unit:.2f}{width}"
    return f"{n}B"


def fmt_time(ns: int) -> str:
    """Human-readable duration from integer nanoseconds."""
    if ns < 0:
        return "-" + fmt_time(-ns)
    if ns >= SECOND:
        return f"{ns / SECOND:.3f}s"
    if ns >= MS:
        return f"{ns / MS:.3f}ms"
    if ns >= US:
        return f"{ns / US:.3f}us"
    return f"{ns}ns"


def fmt_bandwidth(bps: float) -> str:
    """Human-readable bandwidth from bytes/second."""
    if bps >= 1e9:
        return f"{bps / 1e9:.2f}GB/s"
    if bps >= 1e6:
        return f"{bps / 1e6:.2f}MB/s"
    if bps >= 1e3:
        return f"{bps / 1e3:.2f}KB/s"
    return f"{bps:.2f}B/s"

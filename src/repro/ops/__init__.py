"""Self-healing operations: health model, remediation operator, policy.

The datapath (core/), fault harness (faults/), observability (obs/) and
recovery verifier (pmem/fsck) give the deployment everything it needs to
*survive* faults — but until now every recovery action (fsck/repair,
daemon restart, DRAM failover) was invoked by hand.  This package closes
the loop:

* :mod:`repro.ops.health` — turns daemon heartbeat health blocks into
  one of five states (healthy / degraded / wedged / corrupt / down);
* :mod:`repro.ops.operator` — a detect → diagnose → remediate → verify
  loop (a sim process, like the daemon's lease reaper) that applies the
  remediation matrix with rate limiting, escalation, and a
  flap-detecting circuit breaker;
* :mod:`repro.ops.policy` — the adaptive checkpoint-interval controller
  (Young/Daly optimum from measured MTBF and checkpoint cost).
"""

from repro.ops.health import (H_CORRUPT, H_DEGRADED, H_DOWN,  # noqa: F401
                              H_HEALTHY, H_WEDGED, STATES,
                              HealthThresholds, classify, overlay_fsck)
from repro.ops.operator import RemediationOperator  # noqa: F401
from repro.ops.policy import (AdaptiveIntervalController,  # noqa: F401
                              expected_overhead)

__all__ = [
    "AdaptiveIntervalController",
    "H_CORRUPT",
    "H_DEGRADED",
    "H_DOWN",
    "H_HEALTHY",
    "H_WEDGED",
    "HealthThresholds",
    "RemediationOperator",
    "STATES",
    "classify",
    "expected_overhead",
    "overlay_fsck",
]
